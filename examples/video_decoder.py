#!/usr/bin/env python
"""VC-1-style parametric video decoding + AVC-style motion search.

Sec. V of the paper claims the SPDF/BPDF case studies (the VC-1 video
decoder) are expressible in TPDF without parameter-communication
actors, and that a Transaction kernel gives an AVC encoder a quality
threshold for motion search.  This example runs both.

Run:  python examples/video_decoder.py
"""

from repro.apps.video import (
    build_decoder_graph,
    run_decoder,
    run_motion_experiment,
    synthetic_video,
)
from repro.tpdf import check_boundedness, repetition_vector
from repro.util import ascii_table, tpdf_to_dot


def main() -> None:
    graph = build_decoder_graph()
    print(graph.describe())
    q = repetition_vector(graph)
    print("\nrepetition vector:", {k: str(v) for k, v in q.items()})
    print("static verdict:", check_boundedness(graph))
    print("\nDOT rendering written to /tmp/vc1_decoder.dot")
    with open("/tmp/vc1_decoder.dot", "w") as handle:
        handle.write(tpdf_to_dot(graph))

    frames = synthetic_video(4, 32, 32, motion=(1, 2))
    rows = []
    for mode in ("intra", "inter"):
        for step in (0.001, 4.0, 16.0):
            result = run_decoder(frames, step=step, mode=mode)
            rows.append([mode, step, f"{result.psnr(frames):.1f}"])
    print()
    print(ascii_table(
        ["mode", "quant step", "PSNR (dB)"],
        rows,
        title="decoding quality through the TPDF graph",
    ))

    print()
    rows = []
    for deadline in (5.0, 30.0, 100.0):
        exp = run_motion_experiment(frames, deadline=deadline)
        rows.append([
            deadline,
            ", ".join(sorted(set(exp.chosen_strategy))),
            f"{exp.mean_sad:.0f}",
        ])
    print(ascii_table(
        ["deadline (ms)", "search selected", "mean SAD"],
        rows,
        title="quality-threshold motion search (Transaction + clock)",
    ))


if __name__ == "__main__":
    main()
