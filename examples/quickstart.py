#!/usr/bin/env python
"""Quickstart: build the paper's running example (Fig. 2) and run the
full static-analysis chain plus a timed execution.

Run:  python examples/quickstart.py
"""

from repro.platform import single_cluster
from repro.scheduling import build_canonical_period, list_schedule
from repro.sim import Simulator
from repro.tpdf import (
    area_local_solution,
    check_boundedness,
    control_area,
    fig2_graph,
    repetition_vector,
    symbolic_schedule_string,
)


def main() -> None:
    graph = fig2_graph()
    print(graph.describe())
    print()

    # --- Static analyses (Sec. III) -----------------------------------
    q = repetition_vector(graph)
    print("repetition vector (symbolic):")
    for name, count in q.items():
        print(f"  q[{name}] = {count}")
    print("schedule string:", symbolic_schedule_string(graph))

    area = control_area(graph, "C")
    print(f"\ncontrol area of C: {sorted(area)}  (paper: B, D, E, F)")
    print("local solution:", area_local_solution(graph, "C"))

    report = check_boundedness(graph)
    print("\nboundedness verdict:", report)

    # --- Canonical period for p = 1 (Fig. 5) --------------------------
    period = build_canonical_period(graph, {"p": 1})
    print("\ncanonical period (p = 1):")
    print(period.describe())

    mapping = list_schedule(period, single_cluster(4))
    print(f"\nlist schedule on 4 cores: makespan = {mapping.makespan}")
    print(mapping.gantt())

    # --- Timed execution for p = 2 ------------------------------------
    sim = Simulator(graph, bindings={"p": 2})
    trace = sim.run(limits={"A": 2})  # one iteration: A fires twice
    print("\nexecuted firings for one iteration (p = 2):", trace.counts())
    print("buffer peaks:", trace.peaks)


if __name__ == "__main__":
    main()
