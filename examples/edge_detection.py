#!/usr/bin/env python
"""Edge detection with a 500 ms deadline (the paper's Fig. 6 study).

Four detectors race on each frame; a clock-driven transaction picks
the best finished result at every deadline (quality order
Canny > Prewitt > Sobel > Quick Mask).  We run the model-timed
simulation *and* the real numpy filters on a synthetic scene.

Run:  python examples/edge_detection.py
"""

import numpy as np

from repro.apps.edge import (
    DEFAULT_METHODS,
    detect,
    fig6_table,
    run_edge_experiment,
    synthetic_scene,
    wallclock_ratios,
)
from repro.util import ascii_table


def main() -> None:
    print(ascii_table(
        ["method", "paper ms (1024^2, i3)", "model ms"],
        fig6_table(),
        title="Fig. 6 execution-time table",
    ))

    image = synthetic_scene(size=1024, noise=4.0, seed=1)

    # Deadline behaviour at three different periods.
    for period in (250.0, 500.0, 1100.0):
        exp = run_edge_experiment([image], period=period, frames=1)
        finished = exp.finished_by_deadline()
        chosen = exp.chosen_methods()[0] if exp.chosen else "(none)"
        print(f"deadline {period:6.0f} ms: finished={finished} -> chosen: {chosen}")

    # Real filters on a smaller scene: quality ordering is intrinsic.
    small = synthetic_scene(size=256, noise=4.0, seed=1)
    ratios = wallclock_ratios(small)
    print("\nwall-clock ratios of our numpy filters (quickmask = 1.0):")
    for method in DEFAULT_METHODS:
        print(f"  {method:>10}: {ratios[method]:5.2f}x")

    edges = detect("canny", small)
    print(f"\ncanny on a 256^2 synthetic scene: {edges.sum():.0f} edge pixels "
          f"({100 * edges.mean():.2f}% of the image)")
    print(np.array2string(edges[96:104, 96:104].astype(int)))


if __name__ == "__main__":
    main()
