#!/usr/bin/env python
"""The cognitive-radio OFDM demodulator (Fig. 7/8 of the paper).

Demonstrates (1) a functional end-to-end run — real OFDM waveforms
demodulated back to the transmitted bits with the control actor
selecting the demapper, and (2) the buffer-size comparison against the
static CSDF implementation, reproducing the paper's 29% improvement.

Run:  python examples/cognitive_radio.py
"""

from repro.apps.ofdm import fig8_series, run_ofdm_tpdf
from repro.util import ascii_series_plot, ascii_table


def main() -> None:
    # --- functional runs ------------------------------------------------
    for m in (2, 4):
        run = run_ofdm_tpdf(beta=4, n=64, l=8, m=m, activations=3)
        print(
            f"M={m} ({run.scheme}): {run.sent_bits.size} bits sent, "
            f"{run.bit_errors} errors (BER {run.ber:.2e}); "
            f"executed: {run.trace.counts()}"
        )

    # --- Fig. 8: buffer size vs vectorization degree ---------------------
    series = fig8_series(betas=range(10, 101, 10), ns=(512, 1024))
    rows = [
        (pt.n, pt.beta, pt.tpdf_measured, pt.tpdf_paper,
         pt.csdf_measured, pt.csdf_paper, f"{100 * pt.improvement:.1f}%")
        for pt in series
    ]
    print()
    print(ascii_table(
        ["N", "beta", "TPDF meas", "TPDF paper", "CSDF meas", "CSDF paper", "saving"],
        rows,
        title="Fig. 8 — minimum buffer size (measured vs paper formulas)",
    ))

    xs = [pt.beta for pt in series if pt.n == 512]
    plot = ascii_series_plot(
        xs,
        {
            "TPDF N=512": [pt.tpdf_measured for pt in series if pt.n == 512],
            "CSDF N=512": [pt.csdf_measured for pt in series if pt.n == 512],
            "TPDF N=1024": [pt.tpdf_measured for pt in series if pt.n == 1024],
            "CSDF N=1024": [pt.csdf_measured for pt in series if pt.n == 1024],
        },
        title="Fig. 8 (ASCII): buffer size vs vectorization degree",
    )
    print()
    print(plot)


if __name__ == "__main__":
    main()
