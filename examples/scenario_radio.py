#!/usr/bin/env python
"""Runtime-reconfigurable OFDM demodulation — context dependence live.

The paper calls the Fig. 7 demodulator "runtime-reconfigurable": the
control node chooses QPSK or 16-QAM *per activation*.  This example
streams a mixed schedule of activations through ONE graph in ONE run;
the control actor reads each activation's header and re-steers the
select-duplicate and the transaction on the fly.  Exact bit recovery
for every activation shows the reconfiguration is seamless.

Run:  python examples/scenario_radio.py
"""

from repro.apps.ofdm import run_ofdm_scenarios
from repro.util import ascii_table


def main() -> None:
    schedule = ["qpsk", "qpsk", "qam16", "qpsk", "qam16", "qam16", "qpsk"]
    run = run_ofdm_scenarios(schedule, beta=4, n=32, l=4)

    rows = [
        [index, scheme, bits, errors]
        for index, (scheme, bits, errors) in enumerate(
            zip(run.schemes, run.bits_per_activation, run.bit_errors)
        )
    ]
    print(ascii_table(
        ["activation", "scheme", "payload bits", "bit errors"],
        rows,
        title="runtime scheme switching through one TPDF graph",
    ))
    counts = run.trace.counts()
    print(f"\ndemapper firings: QPSK={counts.get('QPSK', 0)}, "
          f"QAM={counts.get('QAM', 0)} "
          f"(= {schedule.count('qpsk')} QPSK / {schedule.count('qam16')} QAM "
          f"activations — only the selected path ever runs)")
    print(f"total bit errors: {run.total_errors}")
    assert run.total_errors == 0


if __name__ == "__main__":
    main()
