#!/usr/bin/env python
"""Speculation with a Transaction kernel (Sec. II-B).

The paper lists *speculation* among the actions a Transaction process
enables.  Scenario: a branch condition takes long to evaluate, while
the two possible continuations are cheap.  Speculative execution runs
both continuations in parallel with the condition; when the condition
finally arrives, a control actor steers the Transaction to forward the
correct branch's result and the other is discarded.  Latency drops
from ``cond + branch`` (sequential) to ``max(cond, branch)``.

Run:  python examples/speculation.py
"""

from repro.sim import Simulator
from repro.tpdf import ControlToken, Mode, TPDFGraph, transaction

COND_TIME = 8.0
BRANCH_TIME = 5.0


def build(speculative: bool) -> tuple[TPDFGraph, list]:
    graph = TPDFGraph("speculation" if speculative else "sequential")
    src = graph.add_kernel("src", exec_time=0.0, function=lambda n, c: n)
    src.add_output("to_then", 1)
    src.add_output("to_else", 1)
    src.add_output("to_cond", 1)

    # The slow condition evaluator: odd inputs take the "then" branch.
    cond = graph.add_control_actor(
        "cond",
        exec_time=COND_TIME,
        decision=lambda n, inputs: ControlToken(
            Mode.SELECT_ONE,
            ("from_then",) if inputs and inputs[0] % 2 else ("from_else",),
        ),
    )
    cond.add_input("in", 1)
    cond.add_control_output("out", 1)
    graph.connect("src.to_cond", "cond.in")

    for branch, result in (("then", "THEN"), ("else", "ELSE")):
        kernel = graph.add_kernel(
            branch,
            exec_time=BRANCH_TIME,
            function=lambda n, c, r=result: (r, c["in"][0]),
        )
        kernel.add_input("in", 1)
        kernel.add_output("out", 1)
        graph.connect(f"src.to_{branch}", f"{branch}.in")

    resolver = transaction(
        graph, "resolve", inputs=2,
        input_names=["from_then", "from_else"], action="select",
        exec_time=0.0,
    )
    graph.connect("then.out", "resolve.from_then")
    graph.connect("else.out", "resolve.from_else")
    graph.connect("cond.out", "resolve.ctrl")

    if not speculative:
        # Sequential variant: the branches wait for the condition too —
        # modelled by inflating their execution time by the condition's.
        graph.node("then")._exec_times = (COND_TIME + BRANCH_TIME,)
        graph.node("else")._exec_times = (COND_TIME + BRANCH_TIME,)

    results: list = []
    snk = graph.add_kernel(
        "snk", exec_time=0.0, function=lambda n, c: results.append(c["in"][0])
    )
    snk.add_input("in", 1)
    graph.connect("resolve.out", "snk.in")
    return graph, results


def main() -> None:
    for speculative in (False, True):
        graph, results = build(speculative)
        sim = Simulator(graph)
        trace = sim.run(limits={"src": 4})
        label = "speculative" if speculative else "sequential "
        latency = trace.end_time() / 4
        kept = [tag for tag, _ in results]
        print(f"{label}: 4 items in {trace.end_time():5.1f} time units "
              f"({latency:4.1f}/item); branches taken: {kept}")
    print(f"\nexpected per-item latency: sequential ~{COND_TIME + BRANCH_TIME}, "
          f"speculative ~max({COND_TIME}, {BRANCH_TIME}) = {max(COND_TIME, BRANCH_TIME)}")


if __name__ == "__main__":
    main()
