#!/usr/bin/env python
"""Redundancy with vote — one of the Transaction actions of Sec. II-B.

Three replicas compute the same function; one of them is fault-injected
and sometimes returns garbage.  A Transaction kernel in "vote" mode
consumes all three results and emits the majority value, masking the
fault.  This behaviour (like speculation and deadline selection) is a
Transaction-process capability that plain dataflow MoCs lack.

Run:  python examples/fault_tolerant_voting.py
"""

import numpy as np

from repro.sim import Simulator
from repro.tpdf import ControlToken, Mode, TPDFGraph, transaction


def main() -> None:
    rng = np.random.default_rng(3)
    graph = TPDFGraph("tmr")

    src = graph.add_kernel("src", function=lambda n, c: n * n)
    for i in range(3):
        src.add_output(f"o{i}", 1)

    def replica_fn(index: int):
        def run(n: int, consumed: dict):
            value = consumed["in"][0]
            if index == 1 and rng.random() < 0.4:  # faulty replica
                return -1
            return value + 1
        return run

    for i in range(3):
        replica = graph.add_kernel(f"replica{i}", function=replica_fn(i))
        replica.add_input("in", 1)
        replica.add_output("out", 1)
        graph.connect(f"src.o{i}", f"replica{i}.in")

    voter = transaction(
        graph, "voter", inputs=3,
        input_names=[f"from{i}" for i in range(3)],
        action="vote",
    )
    for i in range(3):
        graph.connect(f"replica{i}.out", f"voter.from{i}")

    # The controller always requests a vote over all three inputs.
    ctrl = graph.add_control_actor(
        "ctrl",
        decision=lambda n, inputs: ControlToken(
            Mode.SELECT_MANY, ("from0", "from1", "from2")
        ),
    )
    ctrl.add_input("in", 1)
    ctrl.add_control_output("out", 1)
    src.add_output("to_ctrl", 1)
    graph.connect("src.to_ctrl", "ctrl.in")
    graph.connect("ctrl.out", "voter.ctrl")

    results = []
    snk = graph.add_kernel(
        "snk", function=lambda n, c: results.append(c["in"][0])
    )
    snk.add_input("in", 1)
    graph.connect("voter.out", "snk.in")

    sim = Simulator(graph, record_values=True)
    rounds = 12
    sim.run(limits={"src": rounds})

    expected = [n * n + 1 for n in range(rounds)]
    faults = sum(
        1 for record in sim.trace.firings_of("replica1")
        if record.produced and record.produced["out"] == [-1]
    )
    correct = sum(1 for got, want in zip(results, expected) if got == want)
    print(f"rounds:            {rounds}")
    print(f"faulty outputs:    {faults} (replica1)")
    print(f"voted correctly:   {correct}/{rounds}")
    assert correct == rounds, "majority vote must mask a single faulty replica"
    print("majority voting masked every injected fault.")


if __name__ == "__main__":
    main()
