#!/usr/bin/env python
"""FM radio with a dynamic equalizer preset (StreamIt-style workload).

The static CSDF pipeline computes every equalizer band each block; the
TPDF variant computes only the preset's active bands.  The paper cites
FM Radio as a benchmark whose "redundant calculations ... are not
needed with models allowing dynamic topology changes such as TPDF" —
this example measures that saving.

Run:  python examples/fm_radio.py
"""

import numpy as np

from repro.apps.fmradio import compare_redundancy, fm_demodulate, fm_modulate
from repro.util import ascii_table


def main() -> None:
    # Sanity: modulate and demodulate a tone.
    tone = 0.2 * np.sin(np.linspace(0.0, 24.0 * np.pi, 512))
    recovered = fm_demodulate(fm_modulate(tone))
    corr = float(np.corrcoef(tone[16:], recovered[16:])[0, 1])
    print(f"FM mod/demod round-trip correlation: {corr:.4f}")

    rows = []
    for active in [(0,), (0, 2), (0, 2, 4), tuple(range(6))]:
        report = compare_redundancy(n_bands=6, active_bands=active, blocks=3)
        rows.append(
            (
                str(list(active)),
                report.static_firings,
                report.dynamic_firings,
                f"{100 * report.firings_saved:.0f}%",
                report.static_buffer,
                report.dynamic_buffer,
                f"{100 * report.buffer_saved:.0f}%",
            )
        )
    print()
    print(ascii_table(
        ["active bands", "static firings", "TPDF firings", "saved",
         "static buffer", "TPDF buffer", "saved"],
        rows,
        title="FM radio: static CSDF vs dynamic TPDF equalizer (6 bands)",
    ))


if __name__ == "__main__":
    main()
