#!/usr/bin/env python
"""Parametric throughput: one piecewise-symbolic MCR instead of a sweep.

Builds the two-parameter software-radio front-end of
``repro.gallery.parametric_radio_graph`` (``b`` = demodulator block
size, ``c`` = concurrent channels) and derives its maximum cycle ratio
as a **piecewise function over the whole (b, c) domain** — exact
symbolic candidates, exact region boundaries — then cross-checks every
lattice point against the concrete Howard solver and prints the
throughput surface.

Run:  python examples/parametric_throughput.py
"""

from repro.csdf import max_cycle_ratio, parametric_mcr, verify_piecewise
from repro.gallery import parametric_radio_graph

DOMAIN = {"b": (1, 8), "c": (1, 8)}


def main() -> None:
    graph = parametric_radio_graph()
    print(graph.describe())
    print()

    # --- One parametric computation for the whole domain ---------------
    piecewise = parametric_mcr(graph, DOMAIN)
    print(piecewise.describe())
    print()

    # --- Exact evaluation replaces per-binding Howard runs --------------
    print("MCR at (b=2, c=2):", piecewise.evaluate({"b": 2, "c": 2}))
    print("MCR at (b=8, c=8):", piecewise.evaluate({"b": 8, "c": 8}))
    dominant = piecewise.dominant({"b": 8, "c": 8})
    print(f"bottleneck at (8, 8): {dominant.label} = {dominant.ratio}")
    print()

    # --- Cross-check against concrete Howard MCR on the full grid ------
    checked = verify_piecewise(piecewise, graph, piecewise.domain.grid())
    print(f"verified bit-for-bit against Howard at {checked} bindings")
    assert piecewise.evaluate_float({"b": 4, "c": 3}) == \
        max_cycle_ratio(graph, {"b": 4, "c": 3})
    print()

    # --- The period surface (rows: b, columns: c) -----------------------
    cols = range(DOMAIN["c"][0], DOMAIN["c"][1] + 1)
    print("period surface MCR(b, c):")
    print("  b\\c " + "".join(f"{c:>5}" for c in cols))
    for b in range(DOMAIN["b"][0], DOMAIN["b"][1] + 1):
        row = [piecewise.evaluate({"b": b, "c": c}) for c in cols]
        print(f"  {b:>3} " + "".join(f"{str(v):>5}" for v in row))


if __name__ == "__main__":
    main()
