#!/usr/bin/env python
"""AST-based codebase invariant linter for the ``repro`` sources.

The analysis correctness of this repo leans on a handful of
conventions that ordinary tests cannot see locally (each individual
call site looks fine; the invariant is global):

``M1 bump-kind``
    Every ``bump_version(...)`` call must say *what kind* of mutation
    it records (an explicit ``kind=``/``scope=`` argument or a
    positional kind).  A bare ``bump_version(g)`` silently records an
    unscoped structural edit, which defeats the delta-aware
    incremental re-analysis introduced for edit traffic.

``M1 mutate-bump``
    Every mutating method of the graph-model classes (``CSDFGraph``,
    ``TPDFGraph``, channels, actors, ports...) must route through the
    version machinery — ``bump_version``, ``self._touch()`` or
    ``ensure_mutable`` — so no edit can leave a stale memoized
    analysis behind.

``M2 frozen-writes``
    Flipping numpy array writability (``.setflags(...)``,
    ``.flags.writeable = ...``) is the frozen-template patching
    protocol of ``csdf/statearrays.py`` and is banned everywhere else.

``M3 nondeterminism``
    ``repro.*`` results must be bit-for-bit reproducible (the
    parallel/incremental differential suites compare fingerprints), so
    wall-clock reads (``time.time``, ``datetime.now``...) and the
    module-level ``random.*`` functions are banned.  Allowed:
    ``time.perf_counter``/``monotonic`` (elapsed metadata outside the
    fingerprint), seeded ``random.Random(seed)`` instances and
    ``numpy``'s ``default_rng``.

``M4 tracked-bytecode``
    No ``__pycache__``/``*.pyc`` artifacts may be tracked by git.

Usage::

    python tools/lint_invariants.py [paths...]    # default: src/

Exit status 1 when any violation is found.  The checks are importable
(``check_source``, ``check_paths``, ``check_tracked_bytecode``) and
run as a tier-1 test (``tests/test_lint_invariants.py``) and a CI job.
"""

from __future__ import annotations

import argparse
import ast
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

# ---------------------------------------------------------------------------
# Model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Violation:
    rule: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


#: Graph-model classes whose mutating methods must bump the version.
GRAPH_CLASSES = frozenset({
    "CSDFGraph", "TPDFGraph", "TPDFChannel", "Channel", "Actor",
    "Port", "Node", "Kernel", "ControlActor",
})

#: Calls that count as routing through the version machinery.
VERSION_MARKERS = frozenset({"bump_version", "_touch", "ensure_mutable"})

#: Methods exempt from M1 mutate-bump: construction/deserialization
#: runs before the object is visible (version 0 is correct), and
#: back-reference wiring (``_owner``/``_graph``) is done under the
#: graph method that itself bumps.
M1_EXEMPT_METHODS = frozenset({
    "__init__", "__post_init__", "__setstate__", "__deepcopy__",
})

#: Self-attributes whose assignment is not a semantic graph mutation:
#: the version/cache bookkeeping itself (written by the machinery the
#: rule mandates) and simulation run state.
M1_EXEMPT_ATTRS = frozenset({
    "_analysis_cache", "_analysis_version", "_analysis_frozen",
    "_analysis_mutations", "_analysis_content",
})

#: ``time.*`` attributes banned by M3 (wall clock); the monotonic
#: elapsed-measurement clocks stay allowed.
BANNED_TIME = frozenset({"time", "time_ns", "localtime", "gmtime", "ctime"})

#: ``random.*`` module-level attributes that are allowed (seedable
#: generator classes; everything else on the module is hidden global
#: state).
ALLOWED_RANDOM = frozenset({"Random", "SystemRandom"})

BANNED_DATETIME = frozenset({"now", "utcnow", "today"})


# ---------------------------------------------------------------------------
# Per-file checks
# ---------------------------------------------------------------------------


def _is_self_mutation(node: ast.AST) -> str | None:
    """The attribute name when ``node`` is an assignment target that
    mutates ``self`` state (``self.x = ...``, ``self.x[k] = ...``,
    ``self.x += ...``), else None."""
    target = node
    if isinstance(target, ast.Subscript):
        target = target.value
    if (isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"):
        return target.attr
    return None


def _method_mutations(fn: ast.FunctionDef) -> list[tuple[int, str]]:
    """(line, attr) rows for every self-state mutation in ``fn``."""
    rows: list[tuple[int, str]] = []
    for node in ast.walk(fn):
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            attr = _is_self_mutation(target)
            if attr is not None and attr not in M1_EXEMPT_ATTRS:
                rows.append((node.lineno, attr))
    return rows


def _called_names(fn: ast.FunctionDef) -> set[str]:
    """Bare and ``self.``-qualified callee names inside ``fn``."""
    names: set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            names.add(func.id)
        elif isinstance(func, ast.Attribute):
            names.add(func.attr)
    return names


def _check_m1(tree: ast.Module, path: str) -> list[Violation]:
    violations: list[Violation] = []
    # bump-kind: every bump_version call carries an explicit kind/scope.
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        if name != "bump_version":
            continue
        has_kind = (len(node.args) >= 2
                    or any(kw.arg in ("kind", "scope") for kw in node.keywords))
        if not has_kind:
            violations.append(Violation(
                "M1", path, node.lineno,
                "bump_version() without an explicit kind/scope — say what "
                "this mutation is so incremental re-analysis can use it",
            ))
    # mutate-bump: mutating methods of graph classes hit the machinery.
    for cls in (n for n in ast.walk(tree) if isinstance(n, ast.ClassDef)):
        if cls.name not in GRAPH_CLASSES:
            continue
        methods = [n for n in cls.body if isinstance(n, ast.FunctionDef)]
        # A method that itself calls a marker transitively covers its
        # callers (one level is enough for this codebase's shape).
        marked = {
            m.name for m in methods
            if _called_names(m) & VERSION_MARKERS
        }
        for method in methods:
            if method.name in M1_EXEMPT_METHODS:
                continue
            mutations = _method_mutations(method)
            if not mutations:
                continue
            called = _called_names(method)
            if called & VERSION_MARKERS or called & marked:
                continue
            line, attr = mutations[0]
            violations.append(Violation(
                "M1", path, line,
                f"{cls.name}.{method.name} mutates self.{attr} without "
                f"bump_version/_touch/ensure_mutable — memoized analyses "
                f"of this graph go stale silently",
            ))
    return violations


def _check_m2(tree: ast.Module, path: str) -> list[Violation]:
    if path.replace("\\", "/").endswith("csdf/statearrays.py"):
        return []
    violations: list[Violation] = []
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "setflags"):
            violations.append(Violation(
                "M2", path, node.lineno,
                "array .setflags() outside the statearrays patch protocol",
            ))
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and target.attr == "writeable"):
                    violations.append(Violation(
                        "M2", path, node.lineno,
                        "writeability flip outside the statearrays patch "
                        "protocol — frozen templates must stay frozen",
                    ))
    return violations


def _check_m3(tree: ast.Module, path: str) -> list[Violation]:
    violations: list[Violation] = []

    def ban(node: ast.AST, what: str, why: str) -> None:
        violations.append(Violation("M3", path, node.lineno,
                                    f"{what} — {why}"))

    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            func = node.func
            base = func.value
            if isinstance(base, ast.Name):
                if base.id == "time" and func.attr in BANNED_TIME:
                    ban(node, f"time.{func.attr}()",
                        "wall clock in analysis code; use "
                        "perf_counter/monotonic for elapsed metadata")
                if base.id == "datetime" and func.attr in BANNED_DATETIME:
                    ban(node, f"datetime.{func.attr}()",
                        "wall clock breaks fingerprint reproducibility")
                if base.id == "date" and func.attr == "today":
                    ban(node, "date.today()",
                        "wall clock breaks fingerprint reproducibility")
                if base.id == "random" and func.attr not in ALLOWED_RANDOM:
                    ban(node, f"random.{func.attr}()",
                        "module-level RNG is hidden global state; use a "
                        "seeded random.Random(seed)")
            # np.random.<fn>( / numpy.random.<fn>(
            if (isinstance(base, ast.Attribute) and base.attr == "random"
                    and isinstance(base.value, ast.Name)
                    and base.value.id in ("np", "numpy")
                    and func.attr != "default_rng"):
                ban(node, f"{base.value.id}.random.{func.attr}()",
                    "legacy global numpy RNG; use default_rng(seed)")
        if isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name in BANNED_TIME:
                        ban(node, f"from time import {alias.name}",
                            "wall clock in analysis code")
            if node.module == "random":
                for alias in node.names:
                    if alias.name not in ALLOWED_RANDOM:
                        ban(node, f"from random import {alias.name}",
                            "module-level RNG is hidden global state")
    return violations


def check_source(source: str, path: str = "<string>") -> list[Violation]:
    """All source-level checks (M1-M3) on one file's text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation("parse", path, exc.lineno or 0, str(exc))]
    return (_check_m1(tree, path)
            + _check_m2(tree, path)
            + _check_m3(tree, path))


def check_paths(paths: list[Path]) -> list[Violation]:
    """Run the source checks over files and directory trees."""
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    violations: list[Violation] = []
    for file in files:
        violations.extend(check_source(file.read_text(), str(file)))
    return violations


def check_tracked_bytecode(root: Path) -> list[Violation]:
    """M4: no ``__pycache__``/``*.pyc`` under git tracking.  Silently
    empty when ``root`` is not a git work tree."""
    try:
        out = subprocess.run(
            ["git", "ls-files"], cwd=root, capture_output=True, text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return []
    return [
        Violation("M4", line, 0,
                  "bytecode artifact tracked by git; git rm --cached it "
                  "and keep __pycache__/ in .gitignore")
        for line in out.splitlines()
        if "__pycache__" in line or line.endswith(".pyc")
    ]


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="codebase invariant linter (see module docstring)")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to check (default: src)")
    parser.add_argument("--no-git", action="store_true",
                        help="skip the tracked-bytecode check (M4)")
    args = parser.parse_args(argv)

    violations = check_paths([Path(p) for p in args.paths])
    if not args.no_git:
        violations.extend(check_tracked_bytecode(Path.cwd()))
    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} invariant violation(s)")
        return 1
    print("invariants clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
