"""Tests for late schedules (Sec. III-C refinement)."""

import pytest

from repro.csdf import CSDFGraph, validate_schedule
from repro.errors import DeadlockError
from repro.scheduling import late_schedule, reversed_graph
from tests.conftest import build_fig4


class TestReversedGraph:
    def test_channels_flipped(self, fig1):
        rev = reversed_graph(fig1)
        assert rev.channel("e1").src == "a2"
        assert rev.channel("e1").dst == "a1"

    def test_sequences_reversed(self, fig1):
        rev = reversed_graph(fig1)
        # e1 production in the reverse graph is a2's consumption reversed.
        assert rev.channel("e1").production.as_ints() == (1, 1)
        # e1 consumption is a1's production [1,0,1] reversed.
        assert rev.channel("e1").consumption.as_ints() == (1, 0, 1)

    def test_initial_tokens_kept(self, fig1):
        assert reversed_graph(fig1).channel("e2").initial_tokens == 2

    def test_double_reversal_is_identity(self, fig1):
        double = reversed_graph(reversed_graph(fig1))
        for name, channel in fig1.channels.items():
            twin = double.channel(name)
            assert twin.src == channel.src
            assert twin.production.entries == channel.production.entries

    def test_exec_times_reversed(self):
        g = CSDFGraph()
        g.add_actor("a", exec_time=[1.0, 2.0])
        g.add_actor("b")
        g.add_channel("e", "a", "b", [1, 1], [1])
        rev = reversed_graph(g)
        assert rev.actor("a").exec_times == (2.0, 1.0)


class TestLateSchedule:
    def test_fig1_late_schedule_is_valid(self, fig1):
        schedule = late_schedule(fig1)
        validate_schedule(fig1, schedule)

    def test_fig4b_late_schedule_interleaves(self, fig4b):
        csdf = fig4b.as_csdf()
        schedule = late_schedule(csdf, {"p": 1})
        validate_schedule(csdf, schedule, {"p": 1})
        # The B/C cycle admits no grouped schedule; late must interleave.
        cycle_only = [a for a in schedule if a in ("B", "C")]
        runs = []
        for actor in cycle_only:
            if runs and runs[-1][0] == actor:
                runs[-1][1] += 1
            else:
                runs.append([actor, 1])
        assert max(count for _, count in runs) <= 1

    def test_deadlocked_graph_raises(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("fwd", "a", "b", 1, 1)
        g.add_channel("back", "b", "a", 1, 1)
        with pytest.raises(DeadlockError):
            late_schedule(g)

    def test_custom_repetitions(self, fig1):
        schedule = late_schedule(
            fig1, repetitions={"a1": 6, "a2": 4, "a3": 4}
        )
        assert schedule.counts() == {"a1": 6, "a2": 4, "a3": 4}
