"""Tests for unfolded (multi-iteration) canonical periods."""

import pytest

import networkx as nx

from repro.csdf import CSDFGraph
from repro.errors import SchedulingError
from repro.platform import single_cluster
from repro.scheduling import build_canonical_period, list_schedule
from repro.tpdf import fig2_graph


class TestUnfoldedStructure:
    def test_occurrence_counts_scale(self, fig1):
        one = build_canonical_period(fig1)
        three = build_canonical_period(fig1, unfolding=3)
        assert three.dag.number_of_nodes() == 3 * one.dag.number_of_nodes()

    def test_still_acyclic(self, fig1):
        period = build_canonical_period(fig1, unfolding=4)
        assert nx.is_directed_acyclic_graph(period.dag)

    def test_cross_iteration_dependencies_exist(self, fig1):
        period = build_canonical_period(fig1, unfolding=2)
        # a3 consumes [0,2] from e2 (2 initial tokens): firings 1-3 are
        # covered, firing 4 (iteration 2) needs a2's iteration-1 output
        # — a cross-iteration edge.
        preds = set(period.dag.predecessors(("a3", 4)))
        assert ("a2", 2) in preds

    def test_invalid_factor(self, fig1):
        with pytest.raises(SchedulingError):
            build_canonical_period(fig1, unfolding=0)

    def test_tpdf_graph_unfolds(self):
        period = build_canonical_period(fig2_graph(), {"p": 1}, unfolding=2)
        assert len(period.occurrences_of("F")) == 4


class TestUnfoldedScheduling:
    def pipeline(self):
        g = CSDFGraph("pipe")
        g.add_actor("a", exec_time=1.0)
        g.add_actor("b", exec_time=1.0)
        g.add_actor("c", exec_time=1.0)
        g.add_channel("e1", "a", "b", 1, 1)
        g.add_channel("e2", "b", "c", 1, 1)
        return g

    def test_unfolding_improves_throughput(self):
        """Per-iteration makespan of a J-unfolded schedule beats J
        sequential single-iteration schedules on a parallel machine
        (software pipelining across iterations)."""
        g = self.pipeline()
        platform = single_cluster(3)
        single = list_schedule(
            build_canonical_period(g), platform, dedicated_control_pe=False
        ).makespan
        unfolded = list_schedule(
            build_canonical_period(g, unfolding=4), platform,
            dedicated_control_pe=False,
        ).makespan
        assert unfolded < 4 * single

    def test_precedences_respected_in_unfolded_schedule(self, fig1):
        period = build_canonical_period(fig1, unfolding=2)
        mapping = list_schedule(period, single_cluster(4),
                                dedicated_control_pe=False)
        for src, dst in period.dag.edges:
            assert mapping.firings[src].finish <= mapping.firings[dst].start + 1e-9
