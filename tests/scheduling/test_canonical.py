"""Tests for canonical-period construction (Fig. 5)."""

import pytest

from repro.csdf import CSDFGraph
from repro.errors import SchedulingError
from repro.scheduling import build_canonical_period
from repro.tpdf import fig2_graph


class TestFig5:
    """The canonical period of Fig. 2 at p = 1 is the paper's Fig. 5."""

    @pytest.fixture
    def period(self):
        return build_canonical_period(fig2_graph(), {"p": 1})

    def test_occurrence_set(self, period):
        names = {f"{a}{k}" for a, k in period.occurrences()}
        assert names == {
            "A1", "A2", "B1", "B2", "C1", "D1", "E1", "E2", "F1", "F2",
        }

    def test_serial_edges(self, period):
        assert period.dag.has_edge(("A", 1), ("A", 2))
        assert period.dag.has_edge(("F", 1), ("F", 2))

    def test_data_dependencies(self, period):
        assert period.dag.has_edge(("A", 1), ("B", 1))
        assert period.dag.has_edge(("A", 2), ("B", 2))
        assert period.dag.has_edge(("B", 2), ("C", 1))  # C needs 2 tokens
        assert period.dag.has_edge(("B", 2), ("D", 1))

    def test_control_dependencies(self, period):
        # F1 and F2 are fired after receiving C1's control tokens.
        assert period.dag.has_edge(("C", 1), ("F", 1))
        assert ("C", 1) in set(period.dag.predecessors(("F", 2))) | {
            p for q in period.dag.predecessors(("F", 2))
            for p in period.dag.predecessors(q)
        }

    def test_phase_dependent_consumption(self, period):
        # F's e6 consumption is [0, 2]: F1 needs no D token, F2 needs D1.
        assert not period.dag.has_edge(("D", 1), ("F", 1))
        assert period.dag.has_edge(("D", 1), ("F", 2))

    def test_control_marking(self, period):
        assert period.is_control(("C", 1))
        assert not period.is_control(("A", 1))
        assert period.control_actors == frozenset({"C"})

    def test_repetition_recorded(self, period):
        assert period.repetition == {"A": 2, "B": 2, "C": 1, "D": 1, "E": 2, "F": 2}

    def test_describe_lists_occurrences(self, period):
        text = period.describe()
        assert "C1*" in text  # control marker


class TestScaling:
    def test_p2_counts(self):
        period = build_canonical_period(fig2_graph(), {"p": 2})
        assert period.dag.number_of_nodes() == 2 + 4 + 2 + 2 + 4 + 4

    def test_initial_tokens_remove_dependencies(self, fig1):
        period = build_canonical_period(fig1)
        # a3's first firing needs nothing (phase 0 of [0,2] consumes 0
        # and e2 holds 2 initial tokens): it must be a DAG source.
        assert period.dag.in_degree(("a3", 1)) == 0

    def test_csdf_graph_accepted(self, fig1):
        period = build_canonical_period(fig1)
        assert period.control_actors == frozenset()

    def test_exec_times_attached(self):
        g = CSDFGraph()
        g.add_actor("a", exec_time=4.0)
        g.add_actor("b", exec_time=[1.0, 2.0])
        g.add_channel("e", "a", "b", 2, 1)
        period = build_canonical_period(g)
        assert period.exec_time(("a", 1)) == 4.0
        assert period.exec_time(("b", 1)) == 1.0
        assert period.exec_time(("b", 2)) == 2.0


class TestDeadlockDetection:
    def test_tokenless_cycle_rejected(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("fwd", "a", "b", 1, 1)
        g.add_channel("back", "b", "a", 1, 1)
        with pytest.raises(SchedulingError):
            build_canonical_period(g)

    def test_seeded_cycle_accepted(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("fwd", "a", "b", 1, 1)
        g.add_channel("back", "b", "a", 1, 1, initial_tokens=1)
        period = build_canonical_period(g)
        assert period.dag.number_of_nodes() == 2


class TestRanks:
    def test_critical_path(self, fig1):
        # Longest chain: a3_1 -> a1_1 -> a1_2 -> a1_3 -> a2_2 (5 unit firings).
        period = build_canonical_period(fig1)
        assert period.critical_path_length() == 5.0

    def test_downward_rank_decreases_along_edges(self, fig1):
        period = build_canonical_period(fig1)
        rank = period.downward_rank()
        for src, dst in period.dag.edges:
            assert rank[src] > rank[dst] or rank[src] >= rank[dst] + period.exec_time(dst) - 1e-9
