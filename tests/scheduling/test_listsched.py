"""Tests for the many-core list scheduler (Sec. III-D)."""

import pytest

from repro.csdf import CSDFGraph
from repro.platform import Platform, single_cluster
from repro.scheduling import build_canonical_period, list_schedule, schedule_graph
from repro.tpdf import fig2_graph


@pytest.fixture
def fig2_period():
    return build_canonical_period(fig2_graph(), {"p": 1})


class TestBasicScheduling:
    def test_all_occurrences_scheduled(self, fig2_period):
        result = list_schedule(fig2_period, single_cluster(4))
        assert len(result.firings) == fig2_period.dag.number_of_nodes()

    def test_precedence_respected(self, fig2_period):
        result = list_schedule(fig2_period, single_cluster(4))
        for src, dst in fig2_period.dag.edges:
            assert result.firings[src].finish <= result.firings[dst].start + 1e-9

    def test_no_pe_overlap(self, fig2_period):
        result = list_schedule(fig2_period, single_cluster(3))
        by_pe: dict = {}
        for firing in result.firings.values():
            by_pe.setdefault(firing.pe.index, []).append(firing)
        for firings in by_pe.values():
            firings.sort(key=lambda f: f.start)
            for first, second in zip(firings, firings[1:]):
                assert first.finish <= second.start + 1e-9

    def test_makespan_bounds(self, fig2_period):
        result = list_schedule(fig2_period, single_cluster(4))
        assert result.makespan >= fig2_period.critical_path_length()
        total_work = sum(
            fig2_period.exec_time(node) for node in fig2_period.occurrences()
        )
        assert result.makespan <= total_work

    def test_single_core_serializes(self, fig2_period):
        result = list_schedule(
            fig2_period, single_cluster(1), dedicated_control_pe=False
        )
        total_work = sum(
            fig2_period.exec_time(node) for node in fig2_period.occurrences()
        )
        assert result.makespan == pytest.approx(total_work)


class TestControlRules:
    def test_control_on_dedicated_pe(self, fig2_period):
        platform = single_cluster(4)
        result = list_schedule(fig2_period, platform, dedicated_control_pe=True)
        control_pe = platform.pes[-1]
        assert result.pe_of(("C", 1)) == control_pe
        for occurrence, firing in result.firings.items():
            if occurrence[0] != "C":
                assert firing.pe != control_pe

    def test_no_dedicated_pe_when_disabled(self, fig2_period):
        result = list_schedule(fig2_period, single_cluster(2),
                               dedicated_control_pe=False)
        assert len(result.firings) == 10

    def test_more_cores_never_hurt(self, fig2_period):
        small = list_schedule(fig2_period, single_cluster(2)).makespan
        large = list_schedule(fig2_period, single_cluster(8)).makespan
        assert large <= small + 1e-9


class TestMessageLatency:
    def test_cross_cluster_latency_visible(self):
        g = CSDFGraph()
        g.add_actor("a", exec_time=1.0)
        g.add_actor("b", exec_time=1.0)
        g.add_channel("e", "a", "b", 1, 1)
        period = build_canonical_period(g)
        fast = Platform("fast", 1, 2, intra_latency=0.0)
        result_fast = list_schedule(period, fast, dedicated_control_pe=False)
        # With zero latency, b can start right after a.
        assert result_fast.makespan == pytest.approx(2.0)

    def test_latency_prefers_same_pe(self):
        g = CSDFGraph()
        g.add_actor("a", exec_time=1.0)
        g.add_actor("b", exec_time=1.0)
        g.add_channel("e", "a", "b", 1, 1)
        period = build_canonical_period(g)
        slow = Platform("slow", 2, 1, inter_latency=100.0, intra_latency=50.0)
        result = list_schedule(period, slow, dedicated_control_pe=False)
        # Scheduling b on the other PE would cost 100; same PE costs 0.
        assert result.makespan == pytest.approx(2.0)


class TestUtilities:
    def test_utilization_in_unit_interval(self, fig2_period):
        result = list_schedule(fig2_period, single_cluster(4))
        assert 0.0 < result.utilization() <= 1.0

    def test_gantt_renders(self, fig2_period):
        result = list_schedule(fig2_period, single_cluster(4))
        text = result.gantt()
        assert "PE" in text

    def test_schedule_graph_convenience(self):
        result = schedule_graph(fig2_graph(), single_cluster(4), {"p": 1})
        assert result.makespan > 0

    def test_order_is_deterministic(self, fig2_period):
        a = list_schedule(fig2_period, single_cluster(4))
        b = list_schedule(fig2_period, single_cluster(4))
        assert a.order == b.order
