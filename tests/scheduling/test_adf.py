"""Tests for ADF pruning of rejected firings (Sec. III-D)."""

import pytest

from repro.apps.ofdm import bindings_for, build_ofdm_tpdf
from repro.scheduling import (
    build_canonical_period,
    prune_canonical_period,
    pruned_period,
    rejected_channels,
)
from repro.tpdf import select_one


@pytest.fixture
def ofdm():
    return build_ofdm_tpdf()


@pytest.fixture
def ofdm_period(ofdm):
    return build_canonical_period(ofdm, bindings_for(2, 8, 2, 4))


class TestRejectedChannels:
    def test_qam_selection_rejects_qpsk_path(self, ofdm):
        decisions = {"DUP": select_one("qam"), "TRAN": select_one("qam")}
        rejected = rejected_channels(ofdm, decisions)
        assert rejected == {"e_dup_qpsk", "e_qpsk_tran"}

    def test_control_channels_never_rejected(self, ofdm):
        decisions = {"DUP": select_one("qam")}
        assert not any(
            name.startswith("e_con") for name in rejected_channels(ofdm, decisions)
        )

    def test_empty_decisions(self, ofdm):
        assert rejected_channels(ofdm, {}) == set()


class TestPruning:
    def test_qpsk_occurrences_cancelled(self, ofdm, ofdm_period):
        decisions = {"DUP": select_one("qam"), "TRAN": select_one("qam")}
        result = prune_canonical_period(ofdm_period, ofdm, decisions)
        cancelled_actors = {actor for actor, _ in result.cancelled}
        assert cancelled_actors == {"QPSK"}
        assert result.cancelled_firings == 1

    def test_all_kept_without_decisions(self, ofdm, ofdm_period):
        result = prune_canonical_period(ofdm_period, ofdm, {})
        assert result.cancelled == set()

    def test_control_occurrences_always_kept(self, ofdm, ofdm_period):
        decisions = {"DUP": select_one("qam"), "TRAN": select_one("qam")}
        result = prune_canonical_period(ofdm_period, ofdm, decisions)
        assert ("CON", 1) in result.kept

    def test_pruned_period_is_schedulable(self, ofdm, ofdm_period):
        from repro.platform import single_cluster
        from repro.scheduling import list_schedule

        decisions = {"DUP": select_one("qam"), "TRAN": select_one("qam")}
        result = prune_canonical_period(ofdm_period, ofdm, decisions)
        sub = pruned_period(result)
        mapping = list_schedule(sub, single_cluster(4))
        assert len(mapping.firings) == result.executed_firings

    def test_pruning_reduces_work(self, ofdm, ofdm_period):
        decisions = {"DUP": select_one("qam"), "TRAN": select_one("qam")}
        result = prune_canonical_period(ofdm_period, ofdm, decisions)
        assert result.executed_firings < ofdm_period.dag.number_of_nodes()

    def test_explicit_sinks(self, ofdm, ofdm_period):
        decisions = {"DUP": select_one("qam"), "TRAN": select_one("qam")}
        result = prune_canonical_period(
            ofdm_period, ofdm, decisions, sinks=["SNK"]
        )
        assert ("SNK", 1) in result.kept
