"""Documentation gate: docs snippets run, links resolve, doctests pass.

Three checks keep the documentation honest:

1. every fenced ```python block in ``docs/*.md`` executes as-is (each
   block is a self-contained program);
2. every markdown link and every backticked repo path in ``docs/*.md``
   and ``README.md`` points at a file that exists;
3. the public-API doctest shard (module docstring examples of
   ``repro.analysis``, ``repro.cache``, ``repro.csdf.mcr``,
   ``repro.csdf.symbuf``, ``repro.csdf.parametric``) passes — the same
   modules the CI docs job runs under ``pytest --doctest-modules``.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOCS = sorted((REPO / "docs").glob("*.md"))
PAGES = DOCS + [REPO / "README.md"]

#: Module docstrings whose examples must run (the doctest shard).
DOCTEST_MODULES = [
    "repro.analysis",
    "repro.cache",
    "repro.csdf.mcr",
    "repro.csdf.symbuf",
    "repro.csdf.parametric",
]

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)
_LINK = re.compile(r"\[[^\]]+\]\(([^)#]+)(?:#[^)]*)?\)")
_CODE_PATH = re.compile(
    r"`((?:src|tests|benchmarks|examples|docs)/[\w./-]+\.(?:py|md))`"
)


def _python_blocks(page: Path) -> list[tuple[int, str]]:
    text = page.read_text()
    blocks = []
    for match in _FENCE.finditer(text):
        line = text[: match.start()].count("\n") + 2
        blocks.append((line, match.group(1)))
    return blocks


def test_docs_pages_exist():
    assert (REPO / "docs" / "architecture.md").is_file()
    assert (REPO / "docs" / "analysis.md").is_file()


@pytest.mark.parametrize(
    "page", DOCS, ids=lambda p: p.name
)
def test_docs_snippets_execute(page):
    blocks = _python_blocks(page)
    assert blocks, f"{page.name} has no runnable python snippets"
    for line, source in blocks:
        namespace = {"__name__": f"docs_snippet_{page.stem}"}
        try:
            exec(compile(source, f"{page.name}:{line}", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(f"snippet at {page.name}:{line} raised {exc!r}")


@pytest.mark.parametrize("page", PAGES, ids=lambda p: p.name)
def test_links_and_paths_resolve(page):
    text = page.read_text()
    missing = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        resolved = (page.parent / target).resolve()
        if not resolved.exists():
            missing.append(target)
    for target in _CODE_PATH.findall(text):
        if not (REPO / target).exists():
            missing.append(target)
    assert not missing, f"{page.name} references missing paths: {missing}"


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_public_api_doctests(module_name):
    import importlib

    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module_name} has no doctest examples"
    assert result.failed == 0
