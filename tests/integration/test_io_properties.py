"""Property tests: serialization round-trips preserve semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import (
    csdf_from_json,
    csdf_to_json,
    parse_poly,
    tpdf_from_json,
    tpdf_to_json,
)
from repro.tpdf import (
    check_consistency,
    random_consistent_graph,
    repetition_vector,
)


@given(seed=st.integers(0, 40), n=st.integers(2, 7),
       parametric=st.booleans())
@settings(max_examples=25)
def test_tpdf_roundtrip_preserves_repetition(seed, n, parametric):
    graph = random_consistent_graph(n, extra_edges=1, seed=seed,
                                    parametric=parametric,
                                    with_control=True)
    clone = tpdf_from_json(tpdf_to_json(graph))
    assert repetition_vector(clone) == repetition_vector(graph)
    assert set(clone.channels) == set(graph.channels)
    assert set(clone.parameters) == set(graph.parameters)


@given(seed=st.integers(0, 30), n=st.integers(2, 6))
@settings(max_examples=20)
def test_csdf_roundtrip_preserves_structure(seed, n):
    graph = random_consistent_graph(n, seed=seed, with_control=False).as_csdf()
    clone = csdf_from_json(csdf_to_json(graph))
    assert set(clone.actors) == set(graph.actors)
    for name, channel in graph.channels.items():
        twin = clone.channel(name)
        assert twin.production.entries == channel.production.entries
        assert twin.consumption.entries == channel.consumption.entries
        assert twin.initial_tokens == channel.initial_tokens


@given(seed=st.integers(0, 30), n=st.integers(3, 6))
@settings(max_examples=15)
def test_roundtrip_preserves_analysis_verdicts(seed, n):
    graph = random_consistent_graph(n, n_cycles=1, seed=seed,
                                    with_control=False)
    clone = tpdf_from_json(tpdf_to_json(graph))
    assert check_consistency(clone).consistent == check_consistency(graph).consistent


@given(st.integers(-9, 9), st.integers(0, 3), st.integers(0, 3))
def test_parse_poly_roundtrips_rendering(coefficient, ep, eq):
    from repro.symbolic import Poly

    poly = (Poly.var("p") ** ep) * (Poly.var("q") ** eq) * coefficient + 1
    assert parse_poly(str(poly)) == poly
