"""Property-based tests of the discrete-event engine.

Invariants checked on randomly generated timed pipelines and fan-outs:

* token conservation: produced == consumed + in-flight per channel;
* the DES firing counts equal the untimed repetition-vector counts for
  the same source budget;
* event times are monotone per node and no node overlaps itself;
* the self-timed CSDF executor and the value-carrying DES agree on
  makespan for plain dataflow graphs with identical timing;
* MCR lower-bounds the measured steady-state period on random graphs.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csdf import max_cycle_ratio, self_timed_execution
from repro.csdf import concrete_repetition_vector as concrete_q
from repro.sim import Simulator
from repro.tpdf import TPDFGraph, random_consistent_graph


def build_random_timed_pipeline(seed: int, depth: int) -> TPDFGraph:
    rng = random.Random(seed)
    g = TPDFGraph(f"pipe{seed}")
    names = [f"k{i}" for i in range(depth)]
    prev = None
    for index, name in enumerate(names):
        kernel = g.add_kernel(name, exec_time=rng.choice([0.5, 1.0, 2.0]))
        if index:
            kernel.add_input("in", rng.randint(1, 3))
        if index < depth - 1:
            kernel.add_output("out", rng.randint(1, 3))
        if prev is not None:
            g.connect(f"{prev}.out", f"{name}.in")
        prev = name
    return g


@given(seed=st.integers(0, 30), depth=st.integers(2, 5))
@settings(max_examples=25)
def test_firing_counts_match_token_semantics(seed, depth):
    graph = build_random_timed_pipeline(seed, depth)
    csdf = graph.as_csdf()
    q = concrete_q(csdf)
    iterations = 2
    sim = Simulator(graph)
    trace = sim.run(limits={name: count * iterations for name, count in q.items()})
    assert trace.counts() == {name: count * iterations for name, count in q.items()}
    for channel in csdf.channels.values():
        assert sim.tokens_in(channel.name) == channel.initial_tokens


@given(seed=st.integers(0, 30), depth=st.integers(2, 5))
@settings(max_examples=25)
def test_no_node_self_overlap(seed, depth):
    graph = build_random_timed_pipeline(seed, depth)
    q = concrete_q(graph.as_csdf())
    trace = Simulator(graph).run(limits=dict(q))
    for name in q:
        records = sorted(trace.firings_of(name), key=lambda r: r.start)
        for first, second in zip(records, records[1:]):
            assert first.end <= second.start + 1e-9


@given(seed=st.integers(0, 25), depth=st.integers(2, 5))
@settings(max_examples=20)
def test_des_matches_self_timed_makespan(seed, depth):
    """For plain dataflow graphs the value-carrying DES and the
    token-only self-timed executor implement the same semantics."""
    graph = build_random_timed_pipeline(seed, depth)
    csdf = graph.as_csdf()
    q = concrete_q(csdf)
    timed = self_timed_execution(csdf, iterations=1)
    trace = Simulator(graph).run(limits=dict(q))
    assert trace.end_time() == pytest.approx(timed.makespan)


@given(seed=st.integers(0, 20), n=st.integers(2, 5))
@settings(max_examples=12)
def test_mcr_bounds_self_timed_period(seed, n):
    graph = random_consistent_graph(n, seed=seed, with_control=False).as_csdf()
    mcr = max_cycle_ratio(graph)
    result = self_timed_execution(graph, iterations=6)
    assert result.iteration_period >= mcr - 1e-3


@given(seed=st.integers(0, 20), depth=st.integers(2, 4),
       cores=st.integers(1, 3))
@settings(max_examples=15)
def test_core_budget_monotonicity(seed, depth, cores):
    graph = build_random_timed_pipeline(seed, depth)
    q = concrete_q(graph.as_csdf())
    limits = {name: count for name, count in q.items()}
    constrained = Simulator(graph, cores=cores).run(limits=dict(limits))
    unlimited = Simulator(graph).run(limits=dict(limits))
    assert unlimited.end_time() <= constrained.end_time() + 1e-9
