"""Property-based tests of the core model invariants.

These exercise the library on *generated* graphs, checking the
structural theorems the paper relies on:

* repetition vectors satisfy the balance equations;
* a PASS returns every channel to its initial fill level (Def. 1);
* buffer peaks reported by the analysis are never exceeded when
  replaying the schedule, and are feasible under blocking writes;
* canonical periods respect the token dependencies they encode;
* clustering cycles preserves the repetition vector of the rest of
  the graph;
* the dynamic simulator and the untimed token semantics agree on
  firing counts for plain dataflow graphs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csdf import (
    TokenState,
    bounded_feasible,
    find_sequential_schedule,
    minimal_buffer_schedule,
    schedule_buffer_sizes,
    validate_schedule,
)
from repro.csdf import concrete_repetition_vector as concrete_q
from repro.scheduling import build_canonical_period, late_schedule
from repro.sim import Simulator
from repro.symbolic import Poly
from repro.tpdf import random_consistent_graph, repetition_vector

seeds = st.integers(0, 40)
sizes = st.integers(2, 8)


@given(seed=seeds, n=sizes, extra=st.integers(0, 3))
@settings(max_examples=30)
def test_repetition_satisfies_balance(seed, n, extra):
    graph = random_consistent_graph(n, extra_edges=extra, seed=seed,
                                    with_control=False)
    csdf = graph.as_csdf()
    q = repetition_vector(graph)
    for channel in csdf.channels.values():
        r_src = q[channel.src].try_div(Poly.const(csdf.tau(channel.src)))
        r_dst = q[channel.dst].try_div(Poly.const(csdf.tau(channel.dst)))
        produced = channel.production.cycle_total() * r_src
        consumed = channel.consumption.cycle_total() * r_dst
        assert produced == consumed


@given(seed=seeds, n=sizes)
@settings(max_examples=30)
def test_pass_restores_initial_state(seed, n):
    graph = random_consistent_graph(n, extra_edges=1, seed=seed,
                                    with_control=False).as_csdf()
    schedule = find_sequential_schedule(graph)
    state = validate_schedule(graph, schedule)
    assert state.matches_initial_state()


@given(seed=seeds, n=sizes, policy=st.sampled_from(["grouped", "round_robin"]))
@settings(max_examples=30)
def test_schedule_peaks_are_feasible_capacities(seed, n, policy):
    graph = random_consistent_graph(n, seed=seed, with_control=False).as_csdf()
    schedule = find_sequential_schedule(graph, policy=policy)
    peaks = schedule_buffer_sizes(graph, schedule)
    assert bounded_feasible(graph, peaks)


@given(seed=seeds, n=sizes)
@settings(max_examples=25)
def test_minimal_buffer_schedule_valid_and_no_worse(seed, n):
    graph = random_consistent_graph(n, extra_edges=2, seed=seed,
                                    with_control=False).as_csdf()
    grouped = find_sequential_schedule(graph)
    grouped_total = sum(schedule_buffer_sizes(graph, grouped).values())
    schedule, peaks = minimal_buffer_schedule(graph)
    validate_schedule(graph, schedule)
    assert sum(peaks.values()) <= grouped_total


@given(seed=seeds, n=st.integers(2, 6))
@settings(max_examples=20)
def test_canonical_period_counts_match_q(seed, n):
    graph = random_consistent_graph(n, seed=seed, with_control=False)
    csdf = graph.as_csdf()
    q = concrete_q(csdf)
    period = build_canonical_period(csdf)
    for actor, count in q.items():
        assert len(period.occurrences_of(actor)) == count


@given(seed=seeds, n=st.integers(2, 6))
@settings(max_examples=20)
def test_late_schedule_admissible(seed, n):
    graph = random_consistent_graph(n, extra_edges=1, seed=seed,
                                    with_control=False).as_csdf()
    schedule = late_schedule(graph)
    validate_schedule(graph, schedule)


@given(seed=seeds, n=st.integers(2, 6))
@settings(max_examples=20)
def test_simulator_agrees_with_token_semantics(seed, n):
    """Running one iteration in the DES fires exactly q times per actor
    and leaves channel fills at their initial level."""
    graph = random_consistent_graph(n, seed=seed, with_control=False)
    csdf = graph.as_csdf()
    q = concrete_q(csdf)
    sources = [name for name in csdf.actors if not csdf.in_channels(name)]
    sim = Simulator(graph)
    trace = sim.run(limits=dict(q))
    assert trace.counts() == q
    for channel in csdf.channels.values():
        assert sim.tokens_in(channel.name) == channel.initial_tokens
    assert sources  # sanity: generator always has a source


@given(seed=seeds, n=st.integers(3, 7), cycles=st.integers(1, 2))
@settings(max_examples=15)
def test_clustering_preserves_external_repetition(seed, n, cycles):
    from repro.tpdf import clustered_graph, cyclic_components

    graph = random_consistent_graph(n, n_cycles=cycles, seed=seed,
                                    with_control=False)
    members = {a for scc in cyclic_components(graph) for a in scc}
    if not members:
        return
    original = repetition_vector(graph)
    clustered = clustered_graph(graph)
    from repro.csdf import repetition_vector as csdf_repetition

    q_clustered = csdf_repetition(clustered)
    for actor, count in original.items():
        if actor not in members and actor in q_clustered:
            assert q_clustered[actor] == count
