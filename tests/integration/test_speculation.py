"""Integration test for the speculation pattern (Sec. II-B)."""

import importlib.util
import sys
from pathlib import Path

from repro.sim import Simulator

_SPEC_PATH = Path(__file__).resolve().parents[2] / "examples" / "speculation.py"
_spec = importlib.util.spec_from_file_location("speculation_example", _SPEC_PATH)
speculation = importlib.util.module_from_spec(_spec)
sys.modules["speculation_example"] = speculation
_spec.loader.exec_module(speculation)


class TestSpeculation:
    def test_speculative_latency_is_max_not_sum(self):
        graph, _ = speculation.build(speculative=True)
        trace = Simulator(graph).run(limits={"src": 1})
        expected = max(speculation.COND_TIME, speculation.BRANCH_TIME)
        assert trace.end_time() == expected

    def test_sequential_latency_is_sum(self):
        graph, _ = speculation.build(speculative=False)
        trace = Simulator(graph).run(limits={"src": 1})
        assert trace.end_time() == speculation.COND_TIME + speculation.BRANCH_TIME

    def test_correct_branch_selected(self):
        graph, results = speculation.build(speculative=True)
        Simulator(graph).run(limits={"src": 6})
        tags = [tag for tag, _ in results]
        # src emits 0,1,2,...: odd -> THEN, even -> ELSE.
        assert tags == ["ELSE", "THEN", "ELSE", "THEN", "ELSE", "THEN"]

    def test_wrong_branch_results_discarded(self):
        graph, _ = speculation.build(speculative=True)
        sim = Simulator(graph)
        trace = sim.run(limits={"src": 4})
        # One of the two branch results per item is rejected.
        assert trace.discarded_tokens() == 4
        for channel in ("e4", "e5"):
            pass  # channel names are auto-assigned; just check totals

    def test_both_graphs_statically_bounded(self):
        from repro.tpdf import check_boundedness

        for speculative in (True, False):
            graph, _ = speculation.build(speculative=speculative)
            assert check_boundedness(graph).bounded
