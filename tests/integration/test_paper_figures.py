"""End-to-end assertions for every figure/table of the paper.

One test per artefact, each stating the paper's claim and checking our
implementation reproduces it (see EXPERIMENTS.md for the side-by-side
record; the benchmark harness prints the full tables).
"""

import numpy as np
import pytest

from repro.csdf import find_sequential_schedule
from repro.csdf import repetition_vector as csdf_repetition
from repro.platform import single_cluster
from repro.scheduling import build_canonical_period, list_schedule
from repro.symbolic import Poly
from repro.tpdf import (
    area_local_solution,
    check_boundedness,
    check_liveness,
    clustered_graph,
    control_area,
    fig2_graph,
    repetition_vector,
    symbolic_schedule_string,
)
from tests.conftest import build_fig4


class TestFig1:
    """Fig. 1: CSDF example with q = [3, 2, 2] and schedule (a3)^2(a1)^3(a2)^2."""

    def test_repetition_vector(self, fig1):
        q = csdf_repetition(fig1)
        assert {k: int(v.const_value()) for k, v in q.items()} == {
            "a1": 3, "a2": 2, "a3": 2,
        }

    def test_paper_schedule(self, fig1):
        assert str(find_sequential_schedule(fig1)) == "(a3)^2 (a1)^3 (a2)^2"


class TestFig2:
    """Fig. 2 + Examples 1-2: parametric TPDF graph."""

    def test_repetition_vector(self):
        q = repetition_vector(fig2_graph())
        p = Poly.var("p")
        assert q == {"A": Poly.const(2), "B": 2 * p, "C": p,
                     "D": p, "E": 2 * p, "F": 2 * p}

    def test_schedule_string(self):
        assert symbolic_schedule_string(fig2_graph()) == (
            "A^2 B^2*p C^p D^p E^2*p F^2*p"
        )


class TestExample3:
    """Example 3: Area(C) = {B, D, E, F}, local solution B^2 C D E^2 F^2."""

    def test_area_and_local_solution(self):
        g = fig2_graph()
        assert control_area(g, "C") == {"B", "D", "E", "F"}
        local = area_local_solution(g, "C")
        assert local.as_ints() == {"B": 2, "D": 1, "E": 2, "F": 2}
        assert local.factor == Poly.var("p")


class TestFig3:
    """Fig. 3: select-duplicate virtualization preserves the analyses."""

    def test_virtualized_graph_bounded(self):
        from repro.gallery import fig3_graph
        from repro.tpdf import virtualize_select_duplicate

        virt = virtualize_select_duplicate(fig3_graph(), "B")
        report = check_boundedness(virt)
        assert report.bounded


class TestFig4:
    """Fig. 4: liveness by clustering; (a) and (b) live, clustered graph
    is A -> Omega with consumption 2 and schedule A^2 Omega^p."""

    def test_4a_live(self):
        assert check_liveness(build_fig4([0, 2], 2)).live

    def test_4b_live_needs_interleaving(self):
        report = check_liveness(build_fig4([2, 0], 1))
        assert report.live
        runs = report.cycles[0].schedule.runs()
        assert all(count == 1 for _, count in runs)

    def test_clustered_shape(self):
        clustered = clustered_graph(build_fig4([0, 2], 2))
        assert set(clustered.actors) == {"A", "Omega"}
        schedule = find_sequential_schedule(clustered, {"p": 4})
        assert str(schedule) == "(A)^2 (Omega)^4"


class TestFig5:
    """Fig. 5: canonical period of Fig. 2 at p = 1 (10 occurrences,
    C on a dedicated PE, F firings following control tokens)."""

    def test_occurrences_and_mapping(self):
        period = build_canonical_period(fig2_graph(), {"p": 1})
        assert period.dag.number_of_nodes() == 10
        platform = single_cluster(4)
        mapping = list_schedule(period, platform, dedicated_control_pe=True)
        assert mapping.pe_of(("C", 1)) == platform.pes[-1]
        # F1 starts only after C1 completed (control dependency).
        assert mapping.firings[("F", 1)].start >= mapping.firings[("C", 1)].finish


class TestFig6:
    """Fig. 6: timing table + 500 ms deadline selection."""

    def test_table_and_selection(self):
        from repro.apps.edge import PAPER_TIMES_MS, run_edge_experiment

        assert PAPER_TIMES_MS == {
            "quickmask": 200.0, "sobel": 473.0, "prewitt": 522.0, "canny": 1040.0,
        }
        exp = run_edge_experiment([np.zeros((1024, 1024))], period=500.0, frames=1)
        assert exp.finished_by_deadline() == ["quickmask", "sobel"]
        assert exp.chosen_methods() == ["sobel"]


class TestFig7:
    """Fig. 7: the OFDM TPDF graph is consistent, safe, live and
    functionally correct in both QPSK and QAM configurations."""

    def test_static_chain(self):
        from repro.apps.ofdm import build_ofdm_tpdf

        report = check_boundedness(build_ofdm_tpdf())
        assert report.bounded

    @pytest.mark.parametrize("m", [2, 4])
    def test_functional(self, m):
        from repro.apps.ofdm import run_ofdm_tpdf

        run = run_ofdm_tpdf(beta=2, n=16, l=2, m=m, activations=1)
        assert run.bit_errors == 0


class TestFig8:
    """Fig. 8: Buff_TPDF = 3 + beta(12N + L), Buff_CSDF = beta(17N + L),
    ~29% improvement; both measured, not assumed."""

    def test_formulas_and_improvement(self):
        from repro.apps.ofdm import fig8_point

        for beta, n in ((10, 512), (100, 1024)):
            point = fig8_point(beta, n)
            assert point.tpdf_measured == point.tpdf_paper
            assert point.csdf_measured == point.csdf_paper
            assert point.improvement == pytest.approx(1 - 12 / 17, abs=0.005)
