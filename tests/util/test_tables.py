"""Tests for ASCII tables and CSV export."""

import pytest

from repro.util import ascii_series_plot, ascii_table, write_csv


class TestAsciiTable:
    def test_alignment(self):
        text = ascii_table(["name", "value"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title(self):
        text = ascii_table(["x"], [[1]], title="My table")
        assert text.startswith("My table")

    def test_float_formatting(self):
        text = ascii_table(["x"], [[0.123456789]])
        assert "0.1235" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [[1]])


class TestCsv:
    def test_write_and_read_back(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ["a", "b"], [[1, 2], [3, 4]])
        content = path.read_text().strip().splitlines()
        assert content[0] == "a,b"
        assert content[1] == "1,2"

    def test_creates_directories(self, tmp_path):
        path = write_csv(tmp_path / "deep" / "nested.csv", ["x"], [[1]])
        assert path.exists()


class TestSeriesPlot:
    def test_renders_legend(self):
        text = ascii_series_plot([1, 2, 3], {"up": [1, 2, 3], "down": [3, 2, 1]})
        assert "o=up" in text
        assert "x=down" in text

    def test_empty(self):
        assert ascii_series_plot([], {}) == "(no data)"

    def test_constant_series(self):
        text = ascii_series_plot([1, 2], {"flat": [5, 5]})
        assert "flat" in text
