"""Tests for the related-work capability matrix (Sec. V)."""

from repro.util.validation import (
    FEATURE_HEADERS,
    RELATED_WORK,
    feature_matrix_rows,
    tpdf_claims,
)


class TestMatrix:
    def test_tpdf_claims_everything(self):
        claims = tpdf_claims()
        assert claims.name == "TPDF"
        assert claims.static_guarantees
        assert claims.parametric_rates
        assert claims.dynamic_topology
        assert claims.time_constraints

    def test_only_tpdf_has_time_constraints(self):
        timed = [m.name for m in RELATED_WORK if m.time_constraints]
        assert timed == ["TPDF"]

    def test_paper_quote_on_spdf_family(self):
        """Sec. V: PSDF/VRDF/SPDF lack TPDF's static guarantees."""
        for name in ("PSDF", "VRDF", "SPDF"):
            model = next(m for m in RELATED_WORK if m.name == name)
            assert not model.static_guarantees
            assert model.parametric_rates

    def test_bpdf_closest_relative(self):
        bpdf = next(m for m in RELATED_WORK if m.name == "BPDF")
        assert bpdf.static_guarantees and bpdf.dynamic_topology
        assert not bpdf.time_constraints

    def test_rows_align_with_headers(self):
        rows = feature_matrix_rows()
        assert len(rows) == len(RELATED_WORK)
        assert all(len(row) == len(FEATURE_HEADERS) for row in rows)

    def test_marks_rendering(self):
        rows = feature_matrix_rows()
        tpdf_row = next(row for row in rows if row[0] == "TPDF")
        assert tpdf_row[1:5] == ["yes", "yes", "yes", "yes"]
