"""Tests for DOT export."""

from repro.util import csdf_to_dot, tpdf_to_dot


class TestCsdfDot:
    def test_structure(self, fig1):
        dot = csdf_to_dot(fig1)
        assert dot.startswith('digraph "fig1"')
        assert '"a1" -> "a2"' in dot
        assert "2 tok" in dot  # initial tokens annotated

    def test_rates_annotated(self, fig1):
        dot = csdf_to_dot(fig1)
        assert "[1,0,1] -> [1,1]" in dot


class TestTpdfDot:
    def test_control_shapes(self, fig2):
        dot = tpdf_to_dot(fig2)
        assert '"C" [shape=diamond]' in dot
        assert '"A" [shape=box]' in dot

    def test_control_channels_dashed(self, fig2):
        dot = tpdf_to_dot(fig2)
        dashed = [line for line in dot.splitlines() if "dashed" in line]
        assert len(dashed) == 1  # only e5 is a control channel
        assert '"C" -> "F"' in dashed[0]

    def test_parameters_in_label(self, fig2):
        assert "p in [1, inf]" in tpdf_to_dot(fig2)

    def test_transaction_shape(self):
        from repro.tpdf import TPDFGraph, transaction

        g = TPDFGraph()
        transaction(g, "t", inputs=2)
        assert '"t" [shape=hexagon]' in tpdf_to_dot(g)

    def test_quotes_escaped(self):
        from repro.tpdf import TPDFGraph

        g = TPDFGraph('we"ird')
        assert '\\"' in tpdf_to_dot(g)
