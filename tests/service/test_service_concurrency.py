"""Concurrency and result-cache properties of the resident service.

The load-bearing claims: identical concurrent submissions execute
**exactly once** (single-flight, spy-counted by the service's
``computed`` stat), distinct graphs never share a cache entry, the
LRU bound is respected, and an edited graph's resubmission gets a
fresh version-correct result (content addressing — the old key simply
stops being asked for).
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import EditSession, analyze
from repro.io import graph_from_payload, graph_to_payload
from repro.service import ServiceClient, serve_in_thread

from .conftest import small_csdf


def _fan_out(url: str, graph, count: int, **options):
    """``count`` threads, each its own client, all submitting the same
    request as close to simultaneously as possible."""
    results: list = [None] * count
    barrier = threading.Barrier(count)

    def run(index: int) -> None:
        client = ServiceClient(url)
        barrier.wait()
        results[index] = client.analyze(graph, **options)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60)
    assert all(not t.is_alive() for t in threads)
    return results


class TestSingleFlight:

    def test_identical_concurrent_submissions_compute_once(self):
        graph = small_csdf(seed=21, actors=6)
        with serve_in_thread(workers=2) as handle:
            results = _fan_out(handle.url, graph, 8, iterations=4)
            stats = ServiceClient(handle.url).stats()["cache"]
        # exactly-once: one compute; everyone else coalesced or hit
        assert stats["computed"] == 1
        assert stats["coalesced"] + stats["hits"] == 7
        fingerprints = {report.fingerprint() for report in results}
        assert len(fingerprints) == 1
        assert fingerprints == {analyze(graph, iterations=4).fingerprint()}

    def test_sequential_resubmission_hits_cache(self):
        graph = small_csdf(seed=22)
        with serve_in_thread(workers=1) as handle:
            client = ServiceClient(handle.url)
            first = client.analyze(graph)
            second = client.analyze(graph)
            stats = client.stats()["cache"]
        assert first.fingerprint() == second.fingerprint()
        assert stats["computed"] == 1 and stats["hits"] == 1

    def test_no_cache_flag_bypasses_the_front_cache(self):
        graph = small_csdf(seed=23)
        with serve_in_thread(workers=1) as handle:
            client = ServiceClient(handle.url)
            warmup = client.analyze(graph)
            again = client.analyze(graph, no_cache=True)
            stats = client.stats()
        assert warmup.fingerprint() == again.fingerprint()
        # the no_cache request reached the pool instead of the cache
        assert stats["cache"]["hits"] == 0
        assert stats["pool"]["requests"] >= 2


class TestCacheKeying:

    def test_distinct_graphs_never_share_entries(self):
        graphs = [small_csdf(seed=seed) for seed in (31, 32, 33)]
        with serve_in_thread(workers=1) as handle:
            client = ServiceClient(handle.url)
            reports = [client.analyze(graph) for graph in graphs]
            reports += [client.analyze(graph) for graph in graphs]
            stats = client.stats()["cache"]
        assert stats["computed"] == 3  # one compute per distinct graph
        assert stats["hits"] == 3      # one hit per resubmission
        # and the entries really are distinct results
        assert len({report.fingerprint() for report in reports[:3]}) == 3

    def test_distinct_options_get_distinct_entries(self):
        graph = small_csdf(seed=34)
        with serve_in_thread(workers=1) as handle:
            client = ServiceClient(handle.url)
            lo = client.analyze(graph, iterations=3)
            hi = client.analyze(graph, iterations=6)
            stats = client.stats()["cache"]
        assert stats["computed"] == 2
        assert lo.fingerprint() != hi.fingerprint()

    def test_eviction_respects_configured_bound(self):
        graphs = [small_csdf(seed=40 + seed) for seed in range(6)]
        with serve_in_thread(workers=1, cache_limit=4) as handle:
            client = ServiceClient(handle.url)
            for graph in graphs:
                client.analyze(graph)
            stats = client.stats()["cache"]
        assert stats["entries"] <= 4
        assert stats["evictions"] == 2  # 6 inserts into a 4-entry bound

    def test_evicted_entry_recomputes_identically(self):
        graphs = [small_csdf(seed=50 + seed) for seed in range(3)]
        with serve_in_thread(workers=1, cache_limit=2) as handle:
            client = ServiceClient(handle.url)
            first = client.analyze(graphs[0])
            for graph in graphs[1:]:
                client.analyze(graph)  # evicts graphs[0] (LRU)
            again = client.analyze(graphs[0])
            stats = client.stats()["cache"]
        assert stats["computed"] == 4  # 3 distinct + 1 recompute
        assert first.fingerprint() == again.fingerprint()


class TestEditFreshness:
    """Resubmission after an edit is version-correct by construction:
    the edited graph has a different content fingerprint, so it can
    never collide with the pre-edit cache entry."""

    def test_resubmission_after_edit_gets_fresh_result(self):
        graph = small_csdf(seed=60)
        actor = sorted(graph.actors)[0]
        edit = {"op": "set_exec_time", "actor": actor, "value": 17}

        # direct oracle on a decoded private clone
        oracle = EditSession(graph_from_payload(graph_to_payload(graph)),
                             None, iterations=3)
        oracle.analyze()
        oracle.apply(edit)
        edited_direct = oracle.analyze()

        with serve_in_thread(workers=2) as handle:
            client = ServiceClient(handle.url)
            before = client.analyze(graph, iterations=3)
            session = client.session(graph, iterations=3)
            old_key = session.graph_key
            edited = session.edits([edit])
            new_key = session.graph_key
            session.close()
            # resubmitting the *original* graph still hits its own
            # (unchanged, correct) entry ...
            original_again = client.analyze(graph, iterations=3)
            stats = client.stats()["cache"]

        assert new_key != old_key
        assert edited.fingerprint() == edited_direct.fingerprint()
        assert edited.fingerprint() != before.fingerprint()
        assert original_again.fingerprint() == before.fingerprint()
        assert stats["hits"] >= 1

    def test_concurrent_distinct_graphs_all_correct(self):
        graphs = [small_csdf(seed=70 + seed, actors=5) for seed in range(6)]
        direct = [analyze(graph, iterations=3) for graph in graphs]
        with serve_in_thread(workers=2) as handle:
            results: list = [None] * len(graphs)

            def run(index: int) -> None:
                client = ServiceClient(handle.url)
                results[index] = client.analyze(graphs[index], iterations=3)

            threads = [threading.Thread(target=run, args=(i,))
                       for i in range(len(graphs))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
            assert all(not t.is_alive() for t in threads)
        for got, want in zip(results, direct):
            assert got.fingerprint() == want.fingerprint()
