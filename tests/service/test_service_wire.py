"""Wire-codec round trips: JSON in, bit-identical reports out.

The report codecs of :mod:`repro.io` must survive a *real* JSON round
trip — ``to_dict -> json.dumps -> json.loads -> from_dict`` — with
fingerprints preserved exactly: floats bit for bit, Fractions through
the ``$fraction`` tag, tuple-shaped fields (iteration ends, domain
bounds) re-tupled, piecewise-MCR payloads through the Poly renderer.
The error envelope round-trips the other direction: an exception
serialized server-side reconstructs as the same type client-side,
payload fields (blocked actors, attempt counts) included.
"""

from __future__ import annotations

import json
from fractions import Fraction

import numpy as np
import pytest

from repro.analysis import analyze, analyze_parametric, simulate
from repro.errors import (DeadlockError, GraphConstructionError,
                          ParametricMCRError, ReproError)
from repro.gallery import fig4_graph, parametric_radio_graph
from repro.io import (_scalar_from_wire, _scalar_to_wire,
                      parametric_report_from_dict, parametric_report_to_dict,
                      payload_fingerprint, report_from_dict, report_to_dict,
                      timed_result_from_dict, timed_result_to_dict,
                      trace_from_dict, trace_to_dict)
from repro.service import (BadRequest, ServiceError, SessionLost,
                           WorkerCrashError, error_from_dict, error_status,
                           error_to_dict)

from .conftest import corpus_items, small_csdf


def json_round_trip(data: dict) -> dict:
    """The exact bytes-on-the-wire transformation (tuples -> lists,
    dict keys -> strings, shortest-repr floats)."""
    return json.loads(json.dumps(data))


class TestReportRoundTrip:

    def test_corpus_reports_survive_json_exactly(self, corpus):
        # every shape of the seeded corpus: concrete, parametric,
        # control actors, deadlocking variants included
        step = max(1, len(corpus) // 16)
        for graph, bindings in corpus[::step]:
            want = analyze(graph, bindings, iterations=3)
            got = report_from_dict(json_round_trip(report_to_dict(want)))
            assert got.fingerprint() == want.fingerprint()
            assert got.graph is None  # wire form never carries the graph

    def test_deadlock_report_round_trips(self):
        want = analyze(fig4_graph("dead"), {"p": 1}, iterations=3)
        assert want.live is False
        got = report_from_dict(json_round_trip(report_to_dict(want)))
        assert got.fingerprint() == want.fingerprint()

    def test_piecewise_parametric_payload_round_trips(self):
        # parametric_domain produces a piecewise(-symbolic) MCR whose
        # payload carries Fractions inside rendered Poly strings
        graph = parametric_radio_graph()
        want = analyze_parametric(graph, {"b": (1, 4), "c": (1, 3)})
        got = parametric_report_from_dict(
            json_round_trip(parametric_report_to_dict(want))
        )
        assert got.fingerprint() == want.fingerprint()

    def test_report_with_embedded_parametric_round_trips(self):
        items = [item for item in corpus_items() if item[1]]
        graph, bindings = items[0]
        want = analyze(graph, bindings, iterations=3,
                       parametric_domain={"p": (1, 4)})
        got = report_from_dict(json_round_trip(report_to_dict(want)))
        assert got.fingerprint() == want.fingerprint()

    def test_timed_result_floats_are_bit_exact(self):
        want = analyze(small_csdf(seed=90), iterations=5)
        assert want.timed is not None
        got = timed_result_from_dict(
            json_round_trip(timed_result_to_dict(want.timed))
        )
        assert got.makespan == want.timed.makespan  # == : no tolerance
        assert got.iteration_ends == want.timed.iteration_ends
        assert got.peaks == want.timed.peaks
        assert got.firings == want.timed.firings

    def test_from_dict_rejects_wrong_kind(self):
        with pytest.raises(GraphConstructionError, match="kind"):
            report_from_dict({"kind": "something_else"})


class TestTraceRoundTrip:
    """The simulation-trace codec: timing view, fingerprints exact."""

    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_control_traces_survive_json_exactly(self, seed):
        from repro.tpdf import random_consistent_graph

        graph = random_consistent_graph(6, extra_edges=3, n_cycles=1,
                                        seed=seed, with_control=True)
        want = simulate(graph,
                        limits={name: 4 for name in graph.kernels})
        got = trace_from_dict(json_round_trip(trace_to_dict(want)))
        assert got.fingerprint() == want.fingerprint()  # == : bit-exact
        assert len(got.firings) == len(want.firings)
        assert got.peaks == want.peaks
        # discards carry their channel/port/count payload through
        for mine, theirs in zip(got.discards, want.discards):
            assert (mine.channel, mine.port, mine.node, mine.count,
                    mine.time) == (theirs.channel, theirs.port,
                                   theirs.node, theirs.count, theirs.time)


class TestServiceSimulate:
    """``POST /simulate`` end to end: resident workers run the
    schedule-plane core; the wire trace fingerprints bit-for-bit
    against a direct in-process simulation."""

    def test_simulate_matches_direct(self, client):
        from repro.tpdf import random_consistent_graph

        graph = random_consistent_graph(6, extra_edges=3, n_cycles=1,
                                        seed=5, with_control=True)
        limits = {name: 4 for name in graph.kernels}
        served = client.simulate(graph, limits=limits)
        direct = simulate(graph, limits=limits)
        assert served.fingerprint() == direct.fingerprint()

    def test_capacitated_run_with_cores(self, client):
        from repro.tpdf import random_consistent_graph

        graph = random_consistent_graph(5, extra_edges=2, n_cycles=0,
                                        seed=9)
        limits = {name: 4 for name in graph.kernels}
        open_run = simulate(graph, limits=limits)
        capacities = {name: max(1, peak)
                      for name, peak in open_run.peaks.items()}
        served = client.simulate(graph, limits=limits, cores=2,
                                 capacities=capacities)
        direct = simulate(graph, limits=limits, cores=2,
                          capacities=capacities)
        assert served.fingerprint() == direct.fingerprint()

    def test_missing_stop_condition_is_rejected(self, client):
        from repro.tpdf import random_consistent_graph

        graph = random_consistent_graph(4, seed=1)
        with pytest.raises(BadRequest, match="stop condition"):
            client.simulate(graph)

    def test_unknown_option_is_rejected(self, client):
        import http.client
        import json as _json

        from repro.io import graph_to_payload
        from repro.tpdf import random_consistent_graph

        graph = random_consistent_graph(4, seed=1)
        body = _json.dumps({"graph": graph_to_payload(graph),
                            "options": {"record_values": True,
                                        "limits": {}}}).encode()
        conn = http.client.HTTPConnection(client.host, client.port,
                                          timeout=30)
        try:
            conn.request("POST", "/simulate", body=body,
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            data = _json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert "record_values" in data["error"]["message"]


class TestStatsEndpoint:
    """``GET /stats``: the result-cache eviction counter and the
    per-worker decode-cache occupancy rows."""

    def test_evictions_and_worker_rows(self, client):
        stats = client.stats()
        cache = stats["cache"]
        assert isinstance(cache["evictions"], int)
        assert cache["evictions"] >= 0
        assert cache["entries"] <= 256  # the default LRU bound
        workers = stats["workers"]
        assert len(workers) == 2  # the module service runs 2 workers
        for row in workers:
            assert {"slot", "pid", "alive"} <= set(row)
            if row["alive"]:
                assert row["resident_graphs"] >= 0
                assert row["sessions"] >= 0

    def test_decode_cache_grows_with_traffic(self, client):
        graph = small_csdf(seed=97)
        client.analyze(graph, no_cache=True)
        workers = client.stats()["workers"]
        resident = sum(row.get("resident_graphs", 0) for row in workers
                       if row["alive"])
        assert resident >= 1  # the analyzed graph stayed decoded


class TestScalarWire:
    """The scalar tagging layer: Fractions and numpy ints are the two
    value kinds JSON would silently mangle."""

    @pytest.mark.parametrize("value", [
        None, True, False, 0, -7, 3.5, float("inf"), "text",
        Fraction(3, 2), Fraction(-10, 4),
    ])
    def test_scalar_round_trip_preserves_value_and_type(self, value):
        back = _scalar_from_wire(json_round_trip(
            {"v": _scalar_to_wire(value)})["v"])
        assert back == value
        assert type(back) is type(value)

    def test_numpy_integers_normalize_to_int(self):
        wire = _scalar_to_wire(np.int64(42))
        assert wire == 42 and type(wire) is int  # json.dumps-safe

    def test_unencodable_scalar_is_rejected_eagerly(self):
        with pytest.raises(GraphConstructionError):
            _scalar_to_wire(object())


class TestPayloadFingerprint:

    def test_stable_across_encodings(self):
        from repro.io import graph_to_payload

        graph = small_csdf(seed=91)
        payload = graph_to_payload(graph)
        assert payload_fingerprint(payload) == payload_fingerprint(
            json_round_trip(payload)
        )

    def test_sensitive_to_content(self):
        from repro.io import graph_to_payload

        a = graph_to_payload(small_csdf(seed=92))
        b = graph_to_payload(small_csdf(seed=93))
        assert payload_fingerprint(a) != payload_fingerprint(b)


class TestErrorEnvelope:

    @pytest.mark.parametrize("exc, status", [
        (BadRequest("bad"), 400),
        (GraphConstructionError("nope"), 400),
        (TypeError("unhashable binding value for 'p'"), 400),
        (SessionLost("gone"), 410),
        (ReproError("generic"), 422),
        (WorkerCrashError("died", attempts=3), 503),
        (RuntimeError("unmapped"), 500),
    ])
    def test_status_mapping(self, exc, status):
        assert error_status(exc) == status

    def test_library_errors_reconstruct_as_same_type(self):
        for exc in (GraphConstructionError("x"), ParametricMCRError("y"),
                    BadRequest("z"), SessionLost("w"), ValueError("v"),
                    KeyError("k")):
            back = error_from_dict(json_round_trip(error_to_dict(exc)))
            assert type(back) is type(exc)
            assert str(back) == str(exc)

    def test_deadlock_blocked_set_round_trips(self):
        exc = DeadlockError("stuck", blocked=["a2", "a0"])
        back = error_from_dict(json_round_trip(error_to_dict(exc)))
        assert isinstance(back, DeadlockError)
        assert list(back.blocked) == ["a2", "a0"]

    def test_worker_crash_attempts_round_trip(self):
        exc = WorkerCrashError("kept dying", attempts=5)
        back = error_from_dict(json_round_trip(error_to_dict(exc)))
        assert isinstance(back, WorkerCrashError)
        assert back.attempts == 5

    def test_unknown_type_degrades_to_service_error(self):
        back = error_from_dict({"type": "SomethingExotic",
                                "message": "?"}, status=500)
        assert isinstance(back, ServiceError)
        assert back.type_name == "SomethingExotic"
        assert back.status == 500

    def test_double_round_trip_is_stable(self):
        # notably KeyError, whose str() re-quotes its argument
        exc = KeyError("actor_x")
        once = error_from_dict(json_round_trip(error_to_dict(exc)))
        twice = error_from_dict(json_round_trip(error_to_dict(once)))
        assert str(twice) == str(exc)
