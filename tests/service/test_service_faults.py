"""Fault injection: the pool survives worker death, requests never hang.

The contract under crashes (SIGKILL — no chance to clean up):

* a crashed worker is replaced automatically (health check or the
  next request that trips over it);
* a stateless in-flight request is retried on a replacement, bounded
  by ``max_attempts`` — exhaustion is a clean 503
  (:class:`WorkerCrashError` carrying the attempt count), never a hang;
* a session whose worker died is gone for good: 410
  (:class:`SessionLost`) on the in-flight call, 404 afterwards;
* the service keeps serving correct results after any of the above.

Crashes are induced two ways: the ``crash`` test hook (the worker
SIGKILLs itself the moment the request arrives — deterministic
exhaustion) and an external ``os.kill`` mid-request (the
``sleep_ms`` hook widens the in-flight window).
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.analysis import analyze
from repro.service import (ServiceClient, SessionLost, SessionNotFound,
                           WorkerCrashError, serve_in_thread)

from .conftest import small_csdf


@pytest.fixture
def hooked_service():
    """A small service with fault hooks enabled and no background
    health loop (tests trigger health checks explicitly via GET
    /health, keeping every replacement observable)."""
    with serve_in_thread(workers=2, test_hooks=True, max_attempts=3,
                         health_interval=0) as handle:
        yield handle


class TestRetryBound:

    def test_always_crashing_request_fails_cleanly(self, hooked_service):
        client = ServiceClient(hooked_service.url)
        graph = small_csdf(seed=80)
        with pytest.raises(WorkerCrashError) as excinfo:
            client.analyze(graph, test={"crash": True})
        # the bound is real: exactly max_attempts executions, then stop
        assert excinfo.value.attempts == 3
        assert "3 attempts" in str(excinfo.value)

    def test_custom_attempt_bound_is_honored(self):
        with serve_in_thread(workers=1, test_hooks=True, max_attempts=1,
                             health_interval=0) as handle:
            client = ServiceClient(handle.url)
            with pytest.raises(WorkerCrashError) as excinfo:
                client.analyze(small_csdf(seed=81), test={"crash": True})
            assert excinfo.value.attempts == 1

    def test_service_recovers_after_exhaustion(self, hooked_service):
        client = ServiceClient(hooked_service.url)
        graph = small_csdf(seed=82)
        with pytest.raises(WorkerCrashError):
            client.analyze(graph, test={"crash": True})
        # every crashed worker was replaced in place
        health = client.health()
        assert all(worker["alive"] for worker in health["workers"])
        assert health["worker_restarts"] >= 3
        # and the pool serves correct results again
        report = client.analyze(graph, iterations=3)
        assert report.fingerprint() == analyze(graph,
                                               iterations=3).fingerprint()


class TestMidRequestKill:

    def test_external_sigkill_mid_request_is_retried(self, hooked_service):
        client = ServiceClient(hooked_service.url)
        graph = small_csdf(seed=83)
        pids = [worker["pid"] for worker in client.health()["workers"]]
        result: dict = {}

        def submit() -> None:
            requester = ServiceClient(hooked_service.url)
            result["report"] = requester.analyze(
                graph, iterations=3, test={"sleep_ms": 1500}
            )

        thread = threading.Thread(target=submit)
        thread.start()
        time.sleep(0.4)  # let the request reach a worker's sleep window
        for pid in pids:
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        thread.join(30)
        assert not thread.is_alive(), "request hung after worker death"
        # retried on a replacement worker and completed correctly
        assert result["report"].fingerprint() == analyze(
            graph, iterations=3
        ).fingerprint()
        stats = client.stats()["pool"]
        assert stats["retries"] >= 1
        assert stats["worker_restarts"] >= 1

    def test_health_check_replaces_idle_crashed_worker(self, hooked_service):
        client = ServiceClient(hooked_service.url)
        before = client.health()
        victim = before["workers"][0]["pid"]
        os.kill(victim, signal.SIGKILL)
        deadline = time.time() + 5
        while time.time() < deadline:
            after = client.health()  # GET /health runs the check
            pids = [worker["pid"] for worker in after["workers"]]
            # SIGKILL is asynchronous: wait until the victim is truly
            # gone AND its slot holds a live replacement
            if victim not in pids and all(
                worker["alive"] for worker in after["workers"]
            ):
                break
            time.sleep(0.05)
        assert all(worker["alive"] for worker in after["workers"])
        assert victim not in [worker["pid"] for worker in after["workers"]]
        assert after["worker_restarts"] > before["worker_restarts"]


class TestSessionLoss:

    def test_session_crash_is_gone_not_hung(self, hooked_service):
        client = ServiceClient(hooked_service.url)
        graph = small_csdf(seed=84)
        actor = sorted(graph.actors)[0]
        edit = {"op": "set_exec_time", "actor": actor, "value": 5}
        session = client.session(graph, iterations=3)
        with pytest.raises(SessionLost):
            session.edits([edit], test={"crash": True})
        # the session is unrecoverable: subsequent calls are a clean 404
        with pytest.raises(SessionNotFound):
            session.edits([edit])
        # but a fresh session on the (replaced) pool works
        fresh = client.session(graph, iterations=3)
        report = fresh.edits([edit])
        fresh.close()
        assert report.bounded is not None

    def test_other_sessions_survive_one_crash(self, hooked_service):
        client = ServiceClient(hooked_service.url)
        graph_a = small_csdf(seed=85)
        graph_b = small_csdf(seed=86)
        edit_a = {"op": "set_exec_time",
                  "actor": sorted(graph_a.actors)[0], "value": 4}
        edit_b = {"op": "set_exec_time",
                  "actor": sorted(graph_b.actors)[0], "value": 4}
        # two sessions; with 2 workers and an idle-preferring picker
        # they land on different workers
        session_a = client.session(graph_a, iterations=3)
        session_b = client.session(graph_b, iterations=3)
        with pytest.raises(SessionLost):
            session_a.edits([edit_a], test={"crash": True})
        # session_b's worker was not the one that died
        report = session_b.edits([edit_b])
        assert report.bounded is not None
        session_b.close()
