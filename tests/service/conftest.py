"""Shared fixtures of the resident-service suite.

The differential tests talk to one module-scoped service over real
HTTP; the fault and concurrency tests start their own (small, hooked)
instances.  ``REPRO_SERVICE_SEEDS`` trims the seeded corpus for fast
CI profiles (default: the full 25 seeds per shape = 200 graphs, the
same corpus the parallel-batch differential suite uses).
"""

from __future__ import annotations

import os

import pytest

from repro.tpdf import random_consistent_graph

#: (actors, extra_edges, back_edges, parametric, with_control) — the
#: corpus shapes of tests/test_analysis_parallel.py.
SHAPES = (
    (3, 1, 0, False, False),
    (4, 2, 1, False, False),
    (5, 2, 0, False, True),
    (5, 3, 2, False, False),
    (6, 3, 1, False, True),
    (6, 2, 0, True, False),
    (7, 3, 0, True, True),
    (8, 4, 2, False, False),
)

SEEDS_PER_SHAPE = int(os.environ.get("REPRO_SERVICE_SEEDS", "25"))


def corpus_items():
    """The seeded corpus as (graph, bindings) pairs."""
    items = []
    for n, extra, cycles, parametric, control in SHAPES:
        for seed in range(SEEDS_PER_SHAPE):
            graph = random_consistent_graph(
                n, extra_edges=extra, n_cycles=cycles, seed=seed,
                parametric=parametric, with_control=control,
            )
            items.append((graph, {"p": 2} if parametric else None))
    return items


def small_csdf(seed: int = 3, actors: int = 5):
    """One small concrete CSDF graph (distinct per seed)."""
    return random_consistent_graph(
        actors, extra_edges=2, n_cycles=1, seed=seed
    ).as_csdf()


@pytest.fixture(scope="module")
def corpus():
    return corpus_items()


@pytest.fixture(scope="module")
def service_handle():
    """One resident service shared by a module's differential tests."""
    from repro.service import serve_in_thread

    with serve_in_thread(workers=2) as handle:
        yield handle


@pytest.fixture(scope="module")
def client(service_handle):
    from repro.service import ServiceClient

    return ServiceClient(service_handle.url)
