"""Differential suite: the resident service against direct library calls.

Every result that crosses the service's wire — payload codec in,
worker-pool analysis, JSON report codec out — must be **bit-for-bit**
identical (``GraphReport.fingerprint``, floats compared exactly) to a
direct in-process ``analyze()`` of the same graph, over the seeded
random corpus.  Error surfaces are differential too: whatever a direct
call raises, the service must map to a structured error response that
the client reconstructs as the *same exception type*.
"""

from __future__ import annotations

import pytest

from repro.analysis import analyze, analyze_parametric
from repro.errors import GraphConstructionError
from repro.gallery import fig4_graph, parametric_radio_graph
from repro.service import BadRequest, ServiceClient, SessionNotFound

from .conftest import small_csdf

BATCH = 25  # graphs per /batch request (keeps request bodies modest)


@pytest.fixture(scope="module")
def direct_reports(corpus):
    return [analyze(graph, bindings, iterations=3)
            for graph, bindings in corpus]


class TestAnalyzeParity:
    """The acceptance criterion: service == direct, bit for bit."""

    def test_corpus_via_batch_endpoint(self, client, corpus, direct_reports):
        served = []
        for start in range(0, len(corpus), BATCH):
            served.extend(client.batch(corpus[start:start + BATCH],
                                       iterations=3))
        assert len(served) == len(direct_reports)
        mismatched = [
            index
            for index, (got, want) in enumerate(zip(served, direct_reports))
            if isinstance(got, BaseException)
            or got.fingerprint() != want.fingerprint()
        ]
        assert mismatched == []

    def test_single_analyze_matches_batch_and_direct(self, client, corpus,
                                                     direct_reports):
        # A few spot checks through the scalar endpoint (same cache,
        # different code path than /batch).
        for index in (0, len(corpus) // 2, len(corpus) - 1):
            graph, bindings = corpus[index]
            got = client.analyze(graph, bindings, iterations=3)
            assert got.fingerprint() == direct_reports[index].fingerprint()

    def test_deadlocking_graph_reports_not_live(self, client):
        dead = fig4_graph("dead")
        got = client.analyze(dead, {"p": 1}, iterations=3)
        want = analyze(fig4_graph("dead"), {"p": 1}, iterations=3)
        assert want.live is False and want.bounded is False
        assert got.fingerprint() == want.fingerprint()

    def test_option_variants_round_trip(self, client):
        graph = small_csdf(seed=8)
        for options in (
            {"with_throughput": False},
            {"with_buffers": False, "with_mcr": False},
            {"iterations": 6, "backend": "wakeup"},
        ):
            got = client.analyze(graph, **options)
            want = analyze(graph, **options)
            assert got.fingerprint() == want.fingerprint(), options


class TestParametricParity:

    def test_parametric_endpoint(self, client):
        graph = parametric_radio_graph()
        domain = {"b": (1, 4), "c": (1, 3)}
        got = client.analyze_parametric(graph, domain)
        want = analyze_parametric(parametric_radio_graph(), domain)
        assert got.fingerprint() == want.fingerprint()

    def test_parametric_domain_option(self, client, corpus, direct_reports):
        # The corpus's parametric shapes, re-run with a piecewise
        # domain riding along on /analyze.
        checked = 0
        for (graph, bindings), _direct in zip(corpus, direct_reports):
            if not bindings or checked >= 3:
                continue
            got = client.analyze(graph, bindings, iterations=3,
                                 parametric_domain={"p": [1, 4]})
            want = analyze(graph, bindings, iterations=3,
                           parametric_domain={"p": (1, 4)})
            assert got.fingerprint() == want.fingerprint()
            checked += 1
        assert checked == 3


class TestErrorSurfaces:
    """Raised errors cross the wire as their original exception type."""

    def test_unhashable_bindings_is_typeerror_both_ways(self, client):
        graph = small_csdf(seed=9)
        with pytest.raises(TypeError) as direct:
            analyze(graph, {"p": [1, 2]})
        with pytest.raises(TypeError) as served:
            client.analyze(graph, {"p": [1, 2]})
        assert "p" in str(served.value)
        assert type(served.value) is type(direct.value)

    def test_malformed_payload_is_graph_construction_error(self, client):
        with pytest.raises(GraphConstructionError):
            client.analyze({"model": "csdf", "name": "broken"})

    def test_unknown_option_is_bad_request(self, client):
        with pytest.raises(BadRequest, match="bogus"):
            client.analyze(small_csdf(seed=9), bogus=True)

    def test_missing_graph_is_bad_request(self, client):
        with pytest.raises(BadRequest, match="graph"):
            client._request("POST", "/analyze", {"bindings": {}})

    def test_non_json_body_is_bad_request(self, client, service_handle):
        import http.client
        import json

        conn = http.client.HTTPConnection(client.host, client.port, timeout=30)
        try:
            conn.request("POST", "/analyze", body=b"not json {",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            data = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert data["error"]["type"] == "BadRequest"

    def test_unknown_endpoint_is_404(self, client):
        with pytest.raises(Exception) as excinfo:
            client._request("GET", "/nonsense")
        assert getattr(excinfo.value, "status", None) == 404 or isinstance(
            excinfo.value, BadRequest
        )

    def test_unknown_session_is_404(self, client):
        with pytest.raises(SessionNotFound):
            client._request("POST", "/session/s9999/edits", {"edits": []})


class TestSessionParity:
    """Edit-script replay inside a session == a direct EditSession on a
    decoded private clone (what the worker actually holds)."""

    def test_edit_replay_matches_direct_session(self, client):
        from repro.analysis import EditSession
        from repro.io import graph_from_payload, graph_to_payload

        graph = small_csdf(seed=3)
        actor = sorted(graph.actors)[0]
        script = [
            [{"op": "set_exec_time", "actor": actor, "value": 9}],
            [{"op": "set_exec_time", "actor": actor, "value": 2}],
        ]
        direct = EditSession(graph_from_payload(graph_to_payload(graph)),
                             None, iterations=3)
        baseline = direct.analyze()

        session = client.session(graph, iterations=3)
        try:
            assert session.report.fingerprint() == baseline.fingerprint()
            keys = [session.graph_key]
            for edits in script:
                for edit in edits:
                    direct.apply(edit)
                want = direct.analyze()
                got = session.edits(edits)
                assert got.fingerprint() == want.fingerprint()
                keys.append(session.graph_key)
            # each edit changed the graph's content key
            assert keys[0] != keys[1] != keys[2]
        finally:
            session.close()
