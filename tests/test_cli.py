"""Tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.__main__ import main
from repro.io import csdf_to_dict, tpdf_to_dict
from repro.tpdf import TPDFGraph, fig2_graph


@pytest.fixture
def fig2_json(tmp_path):
    path = tmp_path / "fig2.json"
    path.write_text(json.dumps(tpdf_to_dict(fig2_graph())))
    return str(path)


@pytest.fixture
def fig1_json(tmp_path, fig1):
    path = tmp_path / "fig1.json"
    path.write_text(json.dumps(csdf_to_dict(fig1)))
    return str(path)


class TestAnalyze:
    def test_bounded_graph_exits_zero(self, fig2_json, capsys):
        assert main(["analyze", fig2_json]) == 0
        out = capsys.readouterr().out
        assert "bounded" in out
        assert "q[B] = 2*p" in out

    def test_csdf_graph_wrapped(self, fig1_json, capsys):
        assert main(["analyze", fig1_json]) == 0
        out = capsys.readouterr().out
        assert "q[a1] = 3" in out

    def test_symbolic_parametric_mcr(self, fig2_json, capsys):
        assert main(["analyze", fig2_json, "--symbolic",
                     "--param", "p=1..8"]) == 0
        out = capsys.readouterr().out
        assert "parametric MCR" in out
        assert "ring:B = 2*p" in out
        assert "p=1..8 -> ring:B" in out

    def test_param_implies_symbolic(self, fig2_json, capsys):
        assert main(["analyze", fig2_json, "--param", "p=2..4"]) == 0
        assert "parametric MCR" in capsys.readouterr().out

    def test_symbolic_missing_range_reports_error(self, fig2_json, capsys):
        # p never bound: the stage records the failure instead of crashing.
        assert main(["analyze", fig2_json, "--symbolic"]) == 0
        out = capsys.readouterr().out
        assert "parametric MCR FAILED" in out
        assert "does not bind" in out

    def test_bad_param_spec_exits(self, fig2_json):
        with pytest.raises(SystemExit):
            main(["analyze", fig2_json, "--param", "p=low..high"])

    def test_unbounded_graph_exits_one(self, tmp_path, capsys):
        g = TPDFGraph("bad")
        a = g.add_kernel("a")
        a.add_output("o1", 1)
        a.add_output("o2", 2)
        b = g.add_kernel("b")
        b.add_input("i1", 1)
        b.add_input("i2", 1)
        g.connect("a.o1", "b.i1")
        g.connect("a.o2", "b.i2")
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(tpdf_to_dict(g)))
        assert main(["analyze", str(path)]) == 1


class TestLint:
    def test_clean_graph(self, fig2_json, capsys):
        assert main(["lint", fig2_json]) == 0
        assert "clean" in capsys.readouterr().out

    def test_warnings_exit_one(self, tmp_path, capsys):
        g = TPDFGraph("warned")
        k = g.add_kernel("k")
        k.add_output("dangling", 1)
        path = tmp_path / "warned.json"
        path.write_text(json.dumps(tpdf_to_dict(g)))
        assert main(["lint", str(path)]) == 1
        assert "dangling-port" in capsys.readouterr().out


class TestDot:
    def test_tpdf_dot(self, fig2_json, capsys):
        assert main(["dot", fig2_json]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_csdf_dot(self, fig1_json, capsys):
        assert main(["dot", fig1_json]) == 0
        assert '"a1" -> "a2"' in capsys.readouterr().out


class TestSchedule:
    def test_schedule_with_bindings(self, fig2_json, capsys):
        assert main(["schedule", fig2_json, "--bind", "p=1", "--cores", "4"]) == 0
        out = capsys.readouterr().out
        assert "occurrences: 10" in out
        assert "makespan" in out

    def test_unfolded_schedule(self, fig1_json, capsys):
        assert main(["schedule", fig1_json, "--cores", "2",
                     "--unfolding", "2"]) == 0
        assert "occurrences: 14" in capsys.readouterr().out

    def test_bad_binding_syntax(self, fig2_json):
        with pytest.raises(SystemExit):
            main(["schedule", fig2_json, "--bind", "p2"])


class TestBuffers:
    def test_symbolic_when_unbound(self, fig2_json, capsys):
        assert main(["buffers", fig2_json]) == 0
        assert "p" in capsys.readouterr().out

    def test_concrete_with_bindings(self, fig2_json, capsys):
        assert main(["buffers", fig2_json, "--bind", "p=2"]) == 0
        assert "total:" in capsys.readouterr().out


class TestThroughput:
    def test_csdf_throughput(self, fig1_json, capsys):
        assert main(["throughput", fig1_json]) == 0
        out = capsys.readouterr().out
        assert "max cycle ratio" in out
        assert "self-timed steady period" in out

    def test_tpdf_with_bindings(self, fig2_json, capsys):
        assert main(["throughput", fig2_json, "--bind", "p=2",
                     "--iterations", "3"]) == 0
        assert "throughput" in capsys.readouterr().out


class TestErrors:
    def test_unknown_model(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"model": "???"}')
        with pytest.raises(SystemExit):
            main(["analyze", str(path)])
