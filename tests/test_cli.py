"""Tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.__main__ import main
from repro.io import csdf_to_dict, tpdf_to_dict
from repro.tpdf import TPDFGraph, fig2_graph


@pytest.fixture
def fig2_json(tmp_path):
    path = tmp_path / "fig2.json"
    path.write_text(json.dumps(tpdf_to_dict(fig2_graph())))
    return str(path)


@pytest.fixture
def fig1_json(tmp_path, fig1):
    path = tmp_path / "fig1.json"
    path.write_text(json.dumps(csdf_to_dict(fig1)))
    return str(path)


class TestAnalyze:
    def test_bounded_graph_exits_zero(self, fig2_json, capsys):
        assert main(["analyze", fig2_json]) == 0
        out = capsys.readouterr().out
        assert "bounded" in out
        assert "q[B] = 2*p" in out

    def test_csdf_graph_wrapped(self, fig1_json, capsys):
        assert main(["analyze", fig1_json]) == 0
        out = capsys.readouterr().out
        assert "q[a1] = 3" in out

    def test_symbolic_parametric_mcr(self, fig2_json, capsys):
        assert main(["analyze", fig2_json, "--symbolic",
                     "--param", "p=1..8"]) == 0
        out = capsys.readouterr().out
        assert "parametric MCR" in out
        assert "ring:B = 2*p" in out
        assert "p=1..8 -> ring:B" in out

    def test_param_implies_symbolic(self, fig2_json, capsys):
        assert main(["analyze", fig2_json, "--param", "p=2..4"]) == 0
        assert "parametric MCR" in capsys.readouterr().out

    def test_symbolic_missing_range_reports_error(self, fig2_json, capsys):
        # p never bound: the stage records the failure instead of crashing.
        assert main(["analyze", fig2_json, "--symbolic"]) == 0
        out = capsys.readouterr().out
        assert "parametric MCR FAILED" in out
        assert "does not bind" in out

    def test_bad_param_spec_exits(self, fig2_json):
        with pytest.raises(SystemExit):
            main(["analyze", fig2_json, "--param", "p=low..high"])

    def test_unbounded_graph_exits_one(self, tmp_path, capsys):
        g = TPDFGraph("bad")
        a = g.add_kernel("a")
        a.add_output("o1", 1)
        a.add_output("o2", 2)
        b = g.add_kernel("b")
        b.add_input("i1", 1)
        b.add_input("i2", 1)
        g.connect("a.o1", "b.i1")
        g.connect("a.o2", "b.i2")
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(tpdf_to_dict(g)))
        assert main(["analyze", str(path)]) == 1


class TestAnalyzeEdits:
    """The --edits incremental replay and its --verify-cold oracle."""

    @staticmethod
    def _script(tmp_path, edits):
        path = tmp_path / "edits.json"
        path.write_text(json.dumps(edits))
        return str(path)

    def test_replay_with_verify_cold(self, fig1_json, tmp_path, capsys):
        script = self._script(tmp_path, [
            {"op": "set_exec_time", "actor": "a1", "value": 5},
            {"op": "set_initial_tokens", "channel": "e2", "value": 3},
            {"op": "add_actor", "name": "x", "exec_time": 2},
            {"op": "add_channel", "src": "a3", "dst": "x"},
            {"op": "remove_actor", "name": "x"},
        ])
        assert main(["analyze", fig1_json, "--edits", script,
                     "--verify-cold"]) == 0
        out = capsys.readouterr().out
        assert "[baseline]" in out
        assert "[edit 4: remove_actor x]" in out
        assert out.count("verify-cold: ok") == 6
        assert "DIVERGED" not in out

    def test_edit_breaking_consistency_exits_one(self, fig1_json, tmp_path,
                                                 capsys):
        script = self._script(tmp_path, [
            {"op": "set_production", "channel": "e1", "value": [7]},
        ])
        assert main(["analyze", fig1_json, "--edits", script]) == 1
        assert "NOT bounded" in capsys.readouterr().out

    def test_unknown_target_reports_step(self, fig1_json, tmp_path):
        script = self._script(tmp_path, [
            {"op": "set_exec_time", "actor": "ghost", "value": 1},
        ])
        with pytest.raises(SystemExit, match="edit 0"):
            main(["analyze", fig1_json, "--edits", script])

    def test_unknown_op_reports_step(self, fig1_json, tmp_path):
        script = self._script(tmp_path, [{"op": "paint"}])
        with pytest.raises(SystemExit, match="edit 0"):
            main(["analyze", fig1_json, "--edits", script])

    def test_edits_require_csdf_graph(self, fig2_json, tmp_path):
        script = self._script(tmp_path, [])
        with pytest.raises(SystemExit, match="csdf-model"):
            main(["analyze", fig2_json, "--edits", script])

    def test_edits_require_single_graph(self, fig1_json, tmp_path):
        script = self._script(tmp_path, [])
        with pytest.raises(SystemExit, match="exactly one graph"):
            main(["analyze", fig1_json, fig1_json, "--edits", script])

    def test_edits_reject_jobs(self, fig1_json, tmp_path):
        script = self._script(tmp_path, [])
        with pytest.raises(SystemExit, match="drop --jobs"):
            main(["analyze", fig1_json, "--edits", script, "--jobs", "2"])

    def test_verify_cold_requires_edits(self, fig1_json):
        with pytest.raises(SystemExit, match="--edits"):
            main(["analyze", fig1_json, "--verify-cold"])

    def test_script_must_be_array(self, fig1_json, tmp_path):
        path = tmp_path / "edits.json"
        path.write_text(json.dumps({"op": "set_exec_time"}))
        with pytest.raises(SystemExit, match="JSON array"):
            main(["analyze", fig1_json, "--edits", str(path)])


class TestLint:
    def _warned_json(self, tmp_path):
        g = TPDFGraph("warned")
        k = g.add_kernel("k")
        k.add_output("dangling", 1)
        path = tmp_path / "warned.json"
        path.write_text(json.dumps(tpdf_to_dict(g)))
        return str(path)

    def _broken_json(self, tmp_path):
        from repro.csdf import CSDFGraph
        from repro.io import csdf_to_dict

        g = CSDFGraph("broken")
        g.add_actor("a", exec_time=1)
        g.add_actor("b", exec_time=1)
        g.add_channel("ab", "a", "b", production=2, consumption=3)
        g.add_channel("ab2", "a", "b", production=1, consumption=1)
        path = tmp_path / "broken.json"
        path.write_text(json.dumps(csdf_to_dict(g)))
        return str(path)

    def test_clean_graph(self, fig2_json, capsys):
        assert main(["lint", fig2_json]) == 0
        assert "clean" in capsys.readouterr().out

    # The exit-code contract: the default run is a *report* (always 0);
    # only --strict turns ERROR findings into exit 1.
    def test_findings_exit_zero_by_default(self, tmp_path, capsys):
        assert main(["lint", self._warned_json(tmp_path)]) == 0
        assert "STRUCT001" in capsys.readouterr().out

    def test_broken_graph_exits_zero_without_strict(self, tmp_path, capsys):
        assert main(["lint", self._broken_json(tmp_path)]) == 0
        assert "RATE001" in capsys.readouterr().out

    def test_strict_exits_one_on_error(self, tmp_path, capsys):
        assert main(["lint", self._broken_json(tmp_path), "--strict"]) == 1
        assert "RATE001" in capsys.readouterr().out

    def test_strict_exits_zero_on_warnings_only(self, tmp_path, capsys):
        assert main(["lint", self._warned_json(tmp_path), "--strict"]) == 0
        assert "STRUCT001" in capsys.readouterr().out

    def test_strict_exits_zero_on_clean(self, fig2_json):
        assert main(["lint", fig2_json, "--strict"]) == 0

    def test_json_format(self, tmp_path, capsys):
        assert main(["lint", self._broken_json(tmp_path),
                     "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert any(row["code"] == "RATE001" for row in rows)
        assert all({"code", "severity", "subject", "message"} <= set(row)
                   for row in rows)

    def test_codes_listing_needs_no_graph(self, capsys):
        assert main(["lint", "--codes"]) == 0
        out = capsys.readouterr().out
        assert "RATE001" in out and "STRUCT004" in out

    def test_lint_accepts_plain_csdf(self, fig1_json, capsys):
        # fig1 is a source-less cycle: STRUCT002 warnings, no errors —
        # so even --strict exits 0 on a plain-CSDF input.
        assert main(["lint", fig1_json, "--strict"]) == 0
        out = capsys.readouterr().out
        assert "STRUCT002" in out and "0 error(s)" in out


class TestDot:
    def test_tpdf_dot(self, fig2_json, capsys):
        assert main(["dot", fig2_json]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_csdf_dot(self, fig1_json, capsys):
        assert main(["dot", fig1_json]) == 0
        assert '"a1" -> "a2"' in capsys.readouterr().out


class TestSchedule:
    def test_schedule_with_bindings(self, fig2_json, capsys):
        assert main(["schedule", fig2_json, "--bind", "p=1", "--cores", "4"]) == 0
        out = capsys.readouterr().out
        assert "occurrences: 10" in out
        assert "makespan" in out

    def test_unfolded_schedule(self, fig1_json, capsys):
        assert main(["schedule", fig1_json, "--cores", "2",
                     "--unfolding", "2"]) == 0
        assert "occurrences: 14" in capsys.readouterr().out

    def test_bad_binding_syntax(self, fig2_json):
        with pytest.raises(SystemExit):
            main(["schedule", fig2_json, "--bind", "p2"])


class TestBuffers:
    def test_symbolic_when_unbound(self, fig2_json, capsys):
        assert main(["buffers", fig2_json]) == 0
        assert "p" in capsys.readouterr().out

    def test_concrete_with_bindings(self, fig2_json, capsys):
        assert main(["buffers", fig2_json, "--bind", "p=2"]) == 0
        assert "total:" in capsys.readouterr().out


class TestThroughput:
    def test_csdf_throughput(self, fig1_json, capsys):
        assert main(["throughput", fig1_json]) == 0
        out = capsys.readouterr().out
        assert "max cycle ratio" in out
        assert "self-timed steady period" in out

    def test_tpdf_with_bindings(self, fig2_json, capsys):
        assert main(["throughput", fig2_json, "--bind", "p=2",
                     "--iterations", "3"]) == 0
        assert "throughput" in capsys.readouterr().out

    def test_capacity_bounds(self, fig1_json, fig1, capsys):
        channel = sorted(fig1.channels)[0]
        assert main(["throughput", fig1_json,
                     "--cap", f"{channel}=64"]) == 0
        assert "steady period" in capsys.readouterr().out

    def test_unknown_capacity_name_exits(self, fig1_json):
        with pytest.raises(SystemExit, match="typo"):
            main(["throughput", fig1_json, "--cap", "typo=4"])

    def test_bad_capacity_syntax_exits(self, fig1_json):
        with pytest.raises(SystemExit, match="channel=tokens"):
            main(["throughput", fig1_json, "--cap", "e1"])

    def test_deadlocking_capacity_exits_one(self, fig1_json, fig1, capsys):
        caps = [f"{name}=1" for name in fig1.channels]
        args = ["throughput", fig1_json]
        for cap in caps:
            args += ["--cap", cap]
        code = main(args)
        out = capsys.readouterr().out
        if code == 1:
            assert "deadlock" in out
        else:  # fig1 happens to run under unit capacities
            assert "steady period" in out

    def test_probe_caps_batch(self, fig1_json, fig1, tmp_path, capsys):
        loose = {name: 64 for name in fig1.channels}
        tight = {name: 1 for name in fig1.channels}
        probe_file = tmp_path / "caps.json"
        probe_file.write_text(json.dumps([loose, tight]))
        code = main(["throughput", fig1_json,
                     "--probe-caps", str(probe_file)])
        out = capsys.readouterr().out
        assert "[0] period=" in out
        assert ("[1] period=" in out) or ("[1] deadlock" in out)
        assert code == (1 if "deadlock" in out else 0)

    def test_probe_caps_unknown_name_exits(self, fig1_json, tmp_path):
        probe_file = tmp_path / "caps.json"
        probe_file.write_text(json.dumps([{"typo": 4}]))
        with pytest.raises(SystemExit, match="typo"):
            main(["throughput", fig1_json, "--probe-caps", str(probe_file)])

    def test_probe_caps_requires_array(self, fig1_json, tmp_path):
        probe_file = tmp_path / "caps.json"
        probe_file.write_text(json.dumps({"e1": 4}))
        with pytest.raises(SystemExit, match="array"):
            main(["throughput", fig1_json, "--probe-caps", str(probe_file)])


class TestSimulate:
    def test_tpdf_simulation_summary(self, fig2_json, capsys):
        assert main(["simulate", fig2_json, "--bind", "p=2",
                     "--limit", "A=4"]) == 0
        out = capsys.readouterr().out
        assert "ready core:   arrays" in out
        assert "firings:" in out
        assert "buffer peaks" in out

    def test_reference_parity_flag(self, fig2_json, capsys):
        assert main(["simulate", fig2_json, "--bind", "p=2",
                     "--limit", "A=4", "--check-reference"]) == 0
        assert "reference parity: identical" in capsys.readouterr().out

    def test_csdf_graph_wrapped(self, fig1_json, capsys):
        assert main(["simulate", fig1_json, "--max-firings", "2000",
                     "--until", "40"]) == 0
        assert "end time:" in capsys.readouterr().out

    def test_requires_stop_condition(self, fig2_json):
        with pytest.raises(SystemExit, match="stop condition"):
            main(["simulate", fig2_json, "--bind", "p=2"])

    def test_unknown_limit_node_exits(self, fig2_json):
        with pytest.raises(SystemExit, match="unknown nodes"):
            main(["simulate", fig2_json, "--bind", "p=2",
                  "--limit", "typo=4"])

    def test_unknown_capacity_exits(self, fig2_json):
        with pytest.raises(SystemExit, match="typo"):
            main(["simulate", fig2_json, "--bind", "p=2",
                  "--limit", "A=4", "--cap", "typo=1"])

    def test_deadlocking_capacity_exits_one(self, fig2_json, capsys):
        code = main(["simulate", fig2_json, "--bind", "p=2",
                     "--limit", "A=8", "--cap", "e1=1"])
        out = capsys.readouterr().out
        if code == 1:
            assert "deadlock" in out
        else:  # fig2 happens to run under this bound
            assert "firings:" in out

    def test_gantt_output(self, fig2_json, capsys):
        assert main(["simulate", fig2_json, "--bind", "p=2",
                     "--limit", "A=2", "--gantt"]) == 0
        assert "|" in capsys.readouterr().out


class TestBufferSearch:
    def test_search_and_batched_agree(self, fig1_json, capsys):
        assert main(["buffers", fig1_json, "--search"]) == 0
        sequential = capsys.readouterr().out
        assert main(["buffers", fig1_json, "--search", "--batched"]) == 0
        batched = capsys.readouterr().out
        # Identical capacities and totals; only the probe accounting
        # line may differ.
        strip = lambda text: [line for line in text.splitlines()
                              if not line.startswith("probes executed")]
        assert strip(sequential) == strip(batched)
        assert "batch rounds:" in batched


class TestErrors:
    def test_unknown_model(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"model": "???"}')
        with pytest.raises(SystemExit):
            main(["analyze", str(path)])


class TestServe:
    def test_smoke_self_check(self, capsys):
        # starts a real service on an ephemeral port, round-trips one
        # analysis over HTTP, verifies bit-for-bit against direct
        assert main(["serve", "--smoke", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "smoke: ok" in out
        assert "mcr=3.0000" in out  # fig1's MCR through the wire

    def test_bad_worker_count_exits(self):
        with pytest.raises(SystemExit):
            main(["serve", "--smoke", "--workers", "0"])
