"""Tests for graph serialization and the rate-expression parser."""

import pytest

from repro.errors import GraphConstructionError
from repro.io import (
    csdf_from_dict,
    csdf_from_json,
    csdf_to_dict,
    csdf_to_json,
    parse_poly,
    tpdf_from_dict,
    tpdf_from_json,
    tpdf_to_dict,
    tpdf_to_json,
)
from repro.symbolic import Poly
from repro.tpdf import check_rate_safety, clock, fig2_graph, repetition_vector


class TestPolyParser:
    def test_constants(self):
        assert parse_poly("7") == Poly.const(7)
        assert parse_poly("1/2") == Poly.const(1).scale(1) / 1 if False else True
        # Fractions parse as rationals:
        from fractions import Fraction

        assert parse_poly("3/4").const_value() == Fraction(3, 4)

    def test_variables_and_products(self):
        assert parse_poly("2*p") == 2 * Poly.var("p")
        assert parse_poly("p*q") == Poly.var("p") * Poly.var("q")

    def test_powers(self):
        assert parse_poly("p**2") == Poly.var("p") ** 2

    def test_sums_and_differences(self):
        p = Poly.var("p")
        assert parse_poly("p + 1") == p + 1
        assert parse_poly("2*p - p") == p

    def test_parentheses(self):
        beta, n, l = (Poly.var(s) for s in ("beta", "N", "L"))
        assert parse_poly("beta*(N + L)") == beta * (n + l)

    def test_negation(self):
        assert parse_poly("-p + p").is_zero()

    def test_roundtrip_rendering(self):
        for text in ("3 + 12*N*beta + L*beta", "2*p", "p**2*q + 1"):
            poly = parse_poly(text)
            assert parse_poly(str(poly)) == poly

    def test_errors(self):
        for bad in ("", "p +", "(p", "p ** q", "p $"):
            with pytest.raises(ValueError):
                parse_poly(bad)


class TestTPDFRoundTrip:
    def test_fig2_roundtrip(self):
        graph = fig2_graph()
        clone = tpdf_from_json(tpdf_to_json(graph))
        assert repetition_vector(clone) == repetition_vector(graph)
        assert check_rate_safety(clone).safe
        assert set(clone.channels) == set(graph.channels)
        assert clone.parameters["p"].lo == 1

    def test_priorities_preserved(self):
        graph = fig2_graph()
        clone = tpdf_from_dict(tpdf_to_dict(graph))
        assert clone.node("F").port("from_e").priority == 2

    def test_clock_period_preserved(self):
        from repro.tpdf import TPDFGraph
        from repro.tpdf.builtins import ClockActor

        graph = TPDFGraph("clocked")
        clock(graph, "ck", period=125.0)
        k = graph.add_kernel("k")
        k.add_control_port("ctrl", 1)
        graph.connect("ck.tick", "k.ctrl")
        clone = tpdf_from_dict(tpdf_to_dict(graph))
        node = clone.node("ck")
        assert isinstance(node, ClockActor)
        assert node.period == 125.0

    def test_meta_preserved(self):
        from repro.tpdf import TPDFGraph, transaction

        graph = TPDFGraph()
        transaction(graph, "t", inputs=2)
        clone = tpdf_from_dict(tpdf_to_dict(graph))
        assert clone.node("t").meta["builtin"] == "transaction"
        assert clone.node("t").meta["action"] == "priority_deadline"

    def test_wrong_model_rejected(self):
        with pytest.raises(GraphConstructionError):
            tpdf_from_dict({"model": "csdf", "nodes": [], "channels": []})


class TestCSDFRoundTrip:
    def test_fig1_roundtrip(self, fig1):
        clone = csdf_from_json(csdf_to_json(fig1))
        from repro.csdf import concrete_repetition_vector, find_sequential_schedule

        assert concrete_repetition_vector(clone) == {"a1": 3, "a2": 2, "a3": 2}
        assert str(find_sequential_schedule(clone)) == "(a3)^2 (a1)^3 (a2)^2"
        assert clone.channel("e2").initial_tokens == 2

    def test_parametric_roundtrip(self):
        from repro.csdf import CSDFGraph

        g = CSDFGraph("param")
        g.add_actor("a", exec_time=[1.0, 2.5])
        g.add_actor("b")
        g.add_channel("e", "a", "b", [Poly.var("p"), 2 * Poly.var("p")], 1)
        clone = csdf_from_dict(csdf_to_dict(g))
        assert clone.channel("e").production.bind({"p": 2}).as_ints() == (2, 4)
        assert clone.actor("a").exec_times == (1.0, 2.5)

    def test_wrong_model_rejected(self):
        with pytest.raises(GraphConstructionError):
            csdf_from_dict({"model": "tpdf", "actors": [], "channels": []})
