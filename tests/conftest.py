"""Shared fixtures: the paper's example graphs."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.symbolic import Param
from repro.csdf import CSDFGraph
from repro.tpdf import TPDFGraph, fig2_graph

settings.register_profile(
    "repro",
    deadline=None,
    max_examples=50,
    suppress_health_check=[HealthCheck.too_slow],
)
# Derandomized profile for the CI differential shard: property-based
# examples are derived from each test's name, so a red run bisects.
settings.register_profile(
    "repro-ci",
    deadline=None,
    max_examples=50,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
import os as _os

settings.load_profile(_os.environ.get("HYPOTHESIS_PROFILE", "repro"))


@pytest.fixture
def fig1() -> CSDFGraph:
    """The paper's Fig. 1 CSDF graph (q = [3, 2, 2])."""
    from repro.gallery import fig1_graph

    return fig1_graph()


@pytest.fixture
def fig2() -> TPDFGraph:
    """The paper's Fig. 2 TPDF graph (q = [2, 2p, p, p, 2p, 2p])."""
    return fig2_graph()


def build_fig4(back_production, initial_tokens: int) -> TPDFGraph:
    """The Fig. 4 liveness examples (delegates to the gallery)."""
    from repro.gallery import fig4_graph

    case = {((0, 2), 2): "a", ((2, 0), 1): "b", ((2, 0), 0): "dead"}.get(
        (tuple(back_production), initial_tokens)
    )
    if case is not None:
        return fig4_graph(case)
    # Non-standard variants are built directly.
    p = Param("p")
    g = TPDFGraph("fig4custom", parameters=[p])
    a = g.add_kernel("A")
    a.add_output("out", [p, p])
    b = g.add_kernel("B")
    b.add_input("in", [1, 1])
    b.add_output("to_c", 1)
    b.add_input("back", [1, 1])
    c = g.add_kernel("C")
    c.add_input("in", 1)
    c.add_output("back", back_production)
    g.connect("A.out", "B.in", name="e1")
    g.connect("B.to_c", "C.in", name="e2")
    g.connect("C.back", "B.back", name="e3", initial_tokens=initial_tokens)
    return g


@pytest.fixture
def fig4a() -> TPDFGraph:
    return build_fig4([0, 2], 2)


@pytest.fixture
def fig4b() -> TPDFGraph:
    return build_fig4([2, 0], 1)


@pytest.fixture
def simple_pipeline() -> TPDFGraph:
    """src -> mid -> snk, unit rates; the smallest useful TPDF graph."""
    g = TPDFGraph("pipeline")
    src = g.add_kernel("src")
    src.add_output("out", 1)
    mid = g.add_kernel("mid")
    mid.add_input("in", 1)
    mid.add_output("out", 1)
    snk = g.add_kernel("snk")
    snk.add_input("in", 1)
    g.connect("src.out", "mid.in", name="c1")
    g.connect("mid.out", "snk.in", name="c2")
    return g
