"""Sequential-parity differential suite for the parallel batch-analysis
service.

``analyze_batch(jobs=n)`` ships graphs to worker processes through the
pickle-safe codec, analyzes decoded copies, and reassembles the results
by index.  Everything that could drift — codec round-trip fidelity,
chunking, shard ordering, worker cache warm-up, error capture across
the process boundary — is cross-validated here against the in-process
sequential path on a 200-graph seeded random corpus plus targeted edge
cases.  Comparison is by :meth:`GraphReport.fingerprint`, which covers
every analysis field bit-for-bit (floats included, no tolerance) and
excludes only the graph object identity and wall-clock time.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    GraphReport,
    _analyze_chunk,
    _effective_jobs,
    _worker_graph,
    analyze,
    analyze_batch,
    warm_graph,
)
from repro.cache import analysis_cache
from repro.csdf import CSDFGraph
from repro.errors import GraphConstructionError
from repro.io import graph_from_payload, graph_to_payload
from repro.tpdf import TPDFGraph, random_consistent_graph

#: (actors, extra_edges, back_edges, parametric, with_control) shapes;
#: 8 shapes x 25 seeds = 200 random graphs.
SHAPES = (
    (3, 1, 0, False, False),
    (4, 2, 1, False, False),
    (5, 2, 0, False, True),
    (5, 3, 2, False, False),
    (6, 3, 1, False, True),
    (6, 2, 0, True, False),
    (7, 3, 0, True, True),
    (8, 4, 2, False, False),
)
SEEDS_PER_SHAPE = 25


def _corpus_items():
    """The 200-graph corpus as analyze_batch items (parametric graphs
    get a concrete valuation so the performance stages run)."""
    items = []
    for n, extra, cycles, parametric, control in SHAPES:
        for seed in range(SEEDS_PER_SHAPE):
            graph = random_consistent_graph(
                n, extra_edges=extra, n_cycles=cycles, seed=seed,
                parametric=parametric, with_control=control,
            )
            items.append((graph, {"p": 2} if parametric else None))
    return items


@pytest.fixture(scope="module")
def corpus():
    return _corpus_items()


@pytest.fixture(scope="module")
def sequential_reports(corpus):
    return analyze_batch(corpus, iterations=3)


class TestSequentialParity:
    """The acceptance criterion: bit-identical results on 200+ graphs."""

    def test_corpus_is_at_least_200_graphs(self, corpus):
        assert len(corpus) >= 200
        assert len({id(graph) for graph, _ in corpus}) >= 200

    def test_bit_identical_on_corpus(self, corpus, sequential_reports):
        parallel = analyze_batch(corpus, jobs=2, iterations=3)
        assert len(parallel) == len(sequential_reports)
        for i, (seq, par) in enumerate(zip(sequential_reports, parallel)):
            assert par.graph is corpus[i][0], "caller's graph object re-attached"
            assert par.fingerprint() == seq.fingerprint(), (
                f"parallel result diverged on corpus item {i} ({seq.name})"
            )

    def test_chunk_size_extremes(self, corpus, sequential_reports):
        """chunk_size=1 (maximal dispatch) and one-giant-chunk both
        reproduce the sequential results on a corpus slice."""
        sample = corpus[::20]
        expected = [sequential_reports[i].fingerprint()
                    for i in range(0, len(corpus), 20)]
        one_by_one = analyze_batch(sample, jobs=2, chunk_size=1, iterations=3)
        giant = analyze_batch(sample, jobs=2, chunk_size=10_000, iterations=3)
        assert [r.fingerprint() for r in one_by_one] == expected
        assert [r.fingerprint() for r in giant] == expected

    def test_more_jobs_than_items(self):
        graphs = [random_consistent_graph(4, seed=s) for s in (0, 1)]
        seq = analyze_batch(graphs)
        par = analyze_batch(graphs, jobs=8)
        assert [r.fingerprint() for r in par] == [r.fingerprint() for r in seq]

    def test_input_order_preserved_across_shards(self):
        """Items are sharded by graph and chunked out of input order;
        the result list must still match the input ordering exactly."""
        a = random_consistent_graph(4, seed=1, parametric=True)
        b = random_consistent_graph(5, seed=2)
        c = b.as_csdf()
        items = [(a, {"p": 1}), b, (c, None), (a, {"p": 2}), b, (a, {"p": 4})]
        seq = analyze_batch(items)
        par = analyze_batch(items, jobs=3, chunk_size=2)
        assert [r.name for r in par] == [r.name for r in seq]
        assert [r.bindings for r in par] == [r.bindings for r in seq]
        assert [r.fingerprint() for r in par] == [r.fingerprint() for r in seq]

    def test_shared_graph_items_reattach_same_object(self):
        graph = random_consistent_graph(4, seed=3, parametric=True)
        reports = analyze_batch(
            [(graph, {"p": v}) for v in (1, 2, 3, 4)], jobs=2, chunk_size=1
        )
        assert all(r.graph is graph for r in reports)

    def test_inconsistent_graph_error_crosses_process_boundary(self):
        bad = CSDFGraph("bad")
        bad.add_actor("a")
        bad.add_actor("b")
        bad.add_channel("ab", "a", "b", production=2, consumption=3)
        bad.add_channel("ab2", "a", "b", production=1, consumption=1)
        good = random_consistent_graph(3, seed=0)
        seq = analyze_batch([bad, good])
        par = analyze_batch([bad, good], jobs=2, chunk_size=1)
        assert not seq[0].consistent and "consistency" in seq[0].errors
        assert [r.fingerprint() for r in par] == [r.fingerprint() for r in seq]

    def test_deadlocked_graph_parity(self):
        dead = CSDFGraph("dead")
        dead.add_actor("a")
        dead.add_actor("b")
        dead.add_channel("ab", "a", "b")
        dead.add_channel("ba", "b", "a")  # tokenless cycle
        seq, = analyze_batch([dead])
        par, = analyze_batch([dead, dead], jobs=2)[:1]
        assert seq.live is False
        assert par.fingerprint() == seq.fingerprint()

    def test_options_forwarded_to_workers(self):
        graph = random_consistent_graph(4, seed=5)
        seq, = analyze_batch([graph], with_buffers=False, iterations=2)
        par = analyze_batch([graph, graph], jobs=2, with_buffers=False,
                            iterations=2)
        assert seq.buffers is None
        for r in par:
            assert r.fingerprint() == seq.fingerprint()

    def test_jobs_zero_means_auto(self):
        graphs = [random_consistent_graph(3, seed=s) for s in (0, 1, 2)]
        seq = analyze_batch(graphs)
        par = analyze_batch(graphs, jobs=0)
        assert [r.fingerprint() for r in par] == [r.fingerprint() for r in seq]

    def test_bad_arguments_raise(self):
        graph = random_consistent_graph(3, seed=0)
        with pytest.raises(ValueError):
            analyze_batch([graph, graph], jobs=-1)
        with pytest.raises(ValueError):
            analyze_batch([graph, graph], jobs=2, chunk_size=0)


class TestCodec:
    """The pickle-safe payload codec underpinning the worker hand-off."""

    def test_payload_is_plain_data(self):
        graph = random_consistent_graph(5, extra_edges=2, seed=7,
                                        parametric=True, with_control=True)
        payload = graph_to_payload(graph)

        def plain(value):
            if isinstance(value, dict):
                return all(isinstance(k, str) and plain(v) for k, v in value.items())
            if isinstance(value, (list, tuple)):
                return all(plain(v) for v in value)
            return value is None or isinstance(value, (str, int, float, bool))

        assert plain(payload)

    def test_roundtrip_preserves_analysis_results(self):
        graph = random_consistent_graph(6, extra_edges=3, n_cycles=1, seed=11,
                                        with_control=True)
        clone = graph_from_payload(graph_to_payload(graph))
        assert analyze(clone).fingerprint() == analyze(graph).fingerprint()

    def test_roundtrip_strips_caches_and_callables(self):
        graph = random_consistent_graph(4, seed=2)
        for kernel in graph.kernels.values():
            kernel.function = lambda *tokens: tokens  # unpicklable closure
        analyze(graph)  # populate caches
        assert analysis_cache(graph)
        clone = graph_from_payload(graph_to_payload(graph))
        assert not analysis_cache(clone)
        assert all(k.function is None for k in clone.kernels.values())

    def test_kernel_modes_roundtrip(self, fig2):
        clone = graph_from_payload(graph_to_payload(fig2))
        assert clone.kernels["F"].modes == fig2.kernels["F"].modes

    def test_csdf_payload_roundtrip(self, fig1):
        clone = graph_from_payload(graph_to_payload(fig1))
        assert isinstance(clone, CSDFGraph)
        assert analyze(clone).fingerprint() == analyze(fig1).fingerprint()

    def test_frozen_memoized_view_is_encodable(self):
        graph = random_consistent_graph(4, seed=6)
        view = graph.as_csdf()
        assert view.frozen
        clone = graph_from_payload(graph_to_payload(view))
        assert not clone.frozen, "decoded copies are fresh and mutable"
        assert analyze(clone).fingerprint() == analyze(view).fingerprint()

    def test_unknown_payload_rejected(self):
        with pytest.raises(GraphConstructionError):
            graph_from_payload({"model": "hsdf?"})
        with pytest.raises(GraphConstructionError):
            graph_to_payload(object())  # type: ignore[arg-type]


class TestWorkerMachinery:
    def test_warm_graph_populates_shared_caches(self):
        graph = random_consistent_graph(4, seed=8)
        assert not analysis_cache(graph.as_csdf())
        warm_graph(graph)
        cache = analysis_cache(graph.as_csdf())
        assert ("repetition_vector",) in cache

    def test_warm_graph_caches_negative_verdicts(self):
        bad = CSDFGraph("bad")
        bad.add_actor("a")
        bad.add_actor("b")
        bad.add_channel("ab", "a", "b", production=2, consumption=3)
        bad.add_channel("ab2", "a", "b", production=1, consumption=1)
        warm_graph(bad)  # must not raise
        assert ("base_solution",) in analysis_cache(bad)

    def test_worker_graph_decodes_once_per_key(self):
        graph = random_consistent_graph(3, seed=4)
        payload = graph_to_payload(graph)
        key = ("test-token-decode-once", 0)
        first = _worker_graph(key, payload)
        second = _worker_graph(key, payload)
        assert first is second

    def test_analyze_chunk_reports_are_index_tagged_and_detached(self):
        graph = random_consistent_graph(3, seed=4)
        payload = graph_to_payload(graph)
        key = ("test-token-chunk", 0)
        out = _analyze_chunk(({key: payload}, [(7, key, None), (3, key, None)]),
                             {"iterations": 2})
        assert [index for index, _ in out] == [7, 3]
        assert all(isinstance(r, GraphReport) and r.graph is None for _, r in out)

    def test_effective_jobs(self):
        assert _effective_jobs(None) == 1
        assert _effective_jobs(1) == 1
        assert _effective_jobs(4) == 4
        assert _effective_jobs(0) >= 1
        with pytest.raises(ValueError):
            _effective_jobs(-2)


class TestCLIJobs:
    def _write_graphs(self, tmp_path):
        from repro.io import tpdf_to_json

        paths = []
        for seed in (0, 1, 2):
            graph = random_consistent_graph(4, extra_edges=1, seed=seed)
            path = tmp_path / f"g{seed}.json"
            path.write_text(tpdf_to_json(graph))
            paths.append(str(path))
        return paths

    def test_cli_jobs_output_matches_sequential(self, tmp_path, capsys):
        from repro.__main__ import main

        paths = self._write_graphs(tmp_path)
        assert main(["analyze", *paths]) == 0
        sequential = capsys.readouterr().out
        assert main(["analyze", *paths, "--jobs", "2", "--chunk-size", "1"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == sequential
