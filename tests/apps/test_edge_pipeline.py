"""Tests for the Fig. 6 edge-detection application."""

import numpy as np
import pytest

from repro.apps.edge import (
    PAPER_TIMES_MS,
    build_edge_graph,
    fig6_table,
    model_time_ms,
    run_edge_experiment,
)
from repro.tpdf import check_boundedness, check_rate_safety, repetition_vector

IMAGE = np.zeros((1024, 1024))


class TestStaticProperties:
    def test_graph_consistent_all_ones(self):
        graph, _ = build_edge_graph([IMAGE])
        q = repetition_vector(graph)
        assert all(str(v) == "1" for v in q.values())

    def test_graph_rate_safe(self):
        graph, _ = build_edge_graph([IMAGE])
        assert check_rate_safety(graph).safe

    def test_graph_bounded(self):
        graph, _ = build_edge_graph([IMAGE])
        assert check_boundedness(graph).bounded

    def test_unknown_method_rejected(self):
        with pytest.raises(KeyError):
            build_edge_graph([IMAGE], methods=["sobel", "nonsense"])


class TestTimingModel:
    def test_fig6_anchor_values(self):
        table = {m: model for m, _, model in fig6_table(1024)}
        assert table == PAPER_TIMES_MS

    def test_scales_with_pixels(self):
        half = model_time_ms("sobel", 512, 512)
        assert half == pytest.approx(PAPER_TIMES_MS["sobel"] / 4)

    def test_canny_content_dependence(self):
        sparse = model_time_ms("canny", 1024, 1024, density=0.0)
        dense = model_time_ms("canny", 1024, 1024, density=0.2)
        assert dense > sparse
        assert model_time_ms("canny", 1024, 1024) == PAPER_TIMES_MS["canny"]

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            model_time_ms("magic", 10, 10)


class TestDeadlineBehaviour:
    def test_paper_scenario_500ms(self):
        exp = run_edge_experiment([IMAGE], period=500.0, frames=1)
        assert exp.finished_by_deadline() == ["quickmask", "sobel"]
        assert exp.chosen_methods() == ["sobel"]

    def test_short_deadline_picks_quickmask(self):
        exp = run_edge_experiment([IMAGE], period=250.0, frames=1)
        assert exp.chosen_methods() == ["quickmask"]

    def test_long_deadline_picks_canny(self):
        exp = run_edge_experiment([IMAGE], period=1100.0, frames=1)
        assert exp.chosen_methods() == ["canny"]

    def test_first_completions_match_model(self):
        exp = run_edge_experiment([IMAGE], period=500.0, frames=1)
        for method in ("quickmask", "sobel", "prewitt"):
            assert exp.first_completion[method] == pytest.approx(PAPER_TIMES_MS[method])
        # Canny is content-dependent: a featureless frame runs at the
        # fast end of the model's [0.85, 1.15] content span.
        canny = exp.first_completion["canny"]
        assert 0.85 * PAPER_TIMES_MS["canny"] <= canny <= 1.15 * PAPER_TIMES_MS["canny"]

    def test_rejected_results_discarded(self):
        exp = run_edge_experiment([IMAGE], period=500.0, frames=1)
        # Prewitt and Canny results (and quickmask, outranked by sobel)
        # are flushed, not forwarded.
        assert exp.trace.discarded_tokens() >= 3

    def test_multiple_frames(self):
        exp = run_edge_experiment([IMAGE], period=500.0, frames=3,
                                  horizon=6000.0)
        assert len(exp.chosen) == 3

    def test_smaller_image_beats_deadline(self):
        small = np.zeros((512, 512))
        exp = run_edge_experiment([small], period=500.0, frames=1)
        # Canny at 512^2 costs 260 model ms < 500: everything finishes.
        assert exp.chosen_methods() == ["canny"]

    def test_method_subset(self):
        exp = run_edge_experiment([IMAGE], period=500.0, frames=1,
                                  methods=("quickmask", "canny"))
        assert exp.chosen_methods() == ["quickmask"]

    def test_kirsch_participates_with_estimated_time(self):
        """Kirsch has no paper timing row; the model estimates it from
        operation counts and it slots between Prewitt and Canny in
        quality, so with a long deadline it loses only to Canny."""
        exp = run_edge_experiment(
            [IMAGE], period=2500.0, frames=1,
            methods=("quickmask", "sobel", "prewitt", "kirsch", "canny"),
        )
        assert exp.chosen_methods() == ["canny"]
        exp2 = run_edge_experiment(
            [IMAGE], period=2000.0, frames=1,
            methods=("quickmask", "kirsch", "canny"),
        )
        # kirsch (est. ~1892 model ms) finished, canny (~884 on a flat
        # frame) also finished -> canny still wins on priority.
        assert "kirsch" in exp2.finished_by_deadline()


class TestStreamingLatency:
    def test_single_frame_latency_is_first_deadline(self):
        exp = run_edge_experiment([IMAGE], period=500.0, frames=1)
        assert exp.frame_latencies() == [500.0]

    def test_unpaced_source_builds_backlog(self):
        """An unpaced IRead floods all frames at t=0; each tick drains
        one result, so per-frame latency grows by one period."""
        exp = run_edge_experiment([IMAGE], period=500.0, frames=3,
                                  horizon=8000.0)
        assert exp.frame_latencies() == [500.0, 1000.0, 1500.0]
        assert exp.latency_jitter() == 1000.0

    def test_paced_source_zero_jitter(self):
        """Pacing IRead at the clock period gives periodic output: every
        frame waits the same number of ticks."""
        from repro.apps.edge import build_edge_graph
        from repro.sim import Simulator

        graph, results = build_edge_graph([IMAGE], period=500.0,
                                          read_time=500.0)
        sim = Simulator(graph, record_values=True)
        trace = sim.run(until=8000.0, limits={"IRead": 3})
        reads = trace.firings_of("IRead")
        writes = trace.firings_of("IWrite")
        latencies = [w.end - r.start for r, w in zip(reads, writes)]
        assert len(latencies) == 3
        assert max(latencies) - min(latencies) == 0.0
        assert len(results) == 3
