"""Tests for constellation mapping/demapping."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps.ofdm import BITS_PER_SYMBOL, demap_symbols, map_bits, scheme_for_m


class TestSchemes:
    def test_scheme_for_m(self):
        assert scheme_for_m(2) == "qpsk"
        assert scheme_for_m(4) == "qam16"

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            scheme_for_m(3)

    def test_bits_per_symbol(self):
        assert BITS_PER_SYMBOL == {"qpsk": 2, "qam16": 4}


class TestMapping:
    def test_qpsk_unit_power(self):
        bits = np.array([0, 0, 0, 1, 1, 0, 1, 1])
        symbols = map_bits(bits, "qpsk")
        assert np.allclose(np.abs(symbols), 1.0)

    def test_qam16_average_power(self):
        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, 4000)
        symbols = map_bits(bits, "qam16")
        assert np.mean(np.abs(symbols) ** 2) == pytest.approx(1.0, rel=0.1)

    def test_qpsk_constellation_size(self):
        bits = np.array([b for i in range(4) for b in (i >> 1 & 1, i & 1)])
        symbols = map_bits(bits, "qpsk")
        assert len(set(np.round(symbols, 6))) == 4

    def test_qam16_constellation_size(self):
        bits = np.array([b for i in range(16)
                         for b in (i >> 3 & 1, i >> 2 & 1, i >> 1 & 1, i & 1)])
        symbols = map_bits(bits, "qam16")
        assert len(set(np.round(symbols, 6))) == 16

    def test_length_validation(self):
        with pytest.raises(ValueError):
            map_bits(np.array([0, 1, 0]), "qpsk")


class TestRoundTrips:
    @given(st.binary(min_size=1, max_size=32))
    def test_qpsk_roundtrip(self, data):
        bits = np.array([b & 1 for b in data for _ in (0, 1)])[: 2 * len(data)]
        bits = np.resize(bits, (len(bits) // 2) * 2)
        if bits.size == 0:
            return
        assert np.array_equal(demap_symbols(map_bits(bits, "qpsk"), "qpsk"), bits)

    @given(st.lists(st.integers(0, 1), min_size=4, max_size=64))
    def test_qam16_roundtrip(self, bit_list):
        bits = np.array(bit_list[: (len(bit_list) // 4) * 4])
        if bits.size == 0:
            return
        assert np.array_equal(demap_symbols(map_bits(bits, "qam16"), "qam16"), bits)

    def test_qpsk_gray_single_bit_noise_resilience(self):
        """Gray coding: a small perturbation flips at most one bit."""
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, 200)
        symbols = map_bits(bits, "qpsk")
        noisy = symbols + 0.05 * (rng.normal(size=symbols.size)
                                  + 1j * rng.normal(size=symbols.size))
        assert np.array_equal(demap_symbols(noisy, "qpsk"), bits)

    def test_qam16_small_noise_resilience(self):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, 400)
        symbols = map_bits(bits, "qam16")
        noisy = symbols + 0.02 * (rng.normal(size=symbols.size)
                                  + 1j * rng.normal(size=symbols.size))
        assert np.array_equal(demap_symbols(noisy, "qam16"), bits)
