"""Tests for the VC-1-style decoder and AVC-style motion search (EXT1)."""

import numpy as np
import pytest

from repro.apps.video import (
    BLOCK,
    SEARCH_COST,
    SEARCH_QUALITY,
    block_count,
    build_decoder_graph,
    dct_block,
    dequantize,
    idct_block,
    join_blocks,
    motion_search_full,
    motion_search_threestep,
    motion_search_zero,
    quantize,
    run_decoder,
    run_motion_experiment,
    sad,
    split_blocks,
    synthetic_video,
)
from repro.tpdf import check_boundedness, check_liveness, lint, repetition_vector


class TestBlockPrimitives:
    def test_split_join_roundtrip(self):
        frame = synthetic_video(1, 32, 48)[0]
        assert np.array_equal(join_blocks(split_blocks(frame), frame.shape), frame)

    def test_block_count(self):
        frame = np.zeros((32, 48))
        assert block_count(frame) == 4 * 6

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            split_blocks(np.zeros((30, 32)))
        with pytest.raises(ValueError):
            join_blocks([np.zeros((8, 8))], (32, 32))

    def test_dct_roundtrip(self):
        rng = np.random.default_rng(0)
        block = rng.uniform(0, 255, (BLOCK, BLOCK))
        assert np.allclose(idct_block(dct_block(block)), block)

    def test_quantization_error_bounded(self):
        rng = np.random.default_rng(1)
        coeffs = rng.uniform(-100, 100, (BLOCK, BLOCK))
        step = 2.0
        restored = dequantize(quantize(coeffs, step), step)
        assert np.abs(restored - coeffs).max() <= step / 2 + 1e-12

    def test_quantize_step_validated(self):
        with pytest.raises(ValueError):
            quantize(np.zeros((8, 8)), 0.0)


class TestMotionSearch:
    def make_pair(self, dy=2, dx=1):
        rng = np.random.default_rng(3)
        reference = rng.uniform(0, 255, (32, 32))
        current = np.roll(np.roll(reference, -dy, axis=0), -dx, axis=1)
        return reference, current

    def test_full_search_finds_translation(self):
        reference, current = self.make_pair(2, 1)
        block = current[8:16, 8:16]
        mv, cost = motion_search_full(reference, block, 8, 8, radius=4)
        assert mv == (2, 1)
        assert cost == pytest.approx(0.0)

    def test_threestep_at_least_as_good_as_zero(self):
        reference, current = self.make_pair(2, 2)
        block = current[8:16, 8:16]
        _, zero_cost = motion_search_zero(reference, block, 8, 8)
        _, ts_cost = motion_search_threestep(reference, block, 8, 8, radius=4)
        assert ts_cost <= zero_cost

    def test_full_is_optimal(self):
        reference, current = self.make_pair(3, 0)
        block = current[8:16, 8:16]
        _, full_cost = motion_search_full(reference, block, 8, 8, radius=4)
        _, ts_cost = motion_search_threestep(reference, block, 8, 8, radius=4)
        assert full_cost <= ts_cost

    def test_sad_zero_for_identical(self):
        block = np.ones((8, 8))
        assert sad(block, block) == 0.0

    def test_cost_quality_tables_consistent(self):
        assert SEARCH_COST["zero"] < SEARCH_COST["threestep"] < SEARCH_COST["full"]
        assert SEARCH_QUALITY["zero"] < SEARCH_QUALITY["threestep"] < SEARCH_QUALITY["full"]


class TestDecoderGraph:
    def test_static_analyses(self):
        graph = build_decoder_graph()
        q = repetition_vector(graph)
        assert all(str(v) == "1" for v in q.values())
        assert check_liveness(graph).live  # feedback cycle seeded
        assert check_boundedness(graph).bounded
        assert lint(graph) == []

    def test_feedback_cycle_needs_initial_frame(self):
        graph = build_decoder_graph()
        # Removing the initial token deadlocks MC's self-loop.
        graph.channels["e_ref"].initial_tokens = 0
        assert not check_liveness(graph).live

    def test_no_parameter_communication_actors(self):
        """The Sec. V claim: TPDF needs no modifier/user actors for the
        parameter p — it appears only in rates."""
        graph = build_decoder_graph()
        assert set(graph.node_names()) == {
            "BITS", "HDR", "ED", "IQT", "MC", "SNK",
        }
        assert "p" in graph.parameters


class TestDecoderExecution:
    def test_intra_near_lossless(self):
        frames = synthetic_video(3, 32, 32)
        result = run_decoder(frames, step=0.001, mode="intra")
        assert len(result.frames) == 3
        assert result.psnr(frames) > 60.0

    def test_inter_near_lossless(self):
        frames = synthetic_video(4, 32, 32)
        result = run_decoder(frames, step=0.001, mode="inter")
        assert result.psnr(frames) > 60.0

    def test_coarse_quantization_degrades(self):
        frames = synthetic_video(2, 32, 32)
        fine = run_decoder(frames, step=0.01).psnr(frames)
        coarse = run_decoder(frames, step=16.0).psnr(frames)
        assert coarse < fine

    def test_counts_one_firing_per_frame(self):
        frames = synthetic_video(3, 32, 32)
        result = run_decoder(frames, step=1.0)
        counts = result.trace.counts()
        assert counts["MC"] == 3
        assert counts["HDR"] == 3

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            run_decoder(synthetic_video(1), mode="wat")
        with pytest.raises(ValueError):
            run_decoder([], mode="intra")


class TestMotionExperiment:
    @pytest.fixture(scope="class")
    def frames(self):
        return synthetic_video(3, 32, 32, motion=(1, 2))

    def test_tight_deadline_low_quality(self, frames):
        exp = run_motion_experiment(frames, deadline=5.0)
        assert set(exp.chosen_strategy) == {"zero"}

    def test_loose_deadline_best_quality(self, frames):
        exp = run_motion_experiment(frames, deadline=100.0)
        assert set(exp.chosen_strategy) == {"full"}

    def test_quality_improves_with_deadline(self, frames):
        tight = run_motion_experiment(frames, deadline=5.0)
        loose = run_motion_experiment(frames, deadline=100.0)
        assert loose.mean_sad <= tight.mean_sad

    def test_strategy_sad_ordering(self, frames):
        exp = run_motion_experiment(frames, deadline=5.0)
        assert exp.strategy_sad["full"] <= exp.strategy_sad["threestep"]
        assert exp.strategy_sad["threestep"] <= exp.strategy_sad["zero"]

    def test_needs_two_frames(self):
        with pytest.raises(ValueError):
            run_motion_experiment(synthetic_video(1), deadline=10.0)
