"""Tests for the OFDM demodulator graphs and the Fig. 8 buffer study."""

import numpy as np
import pytest

from repro.apps.ofdm import (
    OFDMTransmitter,
    bindings_for,
    build_ofdm_csdf,
    build_ofdm_tpdf,
    fft_symbols,
    fig8_point,
    fig8_series,
    measured_csdf_buffer,
    measured_tpdf_buffer,
    paper_csdf_buffer,
    paper_tpdf_buffer,
    remove_cyclic_prefix,
    run_ofdm_tpdf,
)
from repro.csdf import concrete_repetition_vector as csdf_q
from repro.tpdf import check_boundedness, check_rate_safety
from repro.tpdf import concrete_repetition_vector as tpdf_q


class TestTransmitter:
    def test_activation_shape(self):
        tx = OFDMTransmitter(n=8, l=2, scheme="qpsk", beta=3)
        samples = tx.activation()
        assert samples.size == 3 * 10
        assert tx.bits_per_activation == 3 * 2 * 8

    def test_cp_is_cyclic(self):
        tx = OFDMTransmitter(n=8, l=2, scheme="qpsk", beta=1)
        samples = tx.activation()
        # Prefix repeats the symbol tail: s[0:2] == s[8:10].
        assert np.allclose(samples[:2], samples[8:10])

    def test_rcp_fft_roundtrip(self):
        tx = OFDMTransmitter(n=16, l=4, scheme="qam16", beta=2, seed=5)
        samples = tx.activation()
        stripped = remove_cyclic_prefix(samples, 16, 4)
        symbols = fft_symbols(stripped, 16)
        from repro.apps.ofdm import demap_symbols

        bits = demap_symbols(symbols, "qam16")
        assert np.array_equal(bits, tx.all_sent_bits())

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            OFDMTransmitter(n=1, l=0, scheme="qpsk", beta=1)
        with pytest.raises(ValueError):
            OFDMTransmitter(n=8, l=8, scheme="qpsk", beta=1)
        with pytest.raises(ValueError):
            OFDMTransmitter(n=8, l=1, scheme="qpsk", beta=0)
        with pytest.raises(ValueError):
            OFDMTransmitter(n=8, l=1, scheme="wat", beta=1)

    def test_rcp_validates_block_size(self):
        with pytest.raises(ValueError):
            remove_cyclic_prefix(np.zeros(7), 4, 1)


class TestStaticProperties:
    def test_tpdf_repetition_all_ones(self):
        q = tpdf_q(build_ofdm_tpdf(), bindings_for(10, 512, 1, 4))
        assert set(q.values()) == {1}

    def test_tpdf_rate_safe(self):
        assert check_rate_safety(build_ofdm_tpdf()).safe

    def test_tpdf_bounded(self):
        assert check_boundedness(build_ofdm_tpdf()).bounded

    def test_csdf_baseline_consistent(self):
        q = csdf_q(build_ofdm_csdf(), bindings_for(10, 512, 1, 4))
        assert set(q.values()) == {1}


class TestFunctionalRuns:
    @pytest.mark.parametrize("m", [2, 4])
    def test_noiseless_exact_recovery(self, m):
        run = run_ofdm_tpdf(beta=2, n=16, l=4, m=m, activations=2)
        assert run.bit_errors == 0
        assert run.received_bits.size == run.sent_bits.size

    def test_only_selected_demapper_fires(self):
        run = run_ofdm_tpdf(beta=1, n=8, l=2, m=4, activations=1)
        counts = run.trace.counts()
        assert counts.get("QAM") == 1
        assert "QPSK" not in counts

    def test_moderate_noise_low_ber(self):
        run = run_ofdm_tpdf(beta=2, n=32, l=4, m=2, activations=2,
                            noise_std=0.05)
        assert run.ber < 0.05

    def test_heavy_noise_corrupts(self):
        run = run_ofdm_tpdf(beta=2, n=32, l=4, m=2, activations=2,
                            noise_std=2.0)
        assert run.ber > 0.1


class TestFig8Buffers:
    def test_measured_matches_paper_formula_tpdf(self):
        for beta, n in ((10, 512), (40, 1024), (100, 512)):
            total = sum(measured_tpdf_buffer(beta, n, 1, 4).values())
            assert total == paper_tpdf_buffer(beta, n, 1)

    def test_measured_matches_paper_formula_csdf(self):
        for beta, n in ((10, 512), (40, 1024)):
            total = sum(measured_csdf_buffer(beta, n, 1).values())
            assert total == paper_csdf_buffer(beta, n, 1)

    def test_improvement_is_29_percent(self):
        point = fig8_point(100, 1024)
        assert point.improvement == pytest.approx(1 - 12 / 17, abs=0.01)

    def test_linear_in_beta(self):
        p10 = fig8_point(10, 512)
        p20 = fig8_point(20, 512)
        p40 = fig8_point(40, 512)
        slope1 = (p20.tpdf_measured - p10.tpdf_measured) / 10
        slope2 = (p40.tpdf_measured - p20.tpdf_measured) / 20
        assert slope1 == pytest.approx(slope2)

    def test_series_covers_sweep(self):
        series = fig8_series(betas=(10, 50), ns=(512, 1024))
        assert len(series) == 4
        assert all(pt.tpdf_measured < pt.csdf_measured for pt in series)

    def test_control_overhead_is_three_tokens(self):
        peaks = measured_tpdf_buffer(10, 512, 1, 4)
        control_channels = {"e_src_con", "e_con_dup", "e_con_tran"}
        assert sum(peaks[c] for c in control_channels) == 3
