"""Tests for the FM radio workload."""

import numpy as np
import pytest

from repro.apps.fmradio import (
    bandpass_taps,
    build_fm_graph,
    compare_redundancy,
    equalizer_bands,
    fir,
    fm_demodulate,
    fm_modulate,
    lowpass_taps,
)
from repro.tpdf import check_consistency, check_rate_safety


class TestDSP:
    def test_fm_roundtrip(self):
        audio = 0.1 * np.sin(np.linspace(0, 30 * np.pi, 400))
        recovered = fm_demodulate(fm_modulate(audio))
        corr = np.corrcoef(audio[10:], recovered[10:])[0, 1]
        assert corr > 0.99

    def test_lowpass_dc_gain(self):
        taps = lowpass_taps(0.2)
        assert taps.sum() == pytest.approx(1.0)

    def test_bandpass_rejects_dc(self):
        taps = bandpass_taps(0.1, 0.3)
        assert abs(taps.sum()) < 1e-6

    def test_bandpass_passes_in_band_tone(self):
        taps = bandpass_taps(0.1, 0.3, taps=65)
        t = np.arange(1024)
        in_band = np.sin(2 * np.pi * 0.2 * t)
        out_band = np.sin(2 * np.pi * 0.45 * t)
        assert np.std(fir(in_band, taps)) > 5 * np.std(fir(out_band, taps))

    def test_equalizer_band_edges_validated(self):
        with pytest.raises(ValueError):
            bandpass_taps(0.3, 0.1)
        with pytest.raises(ValueError):
            lowpass_taps(0.7)
        with pytest.raises(ValueError):
            equalizer_bands(0)

    def test_demodulate_short_input(self):
        assert fm_demodulate(np.array([1.0 + 0j])).size == 1


class TestGraphs:
    def test_static_variant_has_no_controls(self):
        g = build_fm_graph(4, dynamic=False)
        assert not g.controls

    def test_dynamic_variant_consistent_and_safe(self):
        g = build_fm_graph(4, active_bands=[0, 1], dynamic=True)
        assert check_consistency(g).consistent
        assert check_rate_safety(g).safe

    def test_invalid_band_subset(self):
        with pytest.raises(ValueError):
            build_fm_graph(4, active_bands=[7])
        with pytest.raises(ValueError):
            build_fm_graph(4, active_bands=[])


class TestRedundancy:
    def test_savings_positive_for_subsets(self):
        report = compare_redundancy(n_bands=6, active_bands=(0, 2), blocks=2)
        assert report.dynamic_firings < report.static_firings
        assert report.dynamic_buffer < report.static_buffer

    def test_savings_grow_with_fewer_bands(self):
        one = compare_redundancy(n_bands=6, active_bands=(0,), blocks=2)
        three = compare_redundancy(n_bands=6, active_bands=(0, 2, 4), blocks=2)
        assert one.firings_saved > three.firings_saved

    def test_all_bands_has_control_overhead(self):
        report = compare_redundancy(n_bands=4, active_bands=tuple(range(4)),
                                    blocks=2)
        # Dynamic variant pays the control machinery when nothing is cut.
        assert report.dynamic_firings >= report.static_firings
