"""Tests for the edge-detection filters (real image processing)."""

import numpy as np
import pytest

from repro.apps.edge import (
    FILTERS,
    canny,
    detect,
    edge_density,
    flat,
    kirsch,
    prewitt,
    quality_rank,
    quick_mask,
    sobel,
    step_edge,
    synthetic_scene,
)


class TestOnGroundTruth:
    @pytest.mark.parametrize("method", sorted(FILTERS))
    def test_flat_image_has_no_edges(self, method):
        edges = detect(method, flat(48))
        assert float(edges.max()) == 0.0

    @pytest.mark.parametrize("method", ["quickmask", "sobel", "prewitt", "kirsch"])
    def test_step_edge_localized(self, method):
        image = step_edge(48, position=0.5)
        edges = detect(method, image)
        column_energy = edges.sum(axis=0)
        peak = int(np.argmax(column_energy))
        assert abs(peak - 24) <= 1

    def test_canny_step_edge_thin(self):
        edges = canny(step_edge(64))
        # Canny output is binary and the edge is a thin vertical line.
        assert set(np.unique(edges)) <= {0.0, 1.0}
        cols = np.where(edges.sum(axis=0) > 0)[0]
        assert len(cols) <= 6
        assert abs(int(cols.mean()) - 32) <= 3

    def test_outputs_normalized(self):
        image = synthetic_scene(64)
        for method in ("quickmask", "sobel", "prewitt", "kirsch"):
            edges = detect(method, image)
            assert 0.0 <= float(edges.min())
            assert float(edges.max()) <= 1.0


class TestShapesAndValidation:
    def test_shape_preserved(self):
        image = synthetic_scene(40)
        for method in FILTERS:
            assert detect(method, image).shape == image.shape

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            sobel(np.zeros((4, 4, 3)))

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            detect("magic", flat(16))

    def test_kirsch_uses_all_directions(self):
        # A diagonal edge must be detected as strongly as an axis-aligned one.
        size = 48
        yy, xx = np.mgrid[0:size, 0:size]
        diagonal = (yy > xx).astype(float) * 255.0
        horizontal = step_edge(size).T
        d_mean = kirsch(diagonal).mean()
        h_mean = kirsch(horizontal).mean()
        assert d_mean > 0.5 * h_mean

    def test_quality_rank_matches_paper_order(self):
        assert quality_rank("canny") > quality_rank("prewitt")
        assert quality_rank("prewitt") > quality_rank("sobel")
        assert quality_rank("sobel") > quality_rank("quickmask")


class TestImages:
    def test_scene_deterministic(self):
        a = synthetic_scene(64, noise=3.0, seed=9)
        b = synthetic_scene(64, noise=3.0, seed=9)
        assert np.array_equal(a, b)

    def test_scene_range(self):
        scene = synthetic_scene(64, noise=50.0)
        assert scene.min() >= 0.0
        assert scene.max() <= 255.0

    def test_scene_size_validation(self):
        with pytest.raises(ValueError):
            synthetic_scene(4)

    def test_edge_density(self):
        edges = np.zeros((10, 10))
        edges[0, :] = 1.0
        assert edge_density(edges) == pytest.approx(0.1)

    def test_noise_changes_detection(self):
        clean = detect("quickmask", synthetic_scene(64, noise=0.0))
        noisy = detect("quickmask", synthetic_scene(64, noise=30.0, seed=2))
        assert edge_density(noisy, 0.1) > edge_density(clean, 0.1)
