"""Tests for the paper-graph gallery."""

import pytest

from repro import gallery
from repro.csdf import concrete_repetition_vector
from repro.tpdf import check_boundedness, check_liveness, repetition_vector


class TestGallery:
    def test_fig1(self):
        assert concrete_repetition_vector(gallery.fig1_graph()) == {
            "a1": 3, "a2": 2, "a3": 2,
        }

    def test_fig2(self):
        q = repetition_vector(gallery.fig2_graph())
        assert str(q["B"]) == "2*p"

    def test_fig3_virtualizable(self):
        from repro.tpdf import virtualize_select_duplicate

        virt = virtualize_select_duplicate(gallery.fig3_graph(), "B")
        assert check_boundedness(virt).bounded

    @pytest.mark.parametrize("case,live", [("a", True), ("b", True), ("dead", False)])
    def test_fig4_cases(self, case, live):
        assert check_liveness(gallery.fig4_graph(case)).live is live

    def test_fig4_unknown_case(self):
        with pytest.raises(ValueError):
            gallery.fig4_graph("z")

    def test_fig6(self):
        graph, results = gallery.fig6_graph(image_size=64)
        assert "Clock" in graph.controls
        assert results == []

    def test_fig7(self):
        graph = gallery.fig7_graph()
        assert check_boundedness(graph).bounded
