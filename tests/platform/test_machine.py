"""Tests for the platform model."""

import pytest

from repro.platform import Platform, mppa256, single_cluster


class TestPlatform:
    def test_mppa256_shape(self):
        p = mppa256()
        assert p.n_cores == 256
        assert p.clusters == 16
        assert p.cores_per_cluster == 16

    def test_pe_indexing(self):
        p = Platform("t", 2, 3)
        assert p.pe(0).cluster == 0
        assert p.pe(3).cluster == 1
        assert p.pe(5).index == 5

    def test_message_latencies(self):
        p = Platform("t", 2, 2, intra_latency=1.0, inter_latency=9.0)
        same = p.pe(0)
        neighbour = p.pe(1)   # same cluster
        remote = p.pe(2)      # other cluster
        assert p.message_latency(same, same) == 0.0
        assert p.message_latency(same, neighbour) == 1.0
        assert p.message_latency(same, remote) == 9.0
        assert p.message_latency(remote, same) == 9.0

    def test_single_cluster_uniform_latency(self):
        p = single_cluster(4, intra_latency=2.0)
        assert p.clusters == 1
        assert p.message_latency(p.pe(0), p.pe(3)) == 2.0

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            Platform("t", 0, 4)
        with pytest.raises(ValueError):
            Platform("t", 4, 0)
        with pytest.raises(ValueError):
            Platform("t", 1, 1, intra_latency=-1.0)

    def test_repr(self):
        assert "MPPA-256" in repr(mppa256())
