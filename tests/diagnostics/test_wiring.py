"""Integration wiring of the diagnostics engine: the ``analyze``
lint gate, ``EditSession.preflight``, the report codec, the resident
service's ``/lint`` endpoint and preflighted session edits, and the
CLI ``--preflight`` replay flag.

The engine's own behavior is covered by test_diagnostics.py and the
soundness/purity suites — here we only prove every advertised entry
point reaches it and carries its findings faithfully."""

from __future__ import annotations

import json

import pytest

from repro.analysis import EditSession, analyze
from repro.csdf import CSDFGraph
from repro.diagnostics import Diagnostic, Severity
from repro.errors import DiagnosticsError, GraphConstructionError
from repro.io import report_from_dict, report_to_dict
from repro.tpdf import fig2_graph


def _broken_csdf() -> CSDFGraph:
    g = CSDFGraph("broken")
    g.add_actor("a", exec_time=1)
    g.add_actor("b", exec_time=1)
    g.add_channel("ab", "a", "b", production=2, consumption=3)
    g.add_channel("ab2", "a", "b", production=1, consumption=1)
    return g


def _pair_csdf(name: str = "pair") -> CSDFGraph:
    g = CSDFGraph(name)
    g.add_actor("a", exec_time=1)
    g.add_actor("b", exec_time=1)
    g.add_channel("ab", "a", "b")
    return g


class TestAnalyzeLintGate:
    def test_off_is_the_default_and_attaches_nothing(self):
        report = analyze(fig2_graph())
        assert report.diagnostics == ()

    def test_warn_attaches_findings_without_failing(self):
        report = analyze(_broken_csdf(), lint="warn")
        codes = [d.code for d in report.diagnostics]
        assert "RATE001" in codes
        assert report.consistent is False  # analysis still ran

    def test_warn_on_clean_graph_attaches_empty_tuple(self):
        report = analyze(fig2_graph(), lint="warn")
        assert report.diagnostics == ()

    def test_error_raises_with_findings_attached(self):
        with pytest.raises(DiagnosticsError) as excinfo:
            analyze(_broken_csdf(), lint="error")
        assert any(d.code == "RATE001" for d in excinfo.value.diagnostics)

    def test_error_mode_passes_clean_graphs(self):
        report = analyze(fig2_graph(), lint="error")
        assert report.consistent is True

    def test_error_mode_tolerates_warnings(self):
        # a source-less seeded cycle: STRUCT002 warnings, no errors
        g = CSDFGraph("cycle")
        g.add_actor("a", exec_time=1)
        g.add_actor("b", exec_time=1)
        g.add_channel("ab", "a", "b")
        g.add_channel("ba", "b", "a", initial_tokens=1)
        report = analyze(g, lint="error")
        assert any(d.code == "STRUCT002" for d in report.diagnostics)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="lint"):
            analyze(fig2_graph(), lint="loud")

    def test_lint_mode_keys_the_memo_separately(self):
        graph = fig2_graph()
        plain = analyze(graph)
        warned = analyze(graph, lint="warn")
        assert plain.analysis_options != warned.analysis_options
        assert plain.fingerprint() == warned.fingerprint()


class TestEditSessionPreflight:
    def test_clean_script_returns_findings_and_applies_nothing(self):
        graph = _pair_csdf()
        session = EditSession(graph)
        findings = session.preflight(
            [{"op": "set_production", "channel": "ab", "value": [2]}])
        assert findings == []
        assert list(graph.channels["ab"].production.entries) == [1]

    def test_fatal_script_raises_and_leaves_graph_untouched(self):
        graph = _pair_csdf()
        session = EditSession(graph)
        with pytest.raises(DiagnosticsError) as excinfo:
            session.preflight(
                [{"op": "set_production", "channel": "ab", "value": [0]}])
        assert any(d.code == "DEAD003" for d in excinfo.value.diagnostics)
        assert list(graph.channels["ab"].production.entries) == [1]
        # the session is still healthy after a rejected preflight
        session.apply({"op": "set_exec_time", "actor": "a", "value": 5})
        assert session.analyze().consistent is True

    def test_warning_script_reports_without_raising(self):
        graph = _pair_csdf()
        session = EditSession(graph)
        # closing the pair into a seeded source-less cycle only warns
        findings = session.preflight([
            {"op": "add_channel", "name": "ba", "src": "b", "dst": "a",
             "initial_tokens": 1},
        ])
        assert any(d.code == "STRUCT002" for d in findings)
        assert "ba" not in graph.channels

    def test_unknown_target_is_a_construction_error(self):
        session = EditSession(_pair_csdf())
        with pytest.raises(GraphConstructionError, match="unknown"):
            session.preflight(
                [{"op": "set_production", "channel": "zz", "value": [1]}])


class TestReportCodec:
    def test_diagnostics_round_trip(self):
        report = analyze(_broken_csdf(), lint="warn")
        assert report.diagnostics  # meaningful round-trip
        decoded = report_from_dict(report_to_dict(report))
        assert decoded.diagnostics == report.diagnostics
        assert decoded.fingerprint() == report.fingerprint()

    def test_empty_diagnostics_round_trip(self):
        report = analyze(fig2_graph())
        decoded = report_from_dict(report_to_dict(report))
        assert decoded.diagnostics == ()
        assert decoded.fingerprint() == report.fingerprint()

    def test_fingerprint_ignores_diagnostics(self):
        # diagnostics are presentation data (like elapsed): two reports
        # differing only in lint mode fingerprint identically.
        graph = _broken_csdf()
        assert analyze(graph).fingerprint() == \
            analyze(graph, lint="warn").fingerprint()


class TestServiceWireForm:
    def test_diagnostics_error_round_trips_with_findings(self):
        from repro.service.wire import error_from_dict, error_to_dict

        original = DiagnosticsError(
            "broken", diagnostics=[
                Diagnostic("RATE001", Severity.ERROR, "g", "boom", "fix"),
                Diagnostic("STRUCT001", Severity.WARNING, "a.x", "dangling"),
            ])
        decoded = error_from_dict(error_to_dict(original))
        assert isinstance(decoded, DiagnosticsError)
        assert list(decoded.diagnostics) == list(original.diagnostics)


class TestCLIPreflight:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_preflight_requires_edits(self, tmp_path):
        from repro.__main__ import main
        from repro.io import csdf_to_dict

        graph_json = self._write(tmp_path, "g.json", csdf_to_dict(_pair_csdf()))
        with pytest.raises(SystemExit, match="--edits"):
            main(["analyze", graph_json, "--preflight"])

    def test_preflight_clean_replay(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.io import csdf_to_dict

        graph_json = self._write(tmp_path, "g.json", csdf_to_dict(_pair_csdf()))
        edits_json = self._write(tmp_path, "edits.json", [
            {"op": "set_exec_time", "actor": "a", "value": 3},
        ])
        assert main(["analyze", graph_json, "--edits", edits_json,
                     "--preflight"]) == 0
        assert "[preflight] clean" in capsys.readouterr().out

    def test_preflight_blocks_fatal_replay(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.io import csdf_to_dict

        graph_json = self._write(tmp_path, "g.json", csdf_to_dict(_pair_csdf()))
        edits_json = self._write(tmp_path, "edits.json", [
            {"op": "set_production", "channel": "ab", "value": [0]},
        ])
        with pytest.raises(SystemExit, match="preflight"):
            main(["analyze", graph_json, "--edits", edits_json,
                  "--preflight"])
        assert "DEAD003" in capsys.readouterr().err


class TestServiceLintEndpoint:
    """One tiny resident service instance for the /lint plumbing (the
    heavy differential traffic lives in tests/service/)."""

    @pytest.fixture(scope="class")
    def client(self):
        from repro.service import ServiceClient, serve_in_thread

        with serve_in_thread(workers=1) as handle:
            yield ServiceClient(handle.url)

    def test_lint_clean_graph(self, client):
        assert client.lint(fig2_graph()) == []

    def test_lint_broken_graph_returns_diagnostics(self, client):
        findings = client.lint(_broken_csdf())
        assert any(d.code == "RATE001" for d in findings)
        assert all(isinstance(d, Diagnostic) for d in findings)

    def test_lint_result_is_cached(self, client):
        graph = _broken_csdf()
        first = client.lint(graph)
        stats_before = client.stats()["cache"]["hits"]
        assert client.lint(graph) == first
        assert client.stats()["cache"]["hits"] == stats_before + 1

    def test_session_preflight_rejects_fatal_edits(self, client):
        with client.session(_pair_csdf("preflit")) as session:
            with pytest.raises(DiagnosticsError) as excinfo:
                session.edits(
                    [{"op": "set_production", "channel": "ab", "value": [0]}],
                    preflight=True)
            assert any(d.code == "DEAD003"
                       for d in excinfo.value.diagnostics)
            # rejected preflight left the resident graph untouched
            report = session.edits(
                [{"op": "set_exec_time", "actor": "a", "value": 2}])
            assert report.consistent is True

    def test_session_edits_without_preflight_still_apply(self, client):
        with client.session(_pair_csdf("nopre")) as session:
            report = session.edits(
                [{"op": "set_production", "channel": "ab", "value": [2]}])
            assert report.consistent is False or report.repetition
