"""Purity property of the diagnostics engine.

``run_diagnostics`` sells itself as a *pure observer*: it may read the
graph but must not mutate it, must not write (or even touch) the
memoized analysis caches, and must not bump the mutation version.
That property is what makes it safe to run as an ``analyze(lint=...)``
gate, an ``EditSession.preflight`` probe against a live session graph,
and a service endpoint sharing resident worker graphs with real
analysis traffic.

This suite proves it over the standard 200-graph corpus with a spy:
every ``repro.*`` module namespace that imported :func:`repro.cache.cached`
gets a counting wrapper patched in (plus the origin attribute itself,
which catches call-time local imports), and the engine must complete
the full corpus without a single ``cached()`` call, version bump,
cache-key change, or payload change.
"""

from __future__ import annotations

import sys

import pytest

import repro.cache
from repro.cache import version_of
from repro.diagnostics import run_diagnostics
from repro.io import graph_to_payload, payload_fingerprint


@pytest.fixture
def cached_spy(monkeypatch):
    """Patch a counting wrapper over every live alias of
    ``repro.cache.cached``.

    ``cached`` is imported *by name* into each consuming module and
    called at call time, so patching the module-namespace attributes
    intercepts every memoization attempt; patching ``repro.cache.cached``
    too covers the function-local ``from ..cache import cached`` style.
    """
    original = repro.cache.cached
    calls: list[tuple] = []

    def spy(graph, key, factory):
        calls.append((type(graph).__name__, key))
        return original(graph, key, factory)

    for name, module in list(sys.modules.items()):
        if not (name == "repro" or name.startswith("repro.")):
            continue
        if getattr(module, "cached", None) is original:
            monkeypatch.setattr(module, "cached", spy)
    monkeypatch.setattr(repro.cache, "cached", spy)
    return calls


def _bindings(shape):
    return {"p": 2} if shape[3] else None


def test_spy_seam_actually_counts(cached_spy):
    """Guard the spy itself: a real analysis MUST register calls —
    otherwise a silent seam change would turn the purity test into a
    vacuous pass."""
    from repro.analysis import analyze
    from repro.tpdf import fig2_graph

    analyze(fig2_graph())
    assert cached_spy, "analyze() no longer routes through cached()"


def test_run_diagnostics_is_pure_over_the_corpus(
        cached_spy, corpus_graphs, corpus_shapes):
    """Zero cached() calls, zero version bumps, zero cache-key churn,
    zero payload drift — across all 200 corpus graphs, including the
    capacity-aware DEAD001 pass."""
    assert len(corpus_graphs) >= 200
    for (index, seed), graph in corpus_graphs.items():
        shape = corpus_shapes[index]
        version_before = version_of(graph)
        cache_before = getattr(graph, "_analysis_cache", None)
        keys_before = (None if cache_before is None
                       else sorted(map(repr, cache_before[1])))
        payload_before = payload_fingerprint(graph_to_payload(graph))

        capacities = {
            channel.name: max(channel.initial_tokens, 1) + 64
            for channel in graph.channels.values()
        }
        first = run_diagnostics(graph, bindings=_bindings(shape))
        second = run_diagnostics(graph, bindings=_bindings(shape),
                                 capacities=capacities)

        label = f"shape={shape} seed={seed}"
        assert cached_spy == [], f"cached() used during lint of {label}"
        assert version_of(graph) == version_before, \
            f"lint bumped the version of {label}"
        cache_after = getattr(graph, "_analysis_cache", None)
        keys_after = (None if cache_after is None
                      else sorted(map(repr, cache_after[1])))
        assert keys_after == keys_before, \
            f"lint changed the analysis cache of {label}"
        assert payload_fingerprint(graph_to_payload(graph)) == \
            payload_before, f"lint mutated the payload of {label}"
        # Determinism rides along: same inputs, same findings.
        assert first == run_diagnostics(graph, bindings=_bindings(shape))
        assert second == run_diagnostics(graph, bindings=_bindings(shape),
                                         capacities=capacities)
