"""Soundness harness for the ERROR-severity diagnostic codes.

The contract the diagnostics engine sells: an **ERROR** means the
runtime provably fails.  This suite enforces both directions
differentially over the repo's standard 200-graph random corpus:

* **no false alarms** — on the clean corpus, zero ERROR-severity
  diagnostics across all 200 graphs (warnings are allowed; several
  shapes are legitimately source-less cycles);
* **no missed defects** — for every ERROR code, an injector plants
  that defect class into corpus graphs and the suite asserts (a) the
  engine flags it with the documented code and (b) the runtime —
  ``analyze`` verdicts, ``simulate``, or the capacity-bounded
  execution — actually fails on the same graph.

Injectors mutate *fresh* corpus graphs through public mutators (or
the same internal bypass the engine-validation tests use, for the
contract the construction API already rejects).
"""

from __future__ import annotations

from math import gcd

import pytest

from repro.analysis import analyze, simulate
from repro.csdf.rates import RateSequence
from repro.diagnostics import Severity, run_diagnostics
from repro.errors import DeadlockError, SimulationError
from repro.symbolic import Param
from repro.tpdf import random_consistent_graph

#: Seeds per shape for the injection sweeps (every shape is hit; the
#: full corpus runs in the clean scan).
INJECTION_SEEDS = range(3)

N_SHAPES = 8


@pytest.fixture(params=range(N_SHAPES), ids=lambda i: f"shape{i}")
def shape(request, corpus_shapes):
    assert len(corpus_shapes) == N_SHAPES
    return corpus_shapes[request.param]


def _bindings(shape):
    return {"p": 2} if shape[3] else None


def _fresh(shape, seed):
    """A fresh mutable corpus graph (injectors mutate it)."""
    n, extra, cycles, parametric, control = shape
    return random_consistent_graph(
        n, extra_edges=extra, n_cycles=cycles, seed=seed,
        parametric=parametric, with_control=control,
    )


def _error_codes(graph, **kw):
    return [d.code for d in run_diagnostics(graph, **kw)
            if d.severity is Severity.ERROR]


def _data_channels(graph):
    return [c for c in graph.channels.values() if not c.is_control]


def _port(graph, actor, port_name):
    return graph.node(actor).port(port_name)


class TestCleanCorpusHasNoFalseErrors:
    """Direction one: the generator only emits consistent, live,
    well-formed graphs — any ERROR on them is a false alarm."""

    def test_every_graph_is_error_free(self, corpus_graphs, corpus_shapes,
                                       seeds_per_shape):
        assert len(corpus_graphs) == N_SHAPES * seeds_per_shape >= 200
        for (index, seed), graph in corpus_graphs.items():
            errors = _error_codes(graph, bindings=_bindings(corpus_shapes[index]))
            assert errors == [], (
                f"false ERRORs {errors} on clean graph "
                f"shape={corpus_shapes[index]} seed={seed}"
            )


@pytest.mark.parametrize("seed", INJECTION_SEEDS)
class TestInjectedDefectsAreFlaggedAndFatal:
    """Direction two: plant each defect class, assert code + runtime
    failure.  Injections that need a specific substrate (a seeded back
    edge, a control port...) skip shapes without one."""

    def test_rate001_parallel_channel_imbalance(self, shape, seed):
        graph = _fresh(shape, seed)
        channel = _data_channels(graph)[0]
        src_rate = _port(graph, channel.src, channel.src_port).rates
        dst_rate = _port(graph, channel.dst, channel.dst_port).rates
        # A parallel channel pinning double the production ratio
        # contradicts the original's balance equation.
        graph.node(channel.src).add_output(
            "inj_o", [entry * 2 for entry in src_rate.entries])
        graph.node(channel.dst).add_input(
            "inj_i", list(dst_rate.entries))
        graph.connect((channel.src, "inj_o"), (channel.dst, "inj_i"),
                      name="inj")
        assert "RATE001" in _error_codes(graph)
        report = analyze(graph, _bindings(shape))
        assert report.consistent is False

    def test_rate002_zero_production_collapses_component(self, shape, seed):
        # A zero-fed appendage adds no cycle, so the balance system
        # stays condition-free and the defect surfaces as the pure
        # zero-repetition collapse (zeroing an existing channel inside
        # a cycle would trip the RATE001 condition check first).
        graph = _fresh(shape, seed)
        src = _data_channels(graph)[0].src
        graph.node(src).add_output("inj_o", 0)
        graph.add_kernel("inj_sink").add_input("inj_i", 1)
        graph.connect((src, "inj_o"), ("inj_sink", "inj_i"), name="inj")
        codes = _error_codes(graph)
        assert "RATE002" in codes
        assert "DEAD003" in codes  # the channel-level root cause rides along
        report = analyze(graph, _bindings(shape))
        assert report.consistent is False

    def test_dead003_strangled_consumer(self, shape, seed):
        graph = _fresh(shape, seed)
        channel = _data_channels(graph)[0]
        _port(graph, channel.dst, channel.dst_port).rates = 0
        assert "DEAD003" in _error_codes(graph)
        report = analyze(graph, _bindings(shape))
        assert report.consistent is False

    def test_dead001_capacity_below_initial_tokens(self, shape, seed):
        graph = _fresh(shape, seed)
        seeded = [c for c in _data_channels(graph) if c.initial_tokens >= 1]
        if not seeded:
            pytest.skip("shape has no seeded back edge to underflow")
        channel = seeded[0]
        capacities = {channel.name: channel.initial_tokens - 1}
        assert "DEAD001" in _error_codes(graph, capacities=capacities)
        with pytest.raises(DeadlockError):
            simulate(graph, _bindings(shape), max_firings=50,
                     capacities=capacities)

    def test_dead002_token_free_cycle(self, shape, seed):
        if shape[3] or shape[4]:
            pytest.skip("injector computes integer reverse rates from the "
                        "concrete repetition vector; plain shapes only")
        graph = _fresh(shape, seed)
        q = analyze(graph).repetition
        forward = next(
            (c for c in _data_channels(graph) if c.initial_tokens == 0),
            None,
        )
        if forward is None:
            pytest.skip("no token-free forward channel to close a cycle on")
        g = gcd(q[forward.src], q[forward.dst])
        graph.node(forward.dst).add_output("inj_o", q[forward.src] // g)
        graph.node(forward.src).add_input("inj_i", q[forward.dst] // g)
        graph.connect((forward.dst, "inj_o"), (forward.src, "inj_i"),
                      name="inj", initial_tokens=0)
        assert "DEAD002" in _error_codes(graph)
        report = analyze(graph)
        assert report.consistent is True  # rates stayed balanced
        assert report.live is False

    def test_ctrl002_control_rate_outside_contract(self, shape, seed):
        if not shape[4]:
            pytest.skip("shape has no control plane")
        graph = _fresh(shape, seed)
        port = next(
            (k.control_port() for k in graph.kernels.values()
             if k.control_port() is not None),
            None,
        )
        assert port is not None, "with_control shapes feed one kernel"
        # The rates setter rejects values outside {0, 1}; a buggy
        # frontend writing the slot directly is what CTRL002 catches
        # (same bypass as tests/sim/test_engine_mode_rates.py).
        port._rates = RateSequence.of([2])
        assert "CTRL002" in _error_codes(graph)
        with pytest.raises(SimulationError):
            simulate(graph, _bindings(shape), max_firings=200)

    def test_bind001_undeclared_parameter(self, shape, seed):
        graph = _fresh(shape, seed)
        channel = _data_channels(graph)[0]
        port = _port(graph, channel.src, channel.src_port)
        port._rates = RateSequence.of(Param("ghost", lo=1, hi=4))
        assert "BIND001" in _error_codes(graph)
        report = analyze(graph, _bindings(shape))
        # The chain rejects the unknown domain at whichever stage first
        # touches the symbolic rate (consistency or boundedness).
        assert report.consistent is False or report.bounded is False
        assert report.errors

    def test_bind003_unhashable_binding_value(self, shape, seed):
        graph = _fresh(shape, seed)
        bindings = {**(_bindings(shape) or {}), "p": [1, 2]}
        assert "BIND003" in _error_codes(graph, bindings=bindings)
        with pytest.raises(TypeError):
            analyze(graph, bindings)


class TestInjectionSubstrateCoverage:
    """The skips above must not silently hollow the suite out: every
    injector has to actually run on at least one corpus shape."""

    def test_some_shape_has_a_seeded_back_edge(self, corpus_shapes):
        assert any(shape[2] >= 1 for shape in corpus_shapes)

    def test_some_plain_shape_exists_for_dead002(self, corpus_shapes):
        assert any(not shape[3] and not shape[4] for shape in corpus_shapes)

    def test_some_shape_has_a_control_plane(self, corpus_shapes):
        assert any(shape[4] for shape in corpus_shapes)
