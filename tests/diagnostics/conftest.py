"""Shared corpus fixtures for the diagnostics suites.

The same 8-shape x 25-seed random corpus the parallel/incremental
differential suites standardize on (see tests/test_analysis_parallel.py):
the generator emits only consistent, live graphs, so any ERROR
diagnostic on an unmodified corpus graph is a false alarm by
construction.
"""

from __future__ import annotations

import pytest

from repro.tpdf import random_consistent_graph

#: (actors, extra_edges, back_edges, parametric, with_control)
SHAPES = (
    (3, 1, 0, False, False),
    (4, 2, 1, False, False),
    (5, 2, 0, False, True),
    (5, 3, 2, False, False),
    (6, 3, 1, False, True),
    (6, 2, 0, True, False),
    (7, 3, 0, True, True),
    (8, 4, 2, False, False),
)
SEEDS_PER_SHAPE = 25


def build_graph(shape, seed):
    n, extra, cycles, parametric, control = shape
    return random_consistent_graph(
        n, extra_edges=extra, n_cycles=cycles, seed=seed,
        parametric=parametric, with_control=control,
    )


@pytest.fixture(scope="session")
def corpus_shapes():
    return SHAPES


@pytest.fixture(scope="session")
def seeds_per_shape():
    return SEEDS_PER_SHAPE


@pytest.fixture(scope="session")
def corpus_graphs():
    """(shape_index, seed) -> graph for the full 200-graph corpus."""
    return {
        (index, seed): build_graph(shape, seed)
        for index, shape in enumerate(SHAPES)
        for seed in range(SEEDS_PER_SHAPE)
    }
