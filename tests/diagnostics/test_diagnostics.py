"""Unit tests for the static diagnostics engine: the catalog, the
record type, pass behavior on both graph models, and deterministic
ordering.  The soundness of the ERROR codes (engine flags it iff the
runtime fails) lives in test_soundness.py; purity in test_purity.py."""

from __future__ import annotations

import pytest

from repro.csdf import CSDFGraph
from repro.diagnostics import (CATALOG, ERROR_CODES, Diagnostic, GraphView,
                               Severity, catalog_lines, has_errors,
                               run_diagnostics, sort_diagnostics)
from repro.symbolic import Param
from repro.tpdf import TPDFGraph, fig2_graph


class TestCatalog:
    def test_every_code_has_severity_and_title(self):
        for code, info in CATALOG.items():
            assert info.code == code
            assert isinstance(info.severity, Severity)
            assert info.title

    def test_error_codes_match_catalog(self):
        assert set(ERROR_CODES) == {
            code for code, info in CATALOG.items()
            if info.severity is Severity.ERROR
        }
        # The soundness-proven surface of the issue.
        assert set(ERROR_CODES) == {
            "RATE001", "RATE002", "DEAD001", "DEAD002", "DEAD003",
            "CTRL002", "BIND001", "BIND003",
        }

    def test_catalog_lines_cover_all_codes(self):
        lines = catalog_lines()
        assert len(lines) == len(CATALOG)
        for code in CATALOG:
            assert any(line.startswith(code) for line in lines)

    def test_unfed_control_port_is_a_warning(self):
        # The engine falls back to WAIT_ALL for an unfed control port —
        # the runtime does NOT fail, so ERROR would be unsound.
        assert CATALOG["CTRL001"].severity is Severity.WARNING


class TestDiagnosticRecord:
    def test_round_trip(self):
        d = Diagnostic("RATE001", Severity.ERROR, "g", "broken", "fix it")
        assert Diagnostic.from_dict(d.to_dict()) == d
        assert d.to_dict()["severity"] == "error"

    def test_round_trip_without_hint(self):
        d = Diagnostic("STRUCT001", Severity.WARNING, "a.x", "dangling")
        assert Diagnostic.from_dict(d.to_dict()) == d

    def test_str_contains_code_and_subject(self):
        d = Diagnostic("DEAD002", Severity.ERROR, "a -> b", "cycle")
        assert "DEAD002" in str(d) and "a -> b" in str(d)

    def test_sort_is_severity_then_code(self):
        warn = Diagnostic("STRUCT001", Severity.WARNING, "z", "m")
        err = Diagnostic("RATE001", Severity.ERROR, "a", "m")
        assert sort_diagnostics([warn, err])[0] is err

    def test_has_errors(self):
        warn = Diagnostic("STRUCT001", Severity.WARNING, "z", "m")
        err = Diagnostic("RATE001", Severity.ERROR, "a", "m")
        assert not has_errors([warn])
        assert has_errors([warn, err])


class TestCleanGraphs:
    def test_fig2_is_clean(self):
        assert run_diagnostics(fig2_graph()) == []

    def test_plain_csdf_pair_is_clean(self):
        g = CSDFGraph("pair")
        g.add_actor("a", exec_time=2)
        g.add_actor("b", exec_time=1)
        g.add_channel("ab", "a", "b")
        assert run_diagnostics(g) == []

    def test_rejects_non_graph_input(self):
        with pytest.raises(TypeError):
            run_diagnostics({"not": "a graph"})


class TestCSDFPasses:
    """The engine accepts plain CSDF — the legacy lint was TPDF-only."""

    def _unbalanced(self) -> CSDFGraph:
        g = CSDFGraph("bad")
        g.add_actor("a", exec_time=1)
        g.add_actor("b", exec_time=1)
        g.add_channel("ab", "a", "b", production=2, consumption=3)
        g.add_channel("ab2", "a", "b", production=1, consumption=1)
        return g

    def test_rate001_on_csdf(self):
        codes = [d.code for d in run_diagnostics(self._unbalanced())]
        assert codes == ["RATE001"]

    def test_dead003_and_rate002_on_zero_production(self):
        g = CSDFGraph("z")
        g.add_actor("a", exec_time=1)
        g.add_actor("b", exec_time=1)
        g.add_channel("ab", "a", "b", production=[0], consumption=[1])
        codes = [d.code for d in run_diagnostics(g)]
        assert codes == ["DEAD003", "RATE002"]

    def test_dead001_needs_capacities(self):
        g = CSDFGraph("loop")
        g.add_actor("a", exec_time=1)
        g.add_actor("b", exec_time=1)
        g.add_channel("ab", "a", "b")
        g.add_channel("ba", "b", "a", initial_tokens=2)

        def errors(**kw):
            return [d.code for d in run_diagnostics(g, **kw)
                    if d.severity is Severity.ERROR]

        assert errors() == []
        assert errors(capacities={"ba": 1}) == ["DEAD001"]
        assert errors(capacities={"ba": 2}) == []  # fitting capacity

    def test_dead002_token_free_cycle_on_csdf(self):
        g = CSDFGraph("cycle")
        g.add_actor("a", exec_time=1)
        g.add_actor("b", exec_time=1)
        g.add_channel("ab", "a", "b")
        g.add_channel("ba", "b", "a")  # no initial tokens anywhere
        codes = [d.code for d in run_diagnostics(g)]
        assert "DEAD002" in codes
        # seeding either hop makes it live again
        g2 = CSDFGraph("cycle2")
        g2.add_actor("a", exec_time=1)
        g2.add_actor("b", exec_time=1)
        g2.add_channel("ab", "a", "b")
        g2.add_channel("ba", "b", "a", initial_tokens=1)
        assert not any(d.code == "DEAD002" for d in run_diagnostics(g2))

    def test_bind003_unhashable_value(self):
        g = CSDFGraph("pair")
        g.add_actor("a", exec_time=1)
        g.add_actor("b", exec_time=1)
        g.add_channel("ab", "a", "b")
        codes = [d.code for d in run_diagnostics(g, bindings={"p": [1, 2]})]
        assert codes == ["BIND003"]


class TestTPDFPasses:
    def test_bind002_unused_parameter(self):
        g = TPDFGraph("u", parameters=[Param("q", lo=1, hi=4)])
        a = g.add_kernel("a")
        a.add_output("o", 1)
        b = g.add_kernel("b")
        b.add_input("i", 1)
        g.connect("a.o", "b.i")
        codes = [d.code for d in run_diagnostics(g)]
        assert codes == ["BIND002"]

    def test_ctrl002_control_rate_above_one(self):
        from repro.csdf.rates import RateSequence

        g = TPDFGraph()
        src = g.add_kernel("src")
        src.add_output("o", 1)
        k = g.add_kernel("k")
        k.add_input("i", 1)
        port = k.add_control_port("c", 1)
        g.connect("src.o", "k.i")
        # bypass the setter's {0,1} validation, as a buggy frontend would
        port._rates = RateSequence.of([2])
        codes = [d.code for d in run_diagnostics(g)]
        assert "CTRL002" in codes

    def _select_one_graph(self, i2_rate: int) -> TPDFGraph:
        """a feeds a SELECT_ONE kernel over two inputs; i2's rate makes
        the full graph consistent (2) or inconsistent (3)."""
        from repro.tpdf import Mode

        g = TPDFGraph()
        a = g.add_kernel("a")
        a.add_output("o1", 1)
        a.add_output("o2", 2)
        m = g.add_kernel("m", modes=(Mode.WAIT_ALL, Mode.SELECT_ONE))
        m.add_input("i1", 1)
        m.add_input("i2", i2_rate)
        m.add_output("o", 1)
        s = g.add_kernel("s")
        s.add_input("i", 1)
        g.connect("a.o1", "m.i1")
        g.connect("a.o2", "m.i2")
        g.connect("m.o", "s.i")
        return g

    def test_ctrl004_flags_modes_where_inconsistency_survives(self):
        # Full graph inconsistent (i1 forces q_a = q_m, i2 forces
        # 2 q_a = 3 q_m).  Each single-input restriction drops the
        # conflicting sibling, so both modes are individually fine —
        # no CTRL004, only the full-graph RATE001 (Sec. III-A's point:
        # the full check is stricter than the per-mode reality).
        codes = [d.code for d in run_diagnostics(self._select_one_graph(3))]
        assert "RATE001" in codes and "CTRL004" not in codes
        # Move the contradiction entirely outside m's channels (two
        # parallel a -> s channels with conflicting ratios): it now
        # survives every restriction, so each mode is unreachable.
        g = self._select_one_graph(2)
        a = g.node("a")
        a.add_output("o3", 1)
        a.add_output("o4", 1)
        s = g.node("s")
        s.add_input("i2", 3)
        s.add_input("i3", 1)
        g.connect("a.o3", "s.i2")
        g.connect("a.o4", "s.i3")
        diags = run_diagnostics(g)
        codes = [d.code for d in diags]
        assert "RATE001" in codes
        assert codes.count("CTRL004") == 2  # both of m's modes stay broken

    def test_ctrl004_silent_on_consistent_graph(self):
        assert run_diagnostics(self._select_one_graph(2)) == []

    def test_graphview_labels_ports(self):
        view = GraphView(fig2_graph())
        assert view.is_tpdf
        assert all("." in c.src_label for c in view.channels)

    def test_graphview_csdf_labels_actors(self):
        g = CSDFGraph("pair")
        g.add_actor("a", exec_time=1)
        g.add_actor("b", exec_time=1)
        g.add_channel("ab", "a", "b")
        view = GraphView(g)
        assert not view.is_tpdf
        assert view.channels[0].src_label == "a"


class TestLegacyFacade:
    def test_lint_still_returns_legacy_codes(self):
        from repro.tpdf.lint import lint

        g = TPDFGraph()
        a = g.add_kernel("a")
        a.add_output("o", 1)
        a.add_output("dangling", 1)
        b = g.add_kernel("b")
        b.add_input("i", 1)
        g.connect("a.o", "b.i")
        codes = {w.code for w in lint(g)}
        assert codes == {"dangling-port"}
