"""Typed-core shard: ``mypy --strict`` over the modules whose contracts
other layers lean on (the exception hierarchy, the cache/version
machinery, and the diagnostics engine).

mypy is a CI-only dependency (the runtime container deliberately ships
without it), so this test self-skips when it is not importable; the CI
``lint`` job installs it and runs the same shard.
"""

from __future__ import annotations

from pathlib import Path

import pytest

mypy_api = pytest.importorskip("mypy.api")

REPO = Path(__file__).resolve().parent.parent

#: The shard — one file list shared verbatim with the CI job.
TARGETS = [
    "src/repro/errors.py",
    "src/repro/cache.py",
    "src/repro/diagnostics",
]

FLAGS = [
    "--strict",
    # third-party deps (networkx) ship no stubs; the shard types OUR
    # modules, not the import closure
    "--ignore-missing-imports",
    "--follow-imports=silent",
]


def test_mypy_strict_shard():
    stdout, stderr, status = mypy_api.run(
        FLAGS + [str(REPO / target) for target in TARGETS])
    assert status == 0, f"mypy --strict failed:\n{stdout}\n{stderr}"
