"""Tier-1 run of the codebase invariant linter (tools/lint_invariants.py).

Two directions, mirroring the diagnostics soundness suite: the real
sources must be clean, and every rule must actually fire on a minimal
fixture exhibiting its banned pattern (so a refactor of the linter
cannot silently lobotomize a check).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

from lint_invariants import (Violation, check_paths, check_source,  # noqa: E402
                             check_tracked_bytecode, main)


def _rules(source: str, path: str = "x.py") -> list[str]:
    return [v.rule for v in check_source(source, path)]


class TestRepoIsClean:
    def test_src_tree_has_no_violations(self):
        violations = check_paths([REPO / "src"])
        assert violations == [], "\n".join(map(str, violations))

    def test_tools_tree_has_no_violations(self):
        violations = check_paths([REPO / "tools"])
        assert violations == [], "\n".join(map(str, violations))

    def test_no_tracked_bytecode(self):
        violations = check_tracked_bytecode(REPO)
        assert violations == [], "\n".join(map(str, violations))


class TestM1BumpKind:
    def test_bare_bump_version_flagged(self):
        assert _rules("bump_version(g)\n") == ["M1"]

    def test_kind_keyword_passes(self):
        assert _rules("bump_version(g, kind='structural')\n") == []

    def test_scope_keyword_passes(self):
        assert _rules("bump_version(g, scope=('a',))\n") == []

    def test_positional_kind_passes(self):
        assert _rules("bump_version(g, 'binding')\n") == []


class TestM1MutateBump:
    FIXTURE = """
class TPDFGraph:
    def rename(self, name):
        self._name = name
"""

    def test_unbumped_mutator_flagged(self):
        assert _rules(self.FIXTURE) == ["M1"]

    def test_marker_call_passes(self):
        fixed = self.FIXTURE.replace(
            "self._name = name",
            "self._name = name\n        "
            "bump_version(self, kind='structural')")
        assert _rules(fixed) == []

    def test_transitive_marker_passes(self):
        source = """
class Kernel:
    def _touch(self):
        bump_version(self._graph, kind='structural')
    def set_priority(self, p):
        self._priority = p
        self._touch()
"""
        assert _rules(source) == []

    def test_exempt_methods_and_attrs_pass(self):
        source = """
class Channel:
    def __init__(self, name):
        self._name = name
    def probe(self):
        self._analysis_cache = (0, {})
"""
        assert _rules(source) == []

    def test_non_graph_classes_are_out_of_scope(self):
        source = """
class ResultCache:
    def put(self, key, value):
        self._entries[key] = value
"""
        assert _rules(source) == []


class TestM2FrozenWrites:
    def test_setflags_flagged(self):
        assert _rules("arr.setflags(write=True)\n") == ["M2"]

    def test_writeable_assign_flagged(self):
        assert _rules("arr.flags.writeable = True\n") == ["M2"]

    def test_statearrays_is_the_sanctioned_site(self):
        assert _rules("arr.setflags(write=True)\n",
                      "src/repro/csdf/statearrays.py") == []


class TestM3Nondeterminism:
    @pytest.mark.parametrize("snippet", [
        "time.time()",
        "time.time_ns()",
        "datetime.now()",
        "datetime.utcnow()",
        "date.today()",
        "random.random()",
        "random.randint(0, 3)",
        "np.random.rand(4)",
        "numpy.random.shuffle(x)",
        "from time import time",
        "from random import choice",
    ])
    def test_banned_patterns_flagged(self, snippet):
        assert _rules(snippet + "\n") == ["M3"]

    @pytest.mark.parametrize("snippet", [
        "time.perf_counter()",
        "time.monotonic()",
        "random.Random(7)",
        "random.SystemRandom()",
        "np.random.default_rng(7)",
        "from time import perf_counter",
        "from random import Random",
    ])
    def test_allowed_patterns_pass(self, snippet):
        assert _rules(snippet + "\n") == []


class TestCLI:
    def test_clean_run_exits_zero(self, capsys):
        assert main([str(REPO / "src"), "--no-git"]) == 0
        assert "invariants clean" in capsys.readouterr().out

    def test_violating_file_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("bump_version(g)\n")
        assert main([str(bad), "--no-git"]) == 1
        out = capsys.readouterr().out
        assert "[M1]" in out and "1 invariant violation(s)" in out

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        violations = check_paths([broken])
        assert [v.rule for v in violations] == ["parse"]

    def test_violation_str_is_location_first(self):
        v = Violation("M3", "src/x.py", 12, "boom")
        assert str(v) == "src/x.py:12: [M3] boom"
