"""Tests for the discrete-event engine: plain dataflow execution."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.symbolic import Param
from repro.tpdf import TPDFGraph


def build_pipeline(prod=1, cons=1, exec_times=(1.0, 1.0)):
    g = TPDFGraph("pipe")
    a = g.add_kernel("a", exec_time=exec_times[0])
    a.add_output("out", prod)
    b = g.add_kernel("b", exec_time=exec_times[1])
    b.add_input("in", cons)
    g.add_kernel("c")  # disconnected sink-less actor never fires... add port
    g.node("c").add_input("in", 1)
    b.add_output("out", 1)
    g.connect("a.out", "b.in", name="ab")
    g.connect("b.out", "c.in", name="bc")
    return g


class TestBasicExecution:
    def test_limits_cap_source(self):
        g = build_pipeline()
        trace = Simulator(g).run(limits={"a": 3})
        assert trace.count("a") == 3
        assert trace.count("b") == 3
        assert trace.count("c") == 3

    def test_timing_sequential_dependency(self):
        g = build_pipeline(exec_times=(2.0, 3.0))
        trace = Simulator(g).run(limits={"a": 1})
        a_rec = trace.firings_of("a")[0]
        b_rec = trace.firings_of("b")[0]
        assert a_rec.end == 2.0
        assert b_rec.start == 2.0
        assert b_rec.end == 5.0

    def test_multirate_firing_counts(self):
        g = build_pipeline(prod=3, cons=2)
        trace = Simulator(g).run(limits={"a": 2})
        # a produces 6 tokens; b consumes 2 per firing -> 3 firings.
        assert trace.count("b") == 3

    def test_horizon_cuts_execution(self):
        g = build_pipeline(exec_times=(10.0, 10.0))
        trace = Simulator(g).run(until=25.0, limits={"a": 100})
        assert trace.count("a") == 2  # third completes at 30 > 25

    def test_parametric_rates_bound(self):
        p = Param("p")
        g = TPDFGraph("param", parameters=[p])
        a = g.add_kernel("a")
        a.add_output("out", p)
        b = g.add_kernel("b")
        b.add_input("in", 1)
        g.connect("a.out", "b.in")
        trace = Simulator(g, bindings={"p": 4}).run(limits={"a": 1})
        assert trace.count("b") == 4

    def test_runaway_guard(self):
        g = build_pipeline()
        with pytest.raises(SimulationError):
            Simulator(g).run(max_firings=10)


class TestFunctions:
    def test_value_flow(self):
        g = TPDFGraph()
        a = g.add_kernel("a", function=lambda n, c: n * 10)
        a.add_output("out", 1)
        got = []
        b = g.add_kernel("b", function=lambda n, c: got.append(c["in"][0]))
        b.add_input("in", 1)
        g.connect("a.out", "b.in")
        Simulator(g).run(limits={"a": 3})
        assert got == [0, 10, 20]

    def test_list_output_must_match_rate(self):
        g = TPDFGraph()
        a = g.add_kernel("a", function=lambda n, c: [1, 2, 3])
        a.add_output("out", 2)
        b = g.add_kernel("b")
        b.add_input("in", 1)
        g.connect("a.out", "b.in")
        with pytest.raises(SimulationError):
            Simulator(g).run(limits={"a": 1})

    def test_dict_output_per_port(self):
        g = TPDFGraph()
        a = g.add_kernel("a", function=lambda n, c: {"x": [1], "y": [2, 3]})
        a.add_output("x", 1)
        a.add_output("y", 2)
        b = g.add_kernel("b")
        b.add_input("in", 1)
        c = g.add_kernel("c")
        c.add_input("in", 2)
        g.connect("a.x", "b.in")
        g.connect("a.y", "c.in")
        trace = Simulator(g, record_values=True).run(limits={"a": 1})
        assert trace.firings_of("c")[0].consumed["in"] == [2, 3]

    def test_dict_output_wrong_count(self):
        g = TPDFGraph()
        a = g.add_kernel("a", function=lambda n, c: {"x": [1, 2]})
        a.add_output("x", 1)
        b = g.add_kernel("b")
        b.add_input("in", 1)
        g.connect("a.x", "b.in")
        with pytest.raises(SimulationError):
            Simulator(g).run(limits={"a": 1})

    def test_scalar_replicated(self):
        g = TPDFGraph()
        a = g.add_kernel("a", function=lambda n, c: 7)
        a.add_output("out", 3)
        b = g.add_kernel("b")
        b.add_input("in", 3)
        g.connect("a.out", "b.in")
        trace = Simulator(g, record_values=True).run(limits={"a": 1})
        assert trace.firings_of("b")[0].consumed["in"] == [7, 7, 7]

    def test_time_fn_overrides_exec_time(self):
        g = TPDFGraph()
        a = g.add_kernel("a", exec_time=1.0)
        a.meta["time_fn"] = lambda n, consumed: 42.0
        a.add_output("out", 1)
        b = g.add_kernel("b")
        b.add_input("in", 1)
        g.connect("a.out", "b.in")
        trace = Simulator(g).run(limits={"a": 1})
        assert trace.firings_of("a")[0].end == 42.0


class TestCoreContention:
    def build_parallel(self):
        g = TPDFGraph()
        src = g.add_kernel("src", exec_time=0.0)
        for i in range(3):
            src.add_output(f"o{i}", 1)
            worker = g.add_kernel(f"w{i}", exec_time=10.0)
            worker.add_input("in", 1)
            g.connect(f"src.o{i}", f"w{i}.in")
        return g

    def test_unlimited_cores_full_parallel(self):
        g = self.build_parallel()
        trace = Simulator(g).run(limits={"src": 1})
        assert trace.end_time() == 10.0

    def test_single_core_serializes(self):
        g = self.build_parallel()
        trace = Simulator(g, cores=1).run(limits={"src": 1})
        assert trace.end_time() == 30.0

    def test_two_cores(self):
        g = self.build_parallel()
        trace = Simulator(g, cores=2).run(limits={"src": 1})
        assert trace.end_time() == 20.0


class TestBufferPeaks:
    def test_peaks_recorded(self):
        g = build_pipeline(prod=4, cons=1)
        trace = Simulator(g).run(limits={"a": 2})
        assert trace.peaks["ab"] >= 4

    def test_initial_tokens_counted(self):
        g = TPDFGraph()
        a = g.add_kernel("a")
        a.add_output("out", 1)
        b = g.add_kernel("b")
        b.add_input("in", 1)
        g.connect("a.out", "b.in", initial_tokens=5)
        sim = Simulator(g)
        assert sim.trace.peaks["e1"] == 5
