"""Corner semantics of the discrete-event engine.

Pins down three behaviours the coarse-grained tests skate over:

* **discard-debt settlement** — a rejected input whose producer is
  still running is flushed *on arrival* (Example 1's "remove remaining
  tokens"), unless the kernel opts out with ``discard_late = False``;
* **sleeping-queue wakeup ordering** — a HIGHEST_PRIORITY kernel with
  no candidate input sleeps and wakes on the *first deposit event*:
  simultaneous model-time completions resolve in event order, and
  priority only arbitrates among inputs available together at wake-up;
* **clock ticks landing exactly on a completion time** — the tick is
  processed first (it was scheduled earlier), but a kernel sleeping on
  that tick's control token still sees a same-timestamp arrival.
"""

import pytest

from repro.sim import Simulator
from repro.tpdf import ControlToken, Mode, TPDFGraph, clock, transaction


def deadline_graph(with_fast: bool, period: float = 3.0,
                   discard_late: bool = True):
    """src seeds a slow (exec 3.0) and optionally a fast (exec 1.0)
    branch feeding a priority-deadline transaction driven by a clock
    with the given period; slow completes exactly on the first tick."""
    g = TPDFGraph()
    src = g.add_kernel("src", exec_time=0.0, function=lambda n, c: "seed")
    src.add_output("o_slow", 1)
    slow = g.add_kernel("slow", exec_time=3.0, function=lambda n, c: "SLOW")
    slow.add_input("in", 1)
    slow.add_output("out", 1)
    g.connect("src.o_slow", "slow.in")
    names = ["slow_in"] + (["fast_in"] if with_fast else [])
    prios = [1] + ([5] if with_fast else [])
    tran = transaction(g, "tran", inputs=len(names), input_names=names,
                       priorities=prios, action="priority_deadline",
                       exec_time=0.0)
    tran.meta["discard_late"] = discard_late
    g.connect("slow.out", "tran.slow_in", name="e_slow")
    if with_fast:
        src.add_output("o_fast", 1)
        fast = g.add_kernel("fast", exec_time=1.0, function=lambda n, c: "FAST")
        fast.add_input("in", 1)
        fast.add_output("out", 1)
        g.connect("src.o_fast", "fast.in")
        g.connect("fast.out", "tran.fast_in", name="e_fast")
    ck = clock(g, "ck", period=period)
    g.connect("ck.tick", "tran.ctrl")
    got = []
    snk = g.add_kernel("snk", exec_time=0.0,
                       function=lambda n, c: got.append(c["in"][0]))
    snk.add_input("in", 1)
    g.connect("tran.out", "snk.in")
    return g, got


class TestDiscardDebt:
    def test_late_arrival_flushed_on_deposit(self):
        """The losing branch is still in flight when the transaction
        commits: the discard becomes a debt and the token vanishes the
        moment it arrives, leaving the channel empty."""
        g, got = deadline_graph(with_fast=True)
        sim = Simulator(g, record_values=True)
        trace = sim.run(until=7.0, limits={"src": 1})
        assert got == ["FAST"]
        late = [d for d in trace.discards if d.channel == "e_slow"]
        assert len(late) == 1
        # The debt is *recorded* when the firing commits (tick time)...
        assert late[0].count == 1 and late[0].time == 3.0
        # ...and the arriving token was swallowed: nothing is queued.
        assert sim.tokens_in("e_slow") == 0

    def test_discard_late_false_keeps_future_tokens(self):
        """A kernel declaring ``discard_late = False`` (the producer is
        known to be suppressed upstream) must not register a debt: a
        token arriving later stays available for the next firing."""
        g, got = deadline_graph(with_fast=True, discard_late=False)
        sim = Simulator(g, record_values=True)
        trace = sim.run(until=7.0, limits={"src": 1})
        # No debt is registered, so the slow token survives its late
        # arrival and is committed by the NEXT tick's firing.
        assert got == ["FAST", "SLOW"]
        assert sim.tokens_in("e_slow") == 0
        assert not [d for d in trace.discards if d.channel == "e_slow"]
        assert [f.start for f in trace.firings_of("tran")] == [3.0, 6.0]

    def test_present_tokens_flushed_immediately(self):
        """A rejected input that already has its tokens queued loses
        them at commit time (no debt involved)."""
        g, got = deadline_graph(with_fast=True, period=5.0)
        sim = Simulator(g, record_values=True)
        trace = sim.run(until=9.0, limits={"src": 1})
        # Both branches done (1.0 and 3.0) before the 5.0 tick: the
        # high-priority fast branch wins, slow is flushed on the spot.
        assert got == ["FAST"]
        late = [d for d in trace.discards if d.channel == "e_slow"]
        assert len(late) == 1 and late[0].time == 5.0
        assert sim.tokens_in("e_slow") == 0


class TestSleepingWakeupOrdering:
    def _race_graph(self, low_time: float, high_time: float):
        """Control token armed at t=0; two branches with priorities
        1 (low) / 9 (high) complete at the given times."""
        g = TPDFGraph()
        src = g.add_kernel("src", exec_time=0.0, function=lambda n, c: n)
        src.add_output("o1", 1)
        src.add_output("o2", 1)
        src.add_output("sig", 1)
        low = g.add_kernel("low", exec_time=low_time,
                           function=lambda n, c: "LOW")
        low.add_input("in", 1)
        low.add_output("out", 1)
        high = g.add_kernel("high", exec_time=high_time,
                            function=lambda n, c: "HIGH")
        high.add_input("in", 1)
        high.add_output("out", 1)
        ctrl = g.add_control_actor(
            "ctrl", decision=lambda n, i: ControlToken(Mode.HIGHEST_PRIORITY)
        )
        ctrl.add_input("in", 1)
        ctrl.add_control_output("out", 1)
        got = []
        tran = transaction(g, "tran", inputs=2, input_names=["l", "h"],
                           priorities=[1, 9], action="priority_deadline",
                           exec_time=0.0)
        snk = g.add_kernel("snk", exec_time=0.0,
                           function=lambda n, c: got.append(c["in"][0]))
        snk.add_input("in", 1)
        g.connect("src.o1", "low.in")
        g.connect("src.o2", "high.in")
        g.connect("src.sig", "ctrl.in")
        g.connect("low.out", "tran.l", name="e_low")
        g.connect("high.out", "tran.h", name="e_high")
        g.connect("ctrl.out", "tran.ctrl")
        g.connect("tran.out", "snk.in")
        return g, got

    def test_first_arrival_wakes_regardless_of_priority(self):
        """Sleeping kernel: the low-priority branch finishing first is
        consumed at its completion instant — priority never sees the
        later arrival."""
        g, got = self._race_graph(low_time=1.0, high_time=2.0)
        Simulator(g).run(limits={"src": 1})
        assert got == ["LOW"]

    def test_simultaneous_arrivals_resolve_in_event_order(self):
        """Equal completion *times* are still ordered events: the
        branch whose completion was scheduled first (here: low, started
        earlier) wakes the sleeper before the other deposit lands."""
        g, got = self._race_graph(low_time=2.0, high_time=2.0)
        trace = Simulator(g, record_values=True).run(limits={"src": 1})
        assert got == ["LOW"]
        # The high branch's same-instant token is debt-flushed.
        drops = [d for d in trace.discards if d.channel == "e_high"]
        assert len(drops) == 1 and drops[0].time == 2.0

    def test_priority_arbitrates_among_queued_inputs(self):
        """Both branches already queued when the control token arrives:
        the kernel never sleeps and priority decides."""
        g = TPDFGraph()
        src = g.add_kernel("src", exec_time=0.0, function=lambda n, c: n)
        src.add_output("o1", 1)
        src.add_output("o2", 1)
        src.add_output("sig", 1)
        low = g.add_kernel("low", exec_time=1.0, function=lambda n, c: "LOW")
        low.add_input("in", 1)
        low.add_output("out", 1)
        high = g.add_kernel("high", exec_time=2.0, function=lambda n, c: "HIGH")
        high.add_input("in", 1)
        high.add_output("out", 1)
        slow_ctrl = g.add_control_actor(
            "ctrl", exec_time=4.0,
            decision=lambda n, i: ControlToken(Mode.HIGHEST_PRIORITY),
        )
        slow_ctrl.add_input("in", 1)
        slow_ctrl.add_control_output("out", 1)
        got = []
        transaction(g, "tran", inputs=2, input_names=["l", "h"],
                    priorities=[1, 9], action="priority_deadline",
                    exec_time=0.0)
        snk = g.add_kernel("snk", exec_time=0.0,
                           function=lambda n, c: got.append(c["in"][0]))
        snk.add_input("in", 1)
        g.connect("src.o1", "low.in")
        g.connect("src.o2", "high.in")
        g.connect("src.sig", "ctrl.in")
        g.connect("low.out", "tran.l")
        g.connect("high.out", "tran.h")
        g.connect("ctrl.out", "tran.ctrl")
        g.connect("tran.out", "snk.in")
        Simulator(g).run(limits={"src": 1})
        assert got == ["HIGH"]


class TestTickOnExactDeadline:
    def test_completion_exactly_at_tick_is_seen_by_sleeper(self):
        """Only one branch, finishing exactly when the clock ticks: the
        tick is processed first (scheduled earlier), the transaction
        sleeps holding the control token, then wakes on the
        same-timestamp deposit — the deadline result is NOT lost."""
        g, got = deadline_graph(with_fast=False, period=3.0)
        trace = Simulator(g, record_values=True).run(until=7.0, limits={"src": 1})
        assert got == ["SLOW"]
        assert not trace.discards
        # The commit happened at the deadline instant itself.
        firing = trace.firings_of("tran")[0]
        assert firing.start == 3.0

    def test_exact_tick_with_alternative_commits_immediately(self):
        """With a faster branch already queued at the tick, the
        transaction commits at the deadline without waiting for the
        same-instant slow completion, which is then debt-flushed."""
        g, got = deadline_graph(with_fast=True, period=3.0)
        trace = Simulator(g, record_values=True).run(until=7.0, limits={"src": 1})
        assert got == ["FAST"]
        firing = trace.firings_of("tran")[0]
        assert firing.start == 3.0
        drops = [d for d in trace.discards if d.channel == "e_slow"]
        assert len(drops) == 1 and drops[0].time == 3.0

    def test_clock_keeps_ticking_after_deadline(self):
        """Ticks continue at multiples of the period; with no further
        data each later tick just queues a control token."""
        g, got = deadline_graph(with_fast=False, period=3.0)
        sim = Simulator(g, record_values=True)
        trace = sim.run(until=9.5, limits={"src": 1})
        ticks = trace.firings_of("ck")
        assert [t.start for t in ticks] == [3.0, 6.0, 9.0]
        assert got == ["SLOW"]
