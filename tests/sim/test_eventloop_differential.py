"""Differential harness for the dependency-driven event-loop core.

Both discrete-event loops were rebuilt on the wakeup worklist of
:mod:`repro.csdf.eventloop` (an actor is re-examined iff an adjacent
channel changed); the legacy full-rescan loops are retained as oracles
(the ``mcr_reference`` pattern):

* :func:`repro.csdf.throughput.self_timed_execution_reference` for the
  timed CSDF executor;
* ``Simulator(..., ready_core="reference")`` for the value-carrying
  TPDF simulator.

Equality is **bit for bit**: every float time, every firing order
decision (the scan-order tie-break governs sequence numbers and
therefore simultaneous-event ordering), every peak, every discard.
The corpus covers 200+ seeded random graphs, the gallery/Fig. 8
graphs, core budgets, capacity-constrained runs, and deadlock parity
(same ``blocked`` sets).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csdf import (
    CSDFGraph,
    self_timed_execution,
    self_timed_execution_reference,
)
from repro.errors import DeadlockError
from repro.sim import Simulator
from repro.tpdf import (
    ControlToken,
    Mode,
    fig2_graph,
    random_consistent_graph,
    select_one,
)

#: (actors, extra_edges, back_edges) shapes of the random corpus —
#: the same grid the MCR differential harness sweeps.
SHAPES = (
    (3, 1, 0),
    (4, 2, 1),
    (5, 2, 0),
    (5, 3, 2),
    (6, 3, 1),
    (6, 3, 2),
    (7, 3, 0),
    (8, 4, 2),
)
SEEDS_PER_SHAPE = 25  # 8 shapes x 25 seeds = 200 random graphs

CORE_BUDGETS = (None, 1, 2, 8)


def _random_csdf(n: int, extra: int, cycles: int, seed: int) -> CSDFGraph:
    return random_consistent_graph(
        n, extra_edges=extra, n_cycles=cycles, seed=seed, with_control=False
    ).as_csdf()


def _result_key(graph, **kwargs):
    """Exact observable outcome of one executor run: either the full
    TimedResult contents or the deadlock blocked-set."""
    executor = kwargs.pop("executor")
    try:
        r = executor(graph, **kwargs)
    except DeadlockError as exc:
        return ("deadlock", tuple(exc.blocked))
    return (
        r.makespan,
        r.iterations,
        r.firings,
        tuple(r.iteration_ends),
        tuple(r.peaks.items()),  # insertion order included
    )


def _assert_parity(graph, **kwargs):
    new = _result_key(graph, executor=self_timed_execution, **kwargs)
    ref = _result_key(graph, executor=self_timed_execution_reference, **kwargs)
    assert new == ref


def _tight_capacities(graph, iterations):
    """Capacities one below the unconstrained peaks (clamped to >= 1):
    exercises blocking writes, reservation wakeups and — on cyclic
    graphs — deadlocks."""
    peaks = self_timed_execution_reference(
        graph, iterations=iterations
    ).peaks
    return {name: max(1, peak - 1) for name, peak in peaks.items()}


class TestTimedExecutorParity:
    """New core == reference on the random corpus x cores x capacities."""

    @pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"n{s[0]}e{s[1]}c{s[2]}")
    def test_random_corpus_unconstrained(self, shape):
        n, extra, cycles = shape
        for seed in range(SEEDS_PER_SHAPE):
            graph = _random_csdf(n, extra, cycles, seed)
            for cores in CORE_BUDGETS:
                _assert_parity(graph, iterations=3, cores=cores)

    @pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"n{s[0]}e{s[1]}c{s[2]}")
    def test_random_corpus_capacity_constrained(self, shape):
        n, extra, cycles = shape
        for seed in range(10):
            graph = _random_csdf(n, extra, cycles, seed)
            capacities = _tight_capacities(graph, iterations=3)
            for cores in (None, 2):
                _assert_parity(
                    graph, iterations=3, cores=cores, capacities=capacities
                )

    def test_deadlock_parity_includes_blocked_sets(self):
        """Both loops stall identically — same exception, same blocked
        actors — on a tokenless cycle and on undersized buffers."""
        cycle = CSDFGraph("dead")
        cycle.add_actor("a")
        cycle.add_actor("b")
        cycle.add_channel("ab", "a", "b")
        cycle.add_channel("ba", "b", "a")
        key_new = _result_key(cycle, executor=self_timed_execution)
        key_ref = _result_key(cycle, executor=self_timed_execution_reference)
        assert key_new == key_ref
        assert key_new[0] == "deadlock" and set(key_new[1]) == {"a", "b"}

        undersized = CSDFGraph("small")
        undersized.add_actor("a")
        undersized.add_actor("b")
        undersized.add_channel("e", "a", "b", 3, 3)
        for executor in (self_timed_execution, self_timed_execution_reference):
            with pytest.raises(DeadlockError) as exc:
                executor(undersized, capacities={"e": 2})
            assert exc.value.blocked == ["a", "b"]

    def test_gallery_and_fig8_graphs(self, fig1):
        from repro.apps.ofdm import bindings_for, build_ofdm_csdf, build_ofdm_tpdf
        from repro.gallery import parametric_radio_graph

        cases = [
            (fig1, None),
            (fig2_graph().as_csdf(), {"p": 1}),
            (fig2_graph().as_csdf(), {"p": 4}),
            (parametric_radio_graph(), {"b": 2, "c": 3}),
            (build_ofdm_tpdf().as_csdf(), bindings_for(2, 16, 4, 4)),
            (build_ofdm_csdf(), bindings_for(2, 32, 2, 4)),
        ]
        for graph, bindings in cases:
            for cores in CORE_BUDGETS:
                _assert_parity(graph, bindings=bindings, iterations=4,
                               cores=cores)
            capacities = _tight_capacities(graph, iterations=4) if bindings is None else None
            if capacities is None:
                peaks = self_timed_execution_reference(
                    graph, bindings, iterations=4
                ).peaks
                capacities = {k: max(1, v - 1) for k, v in peaks.items()}
            _assert_parity(graph, bindings=bindings, iterations=4,
                           capacities=capacities)

    @given(
        seed=st.integers(0, 100_000),
        n=st.integers(3, 8),
        cycles=st.integers(0, 2),
        cores=st.sampled_from(CORE_BUDGETS),
        constrain=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_parity_property(self, seed, n, cycles, cores, constrain):
        graph = _random_csdf(n, n // 2, cycles, seed)
        capacities = _tight_capacities(graph, iterations=3) if constrain else None
        _assert_parity(graph, iterations=3, cores=cores, capacities=capacities)

    def test_wakeup_visits_fewer_actors(self):
        """The point of the refactor: the dependency-driven ready check
        examines far fewer actors than the full rescan (>= 2x on the
        corpus shapes) while producing identical results."""
        total_new = total_ref = 0
        for seed in range(10):
            graph = _random_csdf(8, 4, 2, seed)
            new_stats, ref_stats = {}, {}
            self_timed_execution(graph, iterations=4, stats=new_stats)
            self_timed_execution_reference(graph, iterations=4, stats=ref_stats)
            assert new_stats["events"] == ref_stats["events"]
            total_new += new_stats["ready_visits"]
            total_ref += ref_stats["ready_visits"]
        assert total_new * 2 <= total_ref


def _sim_fingerprint(graph, ready_core, cores=None, limits=None, until=None,
                     record_values=False, bindings=None):
    sim = Simulator(graph, bindings=bindings, cores=cores,
                    ready_core=ready_core, record_values=record_values)
    trace = sim.run(until=until, limits=limits, max_firings=20_000)
    return trace.fingerprint()


def _assert_sim_parity(graph, **kwargs):
    new = _sim_fingerprint(graph, "wakeup", **kwargs)
    ref = _sim_fingerprint(graph, "reference", **kwargs)
    assert new == ref


class TestSimulatorParity:
    """Trace fingerprints (firing order, times, modes, discards, peaks)
    match bit for bit between the wakeup and reference ready checks."""

    @pytest.mark.parametrize("with_control", (False, True),
                             ids=("plain", "controlled"))
    def test_random_graphs(self, with_control):
        for seed in range(25):
            graph = random_consistent_graph(
                5, extra_edges=2, n_cycles=1, seed=seed,
                with_control=with_control,
            )
            source = next(iter(graph.kernels))
            for cores in (None, 1, 2):
                _assert_sim_parity(graph, cores=cores, limits={source: 4})

    def test_fig2_graph(self, fig2):
        source = next(iter(fig2.kernels))
        for cores in (None, 1, 3):
            _assert_sim_parity(fig2, cores=cores, limits={source: 4},
                               bindings={"p": 2})

    def test_mode_machinery(self):
        """Selections, rejections (discard debts) and priorities flow
        through the wakeup core unchanged."""
        for decision in (
            lambda n, inputs: select_one("from_left"),
            lambda n, inputs: ControlToken(Mode.WAIT_ALL),
            lambda n, inputs: ControlToken(Mode.HIGHEST_PRIORITY),
        ):
            new = _controlled_fingerprint(decision, "wakeup")
            ref = _controlled_fingerprint(decision, "reference")
            assert new == ref

    def test_clock_driven_graph(self):
        from repro.tpdf import TPDFGraph, clock

        def build():
            g = TPDFGraph("clocked")
            src = g.add_kernel("src", exec_time=1.0, function=lambda n, c: n)
            src.add_output("out", 1)
            snk = g.add_kernel("snk", exec_time=0.5)
            snk.add_input("in", 1, priority=1)
            snk.add_control_port("ctrl", 1)
            clock(g, "clk", period=2.0)
            g.connect("src.out", "snk.in", name="data")
            g.connect("clk.tick", "snk.ctrl", name="ticks")
            return g

        new = _sim_fingerprint(build(), "wakeup", limits={"src": 5}, until=20.0)
        ref = _sim_fingerprint(build(), "reference", limits={"src": 5}, until=20.0)
        assert new == ref

    def test_visit_reduction_on_wide_graph(self):
        graph = random_consistent_graph(
            20, extra_edges=10, n_cycles=2, seed=3, with_control=False
        )
        source = next(iter(graph.kernels))
        sims = {}
        for core in ("wakeup", "reference"):
            sim = Simulator(graph, ready_core=core)
            sim.run(limits={source: 6}, max_firings=50_000)
            sims[core] = sim
        assert (sims["wakeup"].ready_stats["events"]
                == sims["reference"].ready_stats["events"])
        assert (sims["wakeup"].ready_stats["visits"] * 2
                <= sims["reference"].ready_stats["visits"])

    def test_invalid_ready_core_rejected(self, fig2):
        with pytest.raises(ValueError):
            Simulator(fig2, ready_core="bogus")


def _controlled_fingerprint(decision, ready_core):
    """The select/reject scenario of the engine mode tests: src feeds
    two branches, a control actor picks at the sink."""
    from repro.tpdf import TPDFGraph

    g = TPDFGraph()
    src = g.add_kernel("src", exec_time=0.0, function=lambda n, c: n)
    src.add_output("o1", 1)
    src.add_output("o2", 1)
    src.add_output("sig", 1)
    left = g.add_kernel("left", exec_time=1.0)
    left.add_input("in", 1)
    left.add_output("out", 1)
    right = g.add_kernel("right", exec_time=2.0)
    right.add_input("in", 1)
    right.add_output("out", 1)
    ctrl = g.add_control_actor("ctrl", decision=decision)
    ctrl.add_input("in", 1)
    ctrl.add_control_output("out", 1)
    sink = g.add_kernel("sink", exec_time=0.0)
    sink.add_input("from_left", 1, priority=1)
    sink.add_input("from_right", 1, priority=2)
    sink.add_control_port("ctrl", 1)
    g.connect("src.o1", "left.in")
    g.connect("src.o2", "right.in")
    g.connect("src.sig", "ctrl.in")
    g.connect("left.out", "sink.from_left", name="e_left")
    g.connect("right.out", "sink.from_right", name="e_right")
    g.connect("ctrl.out", "sink.ctrl")
    return _sim_fingerprint(g, ready_core, limits={"src": 3})
