"""Differential harness for the event-loop cores.

The timed CSDF executor ships **three** backends —
``self_timed_execution(backend="arrays"|"wakeup"|"reference")``: the
struct-of-arrays core of :mod:`repro.csdf.statearrays`, the wakeup
worklist core of :mod:`repro.csdf.eventloop`, and the legacy
full-rescan loop retained as the oracle (the ``mcr_reference``
pattern).  The value-carrying TPDF simulator mirrors the selection as
``Simulator(..., ready_core=...)`` (its ``"arrays"`` core swaps in the
calendar-queue scheduler).

Equality is **bit for bit** across all three: every float time, every
firing order decision (the scan-order tie-break governs sequence
numbers and therefore simultaneous-event ordering), every peak, every
discard, every deadlock blocked-set.  The corpus covers 200 seeded
random graphs x core budgets {None, 1, 2, 8} x capacity constraints
on/off, the gallery/Fig. 8 graphs, and the control/clock/mode
machinery.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csdf import (
    CSDFGraph,
    self_timed_execution,
    self_timed_execution_reference,
)
from repro.errors import DeadlockError
from repro.sim import Simulator
from repro.tpdf import (
    ControlToken,
    Mode,
    fig2_graph,
    random_consistent_graph,
    select_one,
)

#: (actors, extra_edges, back_edges) shapes of the random corpus —
#: the same grid the MCR differential harness sweeps.
SHAPES = (
    (3, 1, 0),
    (4, 2, 1),
    (5, 2, 0),
    (5, 3, 2),
    (6, 3, 1),
    (6, 3, 2),
    (7, 3, 0),
    (8, 4, 2),
)
SEEDS_PER_SHAPE = 25  # 8 shapes x 25 seeds = 200 random graphs

CORE_BUDGETS = (None, 1, 2, 8)


def _random_csdf(n: int, extra: int, cycles: int, seed: int) -> CSDFGraph:
    return random_consistent_graph(
        n, extra_edges=extra, n_cycles=cycles, seed=seed, with_control=False
    ).as_csdf()


#: The three-way backend surface under test.
EXECUTOR_BACKENDS = ("arrays", "wakeup", "reference")


def _result_key(graph, **kwargs):
    """Exact observable outcome of one executor run: either the full
    TimedResult contents or the deadlock blocked-set."""
    executor = kwargs.pop("executor")
    try:
        r = executor(graph, **kwargs)
    except DeadlockError as exc:
        return ("deadlock", tuple(exc.blocked))
    return (
        r.makespan,
        r.iterations,
        r.firings,
        tuple(r.iteration_ends),
        tuple(r.peaks.items()),  # insertion order included
    )


def _assert_parity(graph, **kwargs):
    """All three backends produce the identical result key."""
    keys = {
        backend: _result_key(
            graph,
            executor=lambda g, _b=backend, **kw: self_timed_execution(
                g, backend=_b, **kw
            ),
            **kwargs,
        )
        for backend in EXECUTOR_BACKENDS
    }
    assert keys["arrays"] == keys["wakeup"] == keys["reference"]


def _tight_capacities(graph, iterations):
    """Capacities one below the unconstrained peaks (clamped to >= 1):
    exercises blocking writes, reservation wakeups and — on cyclic
    graphs — deadlocks."""
    peaks = self_timed_execution_reference(
        graph, iterations=iterations
    ).peaks
    return {name: max(1, peak - 1) for name, peak in peaks.items()}


class TestTimedExecutorParity:
    """New core == reference on the random corpus x cores x capacities."""

    @pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"n{s[0]}e{s[1]}c{s[2]}")
    def test_random_corpus_unconstrained(self, shape):
        n, extra, cycles = shape
        for seed in range(SEEDS_PER_SHAPE):
            graph = _random_csdf(n, extra, cycles, seed)
            for cores in CORE_BUDGETS:
                _assert_parity(graph, iterations=3, cores=cores)

    @pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"n{s[0]}e{s[1]}c{s[2]}")
    def test_random_corpus_capacity_constrained(self, shape):
        n, extra, cycles = shape
        for seed in range(10):
            graph = _random_csdf(n, extra, cycles, seed)
            capacities = _tight_capacities(graph, iterations=3)
            for cores in (None, 2):
                _assert_parity(
                    graph, iterations=3, cores=cores, capacities=capacities
                )

    def test_deadlock_parity_includes_blocked_sets(self):
        """All backends stall identically — same exception, same
        blocked actors — on a tokenless cycle and undersized buffers."""
        cycle = CSDFGraph("dead")
        cycle.add_actor("a")
        cycle.add_actor("b")
        cycle.add_channel("ab", "a", "b")
        cycle.add_channel("ba", "b", "a")
        _assert_parity(cycle)
        key = _result_key(
            cycle, executor=lambda g, **kw: self_timed_execution(
                g, backend="arrays", **kw))
        assert key[0] == "deadlock" and set(key[1]) == {"a", "b"}

        undersized = CSDFGraph("small")
        undersized.add_actor("a")
        undersized.add_actor("b")
        undersized.add_channel("e", "a", "b", 3, 3)
        for backend in EXECUTOR_BACKENDS:
            with pytest.raises(DeadlockError) as exc:
                self_timed_execution(
                    undersized, capacities={"e": 2}, backend=backend)
            assert exc.value.blocked == ["a", "b"]

    def test_gallery_and_fig8_graphs(self, fig1):
        from repro.apps.ofdm import bindings_for, build_ofdm_csdf, build_ofdm_tpdf
        from repro.gallery import parametric_radio_graph

        cases = [
            (fig1, None),
            (fig2_graph().as_csdf(), {"p": 1}),
            (fig2_graph().as_csdf(), {"p": 4}),
            (parametric_radio_graph(), {"b": 2, "c": 3}),
            (build_ofdm_tpdf().as_csdf(), bindings_for(2, 16, 4, 4)),
            (build_ofdm_csdf(), bindings_for(2, 32, 2, 4)),
        ]
        for graph, bindings in cases:
            for cores in CORE_BUDGETS:
                _assert_parity(graph, bindings=bindings, iterations=4,
                               cores=cores)
            capacities = _tight_capacities(graph, iterations=4) if bindings is None else None
            if capacities is None:
                peaks = self_timed_execution_reference(
                    graph, bindings, iterations=4
                ).peaks
                capacities = {k: max(1, v - 1) for k, v in peaks.items()}
            _assert_parity(graph, bindings=bindings, iterations=4,
                           capacities=capacities)

    @given(
        seed=st.integers(0, 100_000),
        n=st.integers(3, 8),
        cycles=st.integers(0, 2),
        cores=st.sampled_from(CORE_BUDGETS),
        constrain=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_parity_property(self, seed, n, cycles, cores, constrain):
        graph = _random_csdf(n, n // 2, cycles, seed)
        capacities = _tight_capacities(graph, iterations=3) if constrain else None
        _assert_parity(graph, iterations=3, cores=cores, capacities=capacities)

    def test_ready_visit_hierarchy(self):
        """The point of the refactors: the wakeup core examines far
        fewer actors than the full rescan (>= 2x on the corpus
        shapes), and the array-state core — which only ever queues
        actors that *became* startable — examines no more than the
        wakeup core, all while producing identical results."""
        totals = {backend: 0 for backend in EXECUTOR_BACKENDS}
        events = {backend: 0 for backend in EXECUTOR_BACKENDS}
        for seed in range(10):
            graph = _random_csdf(8, 4, 2, seed)
            for backend in EXECUTOR_BACKENDS:
                stats = {}
                self_timed_execution(
                    graph, iterations=4, stats=stats, backend=backend)
                totals[backend] += stats["ready_visits"]
                events[backend] += stats["events"]
        assert events["arrays"] == events["wakeup"] == events["reference"]
        assert totals["wakeup"] * 2 <= totals["reference"]
        assert totals["arrays"] <= totals["wakeup"]


def _sim_fingerprint(graph, ready_core, cores=None, limits=None, until=None,
                     record_values=False, bindings=None):
    sim = Simulator(graph, bindings=bindings, cores=cores,
                    ready_core=ready_core, record_values=record_values)
    trace = sim.run(until=until, limits=limits, max_firings=20_000)
    return trace.fingerprint()


def _assert_sim_parity(graph, **kwargs):
    arrays = _sim_fingerprint(graph, "arrays", **kwargs)
    new = _sim_fingerprint(graph, "wakeup", **kwargs)
    ref = _sim_fingerprint(graph, "reference", **kwargs)
    assert arrays == new == ref


class TestSimulatorParity:
    """Trace fingerprints (firing order, times, modes, discards, peaks)
    match bit for bit between the wakeup and reference ready checks."""

    @pytest.mark.parametrize("with_control", (False, True),
                             ids=("plain", "controlled"))
    def test_random_graphs(self, with_control):
        for seed in range(25):
            graph = random_consistent_graph(
                5, extra_edges=2, n_cycles=1, seed=seed,
                with_control=with_control,
            )
            source = next(iter(graph.kernels))
            for cores in (None, 1, 2):
                _assert_sim_parity(graph, cores=cores, limits={source: 4})

    def test_fig2_graph(self, fig2):
        source = next(iter(fig2.kernels))
        for cores in (None, 1, 3):
            _assert_sim_parity(fig2, cores=cores, limits={source: 4},
                               bindings={"p": 2})

    def test_mode_machinery(self):
        """Selections, rejections (discard debts) and priorities flow
        through the wakeup and arrays cores unchanged."""
        for decision in (
            lambda n, inputs: select_one("from_left"),
            lambda n, inputs: ControlToken(Mode.WAIT_ALL),
            lambda n, inputs: ControlToken(Mode.HIGHEST_PRIORITY),
        ):
            arrays = _controlled_fingerprint(decision, "arrays")
            new = _controlled_fingerprint(decision, "wakeup")
            ref = _controlled_fingerprint(decision, "reference")
            assert arrays == new == ref

    def test_clock_driven_graph(self):
        from repro.tpdf import TPDFGraph, clock

        def build():
            g = TPDFGraph("clocked")
            src = g.add_kernel("src", exec_time=1.0, function=lambda n, c: n)
            src.add_output("out", 1)
            snk = g.add_kernel("snk", exec_time=0.5)
            snk.add_input("in", 1, priority=1)
            snk.add_control_port("ctrl", 1)
            clock(g, "clk", period=2.0)
            g.connect("src.out", "snk.in", name="data")
            g.connect("clk.tick", "snk.ctrl", name="ticks")
            return g

        fingerprints = {
            core: _sim_fingerprint(build(), core, limits={"src": 5},
                                   until=20.0)
            for core in ("arrays", "wakeup", "reference")
        }
        assert (fingerprints["arrays"] == fingerprints["wakeup"]
                == fingerprints["reference"])

    def test_visit_reduction_on_wide_graph(self):
        graph = random_consistent_graph(
            20, extra_edges=10, n_cycles=2, seed=3, with_control=False
        )
        source = next(iter(graph.kernels))
        sims = {}
        for core in ("arrays", "wakeup", "reference"):
            sim = Simulator(graph, ready_core=core)
            sim.run(limits={source: 6}, max_firings=50_000)
            sims[core] = sim
        assert (sims["arrays"].ready_stats["events"]
                == sims["wakeup"].ready_stats["events"]
                == sims["reference"].ready_stats["events"])
        assert (sims["wakeup"].ready_stats["visits"] * 2
                <= sims["reference"].ready_stats["visits"])
        assert (sims["arrays"].ready_stats["visits"]
                == sims["wakeup"].ready_stats["visits"])

    def test_invalid_ready_core_rejected(self, fig2):
        with pytest.raises(ValueError):
            Simulator(fig2, ready_core="bogus")


def _sim_result_key(graph, ready_core, cores, limits, capacities=None,
                    bindings=None):
    """Exact observable outcome of one simulator run: the trace
    fingerprint (firing order/times/modes, discards, peaks) or the
    up-front capacity deadlock's blocked set."""
    try:
        sim = Simulator(graph, bindings=bindings, cores=cores,
                        ready_core=ready_core, capacities=capacities)
    except DeadlockError as exc:
        return ("deadlock", tuple(exc.blocked))
    sim.run(limits=limits, max_firings=20_000)
    return (sim.trace.fingerprint(), len(sim.trace.discards),
            sim.ready_stats["events"])


def _sim_tight_capacities(graph, limits):
    """Capacities one below an unconstrained reference run's peaks
    (clamped to >= 1): back-pressure on every channel, and — where a
    peak-1 bound falls below the initial marking — the up-front
    capacity deadlock."""
    sim = Simulator(graph, ready_core="reference")
    sim.run(limits=limits, max_firings=20_000)
    return {name: max(1, peak - 1) for name, peak in sim.trace.peaks.items()}


class TestSimulatorCorpusParity:
    """The schedule/value-plane split (``ready_core="arrays"``, the
    default) is pinned bit for bit against the wakeup core and the
    legacy reference oracle over the 200-graph corpus x core budgets
    {None, 1, 2, 8} x capacity constraints on/off — the acceptance bar
    of the plane refactor.  Control machinery rides along on odd
    seeds (control actor + controlled sink per graph)."""

    @pytest.mark.parametrize("constrained", (False, True),
                             ids=("open", "capped"))
    @pytest.mark.parametrize("shape", SHAPES,
                             ids=lambda s: f"n{s[0]}e{s[1]}c{s[2]}")
    def test_random_corpus(self, shape, constrained):
        n, extra, cycles = shape
        for seed in range(SEEDS_PER_SHAPE):
            graph = random_consistent_graph(
                n, extra_edges=extra, n_cycles=cycles, seed=seed,
                with_control=bool(seed % 2),
            )
            limits = {name: 4 for name in graph.kernels}
            capacities = (
                _sim_tight_capacities(graph, limits) if constrained else None
            )
            for cores in CORE_BUDGETS:
                keys = {
                    core: _sim_result_key(graph, core, cores, limits,
                                          capacities)
                    for core in ("arrays", "wakeup", "reference")
                }
                assert keys["arrays"] == keys["wakeup"] == keys["reference"], (
                    f"shape={shape} seed={seed} cores={cores} "
                    f"constrained={constrained}"
                )


def _controlled_fingerprint(decision, ready_core):
    """The select/reject scenario of the engine mode tests: src feeds
    two branches, a control actor picks at the sink."""
    from repro.tpdf import TPDFGraph

    g = TPDFGraph()
    src = g.add_kernel("src", exec_time=0.0, function=lambda n, c: n)
    src.add_output("o1", 1)
    src.add_output("o2", 1)
    src.add_output("sig", 1)
    left = g.add_kernel("left", exec_time=1.0)
    left.add_input("in", 1)
    left.add_output("out", 1)
    right = g.add_kernel("right", exec_time=2.0)
    right.add_input("in", 1)
    right.add_output("out", 1)
    ctrl = g.add_control_actor("ctrl", decision=decision)
    ctrl.add_input("in", 1)
    ctrl.add_control_output("out", 1)
    sink = g.add_kernel("sink", exec_time=0.0)
    sink.add_input("from_left", 1, priority=1)
    sink.add_input("from_right", 1, priority=2)
    sink.add_control_port("ctrl", 1)
    g.connect("src.o1", "left.in")
    g.connect("src.o2", "right.in")
    g.connect("src.sig", "ctrl.in")
    g.connect("left.out", "sink.from_left", name="e_left")
    g.connect("right.out", "sink.from_right", name="e_right")
    g.connect("ctrl.out", "sink.ctrl")
    return _sim_fingerprint(g, ready_core, limits={"src": 3})
