"""The schedule-plane / value-plane split of the arrays simulator core.

Covers the satellites of the plane refactor:

* the :data:`~repro.sim.INITIAL_TOKEN` sentinel — initial tokens are
  distinguishable from a genuine produced ``None`` by forwarding
  kernels, on every ready core;
* ``Simulator.stats()`` reports the engine that actually runs
  (``{"ready_core": ..., "plane": "arrays"|"python"}``);
* data-dependent ``time_fn`` kernels under capacities and core
  budgets, including reservation/release when the ``time_fn`` firing
  is the capacity blocker;
* the lazy value plane: payload deques are allocated **only** for
  channels with a value-touching endpoint (spy-counted), and a
  whole graph without one degenerates to the counters-only fast path.
"""

import pytest

from repro.sim import INITIAL_TOKEN, InitialToken, Simulator
from repro.sim import schedplane
from repro.tpdf import TPDFGraph

READY_CORES = ("arrays", "wakeup", "reference")


def _forwarding_graph(collected):
    """src -> fwd -> snk, with two initial tokens on src->fwd; fwd
    forwards payloads verbatim and snk collects them."""
    g = TPDFGraph("forwarding")
    src = g.add_kernel("src", exec_time=1.0, function=lambda n, c: None)
    src.add_output("out", 1)
    fwd = g.add_kernel("fwd", exec_time=1.0,
                       function=lambda n, c: list(c["in"]))
    fwd.add_input("in", 1)
    fwd.add_output("out", 1)
    snk = g.add_kernel("snk", exec_time=0.0)
    snk.add_input("in", 1)
    snk.function = lambda n, c: collected.extend(c["in"])
    g.connect("src.out", "fwd.in", name="e_in", initial_tokens=2)
    g.connect("fwd.out", "snk.in", name="e_mid")
    return g


class TestInitialTokenSentinel:

    def test_singleton_and_falsy(self):
        assert InitialToken() is INITIAL_TOKEN
        assert not INITIAL_TOKEN  # old ``if consumed.get(port):`` guards hold
        assert INITIAL_TOKEN is not None
        assert repr(INITIAL_TOKEN) == "InitialToken"

    @pytest.mark.parametrize("ready_core", READY_CORES)
    def test_forwarded_initial_tokens_are_distinguishable(self, ready_core):
        collected: list = []
        sim = Simulator(_forwarding_graph(collected), ready_core=ready_core)
        sim.run(limits={"src": 2, "fwd": 4, "snk": 4})
        # two initial tokens forwarded first, then two produced Nones —
        # the sentinel tells them apart where the old None pre-fill
        # could not
        assert collected[:2] == [INITIAL_TOKEN, INITIAL_TOKEN]
        assert all(v is INITIAL_TOKEN for v in collected[:2])
        assert collected[2:] == [None, None]
        assert all(v is None for v in collected[2:])

    @pytest.mark.parametrize("ready_core", READY_CORES)
    def test_unconsumed_initial_tokens_visible_on_channel(self, ready_core):
        g = TPDFGraph("idle")
        src = g.add_kernel("src", exec_time=1.0)
        src.add_output("out", 1)
        snk = g.add_kernel("snk", exec_time=1.0,
                           function=lambda n, c: None)
        snk.add_input("in", 1)
        g.connect("src.out", "snk.in", name="e", initial_tokens=3)
        sim = Simulator(g, ready_core=ready_core)
        sim.run(limits={"src": 0, "snk": 1})
        assert sim.tokens_in("e") == 2
        assert sim.channel_values("e") == [INITIAL_TOKEN, INITIAL_TOKEN]


class TestStatsReportsPlane:

    #: Each READY_CORES entry and the engine that actually executes it.
    EXPECTED_PLANE = {"arrays": "arrays", "wakeup": "python",
                      "reference": "python"}

    def test_ready_cores_table_is_exhaustive(self):
        assert set(Simulator.READY_CORES) == set(self.EXPECTED_PLANE)

    @pytest.mark.parametrize("ready_core", READY_CORES)
    def test_plane_matches_actual_engine(self, ready_core):
        g = TPDFGraph("tiny")
        src = g.add_kernel("src", exec_time=1.0)
        src.add_output("out", 1)
        snk = g.add_kernel("snk", exec_time=1.0)
        snk.add_input("in", 1)
        g.connect("src.out", "snk.in", name="e")
        sim = Simulator(g, ready_core=ready_core)
        stats = sim.stats()
        assert stats["ready_core"] == ready_core
        assert stats["plane"] == self.EXPECTED_PLANE[ready_core]
        sim.run(limits={"src": 3})
        stats = sim.stats()
        assert stats["plane"] == self.EXPECTED_PLANE[ready_core]
        # the plane object exists iff the arrays engine actually ran
        assert (sim._plane is not None) == (ready_core == "arrays")
        if ready_core == "arrays":
            assert stats["value_channels"] + stats["schedule_only_channels"] \
                == len(g.channels)
        else:
            assert "value_channels" not in stats
        assert stats["events"] == sim.ready_stats["events"]


def _time_fn_graph():
    """src --(capped)--> mid --> snk where mid's duration is
    data-dependent (reads the payload produced by src)."""
    g = TPDFGraph("timefn")
    src = g.add_kernel("src", exec_time=0.5, function=lambda n, c: n)
    src.add_output("out", 2)
    mid = g.add_kernel("mid", exec_time=1.0)
    mid.add_input("in", 2)
    mid.add_output("out", 1)
    mid.meta["time_fn"] = (
        lambda n, c: 0.5 + 0.25 * sum(
            v for v in c["in"] if isinstance(v, int)) % 4
    )
    snk = g.add_kernel("snk", exec_time=2.0)
    snk.add_input("in", 1)
    g.connect("src.out", "mid.in", name="e_src")
    g.connect("mid.out", "snk.in", name="e_mid")
    return g


def _fingerprint(graph, ready_core, cores=None, capacities=None, limits=None):
    sim = Simulator(graph, cores=cores, ready_core=ready_core,
                    capacities=capacities)
    sim.run(limits=limits, max_firings=20_000)
    return sim.trace.fingerprint(), sim


class TestTimeFnUnderConstraints:
    """Data-dependent durations were only differential-tested without
    capacities before the plane split; pin them under back-pressure
    and core budgets too."""

    @pytest.mark.parametrize("cores", (None, 1, 2))
    @pytest.mark.parametrize("capacities",
                             (None, {"e_src": 2, "e_mid": 1}),
                             ids=("open", "capped"))
    def test_parity_under_caps_and_cores(self, cores, capacities):
        limits = {"src": 6}
        prints = {}
        for core in READY_CORES:
            prints[core], sim = _fingerprint(
                _time_fn_graph(), core, cores=cores,
                capacities=capacities, limits=limits,
            )
            if capacities:
                for name, cap in capacities.items():
                    assert sim.trace.peaks[name] <= cap
        assert prints["arrays"] == prints["wakeup"] == prints["reference"]

    @pytest.mark.parametrize("ready_core", READY_CORES)
    def test_time_fn_reservation_released_when_blocker(self, ready_core):
        """The ``time_fn`` firing *is* the capacity blocker: ``e_mid``
        has room for exactly one token, so every in-flight mid firing
        holds the whole reservation; it must convert to a queued token
        at completion and drop back to zero."""
        graph = _time_fn_graph()
        sim = Simulator(graph, ready_core=ready_core,
                        capacities={"e_mid": 1})
        sim.run(limits={"src": 6}, max_firings=20_000)
        assert sim.trace.peaks["e_mid"] == 1
        assert sim.channel_reserved("e_mid") == 0
        assert sim.channel_reserved("e_src") == 0
        # back-pressure throttles mid: it can only fire once per snk
        # consumption, so the run still completes all upstream work
        assert sim.trace.count("mid") == sim.trace.count("snk") > 0

    def test_time_fn_sees_value_plane_payloads(self):
        """The duration really is data-dependent through the value
        plane: doubling the produced values changes the schedule."""
        def build(scale):
            g = _time_fn_graph()
            g.node("src").function = lambda n, c: scale * n
            return g

        base, _ = _fingerprint(build(1), "arrays", limits={"src": 6})
        scaled, _ = _fingerprint(build(2), "arrays", limits={"src": 6})
        ref_base, _ = _fingerprint(build(1), "reference", limits={"src": 6})
        assert base != scaled
        assert base == ref_base


class TestLazyValuePlane:

    def _run(self, graph, monkeypatch, **kwargs):
        allocations = []
        real = schedplane._make_queue

        def spy(values):
            queue = real(values)
            allocations.append(queue)
            return queue

        monkeypatch.setattr(schedplane, "_make_queue", spy)
        sim = Simulator(graph, ready_core="arrays", **kwargs)
        sim.run(limits={name: 4 for name in graph.kernels},
                max_firings=20_000)
        return sim, allocations

    def test_pure_timing_graph_allocates_no_payload_storage(self, monkeypatch):
        from repro.tpdf import random_consistent_graph

        graph = random_consistent_graph(12, extra_edges=5, n_cycles=2,
                                        seed=11, with_control=False)
        sim, allocations = self._run(graph, monkeypatch)
        assert allocations == []  # spy-counted: zero deques materialized
        stats = sim.stats()
        assert stats["fast_path"] is True
        assert stats["value_channels"] == 0
        assert stats["schedule_only_channels"] == len(graph.channels)
        assert sim.trace.count(next(iter(graph.kernels))) == 4

    def test_only_value_bearing_channels_materialize(self, monkeypatch):
        g = TPDFGraph("mixed")
        src = g.add_kernel("src", exec_time=1.0, function=lambda n, c: n)
        src.add_output("out", 1)
        a = g.add_kernel("a", exec_time=1.0)
        a.add_input("in", 1)
        a.add_output("out", 1)
        b = g.add_kernel("b", exec_time=1.0)
        b.add_input("in", 1)
        b.add_output("out", 1)
        snk = g.add_kernel("snk", exec_time=1.0)
        snk.add_input("in", 1)
        snk.meta["time_fn"] = lambda n, c: 1.0
        g.connect("src.out", "a.in", name="e_fn_out")   # producer computes
        g.connect("a.out", "b.in", name="e_pure")       # pure -> pure
        g.connect("b.out", "snk.in", name="e_timefn")   # consumer reads
        sim, allocations = self._run(g, monkeypatch)
        assert len(allocations) == 2
        plane = sim._plane
        assert plane.queues[plane.slot_of["e_pure"]] is None
        assert plane.queues[plane.slot_of["e_fn_out"]] is not None
        assert plane.queues[plane.slot_of["e_timefn"]] is not None
        assert sim.stats()["fast_path"] is False
        assert sim.stats()["schedule_only_channels"] == 1

    def test_record_values_materializes_everything(self, monkeypatch):
        g = TPDFGraph("recorded")
        src = g.add_kernel("src", exec_time=1.0)
        src.add_output("out", 1)
        snk = g.add_kernel("snk", exec_time=1.0)
        snk.add_input("in", 1)
        g.connect("src.out", "snk.in", name="e")
        sim, allocations = self._run(g, monkeypatch, record_values=True)
        assert len(allocations) == 1
        assert sim.trace.firings_of("snk")[0].consumed == {"in": [None]}


class TestPlaneTraceEquivalence:
    """Columnar record construction is invisible to trace consumers."""

    def test_lazy_firings_materialize_identically(self):
        from repro.tpdf import random_consistent_graph

        graph = random_consistent_graph(6, extra_edges=3, n_cycles=1,
                                        seed=4, with_control=True)
        limits = {name: 4 for name in graph.kernels}
        sims = {}
        for core in ("arrays", "reference"):
            sims[core] = Simulator(graph, ready_core=core)
            sims[core].run(limits=limits)
        arrays, reference = sims["arrays"], sims["reference"]
        assert arrays.trace.fingerprint() == reference.trace.fingerprint()
        # materialize after fingerprinting: same records, same order
        assert len(arrays.trace.firings) == len(reference.trace.firings)
        for got, want in zip(arrays.trace.firings, reference.trace.firings):
            assert (got.node, got.index, got.start, got.end, got.mode) == (
                want.node, want.index, want.start, want.end, want.mode)
        # fingerprint unchanged by materialization
        assert arrays.trace.fingerprint() == reference.trace.fingerprint()

    def test_incremental_runs_accumulate_records(self):
        g = TPDFGraph("steps")
        src = g.add_kernel("src", exec_time=1.0)
        src.add_output("out", 1)
        snk = g.add_kernel("snk", exec_time=1.0)
        snk.add_input("in", 1)
        g.connect("src.out", "snk.in", name="e")
        sim = Simulator(g, ready_core="arrays")
        sim.run(limits={"src": 2})
        first = len(sim.trace.firings)  # materializes mid-stream
        assert first > 0
        sim.run(limits={"src": 4})
        assert len(sim.trace.firings) > first
        ref = Simulator(g, ready_core="reference")
        ref.run(limits={"src": 2})
        ref.run(limits={"src": 4})
        assert sim.trace.fingerprint() == ref.trace.fingerprint()
