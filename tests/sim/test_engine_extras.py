"""Additional engine tests: numpy voting, channel inspection, gantt,
and edge cases of the output-shaping rules."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.tpdf import ControlToken, Mode, TPDFGraph, transaction


class TestNumpyVoting:
    def test_vote_over_arrays(self):
        """Vote keys numpy arrays by content (tobytes), so two equal
        arrays outvote a different one."""
        g = TPDFGraph()
        src = g.add_kernel("src", exec_time=0.0, function=lambda n, c: n)
        for i in range(3):
            src.add_output(f"o{i}", 1)
        src.add_output("sig", 1)
        payloads = [
            lambda n, c: np.array([1.0, 2.0]),
            lambda n, c: np.array([1.0, 2.0]),
            lambda n, c: np.array([9.0, 9.0]),
        ]
        for i in range(3):
            r = g.add_kernel(f"r{i}", function=payloads[i])
            r.add_input("in", 1)
            r.add_output("out", 1)
            g.connect(f"src.o{i}", f"r{i}.in")
        voter = transaction(g, "voter", inputs=3,
                            input_names=["i0", "i1", "i2"], action="vote")
        for i in range(3):
            g.connect(f"r{i}.out", f"voter.i{i}")
        ctrl = g.add_control_actor(
            "ctrl",
            decision=lambda n, inputs: ControlToken(
                Mode.SELECT_MANY, ("i0", "i1", "i2")),
        )
        ctrl.add_input("in", 1)
        ctrl.add_control_output("out", 1)
        g.connect("src.sig", "ctrl.in")
        g.connect("ctrl.out", "voter.ctrl")
        got = []
        snk = g.add_kernel("snk", function=lambda n, c: got.append(c["in"][0]))
        snk.add_input("in", 1)
        g.connect("voter.out", "snk.in")
        Simulator(g).run(limits={"src": 1})
        assert len(got) == 1
        assert np.array_equal(got[0], np.array([1.0, 2.0]))


class TestInspection:
    def test_channel_values_and_counts(self):
        g = TPDFGraph()
        a = g.add_kernel("a", exec_time=0.0, function=lambda n, c: f"v{n}")
        a.add_output("out", 1)
        b = g.add_kernel("b", exec_time=100.0)
        b.add_input("in", 1)
        g.connect("a.out", "b.in", name="ab")
        sim = Simulator(g)
        sim.run(until=0.5, limits={"a": 3})
        # a fired 3 times instantly; b consumed one and is busy.
        assert sim.tokens_in("ab") == 2
        assert sim.channel_values("ab") == ["v1", "v2"]

    def test_trace_gantt_smoke(self):
        g = TPDFGraph()
        a = g.add_kernel("a", exec_time=2.0)
        a.add_output("out", 1)
        b = g.add_kernel("b", exec_time=1.0)
        b.add_input("in", 1)
        g.connect("a.out", "b.in")
        trace = Simulator(g).run(limits={"a": 2})
        gantt = trace.gantt(width=24)
        assert "a" in gantt and "b" in gantt


class TestOutputShaping:
    def test_list_to_multi_output_rejected(self):
        g = TPDFGraph()
        a = g.add_kernel("a", function=lambda n, c: [1])
        a.add_output("x", 1)
        a.add_output("y", 1)
        b = g.add_kernel("b")
        b.add_input("in", 1)
        c = g.add_kernel("c")
        c.add_input("in", 1)
        g.connect("a.x", "b.in")
        g.connect("a.y", "c.in")
        with pytest.raises(SimulationError):
            Simulator(g).run(limits={"a": 1})

    def test_dict_missing_port_defaults_none(self):
        g = TPDFGraph()
        a = g.add_kernel("a", function=lambda n, c: {"x": [7]})
        a.add_output("x", 1)
        a.add_output("y", 2)
        b = g.add_kernel("b")
        b.add_input("in", 1)
        c = g.add_kernel("c")
        c.add_input("in", 2)
        g.connect("a.x", "b.in")
        g.connect("a.y", "c.in")
        trace = Simulator(g, record_values=True).run(limits={"a": 1})
        assert trace.firings_of("c")[0].consumed["in"] == [None, None]

    def test_zero_rate_output_phase(self):
        g = TPDFGraph()
        a = g.add_kernel("a", function=lambda n, c: None)
        a.add_output("out", [0, 2])
        b = g.add_kernel("b")
        b.add_input("in", 1)
        g.connect("a.out", "b.in")
        trace = Simulator(g).run(limits={"a": 2})
        assert trace.count("b") == 2  # phase 0 emits nothing, phase 1 emits 2
