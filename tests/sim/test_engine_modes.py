"""Tests for mode semantics: control tokens, selections, clocks,
deadlines, voting, discard debts."""

import pytest

from repro.sim import Simulator
from repro.tpdf import (
    ControlToken,
    Mode,
    TPDFGraph,
    clock,
    select_duplicate,
    select_one,
    transaction,
)


def controlled_kernel_graph(decision):
    """src feeds two branches; a controlled sink selects among them."""
    g = TPDFGraph()
    src = g.add_kernel("src", exec_time=0.0, function=lambda n, c: n)
    src.add_output("o1", 1)
    src.add_output("o2", 1)
    src.add_output("sig", 1)
    left = g.add_kernel("left", exec_time=1.0, function=lambda n, c: ("L", c["in"][0]))
    left.add_input("in", 1)
    left.add_output("out", 1)
    right = g.add_kernel("right", exec_time=2.0, function=lambda n, c: ("R", c["in"][0]))
    right.add_input("in", 1)
    right.add_output("out", 1)
    ctrl = g.add_control_actor("ctrl", decision=decision)
    ctrl.add_input("in", 1)
    ctrl.add_control_output("out", 1)
    got = []
    sink = g.add_kernel("sink", exec_time=0.0,
                        function=lambda n, c: got.append(dict(c)))
    sink.add_input("from_left", 1, priority=1)
    sink.add_input("from_right", 1, priority=2)
    sink.add_control_port("ctrl", 1)
    g.connect("src.o1", "left.in")
    g.connect("src.o2", "right.in")
    g.connect("src.sig", "ctrl.in")
    g.connect("left.out", "sink.from_left", name="e_left")
    g.connect("right.out", "sink.from_right", name="e_right")
    g.connect("ctrl.out", "sink.ctrl")
    return g, got


class TestSelectOne:
    def test_only_selected_port_consumed(self):
        g, got = controlled_kernel_graph(
            lambda n, inputs: select_one("from_left")
        )
        Simulator(g, record_values=True).run(limits={"src": 2})
        assert all(list(c) == ["from_left"] for c in got)

    def test_rejected_tokens_discarded(self):
        g, _ = controlled_kernel_graph(
            lambda n, inputs: select_one("from_left")
        )
        sim = Simulator(g)
        trace = sim.run(limits={"src": 3})
        right_discards = [d for d in trace.discards if d.channel == "e_right"]
        assert sum(d.count for d in right_discards) == 3
        assert sim.tokens_in("e_right") == 0

    def test_wait_all_mode(self):
        g, got = controlled_kernel_graph(
            lambda n, inputs: ControlToken(Mode.WAIT_ALL)
        )
        Simulator(g, record_values=True).run(limits={"src": 2})
        assert all(set(c) == {"from_left", "from_right"} for c in got)


class TestHighestPriority:
    def test_best_available_wins_when_both_ready(self):
        g, got = controlled_kernel_graph(
            lambda n, inputs: ControlToken(Mode.HIGHEST_PRIORITY)
        )
        # Control token arrives at t=0; neither input ready yet; right
        # (priority 2) finishes at 2.0, left at 1.0 -> at wake-up time
        # (first arrival = left at 1.0) left is taken.
        Simulator(g, record_values=True).run(limits={"src": 1})
        assert got and list(got[0]) == ["from_left"]

    def test_priority_decides_between_available(self):
        g = TPDFGraph()
        src = g.add_kernel("src", exec_time=0.0, function=lambda n, c: n)
        src.add_output("o1", 1)
        src.add_output("o2", 1)
        got = []
        sink = g.add_kernel("sink", exec_time=0.0,
                            function=lambda n, c: got.append(dict(c)))
        sink.add_input("low", 1, priority=1)
        sink.add_input("high", 1, priority=9)
        sink.add_control_port("ctrl", 1)
        ck = clock(g, "ck", period=5.0)
        g.connect("src.o1", "sink.low")
        g.connect("src.o2", "sink.high")
        g.connect("ck.tick", "sink.ctrl")
        Simulator(g, record_values=True).run(until=6.0, limits={"src": 1})
        # At the 5.0 tick both inputs are available: high priority wins.
        assert got and list(got[0]) == ["high"]


class TestSelectDuplicate:
    def test_duplicate_to_selected_outputs(self):
        g = TPDFGraph()
        src = g.add_kernel("src", exec_time=0.0, function=lambda n, c: f"v{n}")
        src.add_output("out", 1)
        src.add_output("sig", 1)
        dup = select_duplicate(g, "dup", outputs=2, output_names=["a", "b"])
        ctrl = g.add_control_actor(
            "ctrl", decision=lambda n, inputs: select_one("a" if n % 2 == 0 else "b")
        )
        ctrl.add_input("in", 1)
        ctrl.add_control_output("out", 1)
        got_a, got_b = [], []
        ka = g.add_kernel("ka", function=lambda n, c: got_a.append(c["in"][0]))
        ka.add_input("in", 1)
        kb = g.add_kernel("kb", function=lambda n, c: got_b.append(c["in"][0]))
        kb.add_input("in", 1)
        g.connect("src.out", "dup.in")
        g.connect("src.sig", "ctrl.in")
        g.connect("ctrl.out", "dup.ctrl")
        g.connect("dup.a", "ka.in")
        g.connect("dup.b", "kb.in")
        Simulator(g).run(limits={"src": 4})
        assert got_a == ["v0", "v2"]
        assert got_b == ["v1", "v3"]


class TestVote:
    def test_majority_masks_minority(self):
        g = TPDFGraph()
        src = g.add_kernel("src", exec_time=0.0, function=lambda n, c: n)
        for i in range(3):
            src.add_output(f"o{i}", 1)
        src.add_output("sig", 1)
        values = [lambda n, c: 100, lambda n, c: 100, lambda n, c: 7]
        for i in range(3):
            r = g.add_kernel(f"r{i}", function=values[i])
            r.add_input("in", 1)
            r.add_output("out", 1)
            g.connect(f"src.o{i}", f"r{i}.in")
        voter = transaction(g, "voter", inputs=3,
                            input_names=["i0", "i1", "i2"], action="vote")
        for i in range(3):
            g.connect(f"r{i}.out", f"voter.i{i}")
        ctrl = g.add_control_actor(
            "ctrl",
            decision=lambda n, inputs: ControlToken(Mode.SELECT_MANY, ("i0", "i1", "i2")),
        )
        ctrl.add_input("in", 1)
        ctrl.add_control_output("out", 1)
        g.connect("src.sig", "ctrl.in")
        g.connect("ctrl.out", "voter.ctrl")
        got = []
        snk = g.add_kernel("snk", function=lambda n, c: got.append(c["in"][0]))
        snk.add_input("in", 1)
        g.connect("voter.out", "snk.in")
        Simulator(g).run(limits={"src": 2})
        assert got == [100, 100]


class TestClocks:
    def test_clock_requires_horizon(self):
        from repro.errors import SimulationError

        g = TPDFGraph()
        ck = clock(g, "ck", period=1.0)
        k = g.add_kernel("k")
        k.add_control_port("ctrl", 1)
        g.connect("ck.tick", "k.ctrl")
        with pytest.raises(SimulationError):
            Simulator(g).run()

    def test_tick_times(self):
        g = TPDFGraph()
        ck = clock(g, "ck", period=2.5)
        k = g.add_kernel("k", exec_time=0.0)
        k.add_control_port("ctrl", 1)
        g.connect("ck.tick", "k.ctrl")
        trace = Simulator(g).run(until=10.0)
        ticks = [r.start for r in trace.firings_of("ck")]
        assert ticks == [2.5, 5.0, 7.5, 10.0]

    def test_tick_token_carries_deadline(self):
        g = TPDFGraph()
        ck = clock(g, "ck", period=4.0)
        k = g.add_kernel("k", exec_time=0.0)
        k.add_control_port("ctrl", 1)
        g.connect("ck.tick", "k.ctrl")
        trace = Simulator(g, record_values=True).run(until=4.0)
        token = trace.firings_of("ck")[0].mode
        assert token.mode is Mode.HIGHEST_PRIORITY
        assert token.deadline == 4.0

    def test_clock_limit_respected(self):
        g = TPDFGraph()
        ck = clock(g, "ck", period=1.0)
        k = g.add_kernel("k", exec_time=0.0)
        k.add_control_port("ctrl", 1)
        g.connect("ck.tick", "k.ctrl")
        trace = Simulator(g).run(until=10.0, limits={"ck": 3})
        assert trace.count("ck") == 3


class TestControlPriority:
    def test_control_actor_bypasses_core_limit(self):
        g = TPDFGraph()
        src = g.add_kernel("src", exec_time=5.0, function=lambda n, c: n)
        src.add_output("out", 1)
        src.add_output("sig", 1)
        ctrl = g.add_control_actor("ctrl", exec_time=0.0)
        ctrl.add_input("in", 1)
        ctrl.add_control_output("out", 1)
        snk = g.add_kernel("snk", exec_time=0.0)
        snk.add_input("in", 1)
        snk.add_control_port("c", 1)
        g.connect("src.out", "snk.in")
        g.connect("src.sig", "ctrl.in")
        g.connect("ctrl.out", "snk.c")
        # One core, fully occupied by src; the control actor must still run.
        trace = Simulator(g, cores=1).run(limits={"src": 2})
        assert trace.count("ctrl") == 2
        assert trace.count("snk") == 2
