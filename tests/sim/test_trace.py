"""Tests for trace aggregation."""

from repro.sim import Trace
from repro.sim.trace import DiscardRecord, FiringRecord


def sample_trace() -> Trace:
    trace = Trace()
    trace.firings = [
        FiringRecord("a", 0, 0.0, 1.0, produced={"out": [10]}),
        FiringRecord("a", 1, 1.0, 2.0, produced={"out": [20]}),
        FiringRecord("b", 0, 2.0, 4.0),
    ]
    trace.discards = [DiscardRecord("e", "in", "b", 3, 4.0)]
    trace.peaks = {"e": 5, "f": 2}
    return trace


class TestTraceViews:
    def test_counts(self):
        trace = sample_trace()
        assert trace.count("a") == 2
        assert trace.counts() == {"a": 2, "b": 1}

    def test_firings_of(self):
        assert len(sample_trace().firings_of("a")) == 2
        assert sample_trace().firings_of("zzz") == []

    def test_end_time(self):
        assert sample_trace().end_time() == 4.0
        assert Trace().end_time() == 0.0

    def test_total_buffer(self):
        assert sample_trace().total_buffer() == 7

    def test_discarded_tokens(self):
        assert sample_trace().discarded_tokens() == 3

    def test_produced_values(self):
        assert sample_trace().produced_values("a", "out") == [10, 20]
        assert sample_trace().produced_values("b", "out") == []

    def test_gantt_render(self):
        text = sample_trace().gantt(width=20)
        assert "a" in text and "|" in text
        assert Trace().gantt() == "(no firings)"

    def test_firing_record_str(self):
        record = sample_trace().firings[0]
        assert "a#0" in str(record)

    def test_busy_time(self):
        trace = sample_trace()
        assert trace.busy_time("a") == 2.0
        assert trace.busy_time("b") == 2.0
        assert trace.busy_time("ghost") == 0.0

    def test_utilization(self):
        trace = sample_trace()
        util = trace.utilization()
        assert util["a"] == 0.5  # 2.0 busy over a 4.0 span
        assert util["b"] == 0.5
        assert Trace().utilization() == {}
