"""Capacity-bounded (blocking-write) execution in the TPDF simulator.

The value-carrying :class:`~repro.sim.Simulator` shares the capacity
contract of the csdf executors: unknown channel names raise
``ValueError`` naming the offenders, a capacity below a channel's
initial tokens is an up-front :class:`~repro.errors.DeadlockError`,
and a firing may start only when every bounded output channel has room
for its declared production (reserved at start, converted to queued
tokens at completion, a self-loop's own consumption credited).
"""

import pytest

from repro.errors import DeadlockError
from repro.sim import Simulator
from repro.tpdf import TPDFGraph, random_consistent_graph


def _pipeline(prod_time=1.0, cons_time=3.0, initial=0) -> TPDFGraph:
    g = TPDFGraph("pc")
    prod = g.add_kernel("prod", exec_time=prod_time)
    cons = g.add_kernel("cons", exec_time=cons_time)
    prod.add_output("o", 1)
    cons.add_input("i", 1)
    g.connect(("prod", "o"), ("cons", "i"), name="e", initial_tokens=initial)
    return g


def _trace_key(trace):
    return [
        (f.node, f.index, f.start, f.end) for f in trace.firings
    ], dict(trace.peaks)


class TestValidation:
    def test_unknown_channel_names_rejected(self):
        g = _pipeline()
        with pytest.raises(ValueError) as info:
            Simulator(g, capacities={"typo1": 4, "typo2": 2, "e": 4})
        assert "typo1" in str(info.value) and "typo2" in str(info.value)

    def test_capacity_below_initial_tokens_is_deadlock(self):
        g = _pipeline(initial=3)
        with pytest.raises(DeadlockError, match="initial tokens"):
            Simulator(g, capacities={"e": 2})

    def test_capacity_at_initial_tokens_admitted(self):
        g = _pipeline(initial=3)
        trace = Simulator(g, capacities={"e": 3}).run(
            limits={"prod": 4, "cons": 4}
        )
        assert trace.peaks["e"] <= 3


class TestBackPressure:
    def test_fast_producer_is_throttled(self):
        g = _pipeline(prod_time=1.0, cons_time=3.0)
        limits = {"prod": 12, "cons": 12}
        unbounded = Simulator(g).run(limits=limits)
        assert unbounded.peaks["e"] > 2
        bounded = Simulator(g, capacities={"e": 2}).run(limits=limits)
        assert bounded.peaks["e"] <= 2
        # All work still completes; the producer just starts later.
        assert len(bounded.firings) == len(unbounded.firings)
        assert bounded.firings[-1].end >= unbounded.firings[-1].end

    @pytest.mark.parametrize("seed", range(6))
    def test_random_graphs_respect_bounds_and_complete(self, seed):
        g = random_consistent_graph(
            6, extra_edges=2, n_cycles=1, seed=seed, with_control=False
        )
        limits = {name: 6 for name in g.node_names()}
        unbounded = Simulator(g).run(limits=limits)
        caps = {
            name: max(c.initial_tokens, unbounded.peaks[name], 1)
            for name, c in g.channels.items()
        }
        sim = Simulator(g, capacities=caps)
        trace = sim.run(limits=limits)
        for name, peak in trace.peaks.items():
            assert peak <= caps[name]
        # Generous bounds (the unbounded peaks) delay but never drop
        # firings.
        assert len(trace.firings) == len(unbounded.firings)
        # No reservation leaks once the run quiesces.
        assert all(
            state.reserved == 0 for state in sim._channels.values()
        )

    @pytest.mark.parametrize("seed", (1, 4, 9))
    def test_ready_cores_agree_under_capacities(self, seed):
        g = random_consistent_graph(
            6, extra_edges=2, n_cycles=1, seed=seed, with_control=False
        )
        limits = {name: 6 for name in g.node_names()}
        caps = {
            name: max(c.initial_tokens, 3)
            for name, c in g.channels.items()
        }
        keys = {
            core: _trace_key(
                Simulator(g, capacities=caps, ready_core=core).run(
                    limits=limits
                )
            )
            for core in Simulator.READY_CORES
        }
        assert keys["arrays"] == keys["wakeup"] == keys["reference"]

    @pytest.mark.parametrize("seed", (3, 7))
    def test_control_graphs_respect_bounds(self, seed):
        g = random_consistent_graph(
            6, extra_edges=2, n_cycles=1, seed=seed, with_control=True
        )
        limits = {name: 5 for name in g.node_names()}
        unbounded = Simulator(g).run(limits=limits)
        caps = {
            name: max(c.initial_tokens, unbounded.peaks[name], 1)
            for name, c in g.channels.items()
        }
        trace = Simulator(g, capacities=caps).run(limits=limits)
        for name, peak in trace.peaks.items():
            assert peak <= caps[name]
        assert len(trace.firings) == len(unbounded.firings)
