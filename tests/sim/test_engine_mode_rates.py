"""Tests for mode-dependent rates (the Rk(m, ., n) table of Def. 2)
and the late-discard policy."""

import pytest

from repro.sim import Simulator
from repro.tpdf import ControlToken, Mode, TPDFGraph, select_one


def controlled_graph(mode_rates: dict | None = None, discard_late=None):
    """src -> proc(ctrl) with a controller alternating WAIT_ALL tokens."""
    g = TPDFGraph()
    src = g.add_kernel("src", exec_time=0.0, function=lambda n, c: n)
    src.add_output("out", 2)
    src.add_output("sig", 1)
    ctrl = g.add_control_actor(
        "ctrl", decision=lambda n, inputs: ControlToken(Mode.WAIT_ALL)
    )
    ctrl.add_input("in", 1)
    ctrl.add_control_output("out", 1)
    proc = g.add_kernel(
        "proc", exec_time=0.0,
        modes=(Mode.WAIT_ALL, Mode.SELECT_ONE),
        function=lambda n, c: len(c["in"]),
    )
    proc.add_input("in", 2)
    proc.add_control_port("c", 1)
    proc.add_output("out", 1)
    if mode_rates:
        proc.set_mode_rates(Mode.WAIT_ALL, mode_rates)
    if discard_late is not None:
        proc.meta["discard_late"] = discard_late
    got = []
    snk = g.add_kernel("snk", exec_time=0.0,
                       function=lambda n, c: got.append(c["in"][0]))
    snk.add_input("in", 1)
    g.connect("src.out", "proc.in", name="e_data")
    g.connect("src.sig", "ctrl.in")
    g.connect("ctrl.out", "proc.c")
    g.connect("proc.out", "snk.in")
    return g, got


class TestModeRates:
    def test_default_rate_without_override(self):
        g, got = controlled_graph()
        Simulator(g).run(limits={"src": 3})
        assert got == [2, 2, 2]  # consumes its declared rate 2

    def test_override_changes_consumption(self):
        g, got = controlled_graph(mode_rates={"in": 4})
        Simulator(g).run(limits={"src": 4})
        # Each WAIT_ALL firing now consumes 4 tokens: two src firings
        # feed one proc firing.
        assert got == [4, 4]

    def test_override_on_output(self):
        g = TPDFGraph()
        src = g.add_kernel("src", exec_time=0.0, function=lambda n, c: n)
        src.add_output("out", 1)
        src.add_output("sig", 1)
        ctrl = g.add_control_actor(
            "ctrl", decision=lambda n, inputs: ControlToken(Mode.WAIT_ALL)
        )
        ctrl.add_input("in", 1)
        ctrl.add_control_output("out", 1)
        proc = g.add_kernel(
            "proc", exec_time=0.0, modes=(Mode.WAIT_ALL,),
            function=lambda n, c: [c["in"][0]] * 3,
        )
        proc.add_input("in", 1)
        proc.add_control_port("c", 1)
        proc.add_output("out", 1)
        proc.set_mode_rates(Mode.WAIT_ALL, {"out": 3})
        snk = g.add_kernel("snk", exec_time=0.0)
        snk.add_input("in", 1)
        g.connect("src.out", "proc.in")
        g.connect("src.sig", "ctrl.in")
        g.connect("ctrl.out", "proc.c")
        g.connect("proc.out", "snk.in")
        trace = Simulator(g).run(limits={"src": 2})
        assert trace.count("snk") == 6  # 3 tokens per proc firing


class TestDiscardPolicy:
    def build_selector(self, discard_late: bool):
        g = TPDFGraph()
        src = g.add_kernel("src", exec_time=0.0, function=lambda n, c: n)
        src.add_output("a", 1)
        src.add_output("b", 1)
        src.add_output("sig", 1)
        slow = g.add_kernel("slow", exec_time=50.0,
                            function=lambda n, c: ("slow", n))
        slow.add_input("in", 1)
        slow.add_output("out", 1)
        fast = g.add_kernel("fast", exec_time=1.0,
                            function=lambda n, c: ("fast", n))
        fast.add_input("in", 1)
        fast.add_output("out", 1)
        ctrl = g.add_control_actor(
            "ctrl", decision=lambda n, inputs: select_one("from_fast")
        )
        ctrl.add_input("in", 1)
        ctrl.add_control_output("out", 1)
        sel = g.add_kernel("sel", exec_time=0.0,
                           modes=(Mode.WAIT_ALL, Mode.SELECT_ONE))
        sel.add_input("from_fast", 1)
        sel.add_input("from_slow", 1)
        sel.add_control_port("c", 1)
        sel.add_output("out", 1)
        sel.meta["discard_late"] = discard_late
        snk = g.add_kernel("snk", exec_time=0.0)
        snk.add_input("in", 1)
        g.connect("src.a", "fast.in")
        g.connect("src.b", "slow.in")
        g.connect("src.sig", "ctrl.in")
        g.connect("fast.out", "sel.from_fast")
        g.connect("slow.out", "sel.from_slow", name="e_slow")
        g.connect("ctrl.out", "sel.c")
        g.connect("sel.out", "snk.in")
        return g

    def test_late_debt_flushes_slow_arrivals(self):
        g = self.build_selector(discard_late=True)
        sim = Simulator(g)
        sim.run(limits={"src": 3})
        # Slow results arrive after sel fired; the debt removes them.
        assert sim.tokens_in("e_slow") == 0

    def test_no_late_debt_keeps_arrivals(self):
        g = self.build_selector(discard_late=False)
        sim = Simulator(g)
        sim.run(limits={"src": 3})
        # Only tokens present at firing time were flushed; the rest stay.
        assert sim.tokens_in("e_slow") > 0


class TestControlPortRates:
    """Regression for the silent multi-rate control-port bug: a control
    phase rate >= 2 used to be treated as 'no control this firing'
    (the check was ``rate == 1``), firing in WAIT_ALL and leaving the
    control tokens behind.  The engine now raises a clear error.

    The ``Port.rates`` setter already rejects rates outside {0, 1}
    (Def. 2), so the >= 2 state can only arrive through code that
    bypasses the setter (direct ``_rates`` writes, hand-built ports,
    future codec paths) — the engine must refuse it rather than
    silently misfire (defense in depth)."""

    @staticmethod
    def build(control_rates):
        g = TPDFGraph()
        src = g.add_kernel("src", exec_time=0.0, function=lambda n, c: n)
        src.add_output("out", 1)
        src.add_output("sig", 1)
        ctrl = g.add_control_actor(
            "ctrl", decision=lambda n, inputs: ControlToken(Mode.WAIT_ALL)
        )
        ctrl.add_input("in", 1)
        ctrl.add_control_output("out", 1)
        proc = g.add_kernel("proc", exec_time=0.0)
        proc.add_input("in", 1)
        port = proc.add_control_port("c", 1)
        if any(r > 1 for r in control_rates):
            # Bypass the Def. 2 setter validation to model a corrupted
            # / hand-built port reaching the engine.
            from repro.csdf.rates import RateSequence

            port._rates = RateSequence.of(control_rates)
        else:
            port.rates = control_rates
        g.connect("src.out", "proc.in")
        g.connect("src.sig", "ctrl.in")
        g.connect("ctrl.out", "proc.c", name="e_ctrl")
        return g

    def test_rate_two_control_phase_raises(self):
        from repro.errors import SimulationError

        g = self.build([1, 2])
        with pytest.raises(SimulationError, match="control port .* rate 2"):
            # Firing 0 (rate 1) is fine; examining firing 1 (rate 2)
            # must refuse loudly instead of silently skipping control.
            Simulator(g).run(limits={"src": 3})

    def test_reference_core_raises_identically(self):
        from repro.errors import SimulationError

        g = self.build([1, 2])
        with pytest.raises(SimulationError, match="control port .* rate 2"):
            Simulator(g, ready_core="reference").run(limits={"src": 3})

    def test_zero_rate_phases_still_skip_control(self):
        """Phase rate 0 remains a documented 'no control token this
        firing' phase — only rates >= 2 are rejected."""
        g = self.build([1, 0])
        sim = Simulator(g)
        sim.run(limits={"src": 4})
        # Firings alternate controlled/uncontrolled; the controller
        # keeps producing, so tokens pile up on the control channel on
        # the uncontrolled phases but execution completes.
        assert sim.trace.count("proc") == 4


class TestScenarioSwitching:
    def test_runtime_scheme_switching_exact(self):
        from repro.apps.ofdm import run_ofdm_scenarios

        run = run_ofdm_scenarios(
            ["qpsk", "qam16", "qpsk", "qam16", "qam16"], beta=2, n=16, l=4
        )
        assert run.total_errors == 0
        assert run.bits_per_activation == [64, 128, 64, 128, 128]
        counts = run.trace.counts()
        assert counts["QPSK"] == 2
        assert counts["QAM"] == 3
        assert counts["SNK"] == 5

    def test_single_scheme_equivalent(self):
        from repro.apps.ofdm import run_ofdm_scenarios

        run = run_ofdm_scenarios(["qam16"] * 3, beta=1, n=8, l=2)
        assert run.total_errors == 0
        assert "QPSK" not in run.trace.counts()

    def test_validation(self):
        from repro.apps.ofdm import run_ofdm_scenarios

        with pytest.raises(ValueError):
            run_ofdm_scenarios([])
        with pytest.raises(ValueError):
            run_ofdm_scenarios(["wat"])
