"""Unit tests for the array-state template (`repro.csdf.statearrays`).

The executor-level behaviour is pinned by the differential suite
(``tests/sim/test_eventloop_differential.py``); these tests cover the
template itself: memoization per graph version, run isolation (a run
must never mutate the shared template), and the vectorized
``ready_mask`` against an independently-written scalar firing rule.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import analysis_cache
from repro.csdf import CSDFGraph, array_state, self_timed_execution
from repro.csdf.statearrays import _UNCAPPED
from repro.tpdf import random_consistent_graph


def _scalar_can_start(state, tokens, started, caps):
    """Independent scalar rendering of the firing rule, built from the
    template's edge mirrors (the oracle for the vectorized mask)."""
    ready = []
    for pos in range(state.n):
        ok = True
        for slot, phases, const in state.in_edges[pos]:
            need = const if phases is None else phases[started[pos] % len(phases)]
            if tokens[slot] < need:
                ok = False
        for slot, phases, const in state.out_edges[pos]:
            if caps is None or caps[slot] == _UNCAPPED:
                continue
            give = const if phases is None else phases[started[pos] % len(phases)]
            occupancy = tokens[slot]
            if state.self_loop[slot]:
                cons = next(
                    (p, c) for s, p, c in state.in_edges[pos] if s == slot
                )
                phases_c, const_c = cons
                occupancy -= (const_c if phases_c is None
                              else phases_c[started[pos] % len(phases_c)])
            if occupancy + give > caps[slot]:
                ok = False
        ready.append(ok)
    return ready


class TestTemplateCaching:
    def test_template_is_memoized_per_graph_version(self, fig1):
        first = array_state(fig1, None)
        assert array_state(fig1, None) is first
        assert any(key[0] == "statearrays" for key in analysis_cache(fig1))
        fig1.add_actor("late", exec_time=1.0)  # version bump
        rebuilt = array_state(fig1, None)
        assert rebuilt is not first
        assert rebuilt.n == first.n + 1

    def test_distinct_bindings_get_distinct_templates(self):
        from repro.tpdf import fig2_graph

        csdf = fig2_graph().as_csdf()
        one = array_state(csdf, {"p": 1})
        four = array_state(csdf, {"p": 4})
        assert one is not four
        assert array_state(csdf, {"p": 1}) is one

    def test_runs_do_not_mutate_the_template(self, fig1):
        template = array_state(fig1, None)
        tokens_before = template.tokens0.copy()
        first = self_timed_execution(fig1, iterations=3, backend="arrays")
        assert np.array_equal(template.tokens0, tokens_before)
        again = self_timed_execution(fig1, iterations=3, backend="arrays")
        assert first == again  # identical reruns from the shared template

    def test_capacity_runs_share_the_capacity_free_template(self, fig1):
        template = array_state(fig1, None)
        peaks = self_timed_execution(fig1, iterations=2,
                                     backend="arrays").peaks
        self_timed_execution(fig1, iterations=2, backend="arrays",
                             capacities=peaks)
        assert array_state(fig1, None) is template


class TestReadyMask:
    @given(seed=st.integers(0, 500), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_mask_matches_scalar_firing_rule(self, seed, data):
        graph = random_consistent_graph(
            5, extra_edges=2, n_cycles=1, seed=seed, with_control=False
        ).as_csdf()
        state = array_state(graph, None)
        tokens = np.asarray(
            data.draw(st.lists(st.integers(0, 6), min_size=state.nchan,
                               max_size=state.nchan)),
            dtype=np.int64,
        )
        started = np.asarray(
            data.draw(st.lists(st.integers(0, 9), min_size=state.n,
                               max_size=state.n)),
            dtype=np.int64,
        )
        if data.draw(st.booleans()):
            caps = np.asarray(
                data.draw(st.lists(
                    st.one_of(st.just(_UNCAPPED), st.integers(0, 8)),
                    min_size=state.nchan, max_size=state.nchan)),
                dtype=np.int64,
            )
        else:
            caps = None
        mask = state.ready_mask(tokens, started, caps=caps)
        assert mask.tolist() == _scalar_can_start(state, tokens, started, caps)

    def test_initial_mask_matches_executed_first_starts(self, fig1):
        """The positions the mask enables at t=0 are exactly the
        actors the reference loop starts before the first event."""
        state = array_state(fig1, None)
        mask = state.ready_mask(state.tokens0, np.zeros(state.n, np.int64))
        result = self_timed_execution(fig1, iterations=1,
                                      backend="reference")
        assert result.firings > 0
        # fig1: every actor with sufficient initial tokens fires at 0.
        startable = {state.order[i] for i in np.flatnonzero(mask)}
        assert startable  # non-empty by construction of fig1

    def test_empty_graph_edge_case(self):
        lone = CSDFGraph("lone")
        lone.add_actor("only", exec_time=2.0)
        state = array_state(lone, None)
        mask = state.ready_mask(state.tokens0, np.zeros(1, np.int64))
        assert mask.tolist() == [True]
        result = self_timed_execution(lone, iterations=3, backend="arrays")
        assert result.firings == 3
        assert result.makespan == pytest.approx(6.0)
