"""Tests for the token-count simulator."""

import pytest

from repro.csdf import CSDFGraph, TokenState
from repro.errors import SimulationError
from repro.symbolic import Poly


@pytest.fixture
def pipeline() -> CSDFGraph:
    g = CSDFGraph("pipe")
    g.add_actor("a")
    g.add_actor("b")
    g.add_channel("e", "a", "b", 2, 1)
    return g


class TestFiringRules:
    def test_initial_state(self, pipeline):
        state = TokenState(pipeline)
        assert state.tokens == {"e": 0}
        assert state.fired == {"a": 0, "b": 0}

    def test_source_always_fireable(self, pipeline):
        state = TokenState(pipeline)
        assert state.can_fire("a")
        assert not state.can_fire("b")

    def test_fire_moves_tokens(self, pipeline):
        state = TokenState(pipeline)
        state.fire("a")
        assert state.tokens["e"] == 2
        state.fire("b")
        assert state.tokens["e"] == 1

    def test_underflow_raises(self, pipeline):
        state = TokenState(pipeline)
        with pytest.raises(SimulationError):
            state.fire("b")

    def test_blocked_on(self, pipeline):
        state = TokenState(pipeline)
        assert state.blocked_on("b") == ["e"]
        state.fire("a")
        assert state.blocked_on("b") == []

    def test_unknown_actor(self, pipeline):
        state = TokenState(pipeline)
        with pytest.raises(KeyError):
            state.fire("ghost")


class TestCyclicPhases:
    def test_phase_advances_per_firing(self, fig1):
        state = TokenState(fig1)
        # a3 consumes [0, 2] from e2 (2 initial tokens).
        state.fire("a3")
        assert state.tokens["e2"] == 2  # phase 0 consumes nothing
        state.fire("a3")
        assert state.tokens["e2"] == 0  # phase 1 consumes 2

    def test_demand_supply_views(self, fig1):
        state = TokenState(fig1)
        assert state.demand("a3", "e2") == 0
        assert state.supply("a3", "e3") == 2
        state.fire("a3")
        assert state.demand("a3", "e2") == 2


class TestSelfLoops:
    def test_selfloop_consume_before_produce(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_channel("loop", "a", "a", 1, 1, initial_tokens=1)
        state = TokenState(g)
        state.fire("a")
        assert state.tokens["loop"] == 1

    def test_selfloop_blocks_without_tokens(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_channel("loop", "a", "a", 1, 1)
        state = TokenState(g)
        assert not state.can_fire("a")


class TestPeaksAndState:
    def test_peak_tracks_maximum(self, pipeline):
        state = TokenState(pipeline)
        state.run(["a", "a", "b", "b", "b", "b"])
        assert state.peak["e"] == 4
        assert state.tokens["e"] == 0

    def test_peak_includes_initial_tokens(self, fig1):
        state = TokenState(fig1)
        assert state.peak["e2"] == 2

    def test_matches_initial_state(self, fig1):
        state = TokenState(fig1)
        state.run(["a3", "a3", "a1", "a1", "a1", "a2", "a2"])
        assert state.matches_initial_state()

    def test_total_tokens(self, fig1):
        assert TokenState(fig1).total_tokens() == 2

    def test_copy_is_independent(self, pipeline):
        state = TokenState(pipeline)
        clone = state.copy()
        state.fire("a")
        assert clone.tokens["e"] == 0
        assert clone.fired["a"] == 0

    def test_fireable_listing(self, fig1):
        state = TokenState(fig1)
        assert state.fireable() == ["a3"]
        assert state.fireable(["a1", "a2"]) == []


class TestParametricBinding:
    def test_rates_bound_at_construction(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("e", "a", "b", Poly.var("p"), 1)
        state = TokenState(g, bindings={"p": 4})
        state.fire("a")
        assert state.tokens["e"] == 4

    def test_missing_binding_raises(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("e", "a", "b", Poly.var("p"), 1)
        with pytest.raises(KeyError):
            TokenState(g)
