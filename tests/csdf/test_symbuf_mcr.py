"""Tests for symbolic buffer bounds and max-cycle-ratio analysis."""

import pytest

from repro.csdf import (
    CSDFGraph,
    bound_is_tight_for_single_appearance,
    max_cycle_ratio,
    minimal_buffer_schedule,
    self_timed_execution,
    symbolic_channel_bounds,
    symbolic_total_bound,
    throughput_bound,
)
from repro.symbolic import Poly


class TestSymbolicBounds:
    def test_pipeline_bound(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("e", "a", "b", Poly.var("p"), 1, initial_tokens=2)
        bounds = symbolic_channel_bounds(g)
        assert bounds["e"] == Poly.var("p") + 2

    def test_total_is_sum(self, fig1):
        bounds = symbolic_channel_bounds(fig1)
        total = symbolic_total_bound(fig1)
        acc = Poly()
        for bound in bounds.values():
            acc = acc + bound
        assert total == acc

    def test_fig8_csdf_formula_derived(self):
        from repro.apps.ofdm import build_ofdm_csdf

        beta, n, l = Poly.var("beta"), Poly.var("N"), Poly.var("L")
        assert symbolic_total_bound(build_ofdm_csdf()) == beta * (17 * n + l)

    def test_fig8_tpdf_formula_derived(self):
        from repro.apps.ofdm import build_ofdm_tpdf
        from repro.tpdf import restrict_to_selection

        beta, n, l = Poly.var("beta"), Poly.var("N"), Poly.var("L")
        restricted = restrict_to_selection(build_ofdm_tpdf(), "DUP", ["in", "qam"])
        restricted = restrict_to_selection(restricted, "TRAN", ["qam", "out"])
        total = symbolic_total_bound(restricted.as_csdf()).subs({"M": 4})
        assert total == 3 + beta * (12 * n + l)

    def test_bound_matches_measured_peaks_acyclic(self):
        from repro.apps.ofdm import bindings_for, build_ofdm_csdf

        graph = build_ofdm_csdf()
        bindings = bindings_for(10, 512, 1, 4)
        assert bound_is_tight_for_single_appearance(graph)
        _, peaks = minimal_buffer_schedule(graph, bindings)
        symbolic = symbolic_total_bound(graph).evaluate(bindings)
        assert symbolic == sum(peaks.values())

    def test_bound_sound_on_cyclic(self, fig1):
        """On cyclic graphs the bound is an upper bound (not always tight)."""
        assert not bound_is_tight_for_single_appearance(fig1)
        bounds = symbolic_channel_bounds(fig1)
        _, peaks = minimal_buffer_schedule(fig1)
        for name, peak in peaks.items():
            assert bounds[name].evaluate({}) >= peak


class TestMaxCycleRatio:
    def test_pipeline_bottleneck(self):
        g = CSDFGraph()
        for name, t in (("a", 1.0), ("b", 3.0), ("c", 1.0)):
            g.add_actor(name, exec_time=t)
        g.add_channel("e1", "a", "b", 1, 1)
        g.add_channel("e2", "b", "c", 1, 1)
        assert max_cycle_ratio(g) == pytest.approx(3.0, abs=1e-4)

    def test_matches_self_timed_period(self, fig1):
        mcr = max_cycle_ratio(fig1)
        period = self_timed_execution(fig1, iterations=10).iteration_period
        assert period == pytest.approx(mcr, abs=1e-3)

    def test_feedback_cycle_dominates(self):
        g = CSDFGraph()
        g.add_actor("a", exec_time=2.0)
        g.add_actor("b", exec_time=2.0)
        g.add_channel("fwd", "a", "b", 1, 1)
        g.add_channel("back", "b", "a", 1, 1, initial_tokens=1)
        # Cycle: 4 time units per token: period 4 (each actor alone
        # would only bound it at 2).
        assert max_cycle_ratio(g) == pytest.approx(4.0, abs=1e-4)
        period = self_timed_execution(g, iterations=8).iteration_period
        assert period == pytest.approx(4.0, abs=1e-6)

    def test_multirate_phases(self):
        g = CSDFGraph()
        g.add_actor("a", exec_time=[1.0, 3.0])  # 4.0 per 2-firing cycle
        g.add_actor("b", exec_time=1.0)
        g.add_channel("e", "a", "b", [1, 1], [2])
        assert max_cycle_ratio(g) == pytest.approx(4.0, abs=1e-4)

    def test_throughput_bound(self):
        g = CSDFGraph()
        g.add_actor("a", exec_time=2.0)
        g.add_actor("b", exec_time=1.0)
        g.add_channel("e", "a", "b", 1, 1)
        assert throughput_bound(g) == pytest.approx(0.5, abs=1e-4)

    def test_deadlocked_graph_raises(self):
        from repro.errors import AnalysisError, SchedulingError

        g = CSDFGraph()
        g.add_actor("a", exec_time=1.0)
        g.add_actor("b", exec_time=1.0)
        g.add_channel("fwd", "a", "b", 1, 1)
        g.add_channel("back", "b", "a", 1, 1)
        with pytest.raises((AnalysisError, SchedulingError, Exception)):
            max_cycle_ratio(g)
