"""Tests for the CSDF -> HSDF expansion."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csdf import (
    CSDFGraph,
    concrete_repetition_vector,
    expand_to_hsdf,
    find_sequential_schedule,
    hsdf_is_faithful,
    is_live,
    is_sdf,
    iteration_latency,
)
from repro.csdf.sdf import firing_name
from repro.errors import GraphConstructionError
from repro.tpdf import random_consistent_graph


class TestIsSdf:
    def test_single_phase_graph(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("e", "a", "b", 2, 3)
        assert is_sdf(g)

    def test_cyclostatic_graph(self, fig1):
        assert not is_sdf(fig1)


class TestExpansionStructure:
    def test_actor_counts(self, fig1):
        expanded = expand_to_hsdf(fig1)
        # One actor per firing: 3 + 2 + 2.
        assert len(expanded.actors) == 7

    def test_homogeneous_repetition(self, fig1):
        expanded = expand_to_hsdf(fig1)
        q = concrete_repetition_vector(expanded)
        assert set(q.values()) == {1}
        assert is_sdf(expanded) or all(
            len(c.production) == 1 for c in expanded.channels.values()
        )

    def test_serialization_rings(self, fig1):
        expanded = expand_to_hsdf(fig1)
        ring = expanded.channel("ring_a1_3")
        assert ring.src == firing_name("a1", 3)
        assert ring.dst == firing_name("a1", 1)
        assert ring.initial_tokens == 1

    def test_exec_times_per_phase(self):
        g = CSDFGraph()
        g.add_actor("a", exec_time=[1.0, 5.0])
        g.add_actor("b")
        g.add_channel("e", "a", "b", [1, 1], [2])
        expanded = expand_to_hsdf(g)
        assert expanded.actor(firing_name("a", 1)).exec_time(0) == 1.0
        assert expanded.actor(firing_name("a", 2)).exec_time(0) == 5.0

    def test_reserved_separator_rejected(self):
        g = CSDFGraph()
        g.add_actor("a#0")
        with pytest.raises(GraphConstructionError):
            expand_to_hsdf(g)


class TestExpansionSemantics:
    def test_fig1_faithful(self, fig1):
        assert hsdf_is_faithful(fig1)

    def test_initial_tokens_delay_dependencies(self, fig1):
        expanded = expand_to_hsdf(fig1)
        schedule = find_sequential_schedule(expanded, policy="round_robin")
        # a3's first firing consumes nothing (phase [0,2], 2 initial
        # tokens): it must be schedulable first, like in the original.
        assert schedule.firings[0].startswith("a3#")

    def test_deadlocked_cycle_stays_deadlocked(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("fwd", "a", "b", 2, 1)
        g.add_channel("back", "b", "a", 1, 2)
        assert not is_live(g)
        expanded = expand_to_hsdf(g)
        assert not is_live(expanded)

    def test_latency_preserved_unit_times(self, fig1):
        # With unit execution times and unlimited cores, the expansion
        # has the same critical path as the original.
        assert iteration_latency(fig1) == iteration_latency(expand_to_hsdf(fig1))

    @given(seed=st.integers(0, 25), n=st.integers(2, 6))
    @settings(max_examples=20)
    def test_random_graphs_faithful(self, seed, n):
        graph = random_consistent_graph(n, extra_edges=1, seed=seed,
                                        with_control=False).as_csdf()
        assert hsdf_is_faithful(graph)

    @given(seed=st.integers(0, 15), n=st.integers(3, 6))
    @settings(max_examples=10)
    def test_random_cyclic_graphs_faithful(self, seed, n):
        graph = random_consistent_graph(n, n_cycles=1, seed=seed,
                                        with_control=False).as_csdf()
        assert hsdf_is_faithful(graph)
