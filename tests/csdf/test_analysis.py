"""Tests for the CSDF consistency analysis (Theorem 1)."""

import pytest

from repro.csdf import (
    CSDFGraph,
    base_solution,
    concrete_repetition_vector,
    is_consistent,
    iteration_token_totals,
    repetition_vector,
    topology_matrix,
)
from repro.errors import AnalysisError
from repro.symbolic import InconsistentRatesError, Poly

P = Poly.var("p")


class TestFig1:
    def test_repetition_vector(self, fig1):
        q = repetition_vector(fig1)
        assert q == {"a1": Poly.const(3), "a2": Poly.const(2), "a3": Poly.const(2)}

    def test_base_solution(self, fig1):
        r = base_solution(fig1)
        assert r == {"a1": Poly.const(1), "a2": Poly.const(1), "a3": Poly.const(1)}

    def test_concrete(self, fig1):
        assert concrete_repetition_vector(fig1) == {"a1": 3, "a2": 2, "a3": 2}

    def test_token_totals_balanced(self, fig1):
        totals = iteration_token_totals(fig1)
        assert totals == {"e1": 2, "e2": 2, "e3": 4}


class TestTopologyMatrix:
    def test_fig1_matrix(self, fig1):
        channels, actors, rows = topology_matrix(fig1)
        assert channels == ["e1", "e2", "e3"]
        matrix = {c: {a: rows[i][j] for j, a in enumerate(actors)}
                  for i, c in enumerate(channels)}
        assert matrix["e1"]["a1"] == Poly.const(2)    # X_a1(3) on e1
        assert matrix["e1"]["a2"] == Poly.const(-2)   # -Y_a2(2) on e1
        assert matrix["e2"]["a2"] == Poly.const(2)
        assert matrix["e2"]["a3"] == Poly.const(-2)
        assert matrix["e3"]["a3"] == Poly.const(4)
        assert matrix["e3"]["a1"] == Poly.const(-4)

    def test_gamma_times_r_is_zero(self, fig1):
        _, actors, rows = topology_matrix(fig1)
        r = base_solution(fig1)
        for row in rows:
            total = Poly()
            for j, actor in enumerate(actors):
                total = total + row[j] * r[actor]
            assert total.is_zero()


class TestConsistency:
    def test_inconsistent_sdf_detected(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("e1", "a", "b", 1, 1)
        g.add_channel("e2", "a", "b", 2, 1)
        assert not is_consistent(g)
        with pytest.raises(InconsistentRatesError):
            repetition_vector(g)

    def test_multirate_pipeline(self):
        g = CSDFGraph()
        for name in ("a", "b", "c"):
            g.add_actor(name)
        g.add_channel("e1", "a", "b", 3, 2)
        g.add_channel("e2", "b", "c", 5, 3)
        q = concrete_repetition_vector(g)
        assert q == {"a": 2, "b": 3, "c": 5}

    def test_selfloop_balanced_ok(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_channel("loop", "a", "a", [1, 2], [2, 1], initial_tokens=2)
        assert is_consistent(g)

    def test_selfloop_unbalanced_inconsistent(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_channel("loop", "a", "a", 2, 1)
        assert not is_consistent(g)

    def test_empty_graph(self):
        assert repetition_vector(CSDFGraph()) == {}


class TestParametric:
    def test_parametric_pipeline(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("e", "a", "b", P, 1)
        q = repetition_vector(g)
        assert q["a"] == Poly.const(1)
        assert q["b"] == P

    def test_concrete_requires_bindings(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("e", "a", "b", P, 1)
        assert concrete_repetition_vector(g, {"p": 4}) == {"a": 1, "b": 4}

    def test_fractional_counts_rejected(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        # q = [1, p/2] after normalization *2 -> [2, p]; binding p=3 makes
        # the pair valid, but a *direct* fractional value must raise.
        g.add_channel("e", "a", "b", P, 2)
        q = repetition_vector(g)
        assert q["a"] == Poly.const(2)
        assert q["b"] == P
        with pytest.raises(AnalysisError):
            # b would need to fire 1.5 times for one firing of a at p=3
            # if we forced q=[1, p/2]; with the normalized vector any
            # positive integer p works, so craft a failing case directly:
            concrete_repetition_vector_with_override(g)


def concrete_repetition_vector_with_override(graph):
    """Force a fractional repetition count to exercise the error path."""
    from repro.csdf import analysis

    q = analysis.repetition_vector(graph)
    # Simulate a caller that divided the vector by 2 before evaluation.
    from fractions import Fraction

    for name, poly in q.items():
        value = poly.scale(Fraction(1, 2)).evaluate({"p": 3})
        if value.denominator != 1:
            raise AnalysisError(f"repetition count of {name!r} is {value}")
    return q
