"""Differential harness for the parametric (symbolic) MCR engine.

The central claim of :mod:`repro.csdf.parametric` is exactness: the
piecewise-symbolic MCR, evaluated at any valid binding of its domain,
must equal the concrete Howard solver **bit-for-bit** (all corpus
graphs use integer execution times, so Howard's float weight sums are
exact and the claim is well-posed).  The suite checks that on well over
200 bindings across four graph families:

* the two-parameter radio front-end (full 8x8 grid, 64 bindings);
* the paper's Fig. 2 graph as CSDF (p = 1..30);
* random parametric pipelines (4 shapes x 25 random bindings);
* feedback graphs with constant cyclic cores and parametric feeders.

Degenerate shapes are covered explicitly: single-region domains, empty
domains, boundary bindings (domain corners), concrete graphs under the
empty domain, unsupported-class graphs (parametric cyclic cores),
deadlocking cores, and the pickle / parallel-batch paths.
"""

import pickle
import random

import pytest

from repro.analysis import analyze, analyze_batch
from repro.cache import analysis_cache
from repro.csdf import CSDFGraph, max_cycle_ratio
from repro.csdf.parametric import (
    ParamDomain,
    parametric_mcr,
    verify_piecewise,
)
from repro.errors import AnalysisError, ParametricMCRError
from repro.gallery import fig1_graph, parametric_radio_graph
from repro.symbolic import Param
from repro.tpdf import fig2_graph

P = Param("p")
Q = Param("q")


# ----------------------------------------------------------------------
# corpus builders
# ----------------------------------------------------------------------

#: Per-hop (production, consumption) patterns for random pipelines; at
#: most two parametric hops per chain keeps repetition vectors small.
_HOPS_PARAMETRIC = [
    (P, 1), (1, P), (Q, 1), (1, Q), (P, Q),
    ([P, P], 2), (2, [Q, Q]),
]
_HOPS_CONSTANT = [(1, 1), (2, 1), (1, 3), (2, 2), ([1, 2], 3)]


def random_pipeline(seed: int, stages: int) -> CSDFGraph:
    rng = random.Random(seed)
    g = CSDFGraph(f"pipe_s{seed}_n{stages}")
    names = [f"a{i}" for i in range(stages)]
    for name in names:
        g.add_actor(name, exec_time=rng.randint(1, 9))
    parametric_left = 2
    for src, dst in zip(names, names[1:]):
        if parametric_left and rng.random() < 0.6:
            production, consumption = rng.choice(_HOPS_PARAMETRIC)
            parametric_left -= 1
        else:
            production, consumption = rng.choice(_HOPS_CONSTANT)
        g.add_channel(None, src, dst, production, consumption,
                      initial_tokens=rng.choice([0, 0, 1]))
    return g


def feedback_graph(exec_a: int, exec_b: int, tokens: int) -> CSDFGraph:
    """Constant two-actor cycle fed by a parametric source: the MCR is
    the exact envelope of the cycle constant and the source ring."""
    g = CSDFGraph(f"fb_{exec_a}_{exec_b}_{tokens}")
    g.add_actor("src", exec_time=1)
    g.add_actor("a", exec_time=exec_a)
    g.add_actor("b", exec_time=exec_b)
    g.add_channel("in", "src", "a", production=1, consumption=P)
    g.add_channel("fwd", "a", "b")
    g.add_channel("back", "b", "a", initial_tokens=tokens)
    return g


def multirate_core_graph() -> CSDFGraph:
    """Cycle whose actors fire more than once per iteration (constant
    q inside the core) with a two-parameter feeder."""
    g = CSDFGraph("fb_multirate")
    g.add_actor("src", exec_time=2)
    g.add_actor("a", exec_time=4)
    g.add_actor("b", exec_time=1)
    g.add_channel("in", "src", "a", production=Q, consumption=[P * Q, P * Q])
    g.add_channel("fwd", "a", "b", production=2, consumption=1)
    g.add_channel("back", "b", "a", production=1, consumption=2,
                  initial_tokens=2)
    return g


def _bindings_samples(rng, domain: ParamDomain, count: int):
    out = []
    for _ in range(count):
        out.append({
            name: rng.randint(lo, hi)
            for name, (lo, hi) in domain.ranges.items()
        })
    return out


# ----------------------------------------------------------------------
# the >= 200-binding differential sweep
# ----------------------------------------------------------------------

class TestBitForBit:
    def test_radio_full_grid(self):
        graph = parametric_radio_graph()
        pw = parametric_mcr(graph, {"b": (1, 8), "c": (1, 8)})
        assert verify_piecewise(pw, graph, pw.domain.grid()) == 64

    def test_fig2_sweep(self):
        graph = fig2_graph().as_csdf()
        pw = parametric_mcr(graph, {"p": (1, 30)})
        assert verify_piecewise(pw, graph, pw.domain.grid()) == 30

    @pytest.mark.parametrize("seed,stages", [(1, 3), (2, 4), (5, 5), (9, 4)])
    def test_random_pipelines(self, seed, stages):
        graph = random_pipeline(seed, stages)
        domain = ParamDomain({"p": (1, 5), "q": (1, 5)})
        pw = parametric_mcr(graph, domain)
        rng = random.Random(1000 + seed)
        assert verify_piecewise(pw, graph, _bindings_samples(rng, domain, 25)) == 25

    @pytest.mark.parametrize("shape", [(2, 3, 1), (2, 3, 2), (5, 1, 3)])
    def test_feedback_cores(self, shape):
        graph = feedback_graph(*shape)
        domain = ParamDomain({"p": (1, 12)})
        pw = parametric_mcr(graph, domain)
        assert verify_piecewise(pw, graph, pw.domain.grid()) == 12

    def test_multirate_core(self):
        graph = multirate_core_graph()
        domain = ParamDomain({"p": (1, 6), "q": (1, 4)})
        pw = parametric_mcr(graph, domain)
        assert verify_piecewise(pw, graph, pw.domain.grid()) == 24

    def test_total_coverage_exceeds_200_bindings(self):
        """The acceptance floor: >= 200 random bindings, aggregated
        across every family above (re-checked here in one sweep so the
        count is explicit rather than spread over parametrizations)."""
        total = 0
        rng = random.Random(42)
        cases = [
            (parametric_radio_graph(), ParamDomain({"b": (1, 8), "c": (1, 8)})),
            (fig2_graph().as_csdf(), ParamDomain({"p": (1, 30)})),
            (multirate_core_graph(), ParamDomain({"p": (1, 6), "q": (1, 4)})),
        ]
        for seed, stages in [(1, 3), (2, 4), (5, 5), (9, 4)]:
            cases.append((random_pipeline(seed, stages),
                          ParamDomain({"p": (1, 5), "q": (1, 5)})))
        for shape in [(2, 3, 1), (2, 3, 2), (5, 1, 3)]:
            cases.append((feedback_graph(*shape), ParamDomain({"p": (1, 12)})))
        for graph, domain in cases:
            pw = parametric_mcr(graph, domain)
            samples = _bindings_samples(rng, domain, 20)
            total += verify_piecewise(pw, graph, samples)
        assert total >= 200


# ----------------------------------------------------------------------
# the partition itself: exact regions, exact boundaries
# ----------------------------------------------------------------------

class TestRegions:
    def test_regions_tile_the_domain(self):
        """Every lattice point lies in exactly one region, and that
        region's candidate attains the maximum there — the partition is
        a true piecewise representation, not an approximation."""
        graph = parametric_radio_graph()
        domain = ParamDomain({"b": (1, 8), "c": (1, 8)})
        pw = parametric_mcr(graph, domain)
        for bindings in domain.grid():
            covering = [r for r in pw.regions if r.contains(bindings)]
            assert len(covering) == 1, (bindings, covering)
            region = covering[0]
            value = pw.candidates[region.candidate].ratio.evaluate(bindings)
            assert value == pw.evaluate(bindings)
            assert pw.region_for(bindings) == region

    def test_region_sizes_sum_to_domain_size(self):
        domain = ParamDomain({"b": (1, 8), "c": (1, 8)})
        pw = parametric_mcr(parametric_radio_graph(), domain)
        assert sum(r.size for r in pw.regions) == domain.size == 64

    def test_exact_crossover_boundary(self):
        """The ring crossover of a two-actor pipeline lands exactly on
        the algebraic boundary 3 = 2p (p = 2), not on a sampled grid."""
        g = CSDFGraph("cross")
        g.add_actor("x", exec_time=3)
        g.add_actor("y", exec_time=2)
        g.add_channel("c", "x", "y", production=P, consumption=1)
        pw = parametric_mcr(g, {"p": (1, 100)})
        regions = {tuple(r.bounds): pw.candidates[r.candidate].label
                   for r in pw.regions}
        assert regions == {
            (("p", 1, 1),): "ring:x",
            (("p", 2, 100),): "ring:y",
        }

    def test_dominant_matches_region_tie_break(self):
        graph = parametric_radio_graph()
        pw = parametric_mcr(graph, {"b": (1, 8), "c": (1, 8)})
        for bindings in ({"b": 3, "c": 2}, {"b": 3, "c": 3}, {"b": 8, "c": 8}):
            region = pw.region_for(bindings)
            assert pw.dominant(bindings) is pw.candidates[region.candidate]


# ----------------------------------------------------------------------
# degenerate shapes
# ----------------------------------------------------------------------

class TestDegenerate:
    def test_single_region(self):
        """A domain on which one candidate dominates everywhere."""
        graph = fig2_graph().as_csdf()
        pw = parametric_mcr(graph, {"p": (1, 8)})
        assert len(pw.regions) == 1
        region = pw.regions[0]
        assert region.bounds == (("p", 1, 8),)
        assert pw.candidates[region.candidate].label == "ring:B"

    def test_empty_domain(self):
        graph = fig2_graph().as_csdf()
        domain = ParamDomain({"p": (5, 2)})
        assert domain.is_empty and domain.size == 0
        pw = parametric_mcr(graph, domain)
        assert pw.regions == ()
        assert pw.candidates  # candidates exist, there is just nowhere to stand
        with pytest.raises(ParametricMCRError):
            pw.evaluate({"p": 3})

    def test_boundary_bindings(self):
        """Domain corners — the bindings region boundaries snap to."""
        graph = parametric_radio_graph()
        pw = parametric_mcr(graph, {"b": (2, 7), "c": (3, 6)})
        corners = list(pw.domain.corners())
        assert len(corners) == 4
        assert verify_piecewise(pw, graph, corners) == 4

    def test_concrete_graph_empty_parameter_set(self):
        """A parameter-free graph under the empty domain: one region
        covering the single (empty) valuation."""
        graph = fig1_graph()
        pw = parametric_mcr(graph, ParamDomain())
        assert len(pw.regions) == 1 and pw.regions[0].bounds == ()
        assert pw.evaluate_float({}) == max_cycle_ratio(graph)

    def test_outside_domain_raises(self):
        pw = parametric_mcr(fig2_graph().as_csdf(), {"p": (1, 8)})
        with pytest.raises(ParametricMCRError):
            pw.evaluate({"p": 9})
        with pytest.raises(ParametricMCRError):
            pw.evaluate({})

    def test_unbound_parameter_raises(self):
        graph = fig2_graph().as_csdf()
        with pytest.raises(ParametricMCRError, match="does not bind"):
            parametric_mcr(graph, ParamDomain())

    def test_empty_graph(self):
        pw = parametric_mcr(CSDFGraph("empty"), ParamDomain())
        assert pw.candidates == () and pw.evaluate({}) == 0
        with pytest.raises(ParametricMCRError, match="no candidates"):
            pw.dominant({})


# ----------------------------------------------------------------------
# the supported-class frontier
# ----------------------------------------------------------------------

class TestUnsupported:
    def test_parametric_rate_on_cycle_raises(self):
        g = CSDFGraph("badcycle")
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("fwd", "a", "b", production=P, consumption=P)
        g.add_channel("back", "b", "a", production=P, consumption=P,
                      initial_tokens=2)
        with pytest.raises(ParametricMCRError, match="parametric rates"):
            parametric_mcr(g, {"p": (1, 4)})

    def test_parametric_repetition_on_cycle_raises(self):
        """The feeder scales the core's repetition counts with p: the
        cyclic core changes shape, which the engine must refuse."""
        g = CSDFGraph("badq")
        g.add_actor("src")
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("in", "src", "a", production=P, consumption=1)
        g.add_channel("fwd", "a", "b")
        g.add_channel("back", "b", "a", initial_tokens=1)
        with pytest.raises(ParametricMCRError, match="repetition"):
            parametric_mcr(g, {"p": (1, 4)})

    def test_deadlocking_core_raises_like_concrete(self):
        g = CSDFGraph("dead")
        g.add_actor("src")
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("in", "src", "a", production=1, consumption=P)
        g.add_channel("fwd", "a", "b")
        g.add_channel("back", "b", "a")  # no tokens: deadlock
        with pytest.raises(AnalysisError):
            parametric_mcr(g, {"p": (1, 4)})
        with pytest.raises(AnalysisError):
            max_cycle_ratio(g, {"p": 2})


# ----------------------------------------------------------------------
# caching, pickling and the batch service
# ----------------------------------------------------------------------

class TestIntegration:
    def test_memoized_per_graph_version(self):
        graph = parametric_radio_graph()
        domain = {"b": (1, 4), "c": (1, 4)}
        first = parametric_mcr(graph, domain)
        assert parametric_mcr(graph, domain) is first
        assert any(key[0] == "parametric_mcr" for key in analysis_cache(graph))
        graph.add_actor("LATE", exec_time=99)
        second = parametric_mcr(graph, domain)
        assert second is not first
        assert second.evaluate({"b": 1, "c": 1}) == 99

    def test_pickle_roundtrip(self):
        pw = parametric_mcr(parametric_radio_graph(), {"b": (1, 8), "c": (1, 8)})
        clone = pickle.loads(pickle.dumps(pw))
        assert clone.fingerprint() == pw.fingerprint()
        assert clone.evaluate({"b": 5, "c": 5}) == pw.evaluate({"b": 5, "c": 5})

    def test_io_dict_roundtrip(self):
        from repro.io import piecewise_from_dict, piecewise_to_dict
        import json

        pw = parametric_mcr(parametric_radio_graph(), {"b": (1, 8), "c": (1, 8)})
        clone = piecewise_from_dict(json.loads(json.dumps(piecewise_to_dict(pw))))
        assert clone.fingerprint() == pw.fingerprint()
        assert clone.evaluate({"b": 4, "c": 7}) == pw.evaluate({"b": 4, "c": 7})

    def test_analyze_carries_parametric_report(self):
        report = analyze(fig2_graph(), {"p": 2},
                         parametric_domain={"p": (1, 8)})
        assert report.parametric is not None
        assert report.parametric.piecewise is not None
        assert report.parametric.mcr_at({"p": 2}) == report.mcr
        assert any("ring:B" in c for c in report.parametric.candidates)
        assert "parametric MCR" in report.summary()

    def test_analyze_records_unsupported_as_error(self):
        g = CSDFGraph("badcycle")
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("fwd", "a", "b", production=P, consumption=P)
        g.add_channel("back", "b", "a", production=P, consumption=P,
                      initial_tokens=2)
        report = analyze(g, parametric_domain={"p": (1, 4)})
        assert "parametric_mcr" in report.parametric.errors
        assert "FAILED" in report.parametric.summary()

    def test_parallel_batch_parity(self):
        """The parametric stage rides the PR 2 process pool unchanged:
        fingerprints (which fold in the piecewise result) must be
        bit-identical to the sequential path."""
        graph = fig2_graph()
        items = [(graph, {"p": v}) for v in (1, 2, 3, 4)]
        sequential = analyze_batch(items, parametric_domain={"p": (1, 8)})
        parallel = analyze_batch(items, jobs=2, chunk_size=2,
                                 parametric_domain={"p": (1, 8)})
        assert [r.fingerprint() for r in parallel] == \
            [r.fingerprint() for r in sequential]
        for report in parallel:
            assert report.parametric.piecewise is not None
