"""Differential suite for the lock-step K-run batched kernel.

``self_timed_execution_batch`` clones K run-states from one memoized
``ArrayState`` template and steps all K runs wavefront by wavefront.
The contract is **bit for bit**: every outcome — the full
``TimedResult`` contents, or the deadlock's message and blocked set —
must equal what K sequential ``self_timed_execution(backend="arrays")``
calls produce, over the same 200-graph random corpus the three scalar
backends are pinned on.

Also here: the capacity-contract regressions (unknown channel names
raise ``ValueError`` from every entry point; a capacity below a
channel's initial tokens is a documented up-front deadlock on every
backend) and the buffer-search modes (floor-kill, probe memoization,
batched pre-pass) that must all return identical capacities.
"""

import pytest

from repro.analysis import probe_capacities
from repro.csdf import (
    CSDFGraph,
    capacity_floors,
    min_buffers_for_full_throughput,
    self_timed_execution,
    self_timed_execution_batch,
)
from repro.errors import DeadlockError
from repro.sim import Simulator
from repro.tpdf import random_consistent_graph

#: The corpus grid of tests/sim/test_eventloop_differential.py.
SHAPES = (
    (3, 1, 0),
    (4, 2, 1),
    (5, 2, 0),
    (5, 3, 2),
    (6, 3, 1),
    (6, 3, 2),
    (7, 3, 0),
    (8, 4, 2),
)
SEEDS_PER_SHAPE = 25  # 8 shapes x 25 seeds = 200 random graphs


def _random_csdf(n: int, extra: int, cycles: int, seed: int) -> CSDFGraph:
    return random_consistent_graph(
        n, extra_edges=extra, n_cycles=cycles, seed=seed, with_control=False
    ).as_csdf()


def _sequential_key(graph, capacities, iterations):
    try:
        r = self_timed_execution(
            graph, iterations=iterations, capacities=capacities,
            backend="arrays",
        )
    except DeadlockError as exc:
        return ("deadlock", str(exc), tuple(exc.blocked))
    return _result_key(r)


def _result_key(r):
    return (
        r.makespan,
        r.iterations,
        r.firings,
        tuple(r.iteration_ends),
        tuple(r.peaks.items()),
    )


def _outcome_key(outcome):
    if isinstance(outcome, DeadlockError):
        return ("deadlock", str(outcome), tuple(outcome.blocked))
    return _result_key(outcome)


def _capacity_variants(graph, iterations):
    """Uncapped, peak-tight, and deliberately undersized vectors —
    the mid-batch divergence mix (some runs deadlock, some don't)."""
    peaks = self_timed_execution(graph, iterations=iterations).peaks
    tight = {name: max(1, peak - 1) for name, peak in peaks.items()}
    floors = capacity_floors(graph)
    return [
        None,
        {name: peak for name, peak in peaks.items()},
        tight,
        {name: max(floors[name], 1) for name in peaks},
    ]


class TestBatchedVsSequential:
    """Batched == K sequential arrays runs, bit for bit."""

    @pytest.mark.parametrize(
        "shape", SHAPES, ids=lambda s: f"n{s[0]}e{s[1]}c{s[2]}"
    )
    def test_corpus_capacities_on_and_off(self, shape):
        n, extra, cycles = shape
        iterations = 3
        for seed in range(SEEDS_PER_SHAPE):
            graph = _random_csdf(n, extra, cycles, seed)
            vectors = _capacity_variants(graph, iterations)
            outcomes = self_timed_execution_batch(
                graph, iterations=iterations, capacities_list=vectors
            )
            assert len(outcomes) == len(vectors)
            for caps, outcome in zip(vectors, outcomes):
                assert _outcome_key(outcome) == _sequential_key(
                    graph, caps, iterations
                ), f"divergence on seed {seed} caps {caps}"

    def test_mid_batch_deadlock_divergence(self):
        """Deadlocked runs drop out of the batch without perturbing the
        survivors: the feasible runs' results are identical whether or
        not deadlocking runs ride along."""
        graph = _random_csdf(6, 3, 2, seed=4)
        iterations = 3
        feasible = None
        floors = capacity_floors(graph)
        dead = {name: max(1, floor - 1) if floor > 1 else 1
                for name, floor in floors.items()}
        mixed = [feasible, dead, None, dead, dead]
        outcomes = self_timed_execution_batch(
            graph, iterations=iterations, capacities_list=mixed
        )
        alone = self_timed_execution_batch(
            graph, iterations=iterations, capacities_list=[None]
        )
        assert _outcome_key(outcomes[0]) == _outcome_key(alone[0])
        assert _outcome_key(outcomes[2]) == _outcome_key(alone[0])
        for index in (1, 3, 4):
            assert _outcome_key(outcomes[index]) == _sequential_key(
                graph, dead, iterations
            )

    def test_k1_degenerates_to_sequential(self):
        graph = _random_csdf(5, 2, 0, seed=1)
        for caps in (None, {name: 64 for name in graph.channels}):
            (outcome,) = self_timed_execution_batch(
                graph, iterations=4, capacities_list=[caps]
            )
            assert _outcome_key(outcome) == _sequential_key(graph, caps, 4)

    def test_stats_reported(self):
        graph = _random_csdf(4, 2, 1, seed=0)
        stats: dict = {}
        self_timed_execution_batch(
            graph, iterations=2, capacities_list=[None, None], stats=stats
        )
        assert stats["runs"] == 2
        assert stats["wavefronts"] > 0
        assert stats["events"] > 0

    def test_cores_budget_rejected(self):
        graph = _random_csdf(3, 1, 0, seed=0)
        with pytest.raises(ValueError, match="cores"):
            self_timed_execution_batch(
                graph, iterations=1, capacities_list=[None], cores=2
            )

    def test_iterations_below_one_rejected(self):
        graph = _random_csdf(3, 1, 0, seed=0)
        with pytest.raises(ValueError, match="iteration"):
            self_timed_execution_batch(
                graph, iterations=0, capacities_list=[None]
            )

    def test_probe_capacities_front_door(self):
        """The analysis-level wrapper returns the same outcomes and
        accepts the TPDF view."""
        tpdf = random_consistent_graph(
            5, extra_edges=2, n_cycles=1, seed=3, with_control=False
        )
        graph = tpdf.as_csdf()
        vectors = _capacity_variants(graph, 3)
        direct = self_timed_execution_batch(
            graph, iterations=3, capacities_list=vectors
        )
        via_tpdf = probe_capacities(tpdf, vectors, iterations=3)
        assert list(map(_outcome_key, direct)) == list(
            map(_outcome_key, via_tpdf)
        )


def _two_actor_graph(initial=3):
    g = CSDFGraph("pc")
    g.add_actor("prod", exec_time=1.0)
    g.add_actor("cons", exec_time=1.0)
    g.add_channel("e", "prod", "cons", 1, 1, initial_tokens=initial)
    return g


class TestCapacityNameValidation:
    """Satellite bugfix: a typo'd channel name in ``capacities`` used to
    be silently dropped — the run then executed *unconstrained* on the
    channel the caller thought was bounded.  Every entry point now
    rejects unknown names with a ValueError naming the offenders."""

    def test_all_execution_backends(self):
        g = _two_actor_graph()
        for backend in ("arrays", "wakeup", "reference"):
            with pytest.raises(ValueError, match="typo"):
                self_timed_execution(
                    g, iterations=2, capacities={"typo": 4, "e": 4},
                    backend=backend,
                )

    def test_batched_kernel(self):
        g = _two_actor_graph()
        with pytest.raises(ValueError, match="typo"):
            self_timed_execution_batch(
                g, iterations=2, capacities_list=[{"e": 4}, {"typo": 4}]
            )

    def test_buffer_search_pins(self):
        g = _two_actor_graph()
        with pytest.raises(ValueError, match="typo"):
            min_buffers_for_full_throughput(g, capacities={"typo": 4})

    def test_simulator(self):
        tpdf = random_consistent_graph(
            4, extra_edges=1, n_cycles=0, seed=2, with_control=False
        )
        with pytest.raises(ValueError, match="typo"):
            Simulator(tpdf, capacities={"typo": 4})

    def test_error_names_every_offender(self):
        g = _two_actor_graph()
        with pytest.raises(ValueError) as info:
            self_timed_execution(
                g, iterations=1, capacities={"bad1": 1, "bad2": 1}
            )
        assert "bad1" in str(info.value) and "bad2" in str(info.value)


class TestInitialTokensContract:
    """Satellite bugfix: a capacity below a channel's initial tokens is
    a documented up-front deadlock — never a silent over-capacity run —
    and all backends agree bit for bit."""

    def test_differential_across_backends(self):
        g = _two_actor_graph(initial=3)
        keys = set()
        for backend in ("arrays", "wakeup", "reference"):
            with pytest.raises(DeadlockError) as info:
                self_timed_execution(
                    g, iterations=2, capacities={"e": 2}, backend=backend
                )
            keys.add((str(info.value), tuple(info.value.blocked)))
        (outcome,) = self_timed_execution_batch(
            g, iterations=2, capacities_list=[{"e": 2}]
        )
        assert isinstance(outcome, DeadlockError)
        keys.add((str(outcome), tuple(outcome.blocked)))
        assert len(keys) == 1, keys
        ((message, blocked),) = keys
        assert "initial tokens" in message and "e" in message
        assert blocked  # deterministic scan-order blocked set

    def test_simulator_agrees(self):
        tpdf = random_consistent_graph(
            4, extra_edges=1, n_cycles=1, seed=6, with_control=False
        )
        carrier = next(
            (c for c in tpdf.channels.values() if c.initial_tokens > 0), None
        )
        assert carrier is not None
        with pytest.raises(DeadlockError, match="initial tokens"):
            Simulator(
                tpdf, capacities={carrier.name: carrier.initial_tokens - 1}
            )

    def test_capacity_at_initial_tokens_is_admitted(self):
        g = _two_actor_graph(initial=3)
        result = self_timed_execution(g, iterations=2, capacities={"e": 3})
        assert result.peaks["e"] <= 3


class TestBufferSearchModes:
    """Satellite bugfix + tentpole wiring: probe memoization, the
    executed-probes-only ``stats['probes']`` counter, and the batched
    pre-pass all return capacities identical to the unmemoized
    sequential search."""

    @pytest.mark.parametrize("seed", range(8))
    def test_all_modes_identical(self, seed):
        graph = _random_csdf(6, 3, 1, seed=seed)
        base = min_buffers_for_full_throughput(
            graph, iterations=4, probe_floor=False, memoize_probes=False
        )
        stats_memo: dict = {}
        memo = min_buffers_for_full_throughput(
            graph, iterations=4, probe_floor=False, memoize_probes=True,
            stats=stats_memo,
        )
        stats_floor: dict = {}
        floor = min_buffers_for_full_throughput(
            graph, iterations=4, stats=stats_floor
        )
        stats_batch: dict = {}
        batched = min_buffers_for_full_throughput(
            graph, iterations=4, batched=True, stats=stats_batch
        )
        assert memo == base
        assert floor == base
        assert batched == base

    def test_probes_counts_executed_only(self):
        graph = _random_csdf(6, 3, 1, seed=2)
        plain: dict = {}
        min_buffers_for_full_throughput(
            graph, iterations=4, probe_floor=False, memoize_probes=False,
            stats=plain,
        )
        memo: dict = {}
        min_buffers_for_full_throughput(
            graph, iterations=4, probe_floor=False, memoize_probes=True,
            stats=memo,
        )
        # Both searches probe the identical vector sequence, so every
        # execution the memo saves shows up as a hit.
        assert memo["probes"] + memo["probes_memoized"] == plain["probes"]
        assert memo["probes"] <= plain["probes"]

    def test_pinned_channels_kept_and_others_minimized(self):
        graph = _random_csdf(6, 3, 1, seed=2)
        base = min_buffers_for_full_throughput(graph, iterations=4)
        name = sorted(base)[0]
        # Pinning at the search's own minimum must reproduce the
        # unpinned sizing exactly (same prefix on every probe).
        pinned = min_buffers_for_full_throughput(
            graph, iterations=4, capacities={name: base[name]}
        )
        assert pinned == base
        # The returned sizing is verified feasible under the pins.
        result = self_timed_execution(graph, iterations=4, capacities=pinned)
        assert result.peaks[name] <= base[name]

    def test_below_floor_pins_rejected(self):
        g = _two_actor_graph(initial=0)
        # Capacity 0 on the only channel: the producer can never write.
        with pytest.raises(ValueError, match="floor"):
            min_buffers_for_full_throughput(g, capacities={"e": 0})

    def test_pin_below_initial_tokens_is_deadlock(self):
        g = _two_actor_graph(initial=3)
        with pytest.raises(DeadlockError, match="initial tokens"):
            min_buffers_for_full_throughput(g, capacities={"e": 2})
