"""Warm-vs-cold differential suite for delta-aware incremental
re-analysis.

The incremental machinery (mutation records, SCC-granular MCR cache
keys, in-place SoA template patching, Howard warm-starts) exists to
make ``analyze(reuse_from=...)`` cheap after small edits — but its
acceptance criterion is stronger than "fast": a warm re-analysis must
be **bit-for-bit identical** (``GraphReport.fingerprint``) to a cold
analysis of the same graph, for *every* edit class.  This suite
asserts exactly that on the 200-graph random corpus under seeded
random edit scripts, plus targeted checks that the reuse actually
happens (out-of-core edits never re-solve the cyclic core) and never
goes stale (structural edits always recompute).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.analysis import EditSession, analyze, warm_graph
from repro.cache import (
    UNKNOWN_DELTA,
    analysis_cache,
    bindings_key,
    bump_version,
    cached,
    delta_since,
    version_of,
)
from repro.csdf import CSDFGraph, array_state, max_cycle_ratio
from repro.errors import GraphConstructionError
from repro.io import csdf_from_dict, csdf_to_dict
from repro.tpdf import random_consistent_graph

#: (actors, extra_edges, back_edges) shapes; 8 shapes x 25 seeds = 200
#: random graphs (the same corpus family as the MCR differential).
SHAPES = (
    (3, 1, 0),
    (4, 2, 1),
    (5, 2, 0),
    (5, 3, 2),
    (6, 3, 1),
    (6, 3, 2),
    (7, 3, 0),
    (8, 4, 2),
)
SEEDS_PER_SHAPE = 25
EDITS_PER_GRAPH = 4

ANALYZE_OPTIONS = dict(iterations=2)


def _mutable_csdf(n: int, extra: int, cycles: int, seed: int) -> CSDFGraph:
    """A fresh *mutable* CSDF corpus graph (``as_csdf()`` products are
    frozen shared memos, so edits go through a round-trip clone)."""
    frozen = random_consistent_graph(
        n, extra_edges=extra, n_cycles=cycles, seed=seed, with_control=False
    ).as_csdf()
    return csdf_from_dict(csdf_to_dict(frozen))


def _concrete(rates) -> list[int]:
    return [int(entry.evaluate({})) for entry in rates]


def _apply_random_edit(session: EditSession, rng: random.Random) -> str:
    """Apply one random edit from the covered edit classes.

    Edits are biased towards consistency-preserving shapes (balanced
    rate scaling, repetition-compatible new channels) so most steps
    exercise the full performance chain, but deliberately may deadlock
    or disconnect the graph — warm and cold must agree on *those*
    verdicts too.
    """
    graph = session.graph
    actors = list(graph.actors)
    channels = list(graph.channels)
    kind = rng.choice((
        "exec_same", "exec_same", "exec_resize", "tokens", "rate_scale",
        "add_channel", "remove_channel",
    ))

    if kind == "exec_same":
        # Binding-only: new values, same phase count.
        name = rng.choice(actors)
        times = graph.actor(name).exec_times
        session.set_exec_time(
            name, tuple(float(rng.randint(1, 6)) for _ in times))
    elif kind == "exec_resize":
        # Structural: the phase count feeds tau and hence q.
        name = rng.choice(actors)
        session.set_exec_time(
            name, tuple(float(rng.randint(1, 4))
                        for _ in range(rng.randint(1, 3))))
    elif kind == "tokens":
        name = rng.choice(channels)
        session.set_initial_tokens(
            name, rng.randint(0, graph.channel(name).initial_tokens + 4))
    elif kind == "rate_scale":
        # Scale production, consumption and tokens of one channel by the
        # same factor: the balance equations are preserved exactly.
        name = rng.choice(channels)
        channel = graph.channel(name)
        m = rng.choice((2, 3))
        session.set_production(name, tuple(m * r for r in _concrete(channel.production)))
        session.set_consumption(name, tuple(m * r for r in _concrete(channel.consumption)))
        session.set_initial_tokens(name, m * channel.initial_tokens)
    elif kind == "add_channel":
        from repro.csdf.analysis import concrete_repetition_vector
        from math import gcd

        src, dst = rng.sample(actors, 2)
        try:
            q = concrete_repetition_vector(graph, None)
            g = gcd(q[src], q[dst])
            production, consumption = q[dst] // g, q[src] // g
            # Seed one local iteration's worth of tokens so a back edge
            # stays live; forward edges get a small random fill.
            tokens = consumption * q[dst] if rng.random() < 0.5 else rng.randint(0, 2)
        except Exception:
            # Current graph is inconsistent/dead: any rates do.
            production, consumption, tokens = 1, 1, rng.randint(0, 2)
        session.add_channel(None, src, dst, production=production,
                            consumption=consumption, initial_tokens=tokens)
    else:  # remove_channel
        session.remove_channel(rng.choice(channels))
    return kind


def _cold_report(graph: CSDFGraph):
    """Cold oracle: analyze a fresh serialization round-trip clone
    (no caches, no shared version state, nothing to reuse)."""
    return analyze(csdf_from_dict(csdf_to_dict(graph)), None, **ANALYZE_OPTIONS)


class TestWarmColdDifferential:
    """The acceptance criterion: warm == cold bit-for-bit on randomized
    edit sequences over the 200-graph corpus."""

    @pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"n{s[0]}e{s[1]}c{s[2]}")
    def test_random_edit_scripts(self, shape):
        n, extra, cycles = shape
        for seed in range(SEEDS_PER_SHAPE):
            graph = _mutable_csdf(n, extra, cycles, seed)
            rng = random.Random((n, extra, cycles, seed).__hash__())
            session = EditSession(graph, **ANALYZE_OPTIONS)
            warm = session.analyze()
            assert warm.fingerprint() == _cold_report(graph).fingerprint()
            for step in range(EDITS_PER_GRAPH):
                kind = _apply_random_edit(session, rng)
                warm = session.analyze()
                cold = _cold_report(graph)
                assert warm.fingerprint() == cold.fingerprint(), (
                    f"warm/cold divergence: shape={shape} seed={seed} "
                    f"step={step} edit={kind}"
                )

    def test_unchanged_resubmission_is_reused(self):
        graph = _mutable_csdf(5, 2, 1, 3)
        session = EditSession(graph, **ANALYZE_OPTIONS)
        first = session.analyze()
        second = session.analyze()
        # O(1) shortcut: same report object contents (modulo wall clock).
        assert second.fingerprint() == first.fingerprint()
        assert second.graph_version == first.graph_version
        assert second.timed is first.timed  # reused, not recomputed

    def test_reuse_from_rejects_other_graph(self):
        a = _mutable_csdf(3, 1, 0, 0)
        b = _mutable_csdf(3, 1, 0, 1)
        report = analyze(a, None, **ANALYZE_OPTIONS)
        with pytest.raises(ValueError, match="same graph object"):
            analyze(b, None, reuse_from=report, **ANALYZE_OPTIONS)


class TestSCCGranularity:
    """Reuse happens (out-of-core edits skip the core) and never goes
    stale (in-core and structural edits recompute)."""

    @staticmethod
    def _core_and_tail() -> CSDFGraph:
        graph = CSDFGraph("scc_demo")
        for name in ("a", "b", "c", "t"):
            graph.add_actor(name, exec_time=2.0)
        graph.add_channel("ab", "a", "b")
        graph.add_channel("bc", "b", "c")
        graph.add_channel("ca", "c", "a", initial_tokens=1)
        graph.add_channel("at", "a", "t")  # acyclic tail
        return graph

    @pytest.fixture
    def howard_spy(self, monkeypatch):
        import repro.csdf.mcr as mcr_mod

        calls: list[tuple] = []
        real = mcr_mod.howard

        def spy(nodes, edges, initial_policy=None):
            calls.append((tuple(nodes), initial_policy))
            return real(nodes, edges, initial_policy)

        monkeypatch.setattr(mcr_mod, "howard", spy)
        return calls

    def test_out_of_core_edit_skips_core_scc(self, howard_spy):
        graph = self._core_and_tail()
        assert max_cycle_ratio(graph) == pytest.approx(6.0)  # (2+2+2)/1
        howard_spy.clear()

        graph.actor("t").set_exec_time(9.0)  # binding edit, outside the cycle
        assert max_cycle_ratio(graph) == pytest.approx(9.0)  # t's self-loop
        assert howard_spy, "changed singleton SCC must be re-solved"
        for nodes, _ in howard_spy:
            assert set(nodes) == {"t#1"}, (
                f"core SCC re-solved after out-of-core edit: {nodes}"
            )

    def test_in_core_edit_warm_starts_howard(self, howard_spy):
        graph = self._core_and_tail()
        max_cycle_ratio(graph)
        howard_spy.clear()

        graph.actor("a").set_exec_time(5.0)  # in-core binding edit
        assert max_cycle_ratio(graph) == pytest.approx(9.0)  # (5+2+2)/1
        core_calls = [p for nodes, p in howard_spy if set(nodes) != {"t#1"}]
        assert core_calls, "changed core SCC must be re-solved"
        # The SCC shape is unchanged, so the remembered cycle policy
        # seeds the solve instead of the cold heaviest-edge heuristic.
        assert all(policy is not None for policy in core_calls)

    def test_structural_edit_never_reuses_stale_scc(self):
        graph = self._core_and_tail()
        assert max_cycle_ratio(graph) == pytest.approx(6.0)
        graph.channel("ca").initial_tokens = 2  # structural: distances move
        warm = max_cycle_ratio(graph)
        cold = max_cycle_ratio(csdf_from_dict(csdf_to_dict(graph)))
        assert warm == cold == pytest.approx(3.0)  # 6/2

    def test_rate_edit_never_reuses_stale_scc(self):
        graph = self._core_and_tail()
        analyze(graph, None, **ANALYZE_OPTIONS)
        graph.channel("at").production = (2,)
        warm = analyze(graph, None, **ANALYZE_OPTIONS)
        assert warm.fingerprint() == _cold_report(graph).fingerprint()


class TestMutationRecords:
    """Unit semantics of bump_version / delta_since / carry-forward."""

    @staticmethod
    def _graph() -> CSDFGraph:
        graph = CSDFGraph("records")
        graph.add_actor("a", exec_time=1.0)
        graph.add_actor("b", exec_time=2.0)
        graph.add_channel("ab", "a", "b", initial_tokens=1)
        return graph

    def test_binding_delta_is_scoped(self):
        graph = self._graph()
        before = version_of(graph)
        graph.actor("a").set_exec_time(7.0)  # same phase count
        delta = delta_since(graph, before)
        assert delta.known and delta.binding_only
        assert delta.touched == {"a"}
        assert not delta.conservative

    def test_phase_count_change_is_structural(self):
        graph = self._graph()
        before = version_of(graph)
        graph.actor("a").set_exec_time((1.0, 2.0))  # 1 phase -> 2 phases
        delta = delta_since(graph, before)
        assert delta.known and not delta.binding_only
        assert delta.conservative

    def test_channel_edits_are_structural(self):
        graph = self._graph()
        for mutate in (
            lambda: setattr(graph.channel("ab"), "initial_tokens", 3),
            lambda: setattr(graph.channel("ab"), "production", (2,)),
            lambda: setattr(graph.channel("ab"), "consumption", (2,)),
        ):
            before = version_of(graph)
            mutate()
            assert delta_since(graph, before).conservative

    def test_legacy_unscoped_bump_is_conservative(self):
        graph = self._graph()
        before = version_of(graph)
        bump_version(graph)  # old one-argument form
        delta = delta_since(graph, before)
        assert delta.known and not delta.binding_only
        assert delta.touched is None

    def test_unknown_kind_rejected(self):
        graph = self._graph()
        with pytest.raises(ValueError, match="unknown mutation kind"):
            bump_version(graph, kind="cosmetic")

    def test_future_version_is_unknown(self):
        graph = self._graph()
        assert delta_since(graph, version_of(graph) + 5) == UNKNOWN_DELTA

    def test_log_trim_degrades_to_unknown(self):
        graph = self._graph()
        before = version_of(graph)
        for _ in range(300):  # beyond the 256-record log
            bump_version(graph, kind="binding", scope=("a",))
        assert delta_since(graph, before) == UNKNOWN_DELTA
        # A span the log still covers stays precise.
        recent = version_of(graph) - 10
        assert delta_since(graph, recent).binding_only

    def test_carry_forward_keeps_binding_insensitive_entries(self):
        graph = self._graph()
        sentinel = object()
        cached(graph, ("repetition_vector",), lambda: sentinel)
        cached(graph, ("mcr", ()), lambda: 42.0)
        graph.actor("b").set_exec_time(9.0)  # binding-only bump
        cache = analysis_cache(graph)
        assert cache.get(("repetition_vector",)) is sentinel  # carried
        assert ("mcr", ()) not in cache  # timed result dropped

    def test_structural_bump_drops_everything(self):
        graph = self._graph()
        cached(graph, ("repetition_vector",), lambda: {"a": 1})
        graph.channel("ab").initial_tokens = 5
        assert not analysis_cache(graph)


class TestFrozenTemplate:
    """S1: the memoized SoA template's arrays are write-protected."""

    def test_template_arrays_reject_writes(self):
        graph = _mutable_csdf(4, 2, 1, 0)
        state = array_state(graph, None)
        with pytest.raises(ValueError):
            state.tokens0[0] = 99
        with pytest.raises(ValueError):
            state.qv_np[0] = 7

    def test_binding_patched_template_is_also_frozen(self):
        graph = _mutable_csdf(4, 2, 1, 1)
        array_state(graph, None)
        name = next(iter(graph.actors))
        graph.actor(name).set_exec_time(5.0)  # binding edit -> patch path
        patched = array_state(graph, None)
        with pytest.raises(ValueError):
            patched.tokens0[0] = 99


class TestWarmGraphIdempotent:
    """S2: warm_graph() per (graph, version) runs the stage chain once."""

    def test_second_call_is_a_no_op(self, monkeypatch):
        import repro.csdf.analysis as csdf_analysis

        calls = []
        real = csdf_analysis.repetition_vector

        def spy(graph):
            calls.append(graph)
            return real(graph)

        monkeypatch.setattr(csdf_analysis, "repetition_vector", spy)
        graph = _mutable_csdf(3, 1, 0, 2)

        warm_graph(graph)
        assert calls, "first warm-up must run the stage chain"
        calls.clear()
        warm_graph(graph)
        assert calls == [], "re-warming an unchanged graph must be a no-op"

        # A structural edit invalidates the warm marker.
        graph.channel(next(iter(graph.channels))).initial_tokens = 3
        warm_graph(graph)
        assert calls, "a structurally edited graph must re-warm"


class TestUnhashableBindings:
    """S3: unhashable parameter values fail eagerly, naming the culprit."""

    def test_bindings_key_names_the_parameter(self):
        with pytest.raises(TypeError, match="'p' has unhashable value"):
            bindings_key({"p": [1, 2]})

    def test_analyze_rejects_unhashable_binding(self):
        graph = _mutable_csdf(3, 1, 0, 0)
        with pytest.raises(TypeError, match="'p' has unhashable value"):
            analyze(graph, {"p": [1, 2]})

    def test_edit_session_rejects_unhashable_binding(self):
        graph = _mutable_csdf(3, 1, 0, 1)
        session = EditSession(graph)
        with pytest.raises(TypeError, match="'q' has unhashable value"):
            session.analyze(bindings={"q": {1: 2}})


class TestEditSessionApply:
    """Declarative edit dispatch (the CLI --edits surface)."""

    @staticmethod
    def _session() -> EditSession:
        graph = CSDFGraph("ops")
        graph.add_actor("a", exec_time=1.0)
        graph.add_actor("b", exec_time=1.0)
        graph.add_channel("ab", "a", "b", initial_tokens=0)
        return EditSession(graph)

    def test_apply_dispatches_every_op(self):
        session = self._session()
        session.apply({"op": "set_exec_time", "actor": "a", "value": 3})
        session.apply({"op": "set_initial_tokens", "channel": "ab", "value": 2})
        session.apply({"op": "add_actor", "name": "c", "exec_time": 2})
        session.apply({"op": "add_channel", "src": "b", "dst": "c"})
        session.apply({"op": "set_production", "channel": "ab", "value": [2]})
        session.apply({"op": "set_consumption", "channel": "ab", "value": [2]})
        session.apply({"op": "remove_actor", "name": "c"})
        graph = session.graph
        assert graph.actor("a").exec_times == (3,)
        assert "c" not in graph.actors
        assert len(graph.channels) == 1

    def test_unknown_op_rejected(self):
        with pytest.raises(GraphConstructionError, match="unknown edit op"):
            self._session().apply({"op": "paint", "color": "red"})

    def test_missing_field_rejected(self):
        with pytest.raises(GraphConstructionError, match="missing required field"):
            self._session().apply({"op": "set_exec_time", "actor": "a"})

    def test_unexpected_field_rejected(self):
        with pytest.raises(GraphConstructionError, match="unexpected fields"):
            self._session().apply(
                {"op": "remove_channel", "name": "ab", "force": True})

    def test_remove_unknown_channel_reports_name(self):
        with pytest.raises(GraphConstructionError, match="nope"):
            self._session().apply({"op": "remove_channel", "name": "nope"})

    def test_session_requires_csdf(self):
        from repro.tpdf import TPDFGraph

        with pytest.raises(TypeError, match="EditSession edits CSDF"):
            EditSession(TPDFGraph("t"))
