"""Property-based suite for the scheduler primitives.

The array-state backend stands on three small data structures whose
contracts every executor decision rides on:

* :class:`repro.csdf.eventloop.EventQueue` — indexed heap with the
  ``(time, seq)`` FIFO tie-break and validated cancellation;
* :class:`repro.csdf.calqueue.CalendarQueue` — same contract, calendar
  buckets past its threshold, heap fallback below it and on degenerate
  bucket widths;
* :class:`repro.csdf.eventloop.ReadyWorklist` — the pass-structured
  pending-ready worklist whose scan-order tie-break decides start
  order.

Random interleavings of ``push``/``pop``/``cancel`` are driven against
one **sorted-list oracle** (a plain list of ``(time, seq, payload)``
entries popped by ``min``), across queue configurations that force
both calendar and heap modes.  The worklist checks pin the
``pending()``/``suspend`` invariants under mid-pass suspension.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.csdf.calqueue import CalendarQueue
from repro.csdf.eventloop import EventQueue, ReadyWorklist

# -- operation strategies ----------------------------------------------------

#: Times drawn from a small float pool so equal-time ties are common
#: (the FIFO tie-break is the property under test).
_TIMES = st.one_of(
    st.integers(0, 12).map(float),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
)

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("push"), _TIMES),
        st.tuples(st.just("pop"), st.just(0.0)),
        st.tuples(st.just("cancel"), st.just(0.0)),
        st.tuples(st.just("cancel_dead"), st.just(0.0)),
    ),
    min_size=1,
    max_size=120,
)

#: Queue factories: the indexed heap, plus calendar queues forced into
#: calendar mode (tiny threshold, fixed width), left on the automatic
#: width estimate, and kept on the heap fallback (huge threshold).
_QUEUES = (
    lambda: EventQueue(),
    lambda: CalendarQueue(),
    lambda: CalendarQueue(calendar_threshold=1, bucket_width=2.0),
    lambda: CalendarQueue(calendar_threshold=4),
    lambda: CalendarQueue(calendar_threshold=2, bucket_width=0.37),
    lambda: CalendarQueue(calendar_threshold=10**9),
)


def _drive(make_queue, ops, cancel_choices):
    """Run one interleaving against the sorted-list oracle."""
    queue = make_queue()
    oracle: list[tuple[float, int, int]] = []
    popped: list[int] = []
    payload = 0
    for op, time in ops:
        if op == "push":
            payload += 1
            seq = queue.push(time, payload)
            assert all(seq > other for _, other, _ in oracle)
            oracle.append((time, seq, payload))
        elif op == "pop":
            if oracle:
                expected = min(oracle)  # (time, seq) order == FIFO ties
                assert queue.pop() == expected
                oracle.remove(expected)
                popped.append(expected[1])
            else:
                with pytest.raises(IndexError):
                    queue.pop()
        elif op == "cancel" and oracle:
            index = cancel_choices % len(oracle)
            cancel_choices = cancel_choices * 7 + 1
            _, seq, _ = oracle.pop(index)
            queue.cancel(seq)
            popped.append(seq)  # dead either way
        elif op == "cancel_dead":
            live = {seq for _, seq, _ in oracle}
            dead = next((seq for seq in popped if seq not in live), None)
            target = dead if dead is not None else 10**9
            with pytest.raises(ValueError):
                queue.cancel(target)
        assert len(queue) == len(oracle)
        assert bool(queue) == bool(oracle)
    # Drain what is left: full FIFO-ordered agreement.
    while oracle:
        expected = min(oracle)
        assert queue.pop() == expected
        oracle.remove(expected)
    assert not queue


class TestQueuesAgainstSortedOracle:
    @given(ops=_OPS, cancel_choices=st.integers(0, 2**20))
    @settings(max_examples=60)
    def test_random_interleavings(self, ops, cancel_choices):
        for make_queue in _QUEUES:
            _drive(make_queue, ops, cancel_choices)

    def test_calendar_mode_is_actually_exercised(self):
        """Guard against the suite silently testing only heap mode."""
        queue = CalendarQueue(calendar_threshold=4)
        for index in range(64):
            queue.push(index * 1.25, index)
        assert queue.mode == "calendar"
        assert [queue.pop()[2] for _ in range(64)] == list(range(64))
        assert queue.mode == "heap"  # shrank back below the threshold

    def test_fifo_ties_across_calendar_resize(self):
        queue = CalendarQueue(calendar_threshold=2, bucket_width=1.0)
        for index in range(40):
            queue.push(5.0, index)       # one burst bucket
        for index in range(40, 60):
            queue.push(float(index), index)
        order = [queue.pop()[2] for _ in range(60)]
        assert order == list(range(60))

    def test_degenerate_width_falls_back_to_heap(self):
        """A same-timestamp burst has no usable inter-event gap: the
        width estimate degenerates and the queue stays on the heap."""
        queue = CalendarQueue(calendar_threshold=4)
        for index in range(100):
            queue.push(2.5, index)
        assert queue.mode == "heap"
        assert [queue.pop()[2] for _ in range(100)] == list(range(100))

    def test_cancel_validation_in_both_modes(self):
        for kwargs in ({"calendar_threshold": 1, "bucket_width": 1.0}, {}):
            queue = CalendarQueue(**kwargs)
            first = queue.push(1.0, "a")
            queue.push(2.0, "b")
            queue.cancel(first)
            with pytest.raises(ValueError):
                queue.cancel(first)      # double cancel
            assert queue.pop()[2] == "b"
            with pytest.raises(ValueError):
                queue.cancel(99)         # never issued


# -- ReadyWorklist invariants ------------------------------------------------


def _drain_all(worklist, on_examine=None):
    """Canonical drain loop; returns examined positions in order."""
    examined = []
    while worklist.begin_scan():
        progress = False
        pos = worklist.pop()
        while pos >= 0:
            examined.append(pos)
            if on_examine is not None and on_examine(pos):
                progress = True
            pos = worklist.pop()
        worklist.end_scan()
        if not progress:
            break
    return examined


class TestReadyWorklistInvariants:
    @given(seeds=st.lists(st.integers(0, 15), min_size=1, max_size=40))
    @settings(max_examples=60)
    def test_pending_reflects_exactly_the_queued_positions(self, seeds):
        worklist = ReadyWorklist(16)
        for pos in seeds:
            worklist.seed(pos)
        assert list(worklist.pending()) == sorted(set(seeds))
        assert bool(worklist) == bool(seeds)
        examined = _drain_all(worklist)
        assert examined == sorted(set(seeds))
        assert list(worklist.pending()) == []
        assert not worklist

    @given(
        seeds=st.lists(st.integers(0, 15), min_size=2, max_size=30,
                       unique=True),
        stop_after=st.integers(0, 5),
        extra=st.lists(st.integers(0, 15), max_size=5),
    )
    @settings(max_examples=60)
    def test_suspend_keeps_every_unexamined_candidate(self, seeds,
                                                      stop_after, extra):
        """Mid-pass suspension (core budget exhausted): the suspended
        position and everything not yet examined stay pending; the next
        drain sees them merged with later seeds, in position order."""
        worklist = ReadyWorklist(16)
        for pos in seeds:
            worklist.seed(pos)
        ordered = sorted(set(seeds))
        stop_index = min(stop_after, len(ordered) - 1)
        assert worklist.begin_scan()
        for expected in ordered[: stop_index + 1]:
            assert worklist.pop() == expected
        worklist.suspend(ordered[stop_index])
        kept = ordered[stop_index:]
        assert list(worklist.pending()) == kept
        for pos in extra:
            worklist.seed(pos)
        expected_next = sorted(set(kept) | set(extra))
        assert list(worklist.pending()) == expected_next
        assert _drain_all(worklist) == expected_next

    def test_seed_during_pass_routes_by_cursor(self):
        """Ahead-of-cursor seeds join the current pass, behind-or-equal
        seeds the next pass — the documented tie-break contract."""
        worklist = ReadyWorklist(8)
        worklist.seed(3)
        order = []

        def examine(pos):
            order.append(pos)
            if pos == 3 and order.count(3) == 1:
                worklist.seed(6)  # ahead: same pass
                worklist.seed(1)  # behind: next pass
                worklist.seed(3)  # equal: next pass
                return True
            return False

        _drain_all(worklist, examine)
        assert order == [3, 6, 1, 3]
