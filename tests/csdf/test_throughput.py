"""Tests for self-timed execution (latency & throughput)."""

import pytest

from repro.csdf import (
    CSDFGraph,
    iteration_latency,
    self_timed_execution,
    throughput_vs_cores,
)
from repro.errors import DeadlockError


def pipeline(times=(1.0, 2.0, 1.0)) -> CSDFGraph:
    g = CSDFGraph("pipe")
    names = [f"s{i}" for i in range(len(times))]
    for name, t in zip(names, times):
        g.add_actor(name, exec_time=t)
    for a, b in zip(names, names[1:]):
        g.add_channel(None, a, b, 1, 1)
    return g


class TestSingleIteration:
    def test_latency_is_chain_sum_on_one_core(self):
        assert iteration_latency(pipeline(), cores=1) == 4.0

    def test_latency_unlimited_cores_equals_critical_path(self):
        assert iteration_latency(pipeline()) == 4.0  # chain: no parallelism

    def test_parallel_branches_overlap(self):
        g = CSDFGraph()
        g.add_actor("src", exec_time=1.0)
        for i in range(3):
            g.add_actor(f"w{i}", exec_time=5.0)
            g.add_channel(None, "src", f"w{i}", 1, 1)
        assert iteration_latency(g) == 6.0
        assert iteration_latency(g, cores=1) == 16.0

    def test_multirate_iteration(self, fig1):
        result = self_timed_execution(fig1)
        assert result.firings == 7  # 3 + 2 + 2
        assert result.iterations == 1


class TestPipelining:
    def test_steady_state_period_bounded_by_bottleneck(self):
        g = pipeline((1.0, 3.0, 1.0))
        result = self_timed_execution(g, iterations=6)
        # Bottleneck actor takes 3.0 per iteration: the steady-state
        # period cannot beat it, and pipelining should reach it.
        assert result.iteration_period >= 3.0 - 1e-9
        assert result.iteration_period == pytest.approx(3.0)

    def test_pipelining_beats_serial_iterations(self):
        g = pipeline((2.0, 2.0, 2.0))
        one = self_timed_execution(g, iterations=1).makespan
        many = self_timed_execution(g, iterations=5)
        assert many.makespan < 5 * one  # overlap happened

    def test_iteration_ends_monotone(self):
        result = self_timed_execution(pipeline(), iterations=4)
        ends = result.iteration_ends
        assert len(ends) == 4
        assert all(a < b for a, b in zip(ends, ends[1:]))

    def test_throughput_property(self):
        result = self_timed_execution(pipeline((1.0, 4.0, 1.0)), iterations=5)
        assert result.throughput == pytest.approx(1.0 / result.iteration_period)


class TestCoreBudgets:
    def test_more_cores_never_slower(self, fig1):
        sweep = throughput_vs_cores(fig1, core_budgets=(1, 2, 4), iterations=3)
        m1 = sweep[1].makespan
        m2 = sweep[2].makespan
        m4 = sweep[4].makespan
        assert m2 <= m1 + 1e-9
        assert m4 <= m2 + 1e-9

    def test_single_core_makespan_is_total_work(self):
        g = pipeline((1.0, 1.0, 1.0))
        result = self_timed_execution(g, iterations=2, cores=1)
        assert result.makespan == pytest.approx(6.0)

    def test_peaks_recorded(self, fig1):
        result = self_timed_execution(fig1, iterations=2)
        assert all(v >= 0 for v in result.peaks.values())
        assert result.peaks["e2"] >= 2  # initial tokens counted


class TestConvergedTargetTolerance:
    """Bugfix regression: the converged-target check of
    ``min_buffers_for_full_throughput`` compared the measured period to
    the analytic MCR with an *absolute* ``1e-6`` — at large period
    scales float noise alone fails it, silently leaving the noisy
    simulated estimate as the search target.  The check is now
    relative to the period scale; both branches are exercised at
    scales 1e0 and 1e6."""

    def scaled_pipeline(self, scale: float) -> CSDFGraph:
        g = CSDFGraph(f"scaled_{scale:g}")
        g.add_actor("src", exec_time=1.0 * scale)
        g.add_actor("mid", exec_time=3.0 * scale)
        g.add_actor("snk", exec_time=1.0 * scale)
        g.add_channel("a", "src", "mid", 1, 1)
        g.add_channel("b", "mid", "snk", 1, 1)
        return g

    @pytest.mark.parametrize("scale", (1.0, 1e6))
    def test_converged_run_adopts_the_analytic_mcr(self, scale):
        from repro.csdf import max_cycle_ratio, min_buffers_for_full_throughput

        g = self.scaled_pipeline(scale)
        stats: dict = {}
        caps = min_buffers_for_full_throughput(g, iterations=8, stats=stats)
        assert stats["target_is_analytic"], scale
        assert stats["target"] == max_cycle_ratio(g, None)
        # The sized buffers sustain the analytic period at this scale.
        result = self_timed_execution(g, iterations=8, capacities=caps)
        from repro.csdf.throughput import _steady_period
        assert _steady_period(result) == pytest.approx(
            stats["target"], rel=1e-12)

    def test_scaled_search_returns_the_unscaled_capacities(self):
        """Scaling every exec time by 1e6 changes no token dynamics,
        so the minimal capacities must be identical — which requires
        the *probe acceptance* (not just the target check) to judge
        periods relative to their scale."""
        from repro.csdf import min_buffers_for_full_throughput

        base = min_buffers_for_full_throughput(
            self.scaled_pipeline(1.0), iterations=8)
        scaled = min_buffers_for_full_throughput(
            self.scaled_pipeline(1e6), iterations=8)
        assert scaled == base

    @pytest.mark.parametrize("scale", (1.0, 1e6))
    def test_unconverged_run_keeps_the_measured_target(self, scale):
        """A run whose steady window still lags the MCR at the probe
        horizon must keep the measured target — the relative tolerance
        must not *over*-accept either."""
        from repro.csdf import max_cycle_ratio, min_buffers_for_full_throughput

        # An 8-actor ring with all 3 tokens clumped on one edge: the
        # MCR is 8/3, but the wavefront needs many iterations to
        # spread out, so the 4-iteration steady window measures 3.5.
        g = CSDFGraph(f"ring_{scale:g}")
        for i in range(8):
            g.add_actor(f"a{i}", exec_time=1.0 * scale)
        for i in range(8):
            g.add_channel(f"e{i}", f"a{i}", f"a{(i + 1) % 8}",
                          initial_tokens=3 if i == 7 else 0)
        stats: dict = {}
        min_buffers_for_full_throughput(g, iterations=4, stats=stats)
        assert not stats["target_is_analytic"]
        assert stats["target"] == pytest.approx(3.5 * scale, rel=1e-12)
        assert stats["target"] > max_cycle_ratio(g, None)


class TestErrors:
    def test_deadlock_detected(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("fwd", "a", "b", 1, 1)
        g.add_channel("back", "b", "a", 1, 1)
        with pytest.raises(DeadlockError):
            self_timed_execution(g)

    def test_zero_iterations_rejected(self, fig1):
        with pytest.raises(ValueError):
            self_timed_execution(fig1, iterations=0)

    def test_parametric_needs_bindings(self):
        from repro.symbolic import Poly

        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("e", "a", "b", Poly.var("p"), 1)
        result = self_timed_execution(g, bindings={"p": 3})
        assert result.firings == 4


class TestWarmStartedBufferSearch:
    """The symbolic-bound warm start of ``min_buffers_for_full_throughput``
    must be a pure accelerator: identical capacities to the cold
    search, fewer probe executions where the bound bites."""

    def graphs(self):
        from repro.apps.ofdm import bindings_for, build_ofdm_tpdf
        from repro.tpdf import fig2_graph

        imbalanced = CSDFGraph("imbalanced")
        imbalanced.add_actor("src", exec_time=1)
        imbalanced.add_actor("mid", exec_time=2)
        imbalanced.add_actor("snk", exec_time=16)
        imbalanced.add_channel("a", "src", "mid", production=8, consumption=8)
        imbalanced.add_channel("b", "mid", "snk", production=8, consumption=8)
        return [
            (fig2_graph().as_csdf(), {"p": 4}),
            (build_ofdm_tpdf().as_csdf(), bindings_for(2, 16, 4, 4)),
            (imbalanced, None),
        ]

    def test_warm_equals_cold(self):
        from repro.csdf import min_buffers_for_full_throughput

        for graph, bindings in self.graphs():
            warm = min_buffers_for_full_throughput(
                graph, bindings, iterations=5)
            cold = min_buffers_for_full_throughput(
                graph, bindings, iterations=5, warm_start=False)
            assert warm == cold, graph.name

    def test_warm_start_saves_probes_on_imbalanced_pipeline(self):
        """A fast producer runs iterations ahead, so the unconstrained
        peak (the cold search ceiling) far exceeds one iteration's
        traffic (the symbolic bound)."""
        from repro.csdf import min_buffers_for_full_throughput

        graph, bindings = self.graphs()[-1]
        warm_stats, cold_stats = {}, {}
        warm = min_buffers_for_full_throughput(
            graph, bindings, iterations=8, stats=warm_stats)
        cold = min_buffers_for_full_throughput(
            graph, bindings, iterations=8, warm_start=False, stats=cold_stats)
        assert warm == cold
        assert warm_stats["probes"] < cold_stats["probes"]
        assert warm_stats["probes_saved"] > 0

    def test_result_still_sustains_full_throughput(self):
        from repro.csdf import min_buffers_for_full_throughput

        graph, bindings = self.graphs()[-1]
        caps = min_buffers_for_full_throughput(graph, bindings, iterations=8)
        unconstrained = self_timed_execution(graph, bindings, iterations=8)
        constrained = self_timed_execution(
            graph, bindings, iterations=8, capacities=caps)
        assert constrained.iteration_period == pytest.approx(
            unconstrained.iteration_period, abs=1e-9)

    def test_failed_warm_probe_narrows_the_search(self):
        """Bugfix regression: a *failing* warm probe used to be
        discarded, leaving the search range at ``0..peak``.  The OFDM
        demodulator has channels whose symbolic bound (one iteration's
        traffic) is below the pipelining slack the steady state needs,
        so its warm probes genuinely fail — the fix turns each failure
        into a floor (``lo = warm + 1``), recorded by the
        ``warm_failed`` / ``probes_saved`` counters, with capacities
        still identical to the cold search."""
        from repro.apps.ofdm import bindings_for, build_ofdm_tpdf
        from repro.csdf import min_buffers_for_full_throughput

        graph = build_ofdm_tpdf().as_csdf()
        bindings = bindings_for(2, 16, 4, 4)
        warm_stats, cold_stats = {}, {}
        warm = min_buffers_for_full_throughput(
            graph, bindings, iterations=5, stats=warm_stats)
        cold = min_buffers_for_full_throughput(
            graph, bindings, iterations=5, warm_start=False, stats=cold_stats)
        assert warm == cold
        assert warm_stats["warm_failed"] > 0
        assert warm_stats["probes_saved"] > 0
        # The narrowing pays for the failed probes: the warm search
        # never does worse than the cold one overall.
        assert warm_stats["probes"] <= cold_stats["probes"]

    def test_warm_bounds_are_clamped_to_one(self):
        """Bugfix regression: a symbolic bound can evaluate to 0 at a
        degenerate binding (no initial tokens, zero traffic).  An
        unclamped warm bound of 0 would make the first probe a
        capacity-0 execution — guaranteed deadlock on any channel that
        carries traffic — so bounds are clamped to >= 1."""
        from repro.csdf.throughput import _symbolic_warm_bounds
        from repro.symbolic import Poly

        p = Poly.var("p")
        g = CSDFGraph("degenerate")
        g.add_actor("a", exec_time=1.0)
        g.add_actor("b", exec_time=1.0)
        # At p = 0 this channel's rates — and its symbolic bound p —
        # evaluate to 0.
        g.add_channel("zero", "a", "b", production=p, consumption=p)
        g.add_channel("unit", "a", "b", production=1, consumption=1)
        bounds = _symbolic_warm_bounds(g, {"p": 0})
        assert bounds["zero"] == 1
        assert all(bound >= 1 for bound in bounds.values())

    def test_short_horizon_request_is_floored_to_a_steady_window(self):
        """Bugfix regression: ``iterations=2`` used to leave both the
        target and every probe verdict on the aliasing-prone
        last-two-ends delta (only two iteration ends — no steady
        window).  The search now floors its executed iterations, so a
        short request returns the same sound capacities as the default
        horizon, and the result still sustains full throughput."""
        from repro.csdf import min_buffers_for_full_throughput

        graph, bindings = self.graphs()[-1]
        stats: dict = {}
        short = min_buffers_for_full_throughput(
            graph, bindings, iterations=2, stats=stats)
        assert stats["iterations"] >= 4  # the floor, not the request
        floored = min_buffers_for_full_throughput(
            graph, bindings, iterations=stats["iterations"])
        assert short == floored
        unconstrained = self_timed_execution(graph, bindings, iterations=12)
        constrained = self_timed_execution(
            graph, bindings, iterations=12, capacities=short)
        assert constrained.iteration_period == pytest.approx(
            unconstrained.iteration_period, abs=1e-9)

    def test_steady_period_short_horizon_is_conservative(self):
        """Direct ``_steady_period`` guard: two iteration ends return
        the max per-iteration delta (over-estimates reject capacities,
        never falsely accept them), not the bare last delta."""
        from repro.csdf.throughput import _steady_period
        from repro.csdf import TimedResult

        # Fill-dominated first iteration (5.0), fast second delta (1.0):
        # the old estimator reported 1.0, the guard reports 5.0.
        two = TimedResult(makespan=6.0, iterations=2, firings=4,
                          iteration_ends=[5.0, 6.0], peaks={})
        assert _steady_period(two) == 5.0
        # Slow second delta dominates symmetrically.
        slow = TimedResult(makespan=9.0, iterations=2, firings=4,
                           iteration_ends=[2.0, 9.0], peaks={})
        assert _steady_period(slow) == 7.0
        # Single iteration keeps the makespan semantics.
        one = TimedResult(makespan=3.0, iterations=1, firings=2,
                          iteration_ends=[3.0], peaks={})
        assert _steady_period(one) == 3.0

    def test_steady_window_period_rejects_aliasing_capacity(self):
        """Bugfix regression: the last-two-ends delta aliases on
        capacity-bounded steady states whose iteration deltas cycle.
        On the OFDM graph, ``e_con_tran`` at capacity 2 runs a
        ``1, 1, 3`` delta pattern (true period 5/3) that the old
        estimator measured as 1.0 at the default horizon — a false
        acceptance.  The steady-window estimate rejects it."""
        from repro.csdf.throughput import _steady_period
        from repro.apps.ofdm import bindings_for, build_ofdm_tpdf
        from repro.csdf import min_buffers_for_full_throughput

        graph = build_ofdm_tpdf().as_csdf()
        bindings = bindings_for(2, 16, 4, 4)
        caps = min_buffers_for_full_throughput(graph, bindings, iterations=5)
        # The accepted sizing really sustains the target over a long
        # horizon (mean period == the unconstrained one), which the
        # falsely accepted smaller capacity did not.
        long_constrained = self_timed_execution(
            graph, bindings, iterations=16, capacities=caps)
        long_free = self_timed_execution(graph, bindings, iterations=16)
        assert _steady_period(long_constrained) == pytest.approx(
            _steady_period(long_free), abs=1e-9)
