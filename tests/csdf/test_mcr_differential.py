"""Differential harness for the throughput-analysis core.

Cross-validates three independent computations of the steady-state
iteration period on hundreds of random graphs and a hand-built corpus:

1. **Howard's policy iteration** (`max_cycle_ratio`) — the fast path;
2. **parametric binary search** (`mcr_reference`) — the legacy solver,
   kept precisely to serve as this oracle;
3. **converged self-timed execution** — the timed event-driven
   simulation, whose steady period must equal the MCR (Reiter 1968).

The third leg is what makes the harness sharp: it already caught a
real modeling bug (iteration-crossing expansion channels with rate
``c > 1`` must contribute dependency distance ``tokens / c``, not the
raw token count).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import analysis_cache
from repro.csdf import CSDFGraph, max_cycle_ratio, self_timed_execution
from repro.csdf.mcr import mcr_reference
from repro.errors import AnalysisError
from repro.tpdf import random_consistent_graph

#: The reference search stops at 1e-6; allow both solvers that slack.
TOL = 2e-6

#: (actors, extra_edges, back_edges) shapes of the random corpus.
SHAPES = (
    (3, 1, 0),
    (4, 2, 1),
    (5, 2, 0),
    (5, 3, 2),
    (6, 3, 1),
    (6, 3, 2),
    (7, 3, 0),
    (8, 4, 2),
)
SEEDS_PER_SHAPE = 25  # 8 shapes x 25 seeds = 200 random graphs


def _random_csdf(n: int, extra: int, cycles: int, seed: int) -> CSDFGraph:
    return random_consistent_graph(
        n, extra_edges=extra, n_cycles=cycles, seed=seed, with_control=False
    ).as_csdf()


class TestHowardVsReference:
    """Leg 1 vs leg 2 over the full 200-graph random corpus."""

    @pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"n{s[0]}e{s[1]}c{s[2]}")
    def test_agree_on_random_corpus(self, shape):
        n, extra, cycles = shape
        for seed in range(SEEDS_PER_SHAPE):
            graph = _random_csdf(n, extra, cycles, seed)
            fast = max_cycle_ratio(graph)
            oracle = mcr_reference(graph)
            assert fast == pytest.approx(oracle, abs=TOL), (
                f"Howard {fast} != reference {oracle} on shape {shape} seed {seed}"
            )

    @given(
        seed=st.integers(0, 100_000),
        n=st.integers(3, 8),
        cycles=st.integers(0, 2),
    )
    @settings(max_examples=50, deadline=None)
    def test_agree_property(self, seed, n, cycles):
        graph = _random_csdf(n, n // 2, cycles, seed)
        assert max_cycle_ratio(graph) == pytest.approx(mcr_reference(graph), abs=TOL)


class TestAgainstSelfTimedExecution:
    """Leg 3: the converged event-driven period equals the MCR."""

    @pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"n{s[0]}e{s[1]}c{s[2]}")
    def test_period_matches_mcr(self, shape):
        n, extra, cycles = shape
        for seed in range(10):
            graph = _random_csdf(n, extra, cycles, seed)
            mcr = max_cycle_ratio(graph)
            period = self_timed_execution(graph, iterations=15).iteration_period
            assert period == pytest.approx(mcr, abs=1e-9), (
                f"self-timed period {period} != MCR {mcr} on shape {shape} seed {seed}"
            )


class TestHandBuiltCorpus:
    def test_fig1(self, fig1):
        assert max_cycle_ratio(fig1) == pytest.approx(3.0, abs=TOL)
        assert mcr_reference(fig1) == pytest.approx(3.0, abs=TOL)

    def test_bottleneck_actor_dominates(self):
        """An acyclic pipeline is bounded by its slowest actor (the
        per-actor serialization cycle)."""
        g = CSDFGraph("pipe")
        g.add_actor("a", exec_time=1.0)
        g.add_actor("b", exec_time=7.0)
        g.add_actor("c", exec_time=2.0)
        g.add_channel("ab", "a", "b")
        g.add_channel("bc", "b", "c")
        assert max_cycle_ratio(g) == pytest.approx(7.0, abs=TOL)

    def test_multirate_backedge_distance(self):
        """Regression for the dependency-distance bug: a rate-2 back
        edge with 2 initial tokens is ONE iteration of slack (2 tokens
        / 2 per firing), not two — the cycle a->b->a bounds the period
        at exec(a) + exec(b) = 2, and the simulation confirms it."""
        g = CSDFGraph("mr")
        g.add_actor("a", exec_time=1.0)
        g.add_actor("b", exec_time=1.0)
        g.add_channel("fwd", "a", "b", production=2, consumption=2)
        g.add_channel("back", "b", "a", production=2, consumption=2,
                      initial_tokens=2)
        mcr = max_cycle_ratio(g)
        assert mcr == pytest.approx(2.0, abs=TOL)
        period = self_timed_execution(g, iterations=12).iteration_period
        assert period == pytest.approx(mcr, abs=1e-9)

    def test_cycle_with_more_slack_is_faster(self):
        """Two tokens on the back edge let iterations overlap: the
        cycle ratio halves."""
        g = CSDFGraph("slack2")
        g.add_actor("a", exec_time=1.0)
        g.add_actor("b", exec_time=1.0)
        g.add_channel("fwd", "a", "b")
        g.add_channel("back", "b", "a", initial_tokens=2)
        assert max_cycle_ratio(g) == pytest.approx(1.0, abs=TOL)

    def test_deadlock_raises_in_both_solvers(self):
        g = CSDFGraph("dead")
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("ab", "a", "b")
        g.add_channel("ba", "b", "a")
        with pytest.raises(AnalysisError):
            max_cycle_ratio(g)
        with pytest.raises(AnalysisError):
            mcr_reference(g)

    def test_empty_graph(self):
        assert max_cycle_ratio(CSDFGraph("empty")) == 0.0

    def test_csdf_phases(self):
        """Cyclo-static rates: the paper's Fig. 1 shape with slow third
        phase — solvers agree and match the simulation."""
        g = CSDFGraph("phased")
        g.add_actor("a", exec_time=[1.0, 3.0])
        g.add_actor("b", exec_time=2.0)
        g.add_channel("ab", "a", "b", production=[1, 2], consumption=3)
        g.add_channel("ba", "b", "a", production=3, consumption=[1, 2],
                      initial_tokens=3)
        fast, oracle = max_cycle_ratio(g), mcr_reference(g)
        assert fast == pytest.approx(oracle, abs=TOL)
        period = self_timed_execution(g, iterations=15).iteration_period
        assert period == pytest.approx(fast, abs=1e-9)


class TestCaching:
    def test_mcr_is_memoized_per_version(self, fig1):
        first = max_cycle_ratio(fig1)
        assert ("mcr", ()) in analysis_cache(fig1)
        assert max_cycle_ratio(fig1) == first

    def test_mutation_invalidates(self):
        g = CSDFGraph("grow")
        g.add_actor("a", exec_time=2.0)
        g.add_channel("loop", "a", "a", initial_tokens=1)
        assert max_cycle_ratio(g) == pytest.approx(2.0, abs=TOL)
        g.add_actor("b", exec_time=5.0)
        g.add_channel("ab", "a", "b")
        g.add_channel("ba", "b", "a", initial_tokens=1)
        assert max_cycle_ratio(g) == pytest.approx(7.0, abs=TOL)
