"""Tests for CSDF graph construction and structure."""

import pytest

from repro.csdf import Actor, Channel, CSDFGraph, chain
from repro.errors import GraphConstructionError
from repro.symbolic import Poly


class TestActor:
    def test_scalar_exec_time(self):
        actor = Actor("a", exec_time=2.5)
        assert actor.exec_time(0) == 2.5
        assert actor.exec_time(7) == 2.5

    def test_phase_exec_times(self):
        actor = Actor("a", exec_time=[1.0, 3.0])
        assert actor.exec_time(0) == 1.0
        assert actor.exec_time(3) == 3.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Actor("a", exec_time=-1.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Actor("")


class TestChannel:
    def test_negative_initial_tokens_rejected(self):
        with pytest.raises(ValueError):
            Channel("e", "a", "b", 1, 1, initial_tokens=-1)

    def test_selfloop_detection(self):
        assert Channel("e", "a", "a", 1, 1).is_selfloop()
        assert not Channel("e", "a", "b", 1, 1).is_selfloop()


class TestGraphConstruction:
    def test_duplicate_actor_rejected(self):
        g = CSDFGraph()
        g.add_actor("a")
        with pytest.raises(GraphConstructionError):
            g.add_actor("a")

    def test_duplicate_channel_rejected(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("e", "a", "b")
        with pytest.raises(GraphConstructionError):
            g.add_channel("e", "a", "b")

    def test_unknown_endpoint_rejected(self):
        g = CSDFGraph()
        g.add_actor("a")
        with pytest.raises(GraphConstructionError):
            g.add_channel("e", "a", "ghost")

    def test_autonamed_channels(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        c1 = g.add_channel(None, "a", "b")
        c2 = g.add_channel(None, "a", "b")
        assert c1.name != c2.name


class TestDerivedStructure:
    def test_tau_is_lcm(self, fig1):
        assert fig1.tau("a1") == 3  # [1,0,1] and [1,1,2]
        assert fig1.tau("a2") == 2
        assert fig1.tau("a3") == 2

    def test_tau_includes_exec_times(self):
        g = CSDFGraph()
        g.add_actor("a", exec_time=[1.0, 2.0, 3.0])
        g.add_actor("b")
        g.add_channel("e", "a", "b", [1, 1], [1])
        assert g.tau("a") == 6

    def test_in_out_channels(self, fig1):
        assert [c.name for c in fig1.out_channels("a1")] == ["e1"]
        assert [c.name for c in fig1.in_channels("a1")] == ["e3"]

    def test_parameters_empty_for_concrete(self, fig1):
        assert fig1.parameters() == set()
        assert not fig1.is_parametric()

    def test_parameters_collected(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("e", "a", "b", Poly.var("p"), 1)
        assert g.parameters() == {"p"}

    def test_connectivity(self, fig1):
        assert fig1.is_connected()
        g = CSDFGraph()
        g.add_actor("x")
        g.add_actor("y")
        assert not g.is_connected()

    def test_directed_cycles(self, fig1):
        cycles = fig1.directed_cycles()
        assert any(set(c) == {"a1", "a2", "a3"} for c in cycles)

    def test_networkx_view(self, fig1):
        nxg = fig1.to_networkx()
        assert set(nxg.nodes) == {"a1", "a2", "a3"}
        assert nxg.number_of_edges() == 3


class TestBindAndDescribe:
    def test_bind_materializes_rates(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("e", "a", "b", Poly.var("p"), 1)
        bound = g.bind({"p": 5})
        assert bound.channel("e").production.as_ints() == (5,)

    def test_bind_preserves_structure(self, fig1):
        bound = fig1.bind({})
        assert set(bound.actors) == set(fig1.actors)
        assert bound.channel("e2").initial_tokens == 2

    def test_describe_mentions_channels(self, fig1):
        text = fig1.describe()
        assert "e1" in text and "init=2" in text


class TestChainBuilder:
    def test_default_rates(self):
        g = chain("c", ["x", "y", "z"])
        assert len(g.channels) == 2

    def test_custom_rates(self):
        g = chain("c", ["x", "y"], rates=[(2, 3)])
        ch = next(iter(g.channels.values()))
        assert ch.production.as_ints() == (2,)
        assert ch.consumption.as_ints() == (3,)

    def test_rate_count_mismatch(self):
        with pytest.raises(GraphConstructionError):
            chain("c", ["x", "y", "z"], rates=[(1, 1)])
