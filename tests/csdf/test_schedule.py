"""Tests for PASS construction and validation."""

import pytest

from repro.csdf import (
    CSDFGraph,
    SequentialSchedule,
    find_sequential_schedule,
    is_live,
    validate_schedule,
)
from repro.errors import DeadlockError
from repro.symbolic import Poly


class TestSequentialSchedule:
    def test_runs_grouping(self):
        s = SequentialSchedule(["a", "a", "b", "a"])
        assert s.runs() == [("a", 2), ("b", 1), ("a", 1)]

    def test_str_rendering(self):
        s = SequentialSchedule(["a", "a", "b"])
        assert str(s) == "(a)^2 b"

    def test_counts(self):
        s = SequentialSchedule(["a", "b", "a"])
        assert s.counts() == {"a": 2, "b": 1}

    def test_equality_with_sequences(self):
        assert SequentialSchedule(["a", "b"]) == ["a", "b"]
        assert SequentialSchedule(["a"]) == SequentialSchedule(["a"])


class TestFig1Schedule:
    def test_grouped_matches_paper(self, fig1):
        s = find_sequential_schedule(fig1)
        assert str(s) == "(a3)^2 (a1)^3 (a2)^2"

    def test_round_robin_also_valid(self, fig1):
        s = find_sequential_schedule(fig1, policy="round_robin")
        validate_schedule(fig1, s)

    def test_validation_passes(self, fig1):
        s = find_sequential_schedule(fig1)
        state = validate_schedule(fig1, s)
        assert state.matches_initial_state()

    def test_is_live(self, fig1):
        assert is_live(fig1)


class TestDeadlocks:
    def build_cycle(self, tokens: int) -> CSDFGraph:
        g = CSDFGraph("cycle")
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("fwd", "a", "b", 1, 1)
        g.add_channel("back", "b", "a", 1, 1, initial_tokens=tokens)
        return g

    def test_tokenless_cycle_deadlocks(self):
        g = self.build_cycle(0)
        with pytest.raises(DeadlockError) as excinfo:
            find_sequential_schedule(g)
        assert set(excinfo.value.blocked) == {"a", "b"}
        assert excinfo.value.partial_schedule == []

    def test_seeded_cycle_lives(self):
        g = self.build_cycle(1)
        s = find_sequential_schedule(g)
        validate_schedule(g, s)

    def test_is_live_false(self):
        assert not is_live(self.build_cycle(0))

    def test_partial_schedule_reported(self):
        g = CSDFGraph()
        g.add_actor("src")
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("e0", "src", "a", 1, 1)
        g.add_channel("fwd", "a", "b", 1, 2)   # b needs 2, a gives 1/firing
        g.add_channel("back", "b", "a", 2, 1)  # but a needs b first
        with pytest.raises(DeadlockError) as excinfo:
            find_sequential_schedule(g)
        assert "src" in excinfo.value.partial_schedule


class TestValidation:
    def test_wrong_counts_rejected(self, fig1):
        with pytest.raises(DeadlockError):
            validate_schedule(fig1, ["a3", "a1", "a2"])

    def test_inadmissible_order_rejected(self, fig1):
        bad = ["a1", "a1", "a1", "a2", "a2", "a3", "a3"]
        with pytest.raises(DeadlockError):
            validate_schedule(fig1, bad)

    def test_non_iteration_replay_allowed(self, fig1):
        state = validate_schedule(fig1, ["a3"], require_iteration=False)
        assert state.fired["a3"] == 1

    def test_unknown_policy(self, fig1):
        with pytest.raises(ValueError):
            find_sequential_schedule(fig1, policy="magic")


class TestCustomRepetitions:
    def test_double_iteration(self, fig1):
        targets = {"a1": 6, "a2": 4, "a3": 4}
        s = find_sequential_schedule(fig1, repetitions=targets)
        assert s.counts() == targets
        state = validate_schedule(fig1, s, require_iteration=False)
        assert state.matches_initial_state()

    def test_parametric_graph_bound(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("e", "a", "b", Poly.var("p"), 1)
        s = find_sequential_schedule(g, bindings={"p": 3})
        assert s.counts() == {"a": 1, "b": 3}

    def test_actor_order_respected(self, fig1):
        s = find_sequential_schedule(fig1, actor_order=["a3", "a2", "a1"])
        validate_schedule(fig1, s)
