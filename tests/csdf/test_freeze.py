"""Freeze flag on memoized analysis products.

``as_csdf()`` and ``expand_to_hsdf()`` memoize their result per graph
version and hand the same object to every caller; the cache contract
documents the shared objects as frozen.  These tests pin the
enforcement: structural mutation of a memoized product raises instead
of silently corrupting other callers' results.
"""

import pytest

from repro.csdf import CSDFGraph, expand_to_hsdf
from repro.errors import GraphConstructionError
from repro.tpdf import random_consistent_graph


@pytest.fixture
def tpdf():
    return random_consistent_graph(4, extra_edges=1, seed=0)


class TestFreezeFlag:
    def test_fresh_graph_is_mutable(self):
        g = CSDFGraph("fresh")
        assert not g.frozen
        g.add_actor("a")  # no raise

    def test_freeze_rejects_add_actor_and_add_channel(self):
        g = CSDFGraph("g")
        g.add_actor("a")
        g.add_actor("b")
        g.freeze()
        assert g.frozen
        with pytest.raises(GraphConstructionError, match="frozen"):
            g.add_actor("c")
        with pytest.raises(GraphConstructionError, match="frozen"):
            g.add_channel("ab", "a", "b")

    def test_freeze_is_idempotent_and_chains(self):
        g = CSDFGraph("g")
        assert g.freeze() is g
        assert g.freeze() is g


class TestMemoizedProductsAreFrozen:
    def test_as_csdf_result_rejects_mutation(self, tpdf):
        view = tpdf.as_csdf()
        assert view.frozen
        with pytest.raises(GraphConstructionError, match="frozen"):
            view.add_actor("intruder")
        with pytest.raises(GraphConstructionError, match="frozen"):
            view.add_channel(None, "k0", "k1")

    def test_expand_to_hsdf_result_rejects_mutation(self, fig1):
        hsdf = expand_to_hsdf(fig1)
        assert hsdf.frozen
        with pytest.raises(GraphConstructionError, match="frozen"):
            hsdf.add_actor("intruder")

    def test_failed_mutation_leaves_product_intact(self, tpdf):
        from repro.csdf.analysis import repetition_vector

        view = tpdf.as_csdf()
        before = dict(repetition_vector(view))
        names = set(view.actors)
        with pytest.raises(GraphConstructionError):
            view.add_actor("intruder")
        assert set(view.actors) == names
        assert dict(repetition_vector(view)) == before
        assert tpdf.as_csdf() is view, "memoization undisturbed"

    def test_bind_of_frozen_graph_is_mutable(self, tpdf):
        bound = tpdf.as_csdf().bind({})
        assert not bound.frozen
        bound.add_actor("extra")  # a derived copy is the mutation path

    def test_analysis_caches_still_work_on_frozen_graphs(self, tpdf):
        from repro.cache import analysis_cache
        from repro.csdf import max_cycle_ratio

        view = tpdf.as_csdf()
        value = max_cycle_ratio(view)
        assert ("mcr", ()) in analysis_cache(view)
        assert max_cycle_ratio(view) == value

    def test_parent_graph_stays_mutable(self, tpdf):
        tpdf.as_csdf()
        kernel = tpdf.add_kernel("late")  # parent is not frozen
        assert kernel.name in tpdf.kernels

    def test_channel_field_edits_on_frozen_graph_raise(self, tpdf):
        """Freeze covers channel-level mutation too: rate/token edits
        on a shared memoized product must not silently corrupt it."""
        view = tpdf.as_csdf()
        channel = next(iter(view.channels.values()))
        before = (channel.initial_tokens, channel.production)
        with pytest.raises(GraphConstructionError, match="frozen"):
            channel.initial_tokens = channel.initial_tokens + 1
        with pytest.raises(GraphConstructionError, match="frozen"):
            channel.production = [2, 2]
        with pytest.raises(GraphConstructionError, match="frozen"):
            channel.consumption = 3
        assert (channel.initial_tokens, channel.production) == before

    def test_channel_field_edit_on_live_graph_invalidates(self):
        from repro.cache import analysis_cache
        from repro.csdf.analysis import repetition_vector

        g = CSDFGraph("live")
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("ab", "a", "b", production=1, consumption=2)
        assert str(repetition_vector(g)["a"]) == "2"
        g.channel("ab").production = 2
        assert not analysis_cache(g)
        assert str(repetition_vector(g)["a"]) == "1"
