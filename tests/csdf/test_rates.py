"""Tests for cyclic rate sequences."""

import pytest

from repro.csdf import RateSequence
from repro.errors import SymbolicRateError
from repro.symbolic import Poly

P = Poly.var("p")


class TestConstruction:
    def test_of_scalar(self):
        seq = RateSequence.of(3)
        assert len(seq) == 1
        assert seq.rate(0) == Poly.const(3)

    def test_of_list(self):
        seq = RateSequence.of([1, 0, 2])
        assert len(seq) == 3

    def test_of_param_poly(self):
        seq = RateSequence.of(2 * P)
        assert seq.rate(5) == 2 * P

    def test_of_passthrough(self):
        seq = RateSequence.of([1, 1])
        assert RateSequence.of(seq) is seq

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RateSequence([])

    def test_possibly_negative_rejected(self):
        with pytest.raises(ValueError):
            RateSequence([P - 1])


class TestCyclicIndexing:
    def test_rate_wraps(self):
        seq = RateSequence([1, 0, 2])
        assert [int(seq.rate(i).const_value()) for i in range(6)] == [1, 0, 2, 1, 0, 2]

    def test_getitem_wraps(self):
        seq = RateSequence([5, 7])
        assert seq[3] == Poly.const(7)

    def test_uniform_and_constant(self):
        assert RateSequence([2, 2, 2]).is_uniform()
        assert not RateSequence([1, 2]).is_uniform()
        assert RateSequence([1, 2]).is_constant()
        assert not RateSequence([P]).is_constant()


class TestCumulative:
    def test_cycle_total(self):
        assert RateSequence([1, 0, 2]).cycle_total() == Poly.const(3)

    def test_cumulative_partial(self):
        seq = RateSequence([1, 0, 2])
        assert [int(seq.cumulative(i).const_value()) for i in range(7)] == [
            0, 1, 1, 3, 4, 4, 6,
        ]

    def test_cumulative_negative_rejected(self):
        with pytest.raises(ValueError):
            RateSequence([1]).cumulative(-1)

    def test_cumulative_parametric(self):
        seq = RateSequence([P, P])
        assert seq.cumulative(3) == 3 * P


class TestCumulativeSymbolic:
    def test_constant_count(self):
        seq = RateSequence([1, 0, 2])
        assert seq.cumulative_symbolic(Poly.const(4)) == Poly.const(4)

    def test_uniform_sequence(self):
        seq = RateSequence([2, 2])
        assert seq.cumulative_symbolic(P) == 2 * P

    def test_cycle_multiple(self):
        seq = RateSequence([0, 2])
        assert seq.cumulative_symbolic(2 * P) == 2 * P

    def test_undecidable_raises(self):
        seq = RateSequence([0, 2])
        with pytest.raises(SymbolicRateError):
            seq.cumulative_symbolic(P)  # parity of p unknown

    def test_fractional_count_rejected(self):
        from fractions import Fraction

        seq = RateSequence([1])
        with pytest.raises(SymbolicRateError):
            seq.cumulative_symbolic(Poly.const(Fraction(1, 2)))


class TestBinding:
    def test_bind_substitutes(self):
        seq = RateSequence([P, 2 * P]).bind({"p": 3})
        assert seq.as_ints() == (3, 6)

    def test_as_ints_requires_bindings(self):
        with pytest.raises(KeyError):
            RateSequence([P]).as_ints()

    def test_variables(self):
        assert RateSequence([P, 1]).variables() == {"p"}

    def test_equality_and_hash(self):
        assert RateSequence([1, 2]) == RateSequence([1, 2])
        assert hash(RateSequence([1, 2])) == hash(RateSequence([1, 2]))
        assert RateSequence([1, 2]) != RateSequence([2, 1])

    def test_str(self):
        assert str(RateSequence([1, 0, 2])) == "[1,0,2]"
