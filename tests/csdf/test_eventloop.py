"""Unit tests for the shared event-loop core (EventQueue +
ReadyWorklist) — the tie-break contract both executors build on."""

import pytest

from repro.csdf.eventloop import EventQueue, ReadyWorklist


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(3.0, "c")
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert [q.pop()[2] for _ in range(3)] == ["a", "b", "c"]

    def test_equal_times_pop_in_push_order(self):
        """The FIFO tie-break the legacy (time, seq) heap tuples had —
        simultaneous completions must resolve identically."""
        q = EventQueue()
        for index in range(10):
            q.push(5.0, index)
        assert [q.pop()[2] for _ in range(10)] == list(range(10))

    def test_cancel_is_lazy_and_skipped_on_pop(self):
        q = EventQueue()
        keep = q.push(1.0, "keep")
        drop = q.push(0.5, "drop")
        assert len(q) == 2
        q.cancel(drop)
        assert len(q) == 1
        time, seq, payload = q.pop()
        assert (time, payload) == (1.0, "keep")
        assert seq == keep
        assert not q

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_cancel_after_pop_raises_and_keeps_len_exact(self):
        """Bugfix regression: cancelling an already-popped seq used to
        leave a phantom in the dead set, making ``__len__`` under-count
        and ``__bool__`` misreport.  It now raises, and the accounting
        stays exact."""
        q = EventQueue()
        first = q.push(1.0, "a")
        q.push(2.0, "b")
        assert q.pop()[2] == "a"
        with pytest.raises(ValueError):
            q.cancel(first)
        assert len(q) == 1
        assert bool(q)
        assert q.pop()[2] == "b"
        assert len(q) == 0
        assert not q

    def test_double_cancel_raises(self):
        q = EventQueue()
        seq = q.push(1.0, "a")
        q.push(2.0, "b")
        q.cancel(seq)
        with pytest.raises(ValueError):
            q.cancel(seq)
        assert len(q) == 1
        assert q.pop()[2] == "b"

    def test_cancel_never_issued_raises(self):
        q = EventQueue()
        q.push(1.0, "a")
        with pytest.raises(ValueError):
            q.cancel(99)
        assert len(q) == 1

    def test_cancelled_queue_is_falsy_and_pop_raises(self):
        """A queue whose only entries were cancelled must report empty
        (the phantom bug could flip this either way)."""
        q = EventQueue()
        seq = q.push(1.0, "a")
        q.cancel(seq)
        assert len(q) == 0
        assert not q
        with pytest.raises(IndexError):
            q.pop()


def drain_positions(wl, decide):
    """Drive a drain with the canonical pass loop; ``decide(pos)``
    returns True when the position 'starts' (progress)."""
    visited = []
    while wl.begin_scan():
        progress = False
        pos = wl.pop()
        while pos >= 0:
            visited.append(pos)
            if decide(pos):
                progress = True
            pos = wl.pop()
        wl.end_scan()
        if not progress:
            break
    return visited


class TestReadyWorklist:
    def test_positions_pop_in_increasing_order(self):
        wl = ReadyWorklist(8)
        for pos in (5, 1, 7, 3):
            wl.seed(pos)
        assert drain_positions(wl, lambda pos: False) == [1, 3, 5, 7]

    def test_seed_is_idempotent_per_pass(self):
        wl = ReadyWorklist(4)
        wl.seed(2)
        wl.seed(2)
        assert drain_positions(wl, lambda pos: False) == [2]

    def test_seed_behind_cursor_joins_next_pass(self):
        """The legacy rescan: a start that enables an *earlier*
        position defers it to the next forward scan."""
        wl = ReadyWorklist(4)
        wl.seed(1)
        wl.seed(2)
        order = []

        def decide(pos):
            order.append(pos)
            if pos == 2:
                wl.seed(0)  # behind the cursor -> next pass
                return True
            return False

        drain_positions(wl, decide)
        assert order == [1, 2, 0]

    def test_seed_ahead_of_cursor_joins_current_pass(self):
        """The legacy forward cursor reaches later positions in the
        same scan, so an enable-ahead is examined immediately."""
        wl = ReadyWorklist(4)
        wl.seed(0)
        order = []

        def decide(pos):
            order.append(pos)
            if pos == 0:
                wl.seed(3)  # ahead of the cursor -> this pass
                return True
            return False

        drain_positions(wl, decide)
        assert order == [0, 3]

    def test_no_progress_pass_ends_drain(self):
        wl = ReadyWorklist(3)
        wl.seed(0)
        wl.seed(1)
        visited = drain_positions(wl, lambda pos: False)
        assert visited == [0, 1]
        assert not wl

    def test_suspend_preserves_unexamined_candidates(self):
        """Core-budget exhaustion: the drain stops mid-pass and the
        next drain resumes with the suspended candidate plus everything
        not yet examined, in position order."""
        wl = ReadyWorklist(6)
        for pos in (1, 3, 5):
            wl.seed(pos)
        assert wl.begin_scan()
        assert wl.pop() == 1
        stopped_at = wl.pop()
        assert stopped_at == 3
        wl.suspend(stopped_at)  # budget hit while examining 3
        # External seeding between drains (a completion event).
        wl.seed(0)
        assert drain_positions(wl, lambda pos: False) == [0, 3, 5]

    def test_bool_reflects_pending_work(self):
        wl = ReadyWorklist(2)
        assert not wl
        wl.seed(1)
        assert wl
        drain_positions(wl, lambda pos: False)
        assert not wl
