"""Tests for capacity-bounded (blocking-write) self-timed execution."""

import pytest

from repro.csdf import (
    CSDFGraph,
    minimal_buffer_schedule,
    self_timed_execution,
)
from repro.csdf.throughput import buffer_throughput_tradeoff


def producer_consumer(prod_time=1.0, cons_time=3.0) -> CSDFGraph:
    g = CSDFGraph("pc")
    g.add_actor("prod", exec_time=prod_time)
    g.add_actor("cons", exec_time=cons_time)
    g.add_channel("e", "prod", "cons", 1, 1)
    return g


class TestBlockingWrites:
    def test_capacity_respected(self):
        g = producer_consumer()
        result = self_timed_execution(g, iterations=6, capacities={"e": 2})
        assert result.peaks["e"] <= 2

    def test_unbounded_producer_runs_ahead(self):
        g = producer_consumer()
        result = self_timed_execution(g, iterations=6)
        # Fast producer fills the FIFO well past 2 without back-pressure.
        assert result.peaks["e"] > 2

    def test_tight_buffer_serializes(self):
        g = producer_consumer(prod_time=1.0, cons_time=1.0)
        tight = self_timed_execution(g, iterations=8, capacities={"e": 1})
        loose = self_timed_execution(g, iterations=8, capacities={"e": 8})
        assert tight.makespan >= loose.makespan

    def test_throughput_unaffected_when_consumer_is_bottleneck(self):
        g = producer_consumer(prod_time=1.0, cons_time=3.0)
        small = self_timed_execution(g, iterations=8, capacities={"e": 2})
        big = self_timed_execution(g, iterations=8, capacities={"e": 100})
        assert small.iteration_period == pytest.approx(big.iteration_period)

    def test_selfloop_capacity(self):
        g = CSDFGraph()
        g.add_actor("a", exec_time=1.0)
        g.add_channel("loop", "a", "a", 1, 1, initial_tokens=1)
        result = self_timed_execution(g, iterations=4, capacities={"loop": 1})
        assert result.iterations == 4

    def test_undersized_buffer_deadlocks(self):
        from repro.errors import DeadlockError

        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("e", "a", "b", 3, 3)  # one firing needs 3 slots
        with pytest.raises(DeadlockError):
            self_timed_execution(g, capacities={"e": 2})


class TestMinBuffersForFullThroughput:
    def test_result_achieves_unconstrained_period(self, fig1):
        from repro.csdf import min_buffers_for_full_throughput

        caps = min_buffers_for_full_throughput(fig1, iterations=5)
        unconstrained = self_timed_execution(fig1, iterations=5)
        constrained = self_timed_execution(fig1, iterations=5, capacities=caps)
        assert constrained.iteration_period == pytest.approx(
            unconstrained.iteration_period
        )

    def test_result_not_larger_than_unconstrained_peaks(self, fig1):
        from repro.csdf import min_buffers_for_full_throughput

        caps = min_buffers_for_full_throughput(fig1, iterations=5)
        peaks = self_timed_execution(fig1, iterations=5).peaks
        for name, cap in caps.items():
            assert cap <= peaks[name]

    def test_slow_consumer_needs_no_deep_fifo(self):
        from repro.csdf import min_buffers_for_full_throughput

        g = producer_consumer(prod_time=1.0, cons_time=4.0)
        caps = min_buffers_for_full_throughput(g, iterations=6)
        # The consumer is the bottleneck: a couple of slots suffice even
        # though the unconstrained producer piles up many tokens.
        assert caps["e"] <= 3
        unbounded_peak = self_timed_execution(g, iterations=6).peaks["e"]
        assert unbounded_peak > caps["e"]


class TestAnalyticTargetPeriod:
    """The sizing target now comes analytically from Howard's MCR; the
    previous implementation re-measured it by simulation.  Equivalence
    on the Fig. 8 graphs pins that the swap changes nothing."""

    @staticmethod
    def fig8_graphs():
        from repro.apps.ofdm import bindings_for, build_ofdm_csdf, build_ofdm_tpdf
        from repro.apps.ofdm.qam import scheme_for_m
        from repro.tpdf import restrict_to_selection

        tpdf = build_ofdm_tpdf()
        port = "qam" if scheme_for_m(4) == "qam16" else "qpsk"
        restricted = restrict_to_selection(tpdf, "DUP", ["in", port])
        restricted = restrict_to_selection(restricted, "TRAN", [port, "out"])
        bindings = bindings_for(2, 16, 2, 4)
        return [(restricted.as_csdf(), bindings), (build_ofdm_csdf(), bindings)]

    def test_simulated_period_equals_mcr_on_fig8_graphs(self):
        """The old target (measured unconstrained period) and the new
        one (Howard's MCR) coincide on both Fig. 8 implementations."""
        from repro.csdf import max_cycle_ratio

        for graph, bindings in self.fig8_graphs():
            simulated = self_timed_execution(
                graph, bindings, iterations=6
            ).iteration_period
            assert simulated == pytest.approx(max_cycle_ratio(graph, bindings),
                                              abs=1e-9)

    def test_capacities_unchanged_by_analytic_target(self):
        """Sizing against the MCR reproduces the capacities the
        simulated target produced (reconstructed inline).

        The reconstruction judges probes by the same steady-window
        period estimate the real search uses: the single last-two-ends
        delta aliases on capacity-bounded steady states whose deltas
        cycle (e.g. ``1, 2, 1, 2`` measuring 1.0 at an even horizon —
        a false acceptance the estimator fix closed)."""
        from repro.csdf import min_buffers_for_full_throughput
        from repro.csdf.throughput import _steady_period
        from repro.errors import DeadlockError

        for graph, bindings in self.fig8_graphs():
            caps = min_buffers_for_full_throughput(graph, bindings, iterations=4)
            unconstrained = self_timed_execution(graph, bindings, iterations=4)
            legacy = dict(unconstrained.peaks)
            # the old, simulated target (steady-window estimate)
            target = _steady_period(unconstrained)

            def period_with(c):
                try:
                    return _steady_period(self_timed_execution(
                        graph, bindings, iterations=4, capacities=c
                    ))
                except DeadlockError:
                    return float("inf")

            for name in sorted(legacy):
                lo, hi = 0, legacy[name]
                while lo < hi:
                    mid = (lo + hi) // 2
                    probe = dict(legacy)
                    probe[name] = mid
                    if period_with(probe) <= target + 1e-6:
                        hi = mid
                    else:
                        lo = mid + 1
                legacy[name] = hi
            assert caps == legacy

    def test_mcr_target_on_random_corpus(self):
        """Property sweep: on converging random graphs the analytic
        target yields capacities that achieve the MCR period."""
        from repro.csdf import max_cycle_ratio, min_buffers_for_full_throughput
        from repro.tpdf import random_consistent_graph

        for seed in range(6):
            g = random_consistent_graph(
                4, extra_edges=1, n_cycles=1, seed=seed, with_control=False
            ).as_csdf()
            caps = min_buffers_for_full_throughput(g, iterations=8)
            constrained = self_timed_execution(g, iterations=8, capacities=caps)
            assert constrained.iteration_period == pytest.approx(
                max_cycle_ratio(g), abs=1e-6
            )


class TestTradeoff:
    def test_monotone_throughput(self, fig1):
        points = buffer_throughput_tradeoff(fig1, scales=(1.0, 2.0, 4.0),
                                            iterations=4)
        budgets = [budget for budget, _ in points]
        periods = [result.iteration_period for _, result in points]
        assert budgets == sorted(budgets)
        # Larger buffers never hurt throughput.
        assert all(a >= b - 1e-9 for a, b in zip(periods, periods[1:]))

    def test_minimal_capacities_complete(self, fig1):
        _, minimal = minimal_buffer_schedule(fig1)
        result = self_timed_execution(fig1, iterations=3, capacities=minimal)
        assert result.iterations == 3

    def test_ofdm_tradeoff_shape(self):
        from repro.apps.ofdm import bindings_for, build_ofdm_tpdf

        graph = build_ofdm_tpdf().as_csdf()
        points = buffer_throughput_tradeoff(
            graph, bindings_for(2, 16, 2, 4), scales=(1.0, 2.0), iterations=3
        )
        assert len(points) == 2
        assert points[0][0] < points[1][0]
