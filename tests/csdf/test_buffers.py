"""Tests for buffer sizing."""

import pytest

from repro.csdf import (
    CSDFGraph,
    bounded_feasible,
    find_sequential_schedule,
    minimal_buffer_schedule,
    schedule_buffer_sizes,
    total_buffer_size,
    validate_schedule,
)
from repro.errors import DeadlockError


@pytest.fixture
def multirate() -> CSDFGraph:
    g = CSDFGraph("multirate")
    for name in ("a", "b", "c"):
        g.add_actor(name)
    g.add_channel("e1", "a", "b", 2, 1)
    g.add_channel("e2", "b", "c", 1, 2)
    return g


class TestSchedulePeaks:
    def test_grouped_schedule_peaks(self, multirate):
        schedule = find_sequential_schedule(multirate)  # a b b c
        peaks = schedule_buffer_sizes(multirate, schedule)
        assert peaks == {"e1": 2, "e2": 2}

    def test_peaks_depend_on_order(self, multirate):
        # Interleaving b as early as possible halves the peak on e1? No:
        # b needs e1 tokens; but consuming immediately keeps e1 at 1.
        schedule = ["a", "b", "b", "c"]
        peaks = schedule_buffer_sizes(multirate, schedule)
        assert peaks["e1"] == 2


class TestMinimalBufferSchedule:
    def test_greedy_no_worse_than_grouped(self, fig1):
        grouped = find_sequential_schedule(fig1)
        grouped_peaks = schedule_buffer_sizes(fig1, grouped)
        _, greedy_peaks = minimal_buffer_schedule(fig1)
        assert total_buffer_size(greedy_peaks) <= total_buffer_size(grouped_peaks)

    def test_schedule_is_valid(self, fig1):
        schedule, _ = minimal_buffer_schedule(fig1)
        validate_schedule(fig1, schedule)

    def test_deadlocked_graph_raises(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_actor("b")
        g.add_channel("fwd", "a", "b", 1, 1)
        g.add_channel("back", "b", "a", 1, 1)
        with pytest.raises(DeadlockError):
            minimal_buffer_schedule(g)

    def test_custom_repetitions(self, multirate):
        schedule, peaks = minimal_buffer_schedule(
            multirate, repetitions={"a": 2, "b": 4, "c": 2}
        )
        assert schedule.counts() == {"a": 2, "b": 4, "c": 2}
        assert total_buffer_size(peaks) >= 2


class TestBoundedFeasible:
    def test_reported_peaks_are_feasible(self, fig1):
        _, peaks = minimal_buffer_schedule(fig1)
        assert bounded_feasible(fig1, peaks)

    def test_tightness_single_channel(self, multirate):
        _, peaks = minimal_buffer_schedule(multirate)
        assert bounded_feasible(multirate, peaks)
        # One token less on a critical channel must not be feasible.
        squeezed = dict(peaks)
        squeezed["e1"] = peaks["e1"] - 1
        assert not bounded_feasible(multirate, squeezed)

    def test_zero_capacity_blocks_everything(self, multirate):
        assert not bounded_feasible(multirate, {"e1": 0, "e2": 0})

    def test_missing_capacity_means_unbounded(self, multirate):
        assert bounded_feasible(multirate, {})

    def test_selfloop_headroom(self):
        g = CSDFGraph()
        g.add_actor("a")
        g.add_channel("loop", "a", "a", 1, 1, initial_tokens=1)
        # Capacity 1 suffices: consume happens before produce.
        assert bounded_feasible(g, {"loop": 1})


class TestTotals:
    def test_total_buffer_size(self):
        assert total_buffer_size({"a": 3, "b": 4}) == 7
        assert total_buffer_size({}) == 0
