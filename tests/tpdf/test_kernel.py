"""Tests for kernels, control actors and their ports."""

import pytest

from repro.errors import GraphConstructionError
from repro.tpdf import ControlActor, Kernel, Mode, PortKind
from repro.tpdf.ports import Port


class TestPort:
    def test_kinds(self):
        assert PortKind.DATA_IN.is_input()
        assert PortKind.CONTROL_IN.is_input()
        assert not PortKind.DATA_OUT.is_input()
        assert PortKind.CONTROL_OUT.is_control()

    def test_control_in_rate_restricted(self):
        with pytest.raises(ValueError):
            Port("c", PortKind.CONTROL_IN, rates=2)
        Port("c", PortKind.CONTROL_IN, rates=[0, 1])  # ok

    def test_control_out_rate_unrestricted(self):
        Port("o", PortKind.CONTROL_OUT, rates=2)  # Fig. 2's controller

    def test_priority_stored(self):
        assert Port("i", PortKind.DATA_IN, priority=3).priority == 3


class TestKernelPorts:
    def test_add_ports(self):
        k = Kernel("k")
        k.add_input("in", 2)
        k.add_output("out", [1, 1])
        assert {p.name for p in k.data_inputs} == {"in"}
        assert {p.name for p in k.data_outputs} == {"out"}

    def test_single_control_port_enforced(self):
        k = Kernel("k")
        k.add_control_port("c1")
        with pytest.raises(GraphConstructionError):
            k.add_control_port("c2")

    def test_has_control(self):
        k = Kernel("k")
        assert not k.has_control()
        k.add_control_port()
        assert k.has_control()

    def test_duplicate_port_rejected(self):
        k = Kernel("k")
        k.add_input("x")
        with pytest.raises(GraphConstructionError):
            k.add_output("x")

    def test_unknown_port_raises(self):
        with pytest.raises(KeyError):
            Kernel("k").port("nope")


class TestKernelModes:
    def test_mode_rate_override(self):
        k = Kernel("k", modes=(Mode.WAIT_ALL, Mode.SELECT_ONE))
        k.add_input("in", 4)
        k.set_mode_rates(Mode.SELECT_ONE, {"in": 2})
        assert k.rate("in", mode=Mode.SELECT_ONE) == 2
        assert k.rate("in", mode=Mode.WAIT_ALL) == 4
        assert k.rate("in") == 4

    def test_undeclared_mode_rejected(self):
        k = Kernel("k")
        k.add_input("in")
        with pytest.raises(GraphConstructionError):
            k.set_mode_rates(Mode.SELECT_ONE, {"in": 1})

    def test_mode_rates_unknown_port(self):
        k = Kernel("k", modes=(Mode.SELECT_ONE,))
        with pytest.raises(KeyError):
            k.set_mode_rates(Mode.SELECT_ONE, {"ghost": 1})

    def test_effective_ports(self):
        from repro.tpdf import select_one

        k = Kernel("k", modes=(Mode.SELECT_ONE,))
        k.add_input("a")
        k.add_input("b")
        k.add_control_port("c")
        ports = k.effective_ports(select_one("a"))
        assert [p.name for p in ports] == ["a"]


class TestTiming:
    def test_tau_lcm_over_ports(self):
        k = Kernel("k")
        k.add_input("in", [1, 1])
        k.add_output("out", [1, 0, 1])
        assert k.tau() == 6

    def test_exec_time_phases(self):
        k = Kernel("k", exec_time=[1.0, 2.0])
        assert k.exec_time(0) == 1.0
        assert k.exec_time(3) == 2.0

    def test_invalid_exec_time(self):
        with pytest.raises(ValueError):
            Kernel("k", exec_time=-1.0)


class TestControlActor:
    def test_ports(self):
        g = ControlActor("g")
        g.add_input("in", 2)
        g.add_control_output("out", 2)
        assert len(g.control_outputs()) == 1

    def test_default_decision_is_wait_all(self):
        g = ControlActor("g")
        token = g.decide(0, [])
        assert token.mode is Mode.WAIT_ALL

    def test_custom_decision(self):
        from repro.tpdf import select_one

        g = ControlActor("g", decision=lambda n, inputs: select_one(f"port{n}"))
        assert g.decide(2, []).selection == ("port2",)

    def test_control_input_allowed(self):
        g = ControlActor("g")
        g.add_control_input("cin")
        assert g.ports["cin"].kind is PortKind.CONTROL_IN

    def test_meta_dict(self):
        g = ControlActor("g")
        g.meta["builtin"] = "clock"
        assert g.meta["builtin"] == "clock"
