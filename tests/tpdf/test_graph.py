"""Tests for TPDF graph construction (Definition 2 structural rules)."""

import pytest

from repro.errors import GraphConstructionError
from repro.symbolic import Param
from repro.tpdf import TPDFGraph, fig2_graph


class TestStructuralRules:
    def test_control_channel_must_start_at_control_actor(self):
        g = TPDFGraph()
        k1 = g.add_kernel("k1")
        k1.add_output("out", 1)
        k2 = g.add_kernel("k2")
        k2.add_control_port("ctrl")
        with pytest.raises(GraphConstructionError):
            g.connect("k1.out", "k2.ctrl")

    def test_control_output_cannot_feed_data_port(self):
        g = TPDFGraph()
        c = g.add_control_actor("c")
        c.add_control_output("out")
        k = g.add_kernel("k")
        k.add_input("in")
        with pytest.raises(GraphConstructionError):
            g.connect("c.out", "k.in")

    def test_valid_control_channel(self):
        g = TPDFGraph()
        c = g.add_control_actor("c")
        c.add_control_output("out")
        k = g.add_kernel("k")
        k.add_control_port("ctrl")
        channel = g.connect("c.out", "k.ctrl")
        assert channel.is_control
        assert g.control_channels() == [channel]

    def test_data_channel_between_kernels(self, simple_pipeline):
        assert not simple_pipeline.channel("c1").is_control

    def test_input_cannot_be_source(self, simple_pipeline):
        with pytest.raises(GraphConstructionError):
            simple_pipeline.connect("snk.in", "mid.in")

    def test_output_cannot_be_destination(self):
        g = TPDFGraph()
        a = g.add_kernel("a")
        a.add_output("o1")
        b = g.add_kernel("b")
        b.add_output("o2")
        with pytest.raises(GraphConstructionError):
            g.connect("a.o1", "b.o2")

    def test_port_single_connection(self, simple_pipeline):
        extra = simple_pipeline.add_kernel("extra")
        extra.add_input("in")
        with pytest.raises(GraphConstructionError):
            simple_pipeline.connect("src.out", "extra.in")

    def test_kernel_control_disjoint(self):
        g = TPDFGraph()
        g.add_kernel("x")
        with pytest.raises(GraphConstructionError):
            g.add_control_actor("x")

    def test_negative_initial_tokens(self, simple_pipeline):
        mid = simple_pipeline.node("mid")
        mid.add_output("extra")
        snk2 = simple_pipeline.add_kernel("snk2")
        snk2.add_input("in")
        with pytest.raises(GraphConstructionError):
            simple_pipeline.connect("mid.extra", "snk2.in", initial_tokens=-1)

    def test_bad_port_ref(self, simple_pipeline):
        with pytest.raises(GraphConstructionError):
            simple_pipeline.connect("src", "mid.in")


class TestParameters:
    def test_declared_parameters(self):
        p = Param("p", lo=1, hi=10)
        g = TPDFGraph(parameters=[p])
        assert g.parameters == {"p": p}

    def test_conflicting_redeclaration(self):
        g = TPDFGraph(parameters=[Param("p", lo=1, hi=10)])
        with pytest.raises(GraphConstructionError):
            g.declare_parameter(Param("p", lo=2, hi=5))

    def test_identical_redeclaration_ok(self):
        g = TPDFGraph(parameters=[Param("p")])
        g.declare_parameter(Param("p"))

    def test_undeclared_parameters_detected(self):
        g = TPDFGraph()
        k = g.add_kernel("k")
        k.add_output("out", Param("mystery") * 2)
        assert g.undeclared_parameters() == {"mystery"}

    def test_fig2_fully_declared(self, fig2):
        assert fig2.undeclared_parameters() == set()


class TestViews:
    def test_node_lookup(self, fig2):
        assert fig2.node("A").name == "A"
        assert fig2.is_control_actor("C")
        assert not fig2.is_control_actor("A")
        with pytest.raises(KeyError):
            fig2.node("ghost")

    def test_channel_queries(self, fig2):
        assert {c.name for c in fig2.out_channels("B")} == {"e2", "e3", "e4"}
        assert {c.name for c in fig2.in_channels("F")} == {"e5", "e6", "e7"}
        assert [c.name for c in fig2.channel_between("A", "B")] == ["e1"]

    def test_networkx(self, fig2):
        nxg = fig2.to_networkx()
        assert nxg.nodes["C"]["control"]
        assert not nxg.nodes["A"]["control"]

    def test_describe(self, fig2):
        text = fig2.describe()
        assert "[ctrl]" in text
        assert "parameters" in text


class TestAsCSDF:
    def test_structure_preserved(self, fig2):
        csdf = fig2.as_csdf()
        assert set(csdf.actors) == {"A", "B", "C", "D", "E", "F"}
        assert set(csdf.channels) == {f"e{i}" for i in range(1, 8)}

    def test_rates_copied(self, fig2):
        csdf = fig2.as_csdf()
        assert csdf.channel("e1").production.bind({"p": 3}).as_ints() == (3,)
        assert csdf.channel("e6").consumption.as_ints() == (0, 2)

    def test_exclude_control(self, fig2):
        csdf = fig2.as_csdf(include_control=False)
        assert "C" not in csdf.actors
        assert "e5" not in csdf.channels
        assert "e2" not in csdf.channels  # touches the control actor

    def test_register_rejects_foreign(self):
        g = TPDFGraph()
        with pytest.raises(GraphConstructionError):
            g.register(object())  # type: ignore[arg-type]


class TestFig2Factory:
    def test_matches_paper_structure(self):
        g = fig2_graph()
        assert len(g.kernels) == 5
        assert len(g.controls) == 1
        assert len(g.channels) == 7

    def test_custom_parameter(self):
        g = fig2_graph(Param("p", lo=2, hi=4))
        assert g.parameters["p"].hi == 4
