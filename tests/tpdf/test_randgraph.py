"""Tests for the random consistent graph generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tpdf import (
    check_consistency,
    check_liveness,
    random_consistent_graph,
    repetition_vector,
)


class TestGeneratedGraphs:
    def test_deterministic(self):
        a = random_consistent_graph(6, seed=5)
        b = random_consistent_graph(6, seed=5)
        assert repetition_vector(a) == repetition_vector(b)

    def test_consistent_by_construction(self):
        g = random_consistent_graph(10, extra_edges=4, seed=1)
        assert check_consistency(g).consistent

    def test_cycles_are_live(self):
        g = random_consistent_graph(8, extra_edges=2, n_cycles=2, seed=2)
        assert check_liveness(g).live

    def test_parametric_generation(self):
        g = random_consistent_graph(8, seed=3, parametric=True)
        q = repetition_vector(g)
        assert any(not poly.is_const() for poly in q.values())

    def test_control_machinery_attached(self):
        g = random_consistent_graph(5, seed=4, with_control=True)
        assert "ctrl0" in g.controls
        assert any(c.is_control for c in g.channels.values())

    def test_without_control(self):
        g = random_consistent_graph(5, seed=4, with_control=False)
        assert not g.controls

    def test_minimum_size_enforced(self):
        import pytest

        with pytest.raises(ValueError):
            random_consistent_graph(1)


class TestRateSafeByConstruction:
    @given(seed=st.integers(0, 20), n=st.integers(2, 7))
    @settings(max_examples=15)
    def test_control_attachment_is_rate_safe(self, seed, n):
        from repro.tpdf import check_rate_safety

        g = random_consistent_graph(n, extra_edges=1, seed=seed,
                                    with_control=True)
        assert check_rate_safety(g).safe

    @given(seed=st.integers(0, 15), n=st.integers(3, 6))
    @settings(max_examples=10)
    def test_parametric_control_attachment_safe(self, seed, n):
        from repro.tpdf import check_boundedness

        g = random_consistent_graph(n, seed=seed, parametric=True,
                                    with_control=True)
        assert check_boundedness(g).bounded


class TestGeneratedGraphProperties:
    @given(seed=st.integers(0, 30), n=st.integers(2, 9), extra=st.integers(0, 3))
    @settings(max_examples=25)
    def test_always_consistent(self, seed, n, extra):
        g = random_consistent_graph(n, extra_edges=extra, seed=seed,
                                    with_control=False)
        assert check_consistency(g).consistent

    @given(seed=st.integers(0, 20), n=st.integers(3, 8))
    @settings(max_examples=15)
    def test_parametric_always_consistent(self, seed, n):
        g = random_consistent_graph(n, seed=seed, parametric=True,
                                    with_control=False)
        assert check_consistency(g).consistent

    @given(seed=st.integers(0, 15), n=st.integers(3, 7), cycles=st.integers(1, 2))
    @settings(max_examples=15)
    def test_cycles_live(self, seed, n, cycles):
        g = random_consistent_graph(n, n_cycles=cycles, seed=seed,
                                    with_control=False)
        assert check_liveness(g).live
