"""Tests for the random consistent graph generator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tpdf import (
    check_consistency,
    check_liveness,
    random_consistent_graph,
    repetition_vector,
)


class TestGeneratedGraphs:
    def test_deterministic(self):
        a = random_consistent_graph(6, seed=5)
        b = random_consistent_graph(6, seed=5)
        assert repetition_vector(a) == repetition_vector(b)

    def test_consistent_by_construction(self):
        g = random_consistent_graph(10, extra_edges=4, seed=1)
        assert check_consistency(g).consistent

    def test_cycles_are_live(self):
        g = random_consistent_graph(8, extra_edges=2, n_cycles=2, seed=2)
        assert check_liveness(g).live

    def test_parametric_generation(self):
        g = random_consistent_graph(8, seed=3, parametric=True)
        q = repetition_vector(g)
        assert any(not poly.is_const() for poly in q.values())

    def test_control_machinery_attached(self):
        g = random_consistent_graph(5, seed=4, with_control=True)
        assert "ctrl0" in g.controls
        assert any(c.is_control for c in g.channels.values())

    def test_without_control(self):
        g = random_consistent_graph(5, seed=4, with_control=False)
        assert not g.controls

    def test_minimum_size_enforced(self):
        import pytest

        with pytest.raises(ValueError):
            random_consistent_graph(1)


class TestGeneratorFoundation:
    """The differential suites (MCR, parallel parity) draw their random
    corpora from this generator; pin its determinism and rate algebra
    so those suites rest on a tested foundation."""

    def test_structurally_deterministic(self):
        """Same seed => identical *serialized structure* (nodes, ports,
        rates, priorities, channels, initial tokens), not merely the
        same repetition vector."""
        from repro.io import graph_to_payload

        for seed in (0, 3, 11):
            a = random_consistent_graph(7, extra_edges=3, n_cycles=2, seed=seed)
            b = random_consistent_graph(7, extra_edges=3, n_cycles=2, seed=seed)
            assert graph_to_payload(a) == graph_to_payload(b)

    def test_parametric_structurally_deterministic(self):
        from repro.io import graph_to_payload

        a = random_consistent_graph(6, seed=5, parametric=True)
        b = random_consistent_graph(6, seed=5, parametric=True)
        assert graph_to_payload(a) == graph_to_payload(b)

    def test_distinct_seeds_differ(self):
        from repro.io import graph_to_payload

        payloads = [
            graph_to_payload(random_consistent_graph(6, extra_edges=2, seed=s))
            for s in range(6)
        ]
        assert any(p != payloads[0] for p in payloads[1:])

    def test_every_channel_is_rate_balanced(self):
        """Consistency-rate invariant, channel by channel: with base
        solution r, each data channel satisfies
        ``r_src * production == r_dst * consumption`` per cycle."""
        from repro.csdf.analysis import base_solution

        for seed in range(8):
            g = random_consistent_graph(6, extra_edges=2, n_cycles=1, seed=seed,
                                        with_control=False)
            csdf = g.as_csdf()
            r = base_solution(csdf)
            for channel in csdf.channels.values():
                produced = r[channel.src] * channel.production.cumulative(
                    csdf.tau(channel.src)
                )
                consumed = r[channel.dst] * channel.consumption.cumulative(
                    csdf.tau(channel.dst)
                )
                assert produced == consumed, (
                    f"seed {seed}, channel {channel.name}: "
                    f"{produced} != {consumed}"
                )

    def test_parametric_channels_balance_symbolically(self):
        from repro.csdf.analysis import base_solution

        for seed in range(5):
            g = random_consistent_graph(5, seed=seed, parametric=True,
                                        with_control=False)
            csdf = g.as_csdf()
            r = base_solution(csdf)
            for channel in csdf.channels.values():
                assert (
                    r[channel.src] * channel.production.cumulative(csdf.tau(channel.src))
                    == r[channel.dst] * channel.consumption.cumulative(csdf.tau(channel.dst))
                )

    def test_back_edges_carry_a_full_local_iteration(self):
        """Liveness seeding: every generated back edge holds at least
        one local iteration's worth of consumption tokens."""
        from repro.csdf.analysis import concrete_repetition_vector

        for seed in range(6):
            g = random_consistent_graph(5, n_cycles=2, seed=seed,
                                        with_control=False)
            csdf = g.as_csdf()
            q = concrete_repetition_vector(csdf)
            order = {name: i for i, name in enumerate(csdf.actor_names())}
            back = [c for c in csdf.channels.values()
                    if order[c.src] > order[c.dst]]
            assert back, f"seed {seed} generated no back edges"
            for channel in back:
                need = channel.consumption.cumulative(csdf.tau(channel.dst))
                need = int(need.evaluate({}) * q[channel.dst] / csdf.tau(channel.dst))
                assert channel.initial_tokens >= need

    def test_exec_times_drawn_from_documented_domain(self):
        g = random_consistent_graph(10, seed=13, with_control=False)
        for kernel in g.kernels.values():
            assert set(kernel.exec_times) <= {1.0, 2.0, 4.0}


class TestRateSafeByConstruction:
    @given(seed=st.integers(0, 20), n=st.integers(2, 7))
    @settings(max_examples=15)
    def test_control_attachment_is_rate_safe(self, seed, n):
        from repro.tpdf import check_rate_safety

        g = random_consistent_graph(n, extra_edges=1, seed=seed,
                                    with_control=True)
        assert check_rate_safety(g).safe

    @given(seed=st.integers(0, 15), n=st.integers(3, 6))
    @settings(max_examples=10)
    def test_parametric_control_attachment_safe(self, seed, n):
        from repro.tpdf import check_boundedness

        g = random_consistent_graph(n, seed=seed, parametric=True,
                                    with_control=True)
        assert check_boundedness(g).bounded


class TestGeneratedGraphProperties:
    @given(seed=st.integers(0, 30), n=st.integers(2, 9), extra=st.integers(0, 3))
    @settings(max_examples=25)
    def test_always_consistent(self, seed, n, extra):
        g = random_consistent_graph(n, extra_edges=extra, seed=seed,
                                    with_control=False)
        assert check_consistency(g).consistent

    @given(seed=st.integers(0, 20), n=st.integers(3, 8))
    @settings(max_examples=15)
    def test_parametric_always_consistent(self, seed, n):
        g = random_consistent_graph(n, seed=seed, parametric=True,
                                    with_control=False)
        assert check_consistency(g).consistent

    @given(seed=st.integers(0, 15), n=st.integers(3, 7), cycles=st.integers(1, 2))
    @settings(max_examples=15)
    def test_cycles_live(self, seed, n, cycles):
        g = random_consistent_graph(n, n_cycles=cycles, seed=seed,
                                    with_control=False)
        assert check_liveness(g).live
