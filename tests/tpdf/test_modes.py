"""Tests for modes and control tokens."""

import pytest

from repro.tpdf import ControlToken, Mode, highest_priority, select_many, select_one, wait_all


class TestControlTokenValidation:
    def test_select_one_needs_exactly_one(self):
        with pytest.raises(ValueError):
            ControlToken(Mode.SELECT_ONE, ())
        with pytest.raises(ValueError):
            ControlToken(Mode.SELECT_ONE, ("a", "b"))

    def test_select_many_needs_at_least_two(self):
        with pytest.raises(ValueError):
            ControlToken(Mode.SELECT_MANY, ("a",))

    def test_wait_all_carries_no_selection(self):
        with pytest.raises(ValueError):
            ControlToken(Mode.WAIT_ALL, ("a",))

    def test_highest_priority_empty_selection_ok(self):
        token = ControlToken(Mode.HIGHEST_PRIORITY)
        assert token.selection == ()


class TestSelects:
    def test_select_one(self):
        token = select_one("x")
        assert token.selects("x")
        assert not token.selects("y")

    def test_select_many(self):
        token = select_many("x", "y")
        assert token.selects("x") and token.selects("y")
        assert not token.selects("z")

    def test_wait_all_selects_everything(self):
        assert wait_all().selects("anything")

    def test_highest_priority_statically_selects_everything(self):
        assert highest_priority().selects("anything")


class TestDeadlines:
    def test_deadline_attached(self):
        token = highest_priority(deadline=500.0)
        assert token.deadline == 500.0

    def test_select_one_with_deadline(self):
        token = select_one("x", deadline=10.0)
        assert token.deadline == 10.0

    def test_tokens_are_frozen(self):
        token = wait_all()
        with pytest.raises(Exception):
            token.mode = Mode.SELECT_ONE  # type: ignore[misc]


class TestRendering:
    def test_str_mode(self):
        assert "select_one" in str(select_one("x"))
        assert "(x)" in str(select_one("x"))

    def test_str_deadline(self):
        assert "@500.0" in str(highest_priority(deadline=500.0))
