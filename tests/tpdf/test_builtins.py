"""Tests for the builtin Select-duplicate / Transaction / Clock actors."""

import pytest

from repro.errors import GraphConstructionError
from repro.tpdf import Mode, TPDFGraph, clock, select_duplicate, transaction
from repro.tpdf.builtins import ClockActor


class TestSelectDuplicate:
    def test_ports_created(self):
        g = TPDFGraph()
        k = select_duplicate(g, "dup", outputs=3)
        assert {p.name for p in k.data_outputs} == {"out0", "out1", "out2"}
        assert k.control_port() is not None
        assert k.meta["builtin"] == "select_duplicate"

    def test_custom_names(self):
        g = TPDFGraph()
        k = select_duplicate(g, "dup", outputs=2, output_names=["left", "right"])
        assert {p.name for p in k.data_outputs} == {"left", "right"}

    def test_modes_declared(self):
        g = TPDFGraph()
        k = select_duplicate(g, "dup", outputs=2)
        assert Mode.SELECT_ONE in k.modes
        assert Mode.SELECT_MANY in k.modes

    def test_zero_outputs_rejected(self):
        with pytest.raises(GraphConstructionError):
            select_duplicate(TPDFGraph(), "dup", outputs=0)

    def test_name_count_mismatch(self):
        with pytest.raises(GraphConstructionError):
            select_duplicate(TPDFGraph(), "dup", outputs=2, output_names=["only"])


class TestTransaction:
    def test_ports_and_priorities(self):
        g = TPDFGraph()
        k = transaction(g, "t", inputs=3, priorities=[5, 1, 3])
        assert k.port("in0").priority == 5
        assert k.port("in2").priority == 3
        assert k.meta["action"] == "priority_deadline"

    def test_action_recorded(self):
        g = TPDFGraph()
        k = transaction(g, "t", inputs=2, action="vote")
        assert k.meta["action"] == "vote"

    def test_unknown_action_rejected(self):
        with pytest.raises(GraphConstructionError):
            transaction(TPDFGraph(), "t", inputs=2, action="explode")

    def test_highest_priority_mode_available(self):
        g = TPDFGraph()
        k = transaction(g, "t", inputs=2)
        assert Mode.HIGHEST_PRIORITY in k.modes

    def test_priority_count_mismatch(self):
        with pytest.raises(GraphConstructionError):
            transaction(TPDFGraph(), "t", inputs=2, priorities=[1])


class TestClock:
    def test_clock_registered_with_period(self):
        g = TPDFGraph()
        c = clock(g, "ck", period=500.0)
        assert isinstance(c, ClockActor)
        assert c.period == 500.0
        assert c.meta["builtin"] == "clock"
        assert "ck" in g.controls

    def test_tick_port(self):
        g = TPDFGraph()
        c = clock(g, "ck", period=1.0)
        assert [p.name for p in c.control_outputs()] == ["tick"]

    def test_nonpositive_period_rejected(self):
        with pytest.raises(GraphConstructionError):
            ClockActor("ck", period=0.0)

    def test_clock_is_control_actor(self):
        g = TPDFGraph()
        clock(g, "ck", period=2.0)
        assert g.is_control_actor("ck")
