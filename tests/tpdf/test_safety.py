"""Tests for rate safety (Definition 5)."""

import pytest

from repro.errors import RateSafetyError
from repro.symbolic import Param
from repro.tpdf import TPDFGraph, assert_rate_safe, check_rate_safety


class TestFig2Safety:
    def test_fig2_is_rate_safe(self, fig2):
        report = check_rate_safety(fig2)
        assert report.safe
        assert not report.undecided
        assert len(report.checks) == 2  # e2 (consume) and e5 (produce)

    def test_check_details(self, fig2):
        report = check_rate_safety(fig2)
        by_channel = {check.channel: check for check in report.checks}
        # e2: Y_C(1) = 2 equals X_B(q^L_B = 2) = 2.
        assert by_channel["e2"].control_side == by_channel["e2"].area_side
        # e5: X_C(1) = 2 equals Y_F(q^L_F = 2) = 2.
        assert by_channel["e5"].control_side == by_channel["e5"].area_side

    def test_assert_passes(self, fig2):
        assert_rate_safe(fig2)


def build_unsafe_graph() -> TPDFGraph:
    """Consistent graph whose control actor fires twice per local
    iteration (q = [src: 1, ctrl: 2, snk: 2]): not rate safe."""
    g = TPDFGraph()
    src = g.add_kernel("src")
    src.add_output("out", 2)      # snk consumes 1 -> q_snk = 2
    src.add_output("sig", 2)      # ctrl consumes 1 -> q_ctrl = 2 (!)
    ctrl = g.add_control_actor("ctrl")
    ctrl.add_input("in", 1)
    ctrl.add_control_output("out", 1)
    snk = g.add_kernel("snk")
    snk.add_input("in", 1)
    snk.add_control_port("c", 1)
    g.connect("src.out", "snk.in")
    g.connect("src.sig", "ctrl.in")
    g.connect("ctrl.out", "snk.c")
    return g


class TestViolations:
    def test_unsafe_graph_detected(self):
        g = build_unsafe_graph()
        report = check_rate_safety(g)
        assert not report.safe
        assert report.violations()

    def test_assert_raises_with_details(self):
        with pytest.raises(RateSafetyError) as excinfo:
            assert_rate_safe(build_unsafe_graph())
        assert "Def. 5" in str(excinfo.value)

    def test_violation_str(self):
        report = check_rate_safety(build_unsafe_graph())
        text = str(report)
        assert "NOT rate safe" in text
        assert "VIOLATED" in text


class TestDecidability:
    def test_parametric_nonuniform_rates_still_decidable(self):
        """For *consistent* graphs every Def.-5 check is symbolically
        decidable: q^L_ai is always an integer multiple of tau_i (it is
        tau_i * r_ai / gcd(r)), so cumulative rates at local counts
        always reduce to whole cycles.  This test pins that invariant
        with non-uniform parametric rates in the control area."""
        p = Param("p")
        g = TPDFGraph(parameters=[p])
        src = g.add_kernel("src")
        src.add_output("out", [p, p])       # tau = 2, parametric
        src.add_output("sig", [1, 1])
        ctrl = g.add_control_actor("ctrl")
        ctrl.add_input("in", 2)             # one firing per src cycle
        ctrl.add_control_output("out", 1)
        snk = g.add_kernel("snk")
        snk.add_input("in", 2 * p)          # q_snk = 1 per src cycle
        snk.add_control_port("c", 1)
        g.connect("src.out", "snk.in")
        g.connect("src.sig", "ctrl.in")
        g.connect("ctrl.out", "snk.c")
        report = check_rate_safety(g)
        assert not report.undecided
        assert report.safe

    def test_graph_without_controls_trivially_safe(self, simple_pipeline):
        report = check_rate_safety(simple_pipeline)
        assert report.safe
        assert report.checks == []
