"""Tests for graph transformations (Fig. 3 virtualization and mode
restriction)."""

import pytest

from repro.errors import GraphConstructionError
from repro.tpdf import (
    TPDFGraph,
    check_consistency,
    check_rate_safety,
    copy_graph,
    repetition_vector,
    restrict_to_selection,
    select_duplicate,
    virtualize_select_duplicate,
)


def build_select_dup_app() -> TPDFGraph:
    """The left-hand graph of Fig. 3: B select-duplicates to D and E."""
    g = TPDFGraph("fig3")
    a = g.add_kernel("A")
    a.add_output("out", 1)
    b = select_duplicate(g, "B", outputs=2, output_names=["to_d", "to_e"])
    ctrl = g.add_control_actor("CTRL")
    ctrl.add_input("in", 1)
    ctrl.add_control_output("out", 1)
    a.add_output("sig", 1)
    g.connect("A.sig", "CTRL.in")
    g.connect("CTRL.out", "B.ctrl")
    d = g.add_kernel("D")
    d.add_input("in", 1)
    e = g.add_kernel("E")
    e.add_input("in", 1)
    g.connect("A.out", "B.in")
    g.connect("B.to_d", "D.in")
    g.connect("B.to_e", "E.in")
    return g


class TestCopyGraph:
    def test_structure_preserved(self, fig2):
        clone = copy_graph(fig2)
        assert set(clone.kernels) == set(fig2.kernels)
        assert set(clone.controls) == set(fig2.controls)
        assert set(clone.channels) == set(fig2.channels)
        assert set(clone.parameters) == set(fig2.parameters)

    def test_copy_is_independent(self, fig2):
        clone = copy_graph(fig2)
        clone.add_kernel("extra")
        assert "extra" not in fig2.kernels

    def test_copy_preserves_analyses(self, fig2):
        clone = copy_graph(fig2)
        assert repetition_vector(clone) == repetition_vector(fig2)


class TestVirtualization:
    def test_adds_virtual_controller_and_collector(self):
        g = build_select_dup_app()
        virt = virtualize_select_duplicate(g, "B")
        assert "B_vC" in virt.controls
        assert "B_vF" in virt.kernels
        assert virt.node("B_vF").meta.get("virtual")

    def test_original_untouched(self):
        g = build_select_dup_app()
        before = set(g.channels)
        virtualize_select_duplicate(g, "B")
        assert set(g.channels) == before

    def test_virtualized_graph_consistent_and_safe(self):
        g = build_select_dup_app()
        virt = virtualize_select_duplicate(g, "B")
        assert check_consistency(virt).consistent
        assert check_rate_safety(virt).safe

    def test_repetition_restriction(self):
        g = build_select_dup_app()
        virt = virtualize_select_duplicate(g, "B")
        q_orig = repetition_vector(g)
        q_virt = repetition_vector(virt)
        for name in q_orig:
            assert q_virt[name] == q_orig[name]

    def test_requires_multiple_outputs(self, simple_pipeline):
        with pytest.raises(GraphConstructionError):
            virtualize_select_duplicate(simple_pipeline, "mid")

    def test_requires_kernel(self):
        g = build_select_dup_app()
        with pytest.raises(GraphConstructionError):
            virtualize_select_duplicate(g, "CTRL")

    def test_custom_sinks(self):
        g = build_select_dup_app()
        virt = virtualize_select_duplicate(
            g, "B", branch_sinks={"to_d": "D", "to_e": "E"}
        )
        collector_inputs = {
            p.name for p in virt.node("B_vF").data_inputs
        }
        assert collector_inputs == {"from_D", "from_E"}


class TestRestriction:
    def test_restrict_drops_unselected_channels(self):
        g = build_select_dup_app()
        restricted = restrict_to_selection(g, "B", ["in", "to_d"])
        assert "E" not in restricted.kernels
        assert all(c.dst != "E" for c in restricted.channels.values())

    def test_restriction_preserves_consistency(self):
        """Sec. III-A: consistency of the full graph implies consistency
        of every mode-restricted graph."""
        g = build_select_dup_app()
        assert check_consistency(g).consistent
        for kept in (["in", "to_d"], ["in", "to_e"]):
            restricted = restrict_to_selection(g, "B", kept)
            assert check_consistency(restricted).consistent

    def test_restriction_keeps_control_channels(self):
        g = build_select_dup_app()
        restricted = restrict_to_selection(g, "B", ["in", "to_d"])
        assert any(c.is_control for c in restricted.channels.values())

    def test_unknown_port_rejected(self):
        g = build_select_dup_app()
        with pytest.raises(GraphConstructionError):
            restrict_to_selection(g, "B", ["nonexistent"])
