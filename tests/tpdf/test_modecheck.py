"""Tests for per-mode consistency enumeration (Sec. III-A remark)."""

from repro.tpdf import TPDFGraph, enumerate_modes, fig2_graph, select_duplicate, transaction


class TestEnumeration:
    def test_fig2_all_modes_consistent(self):
        result = enumerate_modes(fig2_graph())
        assert result.full_graph_consistent
        assert result.all_modes_consistent
        # F selects between from_d and from_e: two cases.
        assert len(result.cases) == 2
        selections = {tuple(case.selections.items()) for case in result.cases}
        assert (("F", "from_d"),) in selections
        assert (("F", "from_e"),) in selections

    def test_ofdm_all_modes_consistent(self):
        from repro.apps.ofdm import build_ofdm_tpdf

        result = enumerate_modes(build_ofdm_tpdf())
        assert result.full_graph_consistent
        assert result.all_modes_consistent
        # DUP (2 outputs) x TRAN (2 inputs) = 4 combinations.
        assert len(result.cases) == 4

    def test_soundness_direction(self):
        """The paper's argument: full-graph consistency implies every
        restriction is consistent — holds on all enumerated cases."""
        for graph in (fig2_graph(),):
            result = enumerate_modes(graph)
            if result.full_graph_consistent:
                assert result.all_modes_consistent

    def test_strict_check_diagnosis(self):
        """A graph that is inconsistent only because two alternative
        branches have different gains: each individual mode is fine."""
        g = TPDFGraph()
        src = g.add_kernel("src")
        src.add_output("out", 1)
        src.add_output("sig", 1)
        dup = select_duplicate(g, "dup", outputs=2, output_names=["x2", "x3"])
        ctrl = g.add_control_actor("ctrl")
        ctrl.add_input("in", 1)
        ctrl.add_control_output("out", 1)
        g.connect("src.out", "dup.in")
        g.connect("src.sig", "ctrl.in")
        g.connect("ctrl.out", "dup.ctrl")
        # Branch A upsamples by 2, branch B by 3; the joiner consumes 2
        # per firing on both inputs.  Fully connected: q_src * 3 =
        # 2 * q_join and q_src * 2 = 2 * q_join force q_src = 0 ->
        # inconsistent.  Each single branch alone is consistent.
        a = g.add_kernel("a")
        a.add_input("in", 1)
        a.add_output("out", 2)
        b = g.add_kernel("b")
        b.add_input("in", 1)
        b.add_output("out", 3)
        join = transaction(g, "join", inputs=2, input_names=["fa", "fb"],
                           input_rate=2)
        g.connect("dup.x2", "a.in")
        g.connect("dup.x3", "b.in")
        g.connect("a.out", "join.fa")
        g.connect("b.out", "join.fb")
        # join.ctrl left unwired on purpose: wiring it would pin
        # q_join = q_src through the control channel and correctly make
        # the 3:2 branch inconsistent even in isolation — here we want
        # the pure data-rate diagnosis.

        result = enumerate_modes(g)
        assert not result.full_graph_consistent
        matched = [
            case for case in result.cases
            if (case.selections.get("dup"), case.selections.get("join"))
            in (("x2", "fa"), ("x3", "fb"))
        ]
        assert matched
        assert all(case.consistent for case in matched)

    def test_no_selectable_kernels(self, simple_pipeline):
        result = enumerate_modes(simple_pipeline)
        assert result.cases == []
        assert result.full_graph_consistent

    def test_limit_truncates(self):
        from repro.apps.ofdm import build_ofdm_tpdf

        result = enumerate_modes(build_ofdm_tpdf(), limit=2)
        assert result.truncated
        assert len(result.cases) == 2

    def test_str_rendering(self):
        result = enumerate_modes(fig2_graph())
        text = str(result)
        assert "mode restrictions" in text
        assert "F->" in text
