"""Tests for parametric consistency conditions."""

from repro.symbolic import Param, Poly
from repro.tpdf import TPDFGraph, consistency_conditions, fig2_graph


def diamond(left_rate, right_rate) -> TPDFGraph:
    """src fans out to two branches that join: consistent iff the
    branch gains agree."""
    g = TPDFGraph(parameters=[Param("p"), Param("q")])
    src = g.add_kernel("src")
    src.add_output("o1", 1)
    src.add_output("o2", 1)
    a = g.add_kernel("a")
    a.add_input("in", 1)
    a.add_output("out", left_rate)
    b = g.add_kernel("b")
    b.add_input("in", 1)
    b.add_output("out", right_rate)
    snk = g.add_kernel("snk")
    snk.add_input("i1", 1)
    snk.add_input("i2", 1)
    g.connect("src.o1", "a.in")
    g.connect("src.o2", "b.in")
    g.connect("a.out", "snk.i1")
    g.connect("b.out", "snk.i2")
    return g


class TestConditions:
    def test_consistent_graph_has_no_conditions(self):
        assert consistency_conditions(fig2_graph()) == []
        assert consistency_conditions(diamond(2, 2)) == []

    def test_concrete_mismatch_yields_constant(self):
        conditions = consistency_conditions(diamond(2, 3))
        assert len(conditions) == 1
        assert conditions[0].is_const()  # unsatisfiable: no parameters

    def test_parametric_condition(self):
        p = Poly.var("p")
        conditions = consistency_conditions(diamond(p, 3))
        assert conditions == [p - 3]

    def test_two_parameter_relation(self):
        p, q = Poly.var("p"), Poly.var("q")
        conditions = consistency_conditions(diamond(p, q))
        assert conditions == [p - q]

    def test_condition_satisfied_makes_concrete_graph_consistent(self):
        from repro.tpdf import check_consistency

        g = diamond(Poly.var("p"), 3)
        assert not check_consistency(g).consistent  # for general p
        # Substituting the condition's root yields a consistent graph.
        from repro.tpdf import concrete_repetition_vector

        q = concrete_repetition_vector(
            diamond(3, 3), {}
        )
        assert q["snk"] >= 1

    def test_conditions_deduplicated(self):
        p = Poly.var("p")
        g = diamond(p, 3)
        # A third branch replicating b's shape yields the same residual
        # p - 3 and must not be reported twice.
        src = g.node("src")
        src.add_output("o3", 1)
        c = g.add_kernel("c")
        c.add_input("in", 1)
        c.add_output("out", 3)
        snk = g.node("snk")
        snk.add_input("i3", 1)
        g.connect("src.o3", "c.in")
        g.connect("c.out", "snk.i3")
        conditions = consistency_conditions(g)
        assert conditions == [p - 3]
