"""Tests for control areas and local solutions (Defs. 3 & 4, Example 3)."""

import pytest

from repro.errors import AnalysisError
from repro.symbolic import Param, Poly
from repro.tpdf import (
    TPDFGraph,
    area_local_solution,
    control_area,
    influenced,
    local_solution,
    predecessors,
    successors,
)

P = Poly.var("p")


class TestNeighbourhoods:
    def test_prec_succ_of_c(self, fig2):
        assert predecessors(fig2, "C") == {"B"}
        assert successors(fig2, "C") == {"F"}

    def test_influenced(self, fig2):
        assert influenced(fig2, "C") == {"D", "E"}

    def test_area_matches_example3(self, fig2):
        assert control_area(fig2, "C") == {"B", "D", "E", "F"}

    def test_area_requires_control_actor(self, fig2):
        with pytest.raises(AnalysisError):
            control_area(fig2, "A")


class TestLocalSolutions:
    def test_example3_local_solution(self, fig2):
        local = area_local_solution(fig2, "C")
        assert local.factor == P
        assert local.counts == {
            "B": Poly.const(2),
            "D": Poly.const(1),
            "E": Poly.const(2),
            "F": Poly.const(2),
        }
        assert local.is_concrete()
        assert local.as_ints() == {"B": 2, "D": 1, "E": 2, "F": 2}

    def test_local_solution_of_whole_graph(self, fig2):
        local = local_solution(fig2, ["A", "B", "C", "D", "E", "F"])
        # gcd(r) = gcd(2, 2p, p, p, 2p, p) = 1 so q^L = q.
        assert local.factor == Poly.const(1)
        assert local.counts["B"] == 2 * P
        assert not local.is_concrete()
        with pytest.raises(AnalysisError):
            local.as_ints()

    def test_singleton_subset(self, fig2):
        local = local_solution(fig2, ["D"])
        assert local.counts["D"] == Poly.const(1)

    def test_empty_subset_rejected(self, fig2):
        with pytest.raises(AnalysisError):
            local_solution(fig2, [])

    def test_unknown_actor_rejected(self, fig2):
        with pytest.raises(AnalysisError):
            local_solution(fig2, ["ghost"])

    def test_str_rendering(self, fig2):
        text = str(area_local_solution(fig2, "C"))
        assert "B^2" in text and "x p" in text


class TestDeepPipelineArea:
    def test_transitive_influence(self):
        """A control actor whose prec/succ span a 3-deep pipeline: the
        one-step formula would miss the middle actor; the transitive
        reading captures it."""
        g = TPDFGraph()
        src = g.add_kernel("src")
        src.add_output("out", 1)
        src.add_output("sig", 1)
        m1 = g.add_kernel("m1")
        m1.add_input("in", 1)
        m1.add_output("out", 1)
        m2 = g.add_kernel("m2")
        m2.add_input("in", 1)
        m2.add_output("out", 1)
        snk = g.add_kernel("snk")
        snk.add_input("in", 1)
        snk.add_control_port("ctrl", 1)
        ctrl = g.add_control_actor("ctrl")
        ctrl.add_input("in", 1)
        ctrl.add_control_output("out", 1)
        g.connect("src.out", "m1.in")
        g.connect("m1.out", "m2.in")
        g.connect("m2.out", "snk.in")
        g.connect("src.sig", "ctrl.in")
        g.connect("ctrl.out", "snk.ctrl")
        area = control_area(g, "ctrl")
        assert area == {"src", "m1", "m2", "snk"}
