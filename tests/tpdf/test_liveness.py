"""Tests for liveness analysis (Sec. III-C / Fig. 4)."""

import pytest

from repro.csdf import concrete_repetition_vector as csdf_q
from repro.csdf import find_sequential_schedule
from repro.symbolic import Poly
from repro.tpdf import (
    check_cycle,
    check_liveness,
    cluster_cycle,
    clustered_graph,
    cycle_subgraph,
    cyclic_components,
)
from tests.conftest import build_fig4

P = Poly.var("p")


class TestCycleDetection:
    def test_fig2_acyclic(self, fig2):
        assert cyclic_components(fig2) == []

    def test_fig4_cycle_found(self, fig4a):
        assert cyclic_components(fig4a) == [("B", "C")]

    def test_selfloop_detected(self, simple_pipeline):
        mid = simple_pipeline.node("mid")
        mid.add_output("loop_out", 1)
        mid.add_input("loop_in", 1)
        simple_pipeline.connect("mid.loop_out", "mid.loop_in", initial_tokens=1)
        assert ("mid",) in cyclic_components(simple_pipeline)


class TestFig4:
    def test_fig4a_live(self, fig4a):
        report = check_liveness(fig4a)
        assert report.live
        verdict = report.cycles[0]
        assert verdict.decided_symbolically
        assert verdict.local.counts == {"B": Poly.const(2), "C": Poly.const(2)}
        assert verdict.schedule is not None
        assert verdict.schedule.counts() == {"B": 2, "C": 2}

    def test_fig4b_live_with_interleaved_schedule(self, fig4b):
        report = check_liveness(fig4b)
        assert report.live
        schedule = report.cycles[0].schedule
        # Grouped (B)^2 (C)^2 is NOT admissible here; the found schedule
        # must interleave (the paper's late schedule (B C C B) or our
        # equivalent B C B C).
        runs = schedule.runs()
        assert all(count == 1 for _, count in runs)

    def test_tokenless_cycle_dead(self):
        g = build_fig4([2, 0], 0)
        report = check_liveness(g)
        assert not report.live
        assert "deadlock" in report.reason.lower() or report.reason

    def test_local_solution_absorbs_parameter(self, fig4a):
        verdict = check_cycle(fig4a, ("B", "C"))
        assert verdict.local.factor == P  # qG(Z) = p


class TestCycleSubgraph:
    def test_external_channels_removed(self, fig4a):
        sub = cycle_subgraph(fig4a, ("B", "C"))
        assert set(sub.actors) == {"B", "C"}
        assert set(sub.channels) == {"e2", "e3"}
        assert sub.channel("e3").initial_tokens == 2


class TestClustering:
    def test_cluster_matches_fig4c(self, fig4a):
        clustered = clustered_graph(fig4a)
        assert set(clustered.actors) == {"A", "Omega"}
        channel = clustered.channel("e1")
        assert channel.dst == "Omega"
        assert channel.consumption.cumulative(1) == Poly.const(2)

    def test_clustered_repetition_vector(self, fig4a):
        clustered = clustered_graph(fig4a)
        assert csdf_q(clustered, {"p": 3}) == {"A": 2, "Omega": 3}

    def test_clustered_schedule_a2_omega_p(self, fig4a):
        clustered = clustered_graph(fig4a)
        schedule = find_sequential_schedule(clustered, {"p": 2})
        assert str(schedule) == "(A)^2 (Omega)^2"

    def test_cluster_name_collision(self, fig4a):
        csdf = fig4a.as_csdf()
        with pytest.raises(Exception):
            cluster_cycle(csdf, ("B", "C"), {"B": Poly.const(2), "C": Poly.const(2)},
                          name="A")

    def test_acyclic_graph_unchanged(self, fig2):
        clustered = clustered_graph(fig2)
        assert set(clustered.actors) == {"A", "B", "C", "D", "E", "F"}


class TestParametricCycles:
    def test_witness_sampling(self):
        """A cycle whose internal rates stay parametric is validated on
        sampled parameter values."""
        from repro.symbolic import Param
        from repro.tpdf import TPDFGraph

        p = Param("p", lo=1, hi=4)
        g = TPDFGraph(parameters=[p])
        a = g.add_kernel("A")
        a.add_output("out", p)
        a.add_input("back", p)
        b = g.add_kernel("B")
        b.add_input("in", p)
        b.add_output("back", p)
        g.connect("A.out", "B.in", name="fwd")
        g.connect("B.back", "A.back", name="back", initial_tokens=4)
        report = check_liveness(g)
        assert report.live
        verdict = report.cycles[0]
        assert not verdict.decided_symbolically
        assert verdict.witnesses

    def test_witness_deadlock_detected(self):
        from repro.symbolic import Param
        from repro.tpdf import TPDFGraph

        p = Param("p", lo=1, hi=8)
        g = TPDFGraph(parameters=[p])
        a = g.add_kernel("A")
        a.add_output("out", p)
        a.add_input("back", p)
        b = g.add_kernel("B")
        b.add_input("in", p)
        b.add_output("back", p)
        g.connect("A.out", "B.in", name="fwd")
        # Only 2 initial tokens: dead for p > 2 (sampled domain catches it).
        g.connect("B.back", "A.back", name="back", initial_tokens=2)
        report = check_liveness(g)
        assert not report.live


class TestInconsistentGraphs:
    def test_liveness_requires_consistency(self):
        from repro.tpdf import TPDFGraph

        g = TPDFGraph()
        a = g.add_kernel("a")
        a.add_output("o1", 1)
        a.add_output("o2", 2)
        b = g.add_kernel("b")
        b.add_input("i1", 1)
        b.add_input("i2", 1)
        g.connect("a.o1", "b.i1")
        g.connect("a.o2", "b.i2")
        report = check_liveness(g)
        assert not report.live
        assert "consistent" in report.reason
