"""Tests for TPDF rate consistency (Sec. III-A / Example 2)."""

import pytest

from repro.errors import AnalysisError
from repro.symbolic import InconsistentRatesError, Param, Poly
from repro.tpdf import (
    TPDFGraph,
    check_consistency,
    concrete_repetition_vector,
    repetition_vector,
    symbolic_schedule_string,
)

P = Poly.var("p")


class TestFig2:
    def test_symbolic_repetition_vector(self, fig2):
        q = repetition_vector(fig2)
        assert q == {
            "A": Poly.const(2), "B": 2 * P, "C": P,
            "D": P, "E": 2 * P, "F": 2 * P,
        }

    def test_base_solution_matches_example2(self, fig2):
        report = check_consistency(fig2)
        assert report.base == {
            "A": Poly.const(2), "B": 2 * P, "C": P,
            "D": P, "E": 2 * P, "F": P,
        }

    def test_concrete_values(self, fig2):
        assert concrete_repetition_vector(fig2, {"p": 1}) == {
            "A": 2, "B": 2, "C": 1, "D": 1, "E": 2, "F": 2,
        }
        assert concrete_repetition_vector(fig2, {"p": 5}) == {
            "A": 2, "B": 10, "C": 5, "D": 5, "E": 10, "F": 10,
        }

    def test_schedule_string(self, fig2):
        text = symbolic_schedule_string(fig2)
        assert text == "A^2 B^2*p C^p D^p E^2*p F^2*p"

    def test_report_str(self, fig2):
        assert "consistent" in str(check_consistency(fig2))


class TestInconsistentGraphs:
    def test_rate_mismatch_reported(self):
        g = TPDFGraph()
        a = g.add_kernel("a")
        a.add_output("o1", 1)
        a.add_output("o2", 2)
        b = g.add_kernel("b")
        b.add_input("i1", 1)
        b.add_input("i2", 1)
        g.connect("a.o1", "b.i1")
        g.connect("a.o2", "b.i2")
        report = check_consistency(g)
        assert not report.consistent
        assert report.reason
        with pytest.raises(InconsistentRatesError):
            repetition_vector(g)

    def test_parametric_inconsistency(self):
        p = Param("p")
        g = TPDFGraph(parameters=[p])
        a = g.add_kernel("a")
        a.add_output("o1", p)
        a.add_output("o2", 1)
        b = g.add_kernel("b")
        b.add_input("i1", 1)
        b.add_input("i2", 1)
        g.connect("a.o1", "b.i1")
        g.connect("a.o2", "b.i2")
        # balance forces q_b = p * q_a and q_b = q_a: only trivial.
        assert not check_consistency(g).consistent


class TestGuards:
    def test_undeclared_parameters_rejected(self):
        g = TPDFGraph()
        a = g.add_kernel("a")
        a.add_output("out", Param("hidden"))
        b = g.add_kernel("b")
        b.add_input("in", 1)
        g.connect("a.out", "b.in")
        with pytest.raises(AnalysisError):
            check_consistency(g)

    def test_schedule_string_custom_order(self, fig2):
        text = symbolic_schedule_string(fig2, order=["F", "A"])
        assert text.startswith("F^2*p")

    def test_empty_graph_consistent(self):
        report = check_consistency(TPDFGraph())
        assert report.consistent
        assert report.repetition == {}
