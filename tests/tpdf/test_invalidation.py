"""Port-level mutations must invalidate the per-graph analysis caches.

Regression suite for the stale-cache hole: the graph version used to
bump on graph-level mutators only, so ``Kernel.add_output`` on an
already-registered node or an in-place ``port.rates`` assignment would
keep serving memoized results computed for the old rates/topology.
Nodes now carry a back-reference to their graph and every port-level
mutation bumps the version.
"""

import pytest

from repro.cache import analysis_cache
from repro.tpdf import TPDFGraph, check_consistency, repetition_vector
from repro.tpdf.modes import Mode


def pipeline() -> TPDFGraph:
    g = TPDFGraph("pipe")
    a = g.add_kernel("a")
    a.add_output("out", 1)
    b = g.add_kernel("b")
    b.add_input("in", 2)
    g.connect("a.out", "b.in", name="e1")
    return g


class TestPortAdditionInvalidates:
    def test_add_output_on_connected_node_bumps_version(self):
        """``Kernel.add_output`` on a registered node must invalidate
        even before the new port is connected (the port might later
        join a channel through a path that trusts the cache)."""
        g = pipeline()
        repetition_vector(g)
        assert analysis_cache(g), "vector was memoized"
        g.node("a").add_output("probe", [1, 1])
        assert not analysis_cache(g), "port add on a connected node was invisible"

    def test_add_input_refreshes_cached_csdf_view(self):
        g = pipeline()
        view = g.as_csdf()
        g.node("b").add_input("side", [1, 0, 1])
        assert g.as_csdf() is not view, "memoized abstraction was stale"

    def test_stale_cache_regression_grown_topology(self):
        """The original hole end to end: cache a consistency verdict,
        grow the connected topology through kernel-side port adds, and
        re-query — the verdict must reflect the new channel."""
        g = pipeline()
        assert check_consistency(g).consistent
        assert str(repetition_vector(g)["a"]) == "2"
        g.node("a").add_output("x", 1)
        c = g.add_kernel("c")
        c.add_input("in", 4)
        g.connect("a.x", "c.in", name="e2")
        q = repetition_vector(g)
        assert str(q["a"]) == "4", "repetition vector served stale"
        assert str(q["c"]) == "1"


class TestRateEditInvalidates:
    def test_port_rates_assignment_bumps_version(self):
        g = pipeline()
        q = repetition_vector(g)
        assert str(q["b"]) == "1"
        g.node("b").port("in").rates = 4  # consume 4 per firing instead of 2
        q_after = repetition_vector(g)
        assert str(q_after["a"]) == "4"
        assert str(q_after["b"]) == "1"

    def test_rates_setter_still_validates_control_ports(self):
        g = TPDFGraph("ctl")
        k = g.add_kernel("k")
        port = k.add_control_port("ctrl", [1, 0])
        with pytest.raises(ValueError):
            port.rates = [2]
        assert [str(r) for r in port.rates] == ["1", "0"], "bad edit rolled back"

    def test_unattached_port_edit_needs_no_graph(self):
        from repro.tpdf.ports import Port, PortKind

        port = Port("free", PortKind.DATA_IN, 1)
        port.rates = [1, 2]  # no owner, no graph: plain assignment works
        assert len(port.rates) == 2

    def test_mode_rate_override_bumps_version(self):
        g = pipeline()
        repetition_vector(g)
        version_cache = analysis_cache(g)
        assert version_cache
        kernel = g.kernels["a"]
        kernel.set_mode_rates(Mode.WAIT_ALL, {"out": [1, 1]})
        assert not analysis_cache(g)


class TestChannelEditsInvalidate:
    def test_initial_tokens_assignment_bumps_version(self):
        g = pipeline()
        repetition_vector(g)
        assert analysis_cache(g)
        g.channel("e1").initial_tokens = 3
        assert not analysis_cache(g), "initial-token edit was invisible"

    def test_negative_initial_tokens_rejected(self):
        from repro.errors import GraphConstructionError

        g = pipeline()
        with pytest.raises(GraphConstructionError):
            g.channel("e1").initial_tokens = -1


class TestTransformedGraphsAreWired:
    def test_restricted_graph_port_edits_invalidate(self):
        """Regression: ``restrict_to_selection`` adopts copied node
        objects; their invalidation back-reference must target the
        restricted graph, not the discarded copy template."""
        from repro.apps.ofdm import build_ofdm_tpdf
        from repro.tpdf import restrict_to_selection

        restricted = restrict_to_selection(
            build_ofdm_tpdf(), "DUP", ["in", "qpsk"]
        )
        view = restricted.as_csdf()
        restricted.node("DUP").port("qpsk").rates = 2
        assert restricted.as_csdf() is not view, (
            "port edit on a restricted graph bumped the dead template"
        )

    def test_copied_graph_port_edits_invalidate(self):
        """``copy_graph`` builds through the regular constructors, so
        its nodes are wired to the clone by construction — pin it."""
        from repro.tpdf import fig2_graph
        from repro.tpdf.transform import copy_graph

        clone = copy_graph(fig2_graph())
        view = clone.as_csdf()
        clone.node("B").port("to_d").rates = 2
        assert clone.as_csdf() is not view


class TestPrebuiltNodesAreWired:
    def test_registered_node_ports_invalidate(self):
        from repro.tpdf.kernel import Kernel

        g = TPDFGraph("reg")
        node = Kernel("pre")
        node.add_output("o", 1)  # before registration: no graph to bump
        g.register(node)
        snk = g.add_kernel("snk")
        snk.add_input("i", 1)
        g.connect("pre.o", "snk.i")
        repetition_vector(g)
        assert analysis_cache(g)
        node.add_output("late", [1, 1])
        assert not analysis_cache(g)
        # And an in-place rate edit on the *connected* port is seen too.
        node.port("o").rates = [1, 1]
        assert str(repetition_vector(g)["pre"]) == "2"
