"""Tests for boundedness (Theorem 2)."""

import pytest

from repro.errors import BoundednessError
from repro.tpdf import assert_bounded, buffer_bounds, check_boundedness
from tests.conftest import build_fig4


class TestVerdicts:
    def test_fig2_bounded(self, fig2):
        report = check_boundedness(fig2)
        assert report.bounded
        assert report.consistency.consistent
        assert report.safety.safe
        assert report.liveness.live
        assert "bounded" in str(report)

    def test_fig2_assert_passes(self, fig2):
        assert_bounded(fig2)

    def test_repetition_exposed(self, fig2):
        report = check_boundedness(fig2)
        assert set(report.repetition) == {"A", "B", "C", "D", "E", "F"}

    def test_dead_graph_not_bounded(self):
        g = build_fig4([2, 0], 0)
        report = check_boundedness(g)
        assert not report.bounded
        assert any("live" in reason for reason in report.reasons)
        with pytest.raises(BoundednessError):
            assert_bounded(g)

    def test_inconsistent_graph_not_bounded(self):
        from repro.tpdf import TPDFGraph

        g = TPDFGraph()
        a = g.add_kernel("a")
        a.add_output("o1", 1)
        a.add_output("o2", 3)
        b = g.add_kernel("b")
        b.add_input("i1", 1)
        b.add_input("i2", 1)
        g.connect("a.o1", "b.i1")
        g.connect("a.o2", "b.i2")
        report = check_boundedness(g)
        assert not report.bounded
        assert any("inconsistent" in r for r in report.reasons)


class TestBufferBounds:
    def test_bounds_positive(self, fig2):
        bounds = buffer_bounds(fig2, {"p": 2})
        assert set(bounds) == {f"e{i}" for i in range(1, 8)}
        assert all(v >= 0 for v in bounds.values())
        # Every channel that carries tokens needs capacity > 0.
        assert bounds["e1"] >= 1

    def test_minimized_not_worse_than_grouped(self, fig2):
        minimized = sum(buffer_bounds(fig2, {"p": 3}, minimize=True).values())
        grouped = sum(buffer_bounds(fig2, {"p": 3}, minimize=False).values())
        assert minimized <= grouped

    def test_bounds_scale_with_parameter(self, fig2):
        small = sum(buffer_bounds(fig2, {"p": 1}).values())
        large = sum(buffer_bounds(fig2, {"p": 6}).values())
        assert large > small
