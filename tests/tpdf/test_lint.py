"""Tests for the structural lint pass."""

import pytest

from repro.tpdf import TPDFGraph, assert_clean, clock, fig2_graph, lint


def codes(graph) -> set[str]:
    return {warning.code for warning in lint(graph)}


class TestCleanGraphs:
    def test_fig2_clean(self):
        assert lint(fig2_graph()) == []
        assert_clean(fig2_graph())

    def test_apps_clean(self):
        from repro.apps.ofdm import build_ofdm_tpdf

        assert lint(build_ofdm_tpdf()) == []


class TestWarnings:
    def test_dangling_port(self):
        g = TPDFGraph()
        k = g.add_kernel("k")
        k.add_output("never_used", 1)
        assert "dangling-port" in codes(g)

    def test_unfed_control_port(self):
        g = TPDFGraph()
        src = g.add_kernel("src")
        src.add_output("out", 1)
        k = g.add_kernel("k")
        k.add_input("in", 1)
        k.add_control_port("ctrl", 1)
        g.connect("src.out", "k.in")
        assert "unfed-control-port" in codes(g)

    def test_ineffective_control(self):
        g = TPDFGraph()
        src = g.add_kernel("src")
        src.add_output("sig", 1)
        c = g.add_control_actor("c")
        c.add_input("in", 1)
        g.connect("src.sig", "c.in")
        assert "ineffective-control" in codes(g)

    def test_unreachable_actor(self):
        g = TPDFGraph()
        a = g.add_kernel("a")
        a.add_output("o", 1)
        b = g.add_kernel("b")
        b.add_input("i", 1)
        g.connect("a.o", "b.i")
        # A two-node cycle with no source feeding it: unreachable.
        x = g.add_kernel("x")
        x.add_output("o", 1)
        x.add_input("i", 1)
        y = g.add_kernel("y")
        y.add_output("o", 1)
        y.add_input("i", 1)
        g.connect("x.o", "y.i", initial_tokens=1)
        g.connect("y.o", "x.i", initial_tokens=1)
        assert "unreachable" in codes(g)

    def test_zero_rate_port(self):
        g = TPDFGraph()
        a = g.add_kernel("a")
        a.add_output("o", [0, 0])
        b = g.add_kernel("b")
        b.add_input("i", 1)
        g.connect("a.o", "b.i")
        assert "zero-rate-port" in codes(g)

    def test_undeclared_parameter(self):
        from repro.symbolic import Param

        g = TPDFGraph()
        a = g.add_kernel("a")
        a.add_output("o", Param("ghost"))
        b = g.add_kernel("b")
        b.add_input("i", 1)
        g.connect("a.o", "b.i")
        assert "undeclared-parameter" in codes(g)

    def test_clock_in_cycle(self):
        g = TPDFGraph()
        ck = clock(g, "ck", period=1.0)
        ck.add_input("feedback", 1)
        k = g.add_kernel("k")
        k.add_control_port("ctrl", 1)
        k.add_output("out", 1)
        g.connect("ck.tick", "k.ctrl")
        g.connect("k.out", "ck.feedback", initial_tokens=1)
        assert "clock-in-cycle" in codes(g)

    def test_assert_clean_raises(self):
        g = TPDFGraph()
        k = g.add_kernel("k")
        k.add_output("never", 1)
        with pytest.raises(ValueError) as excinfo:
            assert_clean(g)
        assert "dangling-port" in str(excinfo.value)
