"""Tests for rational functions."""

from fractions import Fraction

import pytest

from repro.symbolic import Poly, Rat

P = Poly.var("p")
Q = Poly.var("q")


class TestReduction:
    def test_exact_quotient_becomes_polynomial(self):
        assert Rat(P * Q, P).is_polynomial()
        assert Rat(P * Q, P).as_poly() == Q

    def test_constant_denominator_absorbed(self):
        r = Rat(P, 2)
        assert r.is_polynomial()
        assert r.as_poly() == P.scale(Fraction(1, 2))

    def test_common_factor_cancelled(self):
        assert Rat(2 * P * Q, 2 * P * (P + 1)) == Rat(Q, P + 1)

    def test_zero_numerator_normalizes(self):
        r = Rat(Poly(), P)
        assert r.is_zero()
        assert r.den == Poly.const(1)

    def test_zero_denominator_rejected(self):
        with pytest.raises(ZeroDivisionError):
            Rat(P, Poly())

    def test_sign_normalized_to_denominator(self):
        r = Rat(P, -Q)
        assert r == Rat(-P, Q)
        lead = r.den.leading()[1]
        assert lead > 0


class TestArithmetic:
    def test_add(self):
        assert Rat(1, P) + Rat(1, P) == Rat(2, P)

    def test_add_different_denominators(self):
        assert Rat(1, P) + Rat(1, Q) == Rat(P + Q, P * Q)

    def test_mul(self):
        assert Rat(P, Q) * Rat(Q, P) == Rat(1)

    def test_div(self):
        assert Rat(P) / Rat(Q) == Rat(P, Q)

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            Rat(P) / Rat(0)

    def test_sub_self_is_zero(self):
        assert (Rat(P, Q) - Rat(P, Q)).is_zero()

    def test_mixed_with_ints(self):
        assert 2 * Rat(P, 2) == Rat(P)
        assert (1 / Rat(P)) == Rat(1, P)


class TestEvaluation:
    def test_evaluate(self):
        assert Rat(P, Q).evaluate({"p": 6, "q": 4}) == Fraction(3, 2)

    def test_evaluate_zero_denominator(self):
        r = Rat(P, Q - 4)
        with pytest.raises(ZeroDivisionError):
            r.evaluate({"p": 1, "q": 4})

    def test_subs(self):
        assert Rat(P * Q, Q).subs({"q": 3}) == Rat(P)


class TestIdentity:
    def test_cross_multiplication_equality(self):
        assert Rat(P, 2) == Rat(2 * P, 4)

    def test_equality_with_poly(self):
        assert Rat(P * Q, Q) == P

    def test_hash_consistent_for_reduced_forms(self):
        assert hash(Rat(2 * P, 4)) == hash(Rat(P, 2))

    def test_str(self):
        assert str(Rat(P)) == "p"
        assert str(Rat(P, Q)) == "p/q"
        assert "(" in str(Rat(P + 1, Q))
