"""Hypothesis field-law tests for rational functions."""

from fractions import Fraction

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.symbolic import Poly, Rat

P = Poly.var("p")
Q = Poly.var("q")


def small_rats():
    """Strategy: quotients of small non-trivial polynomials."""
    coeff = st.integers(min_value=-3, max_value=3)
    exps = st.tuples(st.integers(0, 1), st.integers(0, 1))

    def build_poly(pairs):
        total = Poly()
        for (ep, eq), c in pairs:
            total = total + (P**ep) * (Q**eq) * c
        return total

    polys = st.lists(st.tuples(exps, coeff), min_size=1, max_size=2).map(build_poly)

    def build_rat(pair):
        num, den = pair
        if den.is_zero():
            den = Poly.const(1)
        return Rat(num, den)

    return st.tuples(polys, polys).map(build_rat)


class TestFieldLaws:
    @given(small_rats(), small_rats())
    def test_add_commutative(self, a, b):
        assert a + b == b + a

    @given(small_rats(), small_rats(), small_rats())
    def test_add_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(small_rats(), small_rats())
    def test_mul_commutative(self, a, b):
        assert a * b == b * a

    @given(small_rats(), small_rats(), small_rats())
    def test_distributive(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(small_rats())
    def test_additive_inverse(self, a):
        assert (a + (-a)).is_zero()

    @given(small_rats())
    def test_multiplicative_inverse(self, a):
        assume(not a.is_zero())
        assert a * (1 / a) == Rat(1)

    @given(small_rats(), small_rats())
    def test_sub_then_add_roundtrip(self, a, b):
        assert (a - b) + b == a

    @given(small_rats(), small_rats())
    def test_div_then_mul_roundtrip(self, a, b):
        assume(not b.is_zero())
        assert (a / b) * b == a


class TestEvaluationHomomorphism:
    @given(small_rats(), small_rats(), st.integers(1, 5), st.integers(1, 5))
    def test_evaluate_respects_operations(self, a, b, pv, qv):
        bindings = {"p": pv, "q": qv}
        try:
            va = a.evaluate(bindings)
            vb = b.evaluate(bindings)
            vsum = (a + b).evaluate(bindings)
            vprod = (a * b).evaluate(bindings)
        except ZeroDivisionError:
            return  # denominator vanished at this point: fine
        assert vsum == va + vb
        assert vprod == va * vb

    @given(small_rats())
    def test_reduction_preserves_value(self, a):
        """The canonical form equals the raw quotient numerically."""
        bindings = {"p": 3, "q": 5}
        try:
            value = a.evaluate(bindings)
        except ZeroDivisionError:
            return
        num = a.num.evaluate(bindings)
        den = a.den.evaluate(bindings)
        assert den != 0
        assert value == Fraction(num) / Fraction(den)
