"""Tests for the polynomial ring, including hypothesis law checks."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.symbolic import ONE, ZERO, Poly, Param, poly_gcd, poly_gcd_many, poly_lcm

P = Poly.var("p")
Q = Poly.var("q")


def small_polys(max_terms: int = 3):
    """Hypothesis strategy for small polynomials in p, q."""
    coeff = st.integers(min_value=-4, max_value=4)
    exps = st.tuples(st.integers(0, 2), st.integers(0, 2))

    def build(pairs):
        total = Poly()
        for (ep, eq), c in pairs:
            total = total + (P**ep) * (Q**eq) * c
        return total

    return st.lists(st.tuples(exps, coeff), max_size=max_terms).map(build)


class TestConstruction:
    def test_const_and_var(self):
        assert Poly.const(3).const_value() == 3
        assert Poly.var("p").variables() == {"p"}

    def test_zero_is_falsy(self):
        assert not ZERO
        assert ONE

    def test_coerce_param(self):
        assert Poly.coerce(Param("p")) == P

    def test_coerce_fraction(self):
        assert Poly.coerce(Fraction(1, 2)).const_value() == Fraction(1, 2)

    def test_coerce_rejects_strings(self):
        with pytest.raises(TypeError):
            Poly.coerce("p")

    def test_zero_coefficients_dropped(self):
        assert (P - P).is_zero()
        assert (P + 0) == P


class TestInspection:
    def test_degree(self):
        assert ZERO.degree() == -1
        assert ONE.degree() == 0
        assert (P * P * Q).degree() == 3

    def test_is_monomial(self):
        assert (2 * P).is_monomial()
        assert not (P + 1).is_monomial()

    def test_leading_graded_lex(self):
        poly = P + P * P * Q + Q
        key, coeff = poly.leading()
        assert dict(key) == {"p": 2, "q": 1}
        assert coeff == 1

    def test_content(self):
        assert (4 * P + 6 * Q).content() == 2
        assert (P.scale(Fraction(1, 2)) + Q.scale(Fraction(3, 2))).content() == Fraction(1, 2)

    def test_monomial_content(self):
        poly = P * P * Q + P * Q
        assert dict(poly.monomial_content()) == {"p": 1, "q": 1}

    def test_const_value_raises_on_nonconst(self):
        with pytest.raises(ValueError):
            P.const_value()

    def test_nonnegative_coefficients(self):
        assert (P + 2 * Q).has_nonnegative_coefficients()
        assert not (P - Q).has_nonnegative_coefficients()

    def test_coefficient_lcm_denominator(self):
        poly = P.scale(Fraction(1, 2)) + Q.scale(Fraction(1, 3))
        assert poly.coefficient_lcm_denominator() == 6


class TestArithmetic:
    def test_add_commutes_concrete(self):
        assert P + Q == Q + P

    def test_distributive_concrete(self):
        assert P * (Q + 1) == P * Q + P

    def test_pow(self):
        assert (P + 1) ** 2 == P * P + 2 * P + 1
        assert P**0 == ONE

    def test_pow_negative_rejected(self):
        with pytest.raises(ValueError):
            P ** (-1)

    def test_scale(self):
        assert (2 * P).scale(Fraction(1, 2)) == P

    def test_radd_rsub(self):
        assert 1 + P == P + 1
        assert (1 - P) + P == ONE

    @given(small_polys(), small_polys())
    def test_add_commutative(self, a, b):
        assert a + b == b + a

    @given(small_polys(), small_polys(), small_polys())
    def test_mul_distributes(self, a, b, c):
        assert a * (b + c) == a * b + a * c

    @given(small_polys(), small_polys(), small_polys())
    def test_mul_associative(self, a, b, c):
        assert (a * b) * c == a * (b * c)

    @given(small_polys())
    def test_additive_inverse(self, a):
        assert (a + (-a)).is_zero()


class TestDivision:
    def test_exact_division(self):
        product = (P + Q) * (2 * P + 3)
        assert product.try_div(P + Q) == 2 * P + 3

    def test_division_by_constant(self):
        assert (2 * P).try_div(2) == P

    def test_non_divisible_returns_none(self):
        assert (P + 1).try_div(Q) is None

    def test_divide_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            P.try_div(ZERO)

    def test_zero_dividend(self):
        assert ZERO.try_div(P) == ZERO

    def test_divides_predicate(self):
        assert P.divides(P * Q)
        assert not (P + 1).divides(P)

    @given(small_polys(), small_polys())
    def test_product_always_divisible(self, a, b):
        product = a * b
        if not b.is_zero():
            quotient = product.try_div(b)
            assert quotient is not None
            assert quotient * b == product


class TestGcdLcm:
    def test_gcd_separates_content(self):
        assert poly_gcd(2, P) == ONE
        assert poly_gcd(2, 2 * P) == Poly.const(2)

    def test_gcd_monomials(self):
        assert poly_gcd(2 * P, 4 * P * Q) == 2 * P

    def test_gcd_with_zero(self):
        assert poly_gcd(ZERO, P) == P

    def test_gcd_divisible_pair(self):
        assert poly_gcd(P * (P + Q), P + Q) == P + Q

    def test_gcd_many(self):
        assert poly_gcd_many([2 * P, P, 2 * P, P]) == P

    def test_lcm(self):
        assert poly_lcm(2, P) == 2 * P
        assert poly_lcm(P, P * Q) == P * Q

    def test_lcm_zero(self):
        assert poly_lcm(ZERO, P) == ZERO

    @given(small_polys(), small_polys())
    def test_gcd_divides_both(self, a, b):
        g = poly_gcd(a, b)
        if not g.is_zero():
            assert g.divides(a)
            assert g.divides(b)

    @given(small_polys(), small_polys())
    def test_lcm_is_common_multiple(self, a, b):
        if a.is_zero() or b.is_zero():
            return
        m = poly_lcm(a, b)
        assert a.divides(m)
        assert b.divides(m)


class TestEvaluation:
    def test_evaluate(self):
        poly = 2 * P * Q + 3
        assert poly.evaluate({"p": 2, "q": 5}) == 23

    def test_evaluate_int_rejects_fractions(self):
        with pytest.raises(ValueError):
            P.scale(Fraction(1, 2)).evaluate_int({"p": 1})

    def test_evaluate_missing_binding(self):
        with pytest.raises(KeyError):
            P.evaluate({})

    def test_subs_partial(self):
        poly = P * Q + Q
        assert poly.subs({"p": 3}) == 4 * Q

    def test_subs_complete_matches_evaluate(self):
        poly = P * P + 2 * Q
        assert poly.subs({"p": 3, "q": 4}).const_value() == poly.evaluate({"p": 3, "q": 4})

    @given(small_polys(), st.integers(1, 5), st.integers(1, 5))
    def test_evaluate_is_ring_hom(self, a, pv, qv):
        bindings = {"p": pv, "q": qv}
        assert (a + a).evaluate(bindings) == 2 * a.evaluate(bindings)
        assert (a * a).evaluate(bindings) == a.evaluate(bindings) ** 2


class TestRendering:
    def test_zero(self):
        assert str(ZERO) == "0"

    def test_ordering_and_signs(self):
        assert str(P * P - Q + 1) == "p**2 - q + 1"

    def test_coefficient_rendering(self):
        assert str(2 * P * Q) == "2*p*q"
        assert str(-P) == "-p"

    def test_fraction_coefficient(self):
        assert str(P.scale(Fraction(1, 2))) == "1/2*p"

    def test_repr_roundtrip_info(self):
        assert "Poly" in repr(P + 1)
