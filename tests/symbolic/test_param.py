"""Tests for integer parameters."""

import pytest

from repro.symbolic import Param, Poly, params
from repro.symbolic.param import normalize_bindings


class TestParamValidation:
    def test_basic_construction(self):
        p = Param("p")
        assert p.name == "p"
        assert p.lo == 1
        assert p.hi is None

    def test_bounded_domain(self):
        beta = Param("beta", lo=1, hi=100)
        assert beta.contains(1)
        assert beta.contains(100)
        assert not beta.contains(0)
        assert not beta.contains(101)

    def test_unbounded_domain_contains(self):
        p = Param("p", lo=3)
        assert not p.contains(2)
        assert p.contains(10**9)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Param("")

    def test_nonalnum_name_rejected(self):
        with pytest.raises(ValueError):
            Param("a-b")

    def test_leading_digit_rejected(self):
        with pytest.raises(ValueError):
            Param("2p")

    def test_underscore_allowed(self):
        assert Param("my_param").name == "my_param"

    def test_lower_bound_below_one_rejected(self):
        with pytest.raises(ValueError):
            Param("p", lo=0)

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            Param("p", lo=5, hi=4)


class TestParamIdentity:
    def test_equality_by_name(self):
        assert Param("p") == Param("p", lo=2)
        assert Param("p") != Param("q")

    def test_hash_by_name(self):
        assert hash(Param("p")) == hash(Param("p", lo=3, hi=9))

    def test_repr_mentions_domain(self):
        assert "lo=2" in repr(Param("p", lo=2))
        assert "hi=7" in repr(Param("x", lo=2, hi=7))

    def test_str_is_name(self):
        assert str(Param("beta")) == "beta"


class TestParamSampling:
    def test_samples_start_at_lower_bound(self):
        assert Param("p", lo=4).sample_values()[0] == 4

    def test_samples_respect_upper_bound(self):
        values = Param("p", lo=1, hi=2).sample_values(5)
        assert all(v <= 2 for v in values)
        assert 2 in values

    def test_singleton_domain(self):
        assert Param("p", lo=3, hi=3).sample_values() == [3]


class TestParamArithmetic:
    def test_add_yields_poly(self):
        p = Param("p")
        assert p + 1 == Poly.var("p") + 1

    def test_mul_and_pow(self):
        p = Param("p")
        assert 2 * p == Poly.var("p").scale(2)
        assert p**2 == Poly.var("p") * Poly.var("p")

    def test_sub_and_neg(self):
        p = Param("p")
        assert (p - p).is_zero()
        assert (-p) + p == 0


class TestParamsHelper:
    def test_creates_each(self):
        a, b, c = params("a b c")
        assert [x.name for x in (a, b, c)] == ["a", "b", "c"]

    def test_domain_applied_to_all(self):
        (x,) = params("x", lo=2, hi=9)
        assert (x.lo, x.hi) == (2, 9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            params("  ")


class TestBindings:
    def test_param_keys_normalized(self):
        out = normalize_bindings({Param("p"): 3, "q": 4})
        assert out == {"p": 3, "q": 4}

    def test_values_become_fractions(self):
        from fractions import Fraction

        out = normalize_bindings({"p": 3})
        assert out["p"] == Fraction(3)
