"""Tests for the symbolic balance-equation solver."""

import pytest

from repro.symbolic import InconsistentRatesError, Poly, solve_balance

P = Poly.var("p")
ONE = Poly.const(1)
TWO = Poly.const(2)


class TestChains:
    def test_unit_chain(self):
        r = solve_balance(["a", "b"], [("a", "b", ONE, ONE)])
        assert r == {"a": ONE, "b": ONE}

    def test_rate_ratio(self):
        r = solve_balance(["a", "b"], [("a", "b", TWO, Poly.const(3))])
        assert (r["a"], r["b"]) == (Poly.const(3), TWO)

    def test_parametric_chain(self):
        r = solve_balance(["a", "b"], [("a", "b", P, ONE)])
        assert r["a"] == ONE
        assert r["b"] == P

    def test_parametric_downscale(self):
        r = solve_balance(["a", "b"], [("a", "b", ONE, P)])
        assert r["a"] == P
        assert r["b"] == ONE

    def test_fig2_example(self):
        nodes = ["A", "B", "C", "D", "E", "F"]
        edges = [
            ("A", "B", P, ONE),
            ("B", "C", ONE, TWO),
            ("B", "D", ONE, TWO),
            ("B", "E", ONE, ONE),
            ("C", "F", TWO, TWO),
            ("D", "F", TWO, TWO),
            ("E", "F", ONE, TWO),
        ]
        r = solve_balance(nodes, edges)
        expected = {
            "A": TWO, "B": 2 * P, "C": P, "D": P, "E": 2 * P, "F": P,
        }
        assert r == expected


class TestCyclesAndConsistency:
    def test_consistent_cycle(self):
        edges = [
            ("a", "b", TWO, ONE),
            ("b", "c", ONE, TWO),
            ("c", "a", TWO, TWO),
        ]
        r = solve_balance(["a", "b", "c"], edges)
        assert r == {"a": ONE, "b": TWO, "c": ONE}

    def test_inconsistent_cycle_raises(self):
        edges = [
            ("a", "b", ONE, ONE),
            ("b", "a", TWO, ONE),
        ]
        with pytest.raises(InconsistentRatesError):
            solve_balance(["a", "b"], edges)

    def test_inconsistent_parametric_cycle(self):
        edges = [
            ("a", "b", P, ONE),
            ("b", "a", ONE, ONE),
        ]
        with pytest.raises(InconsistentRatesError):
            solve_balance(["a", "b"], edges)

    def test_parametric_cycle_consistent(self):
        edges = [
            ("a", "b", P, ONE),
            ("b", "a", ONE, P),
        ]
        r = solve_balance(["a", "b"], edges)
        assert r["a"] == ONE
        assert r["b"] == P


class TestDegenerateEdges:
    def test_zero_zero_edge_is_vacuous(self):
        r = solve_balance(
            ["a", "b"],
            [("a", "b", Poly(), Poly()), ("a", "b", ONE, ONE)],
        )
        assert r == {"a": ONE, "b": ONE}

    def test_production_into_zero_consumption_raises(self):
        with pytest.raises(InconsistentRatesError):
            solve_balance(["a", "b"], [("a", "b", ONE, Poly())])

    def test_negative_rate_rejected(self):
        with pytest.raises(InconsistentRatesError):
            solve_balance(["a", "b"], [("a", "b", P - 1, ONE)])

    def test_unknown_endpoint(self):
        with pytest.raises(KeyError):
            solve_balance(["a"], [("a", "zzz", ONE, ONE)])


class TestComponents:
    def test_isolated_node_gets_one(self):
        r = solve_balance(["a", "b", "lonely"], [("a", "b", ONE, TWO)])
        assert r["lonely"] == ONE

    def test_components_normalized_independently(self):
        edges = [
            ("a", "b", TWO, ONE),
            ("x", "y", Poly.const(3), ONE),
        ]
        r = solve_balance(["a", "b", "x", "y"], edges)
        assert (r["a"], r["b"]) == (ONE, TWO)
        assert (r["x"], r["y"]) == (ONE, Poly.const(3))

    def test_empty_graph(self):
        assert solve_balance([], []) == {}


class TestNormalization:
    def test_binomial_rates(self):
        n, l, beta = Poly.var("N"), Poly.var("L"), Poly.var("beta")
        edges = [("a", "b", beta * (n + l), beta * (n + l))]
        r = solve_balance(["a", "b"], edges)
        assert r == {"a": ONE, "b": ONE}

    def test_binomial_scaling(self):
        n, l = Poly.var("N"), Poly.var("L")
        edges = [("a", "b", n + l, ONE)]
        r = solve_balance(["a", "b"], edges)
        assert r["a"] == ONE
        assert r["b"] == n + l

    def test_minimality_no_common_factor(self):
        edges = [("a", "b", 2 * P, 2 * P)]
        r = solve_balance(["a", "b"], edges)
        assert r == {"a": ONE, "b": ONE}

    def test_solution_strictly_positive(self):
        r = solve_balance(["a", "b"], [("a", "b", P, TWO)])
        for value in r.values():
            assert value.has_nonnegative_coefficients()
            assert not value.is_zero()
