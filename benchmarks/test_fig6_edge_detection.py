"""FIG6 — the edge-detection case study (Sec. IV-A).

Two artefacts:

* the execution-time table (paper, on an i3 @ 2.53 GHz, 1024x1024:
  QuickMask 200 / Sobel 473 / Prewitt 522 / Canny 1040 ms) — our cost
  model is calibrated to that row, and we print our real numpy filters'
  wall-clock ratios next to the paper's as evidence the ordering is
  intrinsic;
* the deadline behaviour: with the 500 ms clock, the transaction must
  select the best *finished* detector (Sobel for these numbers; Canny
  only wins once the deadline exceeds its completion time).
"""

import numpy as np

from repro.apps.edge import (
    DEFAULT_METHODS,
    PAPER_TIMES_MS,
    fig6_table,
    run_edge_experiment,
    synthetic_scene,
    wallclock_ratios,
)
from repro.util import ascii_table

IMAGE = np.zeros((1024, 1024))


def run_deadline_study():
    # A featureless frame runs Canny at the fast end of its content
    # span (884 model ms); 700 ms sits between Prewitt (522) and that.
    rows = []
    for period in (250.0, 500.0, 700.0, 1300.0):
        exp = run_edge_experiment([IMAGE], period=period, frames=1)
        rows.append((period, exp.finished_by_deadline(), exp.chosen_methods()))
    return rows


def test_fig6_timing_table(benchmark, report):
    ratios = benchmark.pedantic(
        wallclock_ratios, args=(synthetic_scene(256, noise=4.0),),
        rounds=3, iterations=1,
    )
    paper_ratio = {m: PAPER_TIMES_MS[m] / PAPER_TIMES_MS["quickmask"]
                   for m in DEFAULT_METHODS}
    rows = [
        [m, paper_ms, model_ms, f"{paper_ratio[m]:.2f}x", f"{ratios[m]:.2f}x"]
        for (m, paper_ms, model_ms) in fig6_table()
    ]
    table = ascii_table(
        ["method", "paper ms (i3)", "model ms", "paper ratio", "our numpy ratio"],
        rows,
        title="Fig. 6 table — detector execution times (1024x1024)",
    )
    # Shape check: our real filters preserve the paper's headline
    # ordering — Canny is the most expensive by a clear margin.  The
    # QuickMask/Sobel/Prewitt gap is within wall-clock noise for numpy
    # convolutions, so only the robust part of the ordering is asserted.
    assert ratios["canny"] == max(ratios[m] for m in DEFAULT_METHODS)
    assert ratios["canny"] > 2.0 * ratios["quickmask"]
    report("fig6_timing_table", table)


def test_fig6_deadline_selection(benchmark, report):
    rows = benchmark(run_deadline_study)
    by_period = {period: chosen for period, _, chosen in rows}
    assert by_period[250.0] == ["quickmask"]
    assert by_period[500.0] == ["sobel"]   # the paper's 500 ms deadline
    assert by_period[700.0] == ["prewitt"]
    assert by_period[1300.0] == ["canny"]

    table = ascii_table(
        ["deadline (ms)", "finished by deadline", "transaction selects"],
        [[p, ", ".join(f), ", ".join(c)] for p, f, c in rows],
        title="Fig. 6 behaviour — best finished result at each deadline "
              "(priority Canny > Prewitt > Sobel > QuickMask)",
    )
    report("fig6_deadline_selection", table)
