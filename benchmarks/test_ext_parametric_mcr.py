"""EXT5 — parametric (symbolic) MCR vs. per-binding Howard sweeps.

The engine's pitch is that one piecewise-symbolic build replaces an
N-binding concrete sweep.  This bench quantifies it on the graphs
where the piecewise structure is real:

* the two-parameter radio front-end (full 8x8 grid, 8 regions);
* the paper's Fig. 2 graph as CSDF over p = 1..100, whose HSDF
  expansion grows linearly with p — exactly the regime where
  re-expanding per binding hurts.

Each comparison asserts bit-for-bit equality between the piecewise
evaluation and the concrete Howard result at every grid point before
recording the timings; the piecewise objects themselves are persisted
as JSON artefacts (``repro.io.piecewise_to_dict``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.csdf import max_cycle_ratio, parametric_mcr
from repro.gallery import parametric_radio_graph
from repro.io import piecewise_to_dict
from repro.tpdf import fig2_graph
from repro.util import ascii_table, write_csv

RESULTS = Path(__file__).parent / "results"


def _sweep_vs_parametric(graph, domain, grid):
    """Time the concrete per-binding sweep and the single parametric
    build + grid evaluation; assert equality point by point."""
    start = time.perf_counter()
    concrete = [max_cycle_ratio(graph, bindings) for bindings in grid]
    sweep_s = time.perf_counter() - start

    start = time.perf_counter()
    piecewise = parametric_mcr(graph, domain)
    symbolic = [piecewise.evaluate_float(bindings) for bindings in grid]
    parametric_s = time.perf_counter() - start

    assert symbolic == concrete, "piecewise MCR diverged from Howard"
    return piecewise, sweep_s, parametric_s


def test_ext5_parametric_vs_concrete(benchmark, report):
    radio = parametric_radio_graph()
    radio_domain = {"b": (1, 8), "c": (1, 8)}
    fig2 = fig2_graph().as_csdf()
    fig2_domain = {"p": (1, 100)}

    radio_grid = [{"b": b, "c": c}
                  for b in range(1, 9) for c in range(1, 9)]
    fig2_grid = [{"p": p} for p in range(1, 101)]

    radio_pw, radio_sweep, radio_parametric = _sweep_vs_parametric(
        radio, radio_domain, radio_grid)

    # Benchmark the bigger comparison (fresh graph per round so the
    # per-binding caches never leak between timing runs).
    def fig2_comparison():
        graph = fig2_graph().as_csdf()
        return _sweep_vs_parametric(graph, fig2_domain, fig2_grid)

    fig2_pw, fig2_sweep, fig2_parametric = benchmark.pedantic(
        fig2_comparison, rounds=1, iterations=1)

    rows = [
        ["radio2p (b,c = 1..8)", len(radio_grid), len(radio_pw.regions),
         f"{radio_sweep * 1000:.1f}", f"{radio_parametric * 1000:.1f}",
         f"{radio_sweep / radio_parametric:.1f}x"],
        ["fig2 (p = 1..100)", len(fig2_grid), len(fig2_pw.regions),
         f"{fig2_sweep * 1000:.1f}", f"{fig2_parametric * 1000:.1f}",
         f"{fig2_sweep / fig2_parametric:.1f}x"],
    ]
    table = ascii_table(
        ["graph", "bindings", "regions", "concrete sweep (ms)",
         "parametric (ms)", "speedup"],
        rows,
        title="EXT5 — one piecewise-symbolic MCR vs. per-binding Howard "
              "(equal bit-for-bit at every grid point)",
    )
    write_csv(
        "benchmarks/results/ext5_parametric_mcr.csv",
        ["graph", "bindings", "regions", "sweep_s", "parametric_s"],
        [
            ["radio2p", len(radio_grid), len(radio_pw.regions),
             radio_sweep, radio_parametric],
            ["fig2", len(fig2_grid), len(fig2_pw.regions),
             fig2_sweep, fig2_parametric],
        ],
    )
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / "ext5_piecewise_radio.json").write_text(
        json.dumps(piecewise_to_dict(radio_pw), indent=2) + "\n")
    (RESULTS / "ext5_piecewise_fig2.json").write_text(
        json.dumps(piecewise_to_dict(fig2_pw), indent=2) + "\n")
    report("ext5_parametric_mcr", table + "\n\n" + radio_pw.describe())


def test_ext5_piecewise_build_cost(benchmark):
    """Timing reference: one cold piecewise build on the radio graph."""

    def build():
        graph = parametric_radio_graph()  # fresh: cold caches
        return parametric_mcr(graph, {"b": (1, 8), "c": (1, 8)})

    piecewise = benchmark(build)
    assert len(piecewise.regions) >= 2
