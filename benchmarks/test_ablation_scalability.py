"""ABL3 — scalability of the static analyses.

The paper argues TPDF keeps CSDF-style compile-time analyzability; this
bench measures how the full analysis chain (consistency + rate safety +
liveness) scales with graph size on generated consistent graphs
(concrete and parametric), giving the reproduction a cost profile the
paper does not report but a downstream adopter will ask for.
"""

import time

import pytest

from repro.analysis import analyze, analyze_batch
from repro.tpdf import check_boundedness, random_consistent_graph
from repro.util import ascii_table

SIZES = (10, 20, 40, 80)


@pytest.mark.parametrize("n_actors", SIZES)
def test_analysis_scaling_concrete(benchmark, n_actors):
    graph = random_consistent_graph(
        n_actors, extra_edges=n_actors // 2, n_cycles=2, seed=7,
    )
    result = benchmark(check_boundedness, graph)
    assert result.bounded


@pytest.mark.parametrize("n_actors", SIZES)
def test_analysis_scaling_parametric(benchmark, n_actors):
    graph = random_consistent_graph(
        n_actors, extra_edges=n_actors // 2, seed=11, parametric=True,
    )
    result = benchmark(check_boundedness, graph)
    assert result.bounded


def test_batch_analysis_scaling(benchmark):
    """The unified batch front door (static stages) across one size
    sweep: exercises the shared per-graph caches end to end."""
    graphs = [
        random_consistent_graph(n, extra_edges=n // 2, n_cycles=2, seed=7)
        for n in SIZES
    ]
    options = dict(with_mcr=False, with_buffers=False, with_throughput=False)
    reports = benchmark(analyze_batch, graphs, **options)
    assert all(r.bounded for r in reports)


def test_scalability_summary(benchmark, report):
    """Summary table of the full chain across sizes (single shot each;
    the benchmark fixture times one representative mid-size run so the
    test participates in --benchmark-only sessions).

    Each row is a *cold* :func:`repro.analysis.analyze` call on a
    freshly generated graph — the honest per-graph cost, no warm-cache
    flattery.  A second column reports the warm re-analysis cost (all
    intermediates cached on the graph).
    """
    benchmark.pedantic(
        check_boundedness,
        args=(random_consistent_graph(20, extra_edges=10, seed=7),),
        rounds=1, iterations=1,
    )
    options = dict(with_mcr=False, with_buffers=False, with_throughput=False)
    rows = []
    for n_actors in SIZES:
        for parametric in (False, True):
            graph = random_consistent_graph(
                n_actors, extra_edges=n_actors // 2,
                n_cycles=0 if parametric else 2,
                seed=7 if not parametric else 11,
                parametric=parametric,
            )
            verdict = analyze(graph, **options)
            assert verdict.bounded
            start = time.perf_counter()
            analyze(graph, **options)
            warm = (time.perf_counter() - start) * 1000
            rows.append([
                n_actors,
                "parametric" if parametric else "concrete",
                len(graph.channels),
                f"{verdict.elapsed * 1000:.1f}",
                f"{warm:.1f}",
            ])
    table = ascii_table(
        ["actors", "rates", "channels", "cold analysis (ms)", "warm (ms)"],
        rows,
        title="ABL3 — static analysis chain runtime vs graph size",
    )
    report("ablation_scalability", table)
