"""ABL3 — scalability of the static analyses.

The paper argues TPDF keeps CSDF-style compile-time analyzability; this
bench measures how the full analysis chain (consistency + rate safety +
liveness) scales with graph size on generated consistent graphs
(concrete and parametric), giving the reproduction a cost profile the
paper does not report but a downstream adopter will ask for.

The parallel sweep (``test_parallel_batch_summary``) times the sharded
process-pool backend of :func:`repro.analysis.analyze_batch` on a batch
of 80-actor graphs across worker counts, asserting sequential parity
always and the speedup target only when the machine actually has the
cores (wall-clock scaling cannot materialize on fewer cores than
workers; the table records the honest numbers either way).
"""

import time
from pathlib import Path

import pytest

from repro.analysis import analyze, analyze_batch
from repro.tpdf import check_boundedness, random_consistent_graph
from repro.util import ascii_table, available_cores, write_csv

SIZES = (10, 20, 40, 80)

#: Parallel sweep shape: the acceptance workload (80 actors x batch).
PARALLEL_ACTORS = 80
PARALLEL_BATCH = 12
PARALLEL_JOBS = (1, 2, 4, 8)

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.mark.parametrize("n_actors", SIZES)
def test_analysis_scaling_concrete(benchmark, n_actors):
    graph = random_consistent_graph(
        n_actors, extra_edges=n_actors // 2, n_cycles=2, seed=7,
    )
    result = benchmark(check_boundedness, graph)
    assert result.bounded


@pytest.mark.parametrize("n_actors", SIZES)
def test_analysis_scaling_parametric(benchmark, n_actors):
    graph = random_consistent_graph(
        n_actors, extra_edges=n_actors // 2, seed=11, parametric=True,
    )
    result = benchmark(check_boundedness, graph)
    assert result.bounded


def test_batch_analysis_scaling(benchmark):
    """The unified batch front door (static stages) across one size
    sweep: exercises the shared per-graph caches end to end."""
    graphs = [
        random_consistent_graph(n, extra_edges=n // 2, n_cycles=2, seed=7)
        for n in SIZES
    ]
    options = dict(with_mcr=False, with_buffers=False, with_throughput=False)
    reports = benchmark(analyze_batch, graphs, **options)
    assert all(r.bounded for r in reports)


def test_parallel_batch_summary(benchmark, report):
    """Wall-clock of the parallel batch-analysis service across worker
    counts on the 80-actor batch workload.

    Every configuration analyzes freshly generated (identically seeded)
    graphs so no run inherits another's warm caches; results must be
    bit-identical to the sequential baseline for the timing to count.
    Timings, speedups and the core budget go to
    ``benchmarks/results/ablation_parallel_batch.{txt,csv}``.
    """

    def fresh_batch():
        return [
            random_consistent_graph(
                PARALLEL_ACTORS, extra_edges=PARALLEL_ACTORS // 2,
                n_cycles=2, seed=seed,
            )
            for seed in range(PARALLEL_BATCH)
        ]

    options = dict(with_mcr=False, with_buffers=False, with_throughput=False)
    benchmark.pedantic(
        analyze_batch, args=(fresh_batch(),),
        kwargs=dict(jobs=2, **options),
        rounds=1, iterations=1,
    )

    cores = available_cores()
    timings: dict[int, float] = {}
    baseline_prints = None
    rows = []
    csv_rows = []
    for jobs in PARALLEL_JOBS:
        graphs = fresh_batch()
        start = time.perf_counter()
        reports = analyze_batch(graphs, jobs=None if jobs == 1 else jobs, **options)
        timings[jobs] = time.perf_counter() - start
        prints = [r.fingerprint() for r in reports]
        if baseline_prints is None:
            baseline_prints = prints
        else:
            assert prints == baseline_prints, (
                f"jobs={jobs} diverged from the sequential results"
            )
        assert all(r.bounded for r in reports)
        speedup = timings[1] / timings[jobs]
        rows.append([
            jobs if jobs > 1 else "1 (sequential)",
            f"{timings[jobs] * 1000:.0f}",
            f"{speedup:.2f}x",
        ])
        csv_rows.append([jobs, PARALLEL_ACTORS, PARALLEL_BATCH, cores,
                         f"{timings[jobs]:.6f}", f"{speedup:.4f}"])

    table = ascii_table(
        ["jobs", "batch wall-clock (ms)", "speedup vs sequential"],
        rows,
        title=(
            f"ABL3b — parallel batch analysis, {PARALLEL_BATCH} graphs x "
            f"{PARALLEL_ACTORS} actors (machine: {cores} core(s))"
        ),
    )
    report("ablation_parallel_batch", table)
    write_csv(
        RESULTS_DIR / "ablation_parallel_batch.csv",
        ["jobs", "actors", "batch", "cores", "seconds", "speedup"],
        csv_rows,
    )

    # Only machines with the cores to host the full pool gate on the
    # speedup target; below that the numbers are recorded but not
    # asserted (shared CI runners make small-ratio wall-clock
    # assertions flaky, and on 1 core a pool can only add overhead).
    if cores >= 8:
        assert timings[1] / timings[8] >= 3.0, (
            f"--jobs 8 speedup {timings[1] / timings[8]:.2f}x < 3x "
            f"on a {cores}-core machine"
        )


def test_scalability_summary(benchmark, report):
    """Summary table of the full chain across sizes (single shot each;
    the benchmark fixture times one representative mid-size run so the
    test participates in --benchmark-only sessions).

    Each row is a *cold* :func:`repro.analysis.analyze` call on a
    freshly generated graph — the honest per-graph cost, no warm-cache
    flattery.  A second column reports the warm re-analysis cost (all
    intermediates cached on the graph).
    """
    benchmark.pedantic(
        check_boundedness,
        args=(random_consistent_graph(20, extra_edges=10, seed=7),),
        rounds=1, iterations=1,
    )
    options = dict(with_mcr=False, with_buffers=False, with_throughput=False)
    rows = []
    for n_actors in SIZES:
        for parametric in (False, True):
            graph = random_consistent_graph(
                n_actors, extra_edges=n_actors // 2,
                n_cycles=0 if parametric else 2,
                seed=7 if not parametric else 11,
                parametric=parametric,
            )
            verdict = analyze(graph, **options)
            assert verdict.bounded
            start = time.perf_counter()
            analyze(graph, **options)
            warm = (time.perf_counter() - start) * 1000
            rows.append([
                n_actors,
                "parametric" if parametric else "concrete",
                len(graph.channels),
                f"{verdict.elapsed * 1000:.1f}",
                f"{warm:.1f}",
            ])
    table = ascii_table(
        ["actors", "rates", "channels", "cold analysis (ms)", "warm (ms)"],
        rows,
        title="ABL3 — static analysis chain runtime vs graph size",
    )
    report("ablation_scalability", table)
