"""ABL3 — scalability of the static analyses.

The paper argues TPDF keeps CSDF-style compile-time analyzability; this
bench measures how the full analysis chain (consistency + rate safety +
liveness) scales with graph size on generated consistent graphs
(concrete and parametric), giving the reproduction a cost profile the
paper does not report but a downstream adopter will ask for.
"""

import time

import pytest

from repro.tpdf import check_boundedness, random_consistent_graph
from repro.util import ascii_table

SIZES = (10, 20, 40, 80)


@pytest.mark.parametrize("n_actors", SIZES)
def test_analysis_scaling_concrete(benchmark, n_actors):
    graph = random_consistent_graph(
        n_actors, extra_edges=n_actors // 2, n_cycles=2, seed=7,
    )
    result = benchmark(check_boundedness, graph)
    assert result.bounded


@pytest.mark.parametrize("n_actors", SIZES)
def test_analysis_scaling_parametric(benchmark, n_actors):
    graph = random_consistent_graph(
        n_actors, extra_edges=n_actors // 2, seed=11, parametric=True,
    )
    result = benchmark(check_boundedness, graph)
    assert result.bounded


def test_scalability_summary(benchmark, report):
    """Summary table of the full chain across sizes (single shot each;
    the benchmark fixture times one representative mid-size run so the
    test participates in --benchmark-only sessions)."""
    benchmark.pedantic(
        check_boundedness,
        args=(random_consistent_graph(20, extra_edges=10, seed=7),),
        rounds=1, iterations=1,
    )
    rows = []
    for n_actors in SIZES:
        for parametric in (False, True):
            graph = random_consistent_graph(
                n_actors, extra_edges=n_actors // 2,
                n_cycles=0 if parametric else 2,
                seed=7 if not parametric else 11,
                parametric=parametric,
            )
            start = time.perf_counter()
            verdict = check_boundedness(graph)
            elapsed = (time.perf_counter() - start) * 1000
            assert verdict.bounded
            rows.append([
                n_actors,
                "parametric" if parametric else "concrete",
                len(graph.channels),
                f"{elapsed:.1f}",
            ])
    table = ascii_table(
        ["actors", "rates", "channels", "full analysis (ms)"],
        rows,
        title="ABL3 — static analysis chain runtime vs graph size",
    )
    report("ablation_scalability", table)
