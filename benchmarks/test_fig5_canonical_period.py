"""FIG5 — Fig. 5 of the paper: canonical period of Fig. 2 at p = 1.

Paper artefact: occurrences A1 A2 B1 B2 C1 D1 E1 E2 F1 F2; C1 mapped
onto a separate processing element; F1/F2 fired immediately after
receiving the control tokens.
"""

from repro.platform import single_cluster
from repro.scheduling import build_canonical_period, list_schedule
from repro.tpdf import fig2_graph


def analyse():
    period = build_canonical_period(fig2_graph(), {"p": 1})
    mapping = list_schedule(period, single_cluster(4), dedicated_control_pe=True)
    return period, mapping


def test_fig5_canonical_period(benchmark, report):
    period, mapping = benchmark(analyse)
    names = {f"{a}{k}" for a, k in period.occurrences()}
    assert names == {"A1", "A2", "B1", "B2", "C1", "D1", "E1", "E2", "F1", "F2"}
    control_pe = mapping.platform.pes[-1]
    assert mapping.pe_of(("C", 1)) == control_pe

    lines = [
        "Fig. 5 — canonical period of Fig. 2 for p = 1",
        "(paper: 10 occurrences, C1 on its own PE, F fired on control tokens)",
        "",
        period.describe(),
        "",
        f"list schedule on 4 PEs (PE {control_pe.index} reserved for control):",
        mapping.gantt(),
        f"makespan: {mapping.makespan}  critical path: {period.critical_path_length()}",
    ]
    report("fig5_canonical_period", "\n".join(lines))
