"""EXT6 — cost of the discrete-event ready check, old vs new loop.

PR 1 flattened the firing tables; the remaining per-event cost was the
O(actors) ready rescan after every completion.  This bench measures
what the dependency-driven event core (``repro.csdf.eventloop``) buys
on the scalability sweep's generated graphs: ready-check actor visits,
wall-clock, and per-event cost for the timed CSDF executor
(``self_timed_execution`` vs the retained ``*_reference`` oracle) and
the TPDF simulator (``ready_core="wakeup"`` vs ``"reference"``).

Results parity is asserted on every row (the differential contract),
and the wakeup core must visit at least 2x fewer actors than the
rescan on every size — the committed
``benchmarks/results/ext6_eventloop.{txt,csv}`` record the measured
ratios (~45x fewer visits and several-fold wall-clock on the 80-actor
sweep).  Wall-clock itself is recorded, not asserted (shared CI
runners make small-ratio timing assertions flaky).
"""

import time
from functools import partial
from pathlib import Path

from repro.csdf import self_timed_execution, self_timed_execution_reference
from repro.sim import Simulator
from repro.tpdf import random_consistent_graph
from repro.util import ascii_table, write_csv

#: EXT6 compares the *wakeup* core against the full rescan; the
#: arrays-vs-wakeup comparison is EXT7 (test_ext_arraystate.py).
_wakeup_execution = partial(self_timed_execution, backend="wakeup")

SIZES = (10, 20, 40, 80)
ITERATIONS = 6
SOURCE_FIRINGS = 6

RESULTS_DIR = Path(__file__).parent / "results"


def _timed_rows():
    rows = []
    for n_actors in SIZES:
        graph = random_consistent_graph(
            n_actors, extra_edges=n_actors // 2, n_cycles=2, seed=7,
            with_control=False,
        ).as_csdf()
        _wakeup_execution(graph, iterations=1)  # warm analysis caches
        cells = {}
        for label, executor in (("wakeup", _wakeup_execution),
                                ("rescan", self_timed_execution_reference)):
            stats = {}
            start = time.perf_counter()
            result = executor(graph, iterations=ITERATIONS, stats=stats)
            elapsed = time.perf_counter() - start
            cells[label] = (result, stats, elapsed)
        new, ref = cells["wakeup"], cells["rescan"]
        assert new[0] == ref[0], f"executor divergence at {n_actors} actors"
        assert new[1]["events"] == ref[1]["events"]
        assert new[1]["ready_visits"] * 2 <= ref[1]["ready_visits"], (
            f"{n_actors} actors: wakeup visits {new[1]['ready_visits']} "
            f"not 2x below rescan {ref[1]['ready_visits']}"
        )
        rows.append({
            "loop": "self_timed_execution",
            "actors": n_actors,
            "events": new[1]["events"],
            "visits_new": new[1]["ready_visits"],
            "visits_ref": ref[1]["ready_visits"],
            "wall_new_ms": new[2] * 1000,
            "wall_ref_ms": ref[2] * 1000,
        })
    return rows


def _simulator_rows():
    rows = []
    for n_actors in SIZES:
        cells = {}
        for core in ("wakeup", "reference"):
            graph = random_consistent_graph(
                n_actors, extra_edges=n_actors // 2, n_cycles=2, seed=7,
                with_control=False,
            )
            source = next(iter(graph.kernels))
            sim = Simulator(graph, ready_core=core)
            start = time.perf_counter()
            trace = sim.run(limits={source: SOURCE_FIRINGS},
                            max_firings=1_000_000)
            elapsed = time.perf_counter() - start
            cells[core] = (trace.fingerprint(), sim.ready_stats, elapsed)
        new, ref = cells["wakeup"], cells["reference"]
        assert new[0] == ref[0], f"simulator divergence at {n_actors} actors"
        assert new[1]["visits"] * 2 <= ref[1]["visits"]
        rows.append({
            "loop": "Simulator.run",
            "actors": n_actors,
            "events": new[1]["events"],
            "visits_new": new[1]["visits"],
            "visits_ref": ref[1]["visits"],
            "wall_new_ms": new[2] * 1000,
            "wall_ref_ms": ref[2] * 1000,
        })
    return rows


def test_ext6_eventloop_cost(benchmark, report, record_bench):
    benchmark.pedantic(
        self_timed_execution,
        args=(random_consistent_graph(
            40, extra_edges=20, n_cycles=2, seed=7, with_control=False,
        ).as_csdf(),),
        kwargs=dict(iterations=ITERATIONS, backend="wakeup"),
        rounds=1, iterations=1,
    )
    rows = _timed_rows() + _simulator_rows()
    for row in rows:
        loop = ("executor" if row["loop"] == "self_timed_execution"
                else "simulator")
        record_bench(
            f"ext6_{loop}_n{row['actors']}_wakeup",
            actors=row["actors"], backend="wakeup",
            wall_ms=row["wall_new_ms"], ready_visits=row["visits_new"],
        )
        record_bench(
            f"ext6_{loop}_n{row['actors']}_rescan",
            actors=row["actors"], backend="reference",
            wall_ms=row["wall_ref_ms"], ready_visits=row["visits_ref"],
        )

    table_rows = []
    csv_rows = []
    for row in rows:
        visit_ratio = row["visits_ref"] / row["visits_new"]
        speedup = row["wall_ref_ms"] / row["wall_new_ms"]
        per_event_new = row["wall_new_ms"] * 1000 / row["events"]
        per_event_ref = row["wall_ref_ms"] * 1000 / row["events"]
        table_rows.append([
            row["loop"], row["actors"], row["events"],
            f"{row['visits_new']} / {row['visits_ref']}",
            f"{visit_ratio:.1f}x",
            f"{per_event_new:.1f} / {per_event_ref:.1f}",
            f"{row['wall_new_ms']:.2f} / {row['wall_ref_ms']:.2f}",
            f"{speedup:.2f}x",
        ])
        csv_rows.append([
            row["loop"], row["actors"], row["events"],
            row["visits_new"], row["visits_ref"], f"{visit_ratio:.2f}",
            f"{per_event_new:.3f}", f"{per_event_ref:.3f}",
            f"{row['wall_new_ms']:.3f}", f"{row['wall_ref_ms']:.3f}",
            f"{speedup:.3f}",
        ])

    table = ascii_table(
        ["loop", "actors", "events", "ready visits (wakeup/rescan)",
         "visit ratio", "per-event us (wakeup/rescan)",
         "wall ms (wakeup/rescan)", "speedup"],
        table_rows,
        title="EXT6 — dependency-driven event core vs full rescan "
              "(identical results asserted on every row)",
    )
    report("ext6_eventloop", table)
    write_csv(
        RESULTS_DIR / "ext6_eventloop.csv",
        ["loop", "actors", "events", "visits_wakeup", "visits_rescan",
         "visit_ratio", "per_event_us_wakeup", "per_event_us_rescan",
         "wall_ms_wakeup", "wall_ms_rescan", "speedup"],
        csv_rows,
    )
