"""FIG1 — Fig. 1 of the paper: CSDF repetition vector and schedule.

Paper values: q = [3, 2, 2]; valid static schedule (a3)^2 (a1)^3 (a2)^2.
The bench times the full analysis pipeline (repetition vector + PASS
construction + validation) and prints the regenerated artefact.
"""

from repro.csdf import (
    CSDFGraph,
    concrete_repetition_vector,
    find_sequential_schedule,
    validate_schedule,
)
from repro.util import ascii_table


def build_fig1() -> CSDFGraph:
    g = CSDFGraph("fig1")
    for name in ("a1", "a2", "a3"):
        g.add_actor(name)
    g.add_channel("e1", "a1", "a2", [1, 0, 1], [1, 1])
    g.add_channel("e2", "a2", "a3", [1], [0, 2], initial_tokens=2)
    g.add_channel("e3", "a3", "a1", [2], [1, 1, 2])
    return g


def analyse():
    graph = build_fig1()
    q = concrete_repetition_vector(graph)
    schedule = find_sequential_schedule(graph)
    validate_schedule(graph, schedule)
    return q, schedule


def test_fig1_repetition_and_schedule(benchmark, report):
    q, schedule = benchmark(analyse)
    assert q == {"a1": 3, "a2": 2, "a3": 2}
    assert str(schedule) == "(a3)^2 (a1)^3 (a2)^2"
    table = ascii_table(
        ["actor", "q (paper)", "q (measured)"],
        [["a1", 3, q["a1"]], ["a2", 2, q["a2"]], ["a3", 2, q["a3"]]],
        title="Fig. 1 — CSDF repetition vector",
    )
    report(
        "fig1_csdf_basics",
        table + f"\n\nschedule (paper):    (a3)^2 (a1)^3 (a2)^2"
                f"\nschedule (measured): {schedule}",
    )
