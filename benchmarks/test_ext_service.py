"""EXT9 — resident service latency: cold vs resident-warm vs cache-hit.

The resident service (PR 8) exists to amortize: worker start-up,
graph decode and every ``repro.cache`` intermediate are paid once,
then reused across requests.  This bench measures what a client
actually observes, per graph size, through real HTTP round trips:

* ``cold``     — the first request a fresh service has ever seen for
  the graph: worker decode + ``warm_graph`` + the full analysis chain;
* ``warm``     — the same request resubmitted with ``no_cache`` (it
  must reach a worker): the decode LRU and all binding-independent
  analysis caches are hot, only the binding-dependent stages re-run;
* ``cache-hit``— the same request served from the front result cache
  (single-flight store): no worker involved, pure wire cost.

Every tier is fingerprint-checked against a direct in-process
``analyze`` before timing — the latency ladder is only meaningful
because all three tiers return bit-for-bit identical reports.

The cache-hit tier is asserted ``>= 10x`` faster than cold (the
margin is orders of magnitude locally; the floor guards the
architecture, not the constant).  The multi-worker batch speedup is
asserted only on machines with >= 8 cores and *recorded* otherwise —
1-2 core CI boxes cannot express pool parallelism.

Rows land in ``ext9_service.{txt,csv}`` and, via the conftest, the
machine-readable ``BENCH_eventloop.json``.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.analysis import analyze
from repro.io import graph_to_payload
from repro.service import ServiceClient, serve_in_thread
from repro.tpdf import random_consistent_graph
from repro.util import ascii_table, write_csv

SIZES = (20, 40, 80)
ITERATIONS = 3
TIMING_ROUNDS = 5
#: Floor asserted for the cache-hit : cold latency ratio (per size).
ASSERTED_CACHE_SPEEDUP = 10.0
#: Multi-worker batch speedup asserted only at this core count or more.
ASSERTED_MIN_CORES = 8
ASSERTED_POOL_SPEEDUP = 1.5

RESULTS_DIR = Path(__file__).parent / "results"


def _bench_graph(n_actors: int):
    return random_consistent_graph(
        n_actors, extra_edges=n_actors // 2, n_cycles=2, seed=7,
        with_control=False,
    ).as_csdf()


def _best_of(rounds: int, run) -> float:
    """Best-of-N wall time in ms (damps scheduler noise)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best * 1e3


def test_service_latency_ladder(report, record_bench):
    rows = []
    for n_actors in SIZES:
        graph = _bench_graph(n_actors)
        payload = graph_to_payload(graph)
        want = analyze(graph, iterations=ITERATIONS).fingerprint()
        with serve_in_thread(workers=1) as handle:
            client = ServiceClient(handle.url)
            # cold: the service has never seen this graph
            start = time.perf_counter()
            cold_report = client.analyze(payload, iterations=ITERATIONS)
            cold_ms = (time.perf_counter() - start) * 1e3
            assert cold_report.fingerprint() == want
            # resident-warm: bypass the front cache, reuse the worker
            warm_report = client.analyze(payload, iterations=ITERATIONS,
                                         no_cache=True)
            assert warm_report.fingerprint() == want
            warm_ms = _best_of(TIMING_ROUNDS, lambda: client.analyze(
                payload, iterations=ITERATIONS, no_cache=True))
            # cache-hit: served from the single-flight result store
            hit_report = client.analyze(payload, iterations=ITERATIONS)
            assert hit_report.fingerprint() == want
            hit_ms = _best_of(TIMING_ROUNDS, lambda: client.analyze(
                payload, iterations=ITERATIONS))
            stats = client.stats()["cache"]
            assert stats["hits"] >= TIMING_ROUNDS  # really the cache tier
        cache_speedup = cold_ms / hit_ms
        rows.append((n_actors, cold_ms, warm_ms, hit_ms,
                     cold_ms / warm_ms, cache_speedup))
        for tier, wall_ms in (("service-cold", cold_ms),
                              ("service-warm", warm_ms),
                              ("service-hit", hit_ms)):
            record_bench(f"ext9_{tier}_{n_actors}", actors=n_actors,
                         backend=tier, wall_ms=wall_ms, ready_visits=0)
        assert cache_speedup >= ASSERTED_CACHE_SPEEDUP, (
            f"cache-hit tier only {cache_speedup:.1f}x over cold at "
            f"{n_actors} actors (cold {cold_ms:.1f}ms, hit {hit_ms:.2f}ms)"
        )

    table = ascii_table(
        ("actors", "cold ms", "warm ms", "hit ms",
         "warm speedup", "hit speedup"),
        [(a, f"{c:.1f}", f"{w:.1f}", f"{h:.2f}", f"{ws:.1f}x", f"{hs:.0f}x")
         for a, c, w, h, ws, hs in rows],
        title="EXT9 service latency: cold vs resident-warm vs cache-hit "
              f"(iterations={ITERATIONS}, best of {TIMING_ROUNDS})",
    )
    report("ext9_service", table)
    write_csv(RESULTS_DIR / "ext9_service.csv",
              ("actors", "cold_ms", "warm_ms", "hit_ms",
               "warm_speedup", "hit_speedup"),
              [(a, round(c, 3), round(w, 3), round(h, 3),
                round(ws, 2), round(hs, 2)) for a, c, w, h, ws, hs in rows])


def test_multi_worker_batch_speedup(report, record_bench):
    """One /batch of K distinct graphs: pool of 4 vs pool of 1.

    On small CI boxes the pool cannot run concurrently, so the ratio
    is recorded, not asserted; on >= 8 cores the 4-worker pool must
    actually parallelize the batch."""
    graphs = [
        random_consistent_graph(12, extra_edges=6, n_cycles=1, seed=seed,
                                with_control=False).as_csdf()
        for seed in range(100, 112)
    ]
    payloads = [graph_to_payload(graph) for graph in graphs]
    want = [analyze(graph, iterations=ITERATIONS).fingerprint()
            for graph in graphs]

    def run_pool(workers: int) -> float:
        with serve_in_thread(workers=workers) as handle:
            client = ServiceClient(handle.url)
            start = time.perf_counter()
            results = client.batch(payloads, iterations=ITERATIONS,
                                   no_cache=True)
            wall_ms = (time.perf_counter() - start) * 1e3
            got = [r.fingerprint() for r in results]
        assert got == want, "parallel batch diverged from direct analyze"
        return wall_ms

    serial_ms = run_pool(1)
    pooled_ms = run_pool(4)
    speedup = serial_ms / pooled_ms
    cores = os.cpu_count() or 1

    record_bench("ext9_batch_pool1", actors=12, backend="service-pool1",
                 wall_ms=serial_ms, ready_visits=0)
    record_bench("ext9_batch_pool4", actors=12, backend="service-pool4",
                 wall_ms=pooled_ms, ready_visits=0)
    report("ext9_service_pool",
           f"EXT9 pool scaling: {len(graphs)}-graph batch, "
           f"1 worker {serial_ms:.0f}ms vs 4 workers {pooled_ms:.0f}ms "
           f"({speedup:.2f}x on {cores} cores; asserted only on "
           f">={ASSERTED_MIN_CORES})")
    if cores >= ASSERTED_MIN_CORES:
        assert speedup >= ASSERTED_POOL_SPEEDUP, (
            f"4-worker pool only {speedup:.2f}x over 1 worker "
            f"on a {cores}-core machine"
        )
