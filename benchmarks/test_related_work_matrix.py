"""TAB-RW — the qualitative related-work comparison of Sec. V.

Prints the capability matrix (TPDF vs CSDF/PSDF/VRDF/SPDF/SADF/BPDF)
and verifies that each capability claimed for TPDF is actually
delivered by this library (static guarantees, parametric rates,
dynamic topology, time constraints).
"""

import numpy as np

from repro.apps.edge import run_edge_experiment
from repro.tpdf import check_boundedness, fig2_graph, repetition_vector, restrict_to_selection
from repro.util import ascii_table
from repro.util.validation import FEATURE_HEADERS, feature_matrix_rows, tpdf_claims


def verify_claims():
    claims = tpdf_claims()
    results = {}
    # Static guarantees: the Fig. 2 analysis chain succeeds symbolically.
    results["static_guarantees"] = check_boundedness(fig2_graph()).bounded
    # Parametric rates: the repetition vector is genuinely symbolic.
    q = repetition_vector(fig2_graph())
    results["parametric_rates"] = any(not v.is_const() for v in q.values())
    # Dynamic topology: mode restriction removes edges and stays consistent.
    from repro.apps.ofdm import build_ofdm_tpdf
    from repro.tpdf import check_consistency

    restricted = restrict_to_selection(build_ofdm_tpdf(), "DUP", ["in", "qam"])
    results["dynamic_topology"] = (
        len(restricted.channels) < len(build_ofdm_tpdf().channels)
        and check_consistency(restricted).consistent
    )
    # Time constraints: the 500 ms clock selects a deadline-feasible result.
    exp = run_edge_experiment([np.zeros((1024, 1024))], period=500.0, frames=1)
    results["time_constraints"] = exp.chosen_methods() == ["sobel"]
    return claims, results


def test_related_work_matrix(benchmark, report):
    claims, results = benchmark(verify_claims)
    assert all(results.values())
    assert claims.static_guarantees and claims.time_constraints

    table = ascii_table(
        FEATURE_HEADERS,
        feature_matrix_rows(),
        title="Sec. V — model capability comparison "
              "(TPDF claims verified against this library)",
    )
    verified = "\n".join(
        f"  {name}: {'verified' if ok else 'FAILED'}"
        for name, ok in results.items()
    )
    report("related_work_matrix", table + "\n\nTPDF claims:\n" + verified)
