"""ABL1 — ablation of the control-actor scheduling rules (Sec. III-D).

The paper schedules control actors with the highest priority (and
Fig. 5 pins C1 to a separate PE) so reconfiguration decisions never
wait behind kernels.  This bench measures the canonical-period makespan
of Fig. 2 with each rule toggled, across p values, on a small cluster.
Control work is tiny in this graph, so the expected effect is a modest
but consistent no-worse-with-priority pattern; the bench prints all
four configurations for inspection.
"""

from repro.platform import single_cluster
from repro.scheduling import build_canonical_period, list_schedule
from repro.tpdf import fig2_graph
from repro.util import ascii_table

P_VALUES = (1, 2, 4, 8)
CORES = 4


def sweep():
    rows = []
    graph = fig2_graph()
    platform = single_cluster(CORES)
    for p in P_VALUES:
        period = build_canonical_period(graph, {"p": p})
        makespans = {}
        for control_priority in (True, False):
            for dedicated in (True, False):
                result = list_schedule(
                    period,
                    platform,
                    control_priority=control_priority,
                    dedicated_control_pe=dedicated,
                )
                makespans[(control_priority, dedicated)] = result.makespan
        rows.append((p, makespans))
    return rows


def test_ablation_control_priority(benchmark, report):
    rows = benchmark(sweep)
    table_rows = []
    for p, makespans in rows:
        table_rows.append([
            p,
            makespans[(True, True)],
            makespans[(True, False)],
            makespans[(False, True)],
            makespans[(False, False)],
        ])
        # The paper's configuration must not be worse than ignoring the
        # control-priority rule under the same PE partitioning.
        assert makespans[(True, True)] <= makespans[(False, True)] + 1e-9
        assert makespans[(True, False)] <= makespans[(False, False)] + 1e-9
    table = ascii_table(
        ["p", "prio+dedicated (paper)", "prio only", "dedicated only", "neither"],
        table_rows,
        title=f"ABL1 — Fig. 2 makespan on {CORES} PEs with control rules toggled",
    )
    report("ablation_scheduler", table)
