"""EXT4 — the Fig. 8 closed forms derived symbolically + MCR bounds.

The sweep bench (FIG8) *measures* buffer totals point by point; this
bench derives the paper's formulas **as polynomials** from the graph
structure — ``Buff_CSDF = beta(17N + L)`` from the static baseline and
``Buff_TPDF = 3 + beta(12N + L)`` from the mode-restricted TPDF graph —
and prints the max-cycle-ratio throughput bounds of both
implementations for a concrete operating point.
"""

import pytest

from repro.apps.ofdm import bindings_for, build_ofdm_csdf, build_ofdm_tpdf
from repro.csdf import max_cycle_ratio, self_timed_execution, symbolic_total_bound
from repro.symbolic import Poly
from repro.tpdf import restrict_to_selection
from repro.util import ascii_table


def derive():
    beta, n, l = Poly.var("beta"), Poly.var("N"), Poly.var("L")
    csdf_total = symbolic_total_bound(build_ofdm_csdf())
    restricted = restrict_to_selection(build_ofdm_tpdf(), "DUP", ["in", "qam"])
    restricted = restrict_to_selection(restricted, "TRAN", ["qam", "out"])
    tpdf_total = symbolic_total_bound(restricted.as_csdf()).subs({"M": 4})
    return csdf_total, tpdf_total, restricted, (beta, n, l)


def test_ext4_symbolic_fig8_formulas(benchmark, report):
    csdf_total, tpdf_total, restricted, (beta, n, l) = benchmark(derive)
    assert csdf_total == beta * (17 * n + l)
    assert tpdf_total == 3 + beta * (12 * n + l)

    bindings = bindings_for(4, 64, 4, 4)
    mcr_tpdf = max_cycle_ratio(restricted.as_csdf(), bindings)
    mcr_csdf = max_cycle_ratio(build_ofdm_csdf(), bindings)
    period_tpdf = self_timed_execution(
        restricted.as_csdf(), bindings, iterations=6
    ).iteration_period
    assert period_tpdf == pytest.approx(mcr_tpdf, abs=1e-3)

    table = ascii_table(
        ["quantity", "paper", "derived symbolically"],
        [
            ["Buff_TPDF (M=4)", "3 + beta(12N + L)", str(tpdf_total)],
            ["Buff_CSDF", "beta(17N + L)", str(csdf_total)],
        ],
        title="EXT4 — Fig. 8 closed forms as polynomials",
    )
    extra = (
        f"\nMCR iteration-period bounds at beta=4, N=64, L=4 (unit exec "
        f"times):\n  TPDF (QAM path only): {mcr_tpdf:.3f}"
        f"\n  CSDF (both paths):    {mcr_csdf:.3f}"
        f"\n  self-timed TPDF period (measured): {period_tpdf:.3f}"
    )
    report("ext4_symbolic_bounds", table + extra)
