"""FIG2 + EX3 — Fig. 2 of the paper: symbolic consistency, control
area, local solution and rate safety of the running example.

Paper values: q = [2, 2p, p, p, 2p, 2p]; schedule A^2 B^2p C^p D^p E^2p
F^2p; Area(C) = {B, D, E, F} with local solution B^2 C D E^2 F^2.
"""

from repro.csdf.analysis import topology_matrix
from repro.tpdf import (
    area_local_solution,
    check_rate_safety,
    control_area,
    fig2_graph,
    repetition_vector,
    symbolic_schedule_string,
)
from repro.util import ascii_table

PAPER_Q = {"A": "2", "B": "2*p", "C": "p", "D": "p", "E": "2*p", "F": "2*p"}


def analyse():
    graph = fig2_graph()
    q = repetition_vector(graph)
    schedule = symbolic_schedule_string(graph)
    area = control_area(graph, "C")
    local = area_local_solution(graph, "C")
    safety = check_rate_safety(graph)
    return q, schedule, area, local, safety


def test_fig2_symbolic_analysis(benchmark, report):
    q, schedule, area, local, safety = benchmark(analyse)
    measured = {name: str(count) for name, count in q.items()}
    assert measured == PAPER_Q
    assert area == {"B", "D", "E", "F"}
    assert local.as_ints() == {"B": 2, "D": 1, "E": 2, "F": 2}
    assert safety.safe

    table = ascii_table(
        ["actor", "q (paper)", "q (measured)"],
        [[name, PAPER_Q[name], measured[name]] for name in sorted(PAPER_Q)],
        title="Fig. 2 — TPDF symbolic repetition vector",
    )
    channels, actors, rows_g = topology_matrix(fig2_graph().as_csdf())
    gamma = ascii_table(
        ["channel"] + actors,
        [[channel] + [str(rows_g[i][j]) for j in range(len(actors))]
         for i, channel in enumerate(channels)],
        title="Topology matrix Gamma (Equation 3), symbolic",
    )
    lines = [
        table,
        "",
        "schedule (paper):    A^2 B^2p C^p D^p E^2p F^2p",
        f"schedule (measured): {schedule}",
        "",
        f"Area(C) (paper):    B, D, E, F",
        f"Area(C) (measured): {', '.join(sorted(area))}",
        f"local solution (paper):    B^2 C D E^2 F^2 (x p)",
        f"local solution (measured): {local}",
        "",
        "rate safety (Def. 5):",
        str(safety),
        "",
        gamma,
    ]
    report("fig2_tpdf_consistency", "\n".join(lines))
