"""FIG8 — the paper's headline evaluation: minimum buffer size of the
OFDM demodulator vs vectorization degree beta, TPDF against CSDF.

Paper: Buff_TPDF = 3 + beta(12N + L), Buff_CSDF = beta(17N + L), for
N in {512, 1024}, beta in 10..100, L = 1; TPDF improves on CSDF by 29%
(1 - 12/17 = 29.4%).  We *measure* both sides by executing one
buffer-minimizing iteration of each implementation and print the
measured series next to the paper's closed forms.
"""

import pytest

from repro.apps.ofdm import fig8_point, fig8_series
from repro.util import ascii_series_plot, ascii_table, write_csv

BETAS = tuple(range(10, 101, 10))


def test_fig8_full_sweep(benchmark, report):
    series = benchmark.pedantic(
        fig8_series, kwargs={"betas": BETAS, "ns": (512, 1024)},
        rounds=1, iterations=1,
    )
    for point in series:
        assert point.tpdf_measured == point.tpdf_paper
        assert point.csdf_measured == point.csdf_paper
        assert point.improvement == pytest.approx(1 - 12 / 17, abs=0.005)

    rows = [
        [pt.n, pt.beta, pt.tpdf_measured, pt.tpdf_paper, pt.csdf_measured,
         pt.csdf_paper, f"{100 * pt.improvement:.1f}%"]
        for pt in series
    ]
    table = ascii_table(
        ["N", "beta", "TPDF measured", "TPDF paper", "CSDF measured",
         "CSDF paper", "improvement"],
        rows,
        title="Fig. 8 — minimum buffer size vs vectorization degree "
              "(paper: ~29% improvement)",
    )
    xs = list(BETAS)
    plot = ascii_series_plot(
        xs,
        {
            "TPDF N=512": [pt.tpdf_measured for pt in series if pt.n == 512],
            "CSDF N=512": [pt.csdf_measured for pt in series if pt.n == 512],
            "TPDF N=1024": [pt.tpdf_measured for pt in series if pt.n == 1024],
            "CSDF N=1024": [pt.csdf_measured for pt in series if pt.n == 1024],
        },
        title="Fig. 8 (ASCII rendering)",
    )
    write_csv(
        "benchmarks/results/fig8_buffer_sizes.csv",
        ["N", "beta", "tpdf_measured", "tpdf_paper", "csdf_measured",
         "csdf_paper", "improvement"],
        [[pt.n, pt.beta, pt.tpdf_measured, pt.tpdf_paper, pt.csdf_measured,
          pt.csdf_paper, pt.improvement] for pt in series],
    )
    report("fig8_buffer_sizes", table + "\n\n" + plot)


def test_fig8_single_point_cost(benchmark):
    """Timing reference: one Fig. 8 measurement point."""
    point = benchmark(fig8_point, 100, 1024)
    assert point.tpdf_measured == point.tpdf_paper


def test_fig8_parametric_mcr_replaces_sweep(benchmark, report):
    """One parametric evaluation replaces the per-binding MCR sweep
    over the Fig. 8 grid.

    Both Fig. 8 implementations (mode-restricted TPDF and the CSDF
    baseline) get their throughput bound as a piecewise-symbolic
    function over the full evaluation domain (beta = 10..100,
    N in 512..1024); every grid point must match the concrete Howard
    solver bit-for-bit, and the wall-clock of sweep vs. single build is
    recorded alongside the buffer numbers."""
    import time

    from repro.apps.ofdm import build_ofdm_csdf, build_ofdm_tpdf
    from repro.apps.ofdm.qam import scheme_for_m
    from repro.csdf import max_cycle_ratio, parametric_mcr
    from repro.tpdf import restrict_to_selection

    graph = build_ofdm_tpdf()
    port = "qam" if scheme_for_m(4) == "qam16" else "qpsk"
    restricted = restrict_to_selection(graph, "DUP", ["in", port])
    restricted = restrict_to_selection(restricted, "TRAN", [port, "out"])
    tpdf_csdf = restricted.as_csdf()
    csdf = build_ofdm_csdf()

    grid = [{"beta": beta, "N": n, "L": 1, "M": 4}
            for n in (512, 1024) for beta in BETAS]
    cases = [
        ("TPDF (restricted)", tpdf_csdf,
         {"beta": (10, 100), "N": (512, 1024), "L": (1, 1), "M": (4, 4)}),
        ("CSDF baseline", csdf,
         {"beta": (10, 100), "N": (512, 1024), "L": (1, 1)}),
    ]

    def compare():
        rows = []
        for name, g, domain in cases:
            start = time.perf_counter()
            concrete = [max_cycle_ratio(g, bindings) for bindings in grid]
            sweep_s = time.perf_counter() - start

            start = time.perf_counter()
            piecewise = parametric_mcr(g, domain)
            symbolic = [piecewise.evaluate_float(b) for b in grid]
            parametric_s = time.perf_counter() - start

            assert symbolic == concrete, f"{name}: piecewise != Howard"
            rows.append((name, piecewise, sweep_s, parametric_s))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    table = ascii_table(
        ["implementation", "bindings", "regions", "sweep (ms)",
         "parametric (ms)"],
        [
            [name, len(grid), len(pw.regions),
             f"{sweep_s * 1000:.1f}", f"{parametric_s * 1000:.1f}"]
            for name, pw, sweep_s, parametric_s in rows
        ],
        title="Fig. 8 — throughput bound over the evaluation grid: "
              "per-binding Howard sweep vs. one piecewise build "
              "(bit-for-bit equal)",
    )
    write_csv(
        "benchmarks/results/fig8_parametric_mcr.csv",
        ["implementation", "bindings", "regions", "sweep_s", "parametric_s"],
        [[name, len(grid), len(pw.regions), sweep_s, parametric_s]
         for name, pw, sweep_s, parametric_s in rows],
    )
    report("fig8_parametric_mcr", table)


def test_fig8_parallel_sweep_parity(benchmark, report):
    """The sweep through the parallel batch-analysis service: the two
    implementations (TPDF restricted / CSDF baseline) shard to
    different workers, and every point must match the sequential sweep
    exactly.  Timings for both paths go to the results directory."""
    import time

    from repro.util import available_cores

    start = time.perf_counter()
    sequential = fig8_series(betas=BETAS, ns=(512, 1024))
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = benchmark.pedantic(
        fig8_series, kwargs={"betas": BETAS, "ns": (512, 1024), "jobs": 2},
        rounds=1, iterations=1,
    )
    parallel_s = time.perf_counter() - start

    assert parallel == sequential, "parallel Fig. 8 sweep diverged"
    cores = available_cores()
    table = ascii_table(
        ["path", "wall-clock (ms)"],
        [
            ["sequential", f"{sequential_s * 1000:.0f}"],
            ["--jobs 2", f"{parallel_s * 1000:.0f}"],
        ],
        title=(
            f"Fig. 8 sweep through the parallel service — identical series, "
            f"{len(parallel)} points (machine: {cores} core(s))"
        ),
    )
    report("fig8_parallel_sweep", table)
