"""FIG8 — the paper's headline evaluation: minimum buffer size of the
OFDM demodulator vs vectorization degree beta, TPDF against CSDF.

Paper: Buff_TPDF = 3 + beta(12N + L), Buff_CSDF = beta(17N + L), for
N in {512, 1024}, beta in 10..100, L = 1; TPDF improves on CSDF by 29%
(1 - 12/17 = 29.4%).  We *measure* both sides by executing one
buffer-minimizing iteration of each implementation and print the
measured series next to the paper's closed forms.
"""

import pytest

from repro.apps.ofdm import fig8_point, fig8_series
from repro.util import ascii_series_plot, ascii_table, write_csv

BETAS = tuple(range(10, 101, 10))


def test_fig8_full_sweep(benchmark, report):
    series = benchmark.pedantic(
        fig8_series, kwargs={"betas": BETAS, "ns": (512, 1024)},
        rounds=1, iterations=1,
    )
    for point in series:
        assert point.tpdf_measured == point.tpdf_paper
        assert point.csdf_measured == point.csdf_paper
        assert point.improvement == pytest.approx(1 - 12 / 17, abs=0.005)

    rows = [
        [pt.n, pt.beta, pt.tpdf_measured, pt.tpdf_paper, pt.csdf_measured,
         pt.csdf_paper, f"{100 * pt.improvement:.1f}%"]
        for pt in series
    ]
    table = ascii_table(
        ["N", "beta", "TPDF measured", "TPDF paper", "CSDF measured",
         "CSDF paper", "improvement"],
        rows,
        title="Fig. 8 — minimum buffer size vs vectorization degree "
              "(paper: ~29% improvement)",
    )
    xs = list(BETAS)
    plot = ascii_series_plot(
        xs,
        {
            "TPDF N=512": [pt.tpdf_measured for pt in series if pt.n == 512],
            "CSDF N=512": [pt.csdf_measured for pt in series if pt.n == 512],
            "TPDF N=1024": [pt.tpdf_measured for pt in series if pt.n == 1024],
            "CSDF N=1024": [pt.csdf_measured for pt in series if pt.n == 1024],
        },
        title="Fig. 8 (ASCII rendering)",
    )
    write_csv(
        "benchmarks/results/fig8_buffer_sizes.csv",
        ["N", "beta", "tpdf_measured", "tpdf_paper", "csdf_measured",
         "csdf_paper", "improvement"],
        [[pt.n, pt.beta, pt.tpdf_measured, pt.tpdf_paper, pt.csdf_measured,
          pt.csdf_paper, pt.improvement] for pt in series],
    )
    report("fig8_buffer_sizes", table + "\n\n" + plot)


def test_fig8_single_point_cost(benchmark):
    """Timing reference: one Fig. 8 measurement point."""
    point = benchmark(fig8_point, 100, 1024)
    assert point.tpdf_measured == point.tpdf_paper


def test_fig8_parallel_sweep_parity(benchmark, report):
    """The sweep through the parallel batch-analysis service: the two
    implementations (TPDF restricted / CSDF baseline) shard to
    different workers, and every point must match the sequential sweep
    exactly.  Timings for both paths go to the results directory."""
    import time

    from repro.util import available_cores

    start = time.perf_counter()
    sequential = fig8_series(betas=BETAS, ns=(512, 1024))
    sequential_s = time.perf_counter() - start

    start = time.perf_counter()
    parallel = benchmark.pedantic(
        fig8_series, kwargs={"betas": BETAS, "ns": (512, 1024), "jobs": 2},
        rounds=1, iterations=1,
    )
    parallel_s = time.perf_counter() - start

    assert parallel == sequential, "parallel Fig. 8 sweep diverged"
    cores = available_cores()
    table = ascii_table(
        ["path", "wall-clock (ms)"],
        [
            ["sequential", f"{sequential_s * 1000:.0f}"],
            ["--jobs 2", f"{parallel_s * 1000:.0f}"],
        ],
        title=(
            f"Fig. 8 sweep through the parallel service — identical series, "
            f"{len(parallel)} points (machine: {cores} core(s))"
        ),
    )
    report("fig8_parallel_sweep", table)
