"""EXT7 — array-state backend vs the wakeup core.

PR 4's wakeup core (EXT6) removed the O(actors) rescan; what remained
on the hot path was the Python heap, the per-visit firing-table walk,
and the per-run state rebuild that every ``period_with`` probe of the
buffer search pays again.  The array-state backend
(``repro.csdf.statearrays``) attacks all three: a memoized
struct-of-arrays template cloned per run, incremental constraint
counters that make the per-candidate ready check one integer compare
(so ready visits drop to roughly the firing count), and the calendar
queue / C-heap event scheduler.

This bench measures the end-to-end cost of the EXT2-shaped
**throughput sweep** (one execution per core budget {1, 2, 4, 8, 16,
unlimited}) on the scalability generator's graphs at 20/40/80/160
actors, plus one ``min_buffers_for_full_throughput`` search — the
probe-heavy workload where the template clone compounds.  Results
parity is asserted per row (every core budget, bit for bit) and the
80-actor sweep must come in at least 3x faster than the wakeup core;
rows are recorded to ``ext7_arraystate.{txt,csv}`` and (through the
conftest) the machine-readable ``BENCH_eventloop.json``.

Two batched rows ride on the same 40-actor graph: the **batched
buffer search** (``min_buffers_for_full_throughput(batched=True)``,
capacities asserted bit-equal to every sequential mode, >= 3x against
the frozen PR 5 sequential-probe row) and the **batched probe sweep**
(a deadlock-heavy capacity screen through
``self_timed_execution_batch`` vs the same probes run one scalar
execution at a time, outcome parity bit for bit).
"""

import json
import time
from pathlib import Path

from repro.csdf import (
    capacity_floors,
    min_buffers_for_full_throughput,
    self_timed_execution,
    self_timed_execution_batch,
)
from repro.errors import DeadlockError
from repro.tpdf import random_consistent_graph
from repro.util import ascii_table, write_csv

SIZES = (20, 40, 80, 160)
CORE_BUDGETS = (1, 2, 4, 8, 16, None)
ITERATIONS = 4
TIMING_ROUNDS = 7
#: Wall-clock floor asserted on the 80-actor sweep.  Unlike EXT6,
#: which records wall-clock without asserting it (small ratios flake
#: on shared runners), this one IS asserted: it is the acceptance bar
#: of the backend, the measured margin is wide (~3.5-4.5x), and
#: best-of-N timing of a tens-of-ms region damps runner noise.  If a
#: future platform shifts the constant factors below the bar, lower
#: it consciously — don't delete the parity assertions with it.
ASSERTED_SPEEDUP = 3.0
ASSERTED_ACTORS = 80
#: The batched buffer search must beat the PR 5 sequential-probe
#: search (the row of record, frozen under the ``_pr5_sequential``
#: key) by this factor.  Measured margin ~3.6x.
BATCHED_SEARCH_SPEEDUP = 3.0
#: The batched probe sweep vs one-scalar-run-at-a-time on a
#: deadlock-heavy screen.  Measured margin ~2.6x.
PROBE_SWEEP_SPEEDUP = 1.5

RESULTS_DIR = Path(__file__).parent / "results"


def _pr5_search_baseline(n_actors):
    """Wall-clock of PR 5's sequential-probe buffer search, read from
    the committed ``BENCH_eventloop.json``.

    The live ``..._arrays`` row is refreshed every run and now
    benefits from floor-kill/memoization, so the first run after the
    batched kernel landed copies the old value under a dedicated
    ``..._pr5_sequential`` key that later refreshes never touch.
    Returns ``None`` (assert skipped) when no committed row exists.
    """
    try:
        rows = json.loads((RESULTS_DIR / "BENCH_eventloop.json").read_text())
    except (OSError, ValueError):
        return None
    row = rows.get(f"ext7_buffer_search_n{n_actors}_pr5_sequential") \
        or rows.get(f"ext7_buffer_search_n{n_actors}_arrays")
    if not row or "wall_ms" not in row:
        return None
    return float(row["wall_ms"]), int(row.get("ready_visits", 0))


def _sweep_graph(n_actors):
    return random_consistent_graph(
        n_actors, extra_edges=n_actors // 2, n_cycles=2, seed=7,
        with_control=False,
    ).as_csdf()


def _run_sweep(graph, backend):
    """One throughput sweep; returns (results per budget, visit total)."""
    results = {}
    visits = 0
    for cores in CORE_BUDGETS:
        stats = {}
        results[cores] = self_timed_execution(
            graph, iterations=ITERATIONS, cores=cores, stats=stats,
            backend=backend,
        )
        visits += stats["ready_visits"]
    return results, visits


def _time_sweep(graph, backend):
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        results, visits = _run_sweep(graph, backend)
        best = min(best, time.perf_counter() - start)
    return best * 1000.0, results, visits


def _sweep_rows(record_bench):
    rows = []
    for n_actors in SIZES:
        graph = _sweep_graph(n_actors)
        # Warm the shared analysis caches (repetition vector etc.) so
        # both backends are measured from the same starting line; the
        # arrays template is part of what the backend is *for*, so its
        # first build is inside the measured region.
        self_timed_execution(graph, iterations=1, backend="wakeup")
        cells = {
            backend: _time_sweep(graph, backend)
            for backend in ("wakeup", "arrays")
        }
        wall_w, results_w, visits_w = cells["wakeup"]
        wall_a, results_a, visits_a = cells["arrays"]
        for cores in CORE_BUDGETS:
            assert results_a[cores] == results_w[cores], (
                f"backend divergence at {n_actors} actors, cores={cores}"
            )
        speedup = wall_w / wall_a
        if n_actors == ASSERTED_ACTORS:
            assert speedup >= ASSERTED_SPEEDUP, (
                f"{n_actors}-actor sweep: arrays {wall_a:.2f}ms vs wakeup "
                f"{wall_w:.2f}ms = {speedup:.2f}x, below the "
                f"{ASSERTED_SPEEDUP}x bar"
            )
        for backend, wall, visits in (("wakeup", wall_w, visits_w),
                                      ("arrays", wall_a, visits_a)):
            record_bench(
                f"ext7_sweep_n{n_actors}_{backend}",
                actors=n_actors, backend=backend, wall_ms=wall,
                ready_visits=visits,
            )
        rows.append({
            "workload": "throughput sweep",
            "actors": n_actors,
            "visits_arrays": visits_a,
            "visits_wakeup": visits_w,
            "wall_arrays_ms": wall_a,
            "wall_wakeup_ms": wall_w,
            "speedup": speedup,
        })
    return rows


def _buffer_search_rows(record_bench, n_actors=40):
    """The compounding case: every probe of the buffer search clones
    the memoized template instead of rebuilding firing tables."""
    graph = _sweep_graph(n_actors)
    self_timed_execution(graph, iterations=1, backend="wakeup")
    rows = []
    caps = {}
    for mode in ("wakeup", "arrays", "batched"):
        backend = "arrays" if mode == "batched" else mode
        best = float("inf")
        for _ in range(3):
            stats = {}
            start = time.perf_counter()
            caps[mode] = min_buffers_for_full_throughput(
                graph, iterations=ITERATIONS, stats=stats, backend=backend,
                batched=(mode == "batched"),
            )
            best = min(best, time.perf_counter() - start)
        record_bench(
            f"ext7_buffer_search_n{n_actors}_{mode}",
            actors=n_actors, backend=backend, wall_ms=best * 1000.0,
            ready_visits=stats["probes"],
        )
        rows.append({
            "workload": "buffer search",
            "actors": n_actors,
            "backend": mode,
            "wall_ms": best * 1000.0,
            "probes": stats["probes"],
        })
    assert caps["arrays"] == caps["wakeup"] == caps["batched"], (
        "buffer search divergence across modes"
    )
    baseline = _pr5_search_baseline(n_actors)
    if baseline is not None:
        pr5_ms, pr5_probes = baseline
        # Freeze the PR 5 row so the refreshed arrays row (itself now
        # floor/memo-accelerated) never becomes the bar.
        record_bench(
            f"ext7_buffer_search_n{n_actors}_pr5_sequential",
            actors=n_actors, backend="arrays", wall_ms=pr5_ms,
            ready_visits=pr5_probes,
        )
        batched_ms = rows[-1]["wall_ms"]
        assert pr5_ms >= BATCHED_SEARCH_SPEEDUP * batched_ms, (
            f"batched buffer search {batched_ms:.2f}ms vs PR 5 "
            f"sequential {pr5_ms:.2f}ms = {pr5_ms / batched_ms:.2f}x, "
            f"below the {BATCHED_SEARCH_SPEEDUP}x bar"
        )
    return rows


def _probe_sweep_rows(record_bench, n_actors=40, k=32):
    """A deadlock-heavy capacity screen: K all-tight vectors (each
    with one channel opened to its analytic floor) probed through the
    lock-step batch kernel vs one scalar run per vector.  Dead runs
    drop out of the wavefront after a few steps, which is exactly
    where batching pays."""
    graph = _sweep_graph(n_actors)
    self_timed_execution(graph, iterations=1, backend="wakeup")
    floors = capacity_floors(graph, None)
    names = sorted(graph.channels)
    tight = {
        name: max(graph.channels[name].initial_tokens, 1) for name in names
    }
    vectors = [dict(tight) for _ in range(min(k, len(names)))]
    for i, vec in enumerate(vectors):
        vec[names[i]] = floors[names[i]]

    def _scalar_outcomes():
        outcomes = []
        for vec in vectors:
            try:
                outcomes.append(self_timed_execution(
                    graph, iterations=ITERATIONS, capacities=vec,
                    backend="arrays",
                ))
            except DeadlockError as exc:
                outcomes.append(exc)
        return outcomes

    best_seq = best_bat = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        seq = _scalar_outcomes()
        best_seq = min(best_seq, time.perf_counter() - start)
        start = time.perf_counter()
        bat = self_timed_execution_batch(
            graph, iterations=ITERATIONS, capacities_list=vectors
        )
        best_bat = min(best_bat, time.perf_counter() - start)
    for a, b in zip(seq, bat):
        if isinstance(a, DeadlockError):
            assert isinstance(b, DeadlockError)
            assert (str(a), a.blocked) == (str(b), b.blocked)
        else:
            assert a == b
    speedup = best_seq / best_bat
    assert speedup >= PROBE_SWEEP_SPEEDUP, (
        f"probe sweep: batch {best_bat * 1e3:.2f}ms vs scalar "
        f"{best_seq * 1e3:.2f}ms = {speedup:.2f}x, below the "
        f"{PROBE_SWEEP_SPEEDUP}x bar"
    )
    for mode, wall in (("scalar", best_seq), ("batched", best_bat)):
        record_bench(
            f"ext7_probe_sweep_n{n_actors}_{mode}",
            actors=n_actors, backend="arrays", wall_ms=wall * 1000.0,
            ready_visits=len(vectors),
        )
    return [{
        "workload": "probe sweep",
        "actors": n_actors,
        "k": len(vectors),
        "wall_scalar_ms": best_seq * 1000.0,
        "wall_batched_ms": best_bat * 1000.0,
        "speedup": speedup,
    }]


def test_ext7_arraystate_cost(benchmark, report, record_bench):
    benchmark.pedantic(
        self_timed_execution,
        args=(_sweep_graph(40),),
        kwargs=dict(iterations=ITERATIONS, backend="arrays"),
        rounds=1, iterations=1,
    )
    sweep = _sweep_rows(record_bench)
    search = _buffer_search_rows(record_bench)
    probe_sweep = _probe_sweep_rows(record_bench)

    table_rows = []
    csv_rows = []
    for row in sweep:
        visit_ratio = row["visits_wakeup"] / row["visits_arrays"]
        table_rows.append([
            row["workload"], row["actors"],
            f"{row['visits_arrays']} / {row['visits_wakeup']}",
            f"{visit_ratio:.1f}x",
            f"{row['wall_arrays_ms']:.2f} / {row['wall_wakeup_ms']:.2f}",
            f"{row['speedup']:.2f}x",
        ])
        csv_rows.append([
            row["workload"], row["actors"],
            row["visits_arrays"], row["visits_wakeup"],
            f"{visit_ratio:.2f}",
            f"{row['wall_arrays_ms']:.3f}", f"{row['wall_wakeup_ms']:.3f}",
            f"{row['speedup']:.3f}",
        ])
    search_by_backend = {row["backend"]: row for row in search}
    wall_w = search_by_backend["wakeup"]["wall_ms"]
    wall_a = search_by_backend["arrays"]["wall_ms"]
    wall_b = search_by_backend["batched"]["wall_ms"]
    table_rows.append([
        "buffer search", search[0]["actors"],
        f"{search_by_backend['arrays']['probes']} probes",
        "-",
        f"{wall_a:.2f} / {wall_w:.2f}",
        f"{wall_w / wall_a:.2f}x",
    ])
    csv_rows.append([
        "buffer search", search[0]["actors"],
        search_by_backend["arrays"]["probes"],
        search_by_backend["wakeup"]["probes"],
        "", f"{wall_a:.3f}", f"{wall_w:.3f}", f"{wall_w / wall_a:.3f}",
    ])
    table_rows.append([
        "buffer search (batched)", search[0]["actors"],
        f"{search_by_backend['batched']['probes']} probes",
        "-",
        f"{wall_b:.2f} / {wall_w:.2f}",
        f"{wall_w / wall_b:.2f}x",
    ])
    csv_rows.append([
        "buffer search (batched)", search[0]["actors"],
        search_by_backend["batched"]["probes"],
        search_by_backend["wakeup"]["probes"],
        "", f"{wall_b:.3f}", f"{wall_w:.3f}", f"{wall_w / wall_b:.3f}",
    ])
    for row in probe_sweep:
        table_rows.append([
            "probe sweep", row["actors"],
            f"K={row['k']} vectors",
            "-",
            f"{row['wall_batched_ms']:.2f} / {row['wall_scalar_ms']:.2f}",
            f"{row['speedup']:.2f}x",
        ])
        csv_rows.append([
            "probe sweep", row["actors"], row["k"], row["k"], "",
            f"{row['wall_batched_ms']:.3f}", f"{row['wall_scalar_ms']:.3f}",
            f"{row['speedup']:.3f}",
        ])

    table = ascii_table(
        ["workload", "actors", "ready visits (arrays/wakeup)",
         "visit ratio", "wall ms (arrays/wakeup)", "speedup"],
        table_rows,
        title="EXT7 — array-state backend vs wakeup core "
              "(identical results asserted on every row; "
              f">= {ASSERTED_SPEEDUP}x asserted at {ASSERTED_ACTORS} actors)",
    )
    report("ext7_arraystate", table)
    write_csv(
        RESULTS_DIR / "ext7_arraystate.csv",
        ["workload", "actors", "visits_arrays", "visits_wakeup",
         "visit_ratio", "wall_ms_arrays", "wall_ms_wakeup", "speedup"],
        csv_rows,
    )
