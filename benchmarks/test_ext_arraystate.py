"""EXT7 — array-state backend vs the wakeup core.

PR 4's wakeup core (EXT6) removed the O(actors) rescan; what remained
on the hot path was the Python heap, the per-visit firing-table walk,
and the per-run state rebuild that every ``period_with`` probe of the
buffer search pays again.  The array-state backend
(``repro.csdf.statearrays``) attacks all three: a memoized
struct-of-arrays template cloned per run, incremental constraint
counters that make the per-candidate ready check one integer compare
(so ready visits drop to roughly the firing count), and the calendar
queue / C-heap event scheduler.

This bench measures the end-to-end cost of the EXT2-shaped
**throughput sweep** (one execution per core budget {1, 2, 4, 8, 16,
unlimited}) on the scalability generator's graphs at 20/40/80/160
actors, plus one ``min_buffers_for_full_throughput`` search — the
probe-heavy workload where the template clone compounds.  Results
parity is asserted per row (every core budget, bit for bit) and the
80-actor sweep must come in at least 3x faster than the wakeup core;
rows are recorded to ``ext7_arraystate.{txt,csv}`` and (through the
conftest) the machine-readable ``BENCH_eventloop.json``.
"""

import time
from pathlib import Path

from repro.csdf import min_buffers_for_full_throughput, self_timed_execution
from repro.tpdf import random_consistent_graph
from repro.util import ascii_table, write_csv

SIZES = (20, 40, 80, 160)
CORE_BUDGETS = (1, 2, 4, 8, 16, None)
ITERATIONS = 4
TIMING_ROUNDS = 7
#: Wall-clock floor asserted on the 80-actor sweep.  Unlike EXT6,
#: which records wall-clock without asserting it (small ratios flake
#: on shared runners), this one IS asserted: it is the acceptance bar
#: of the backend, the measured margin is wide (~3.5-4.5x), and
#: best-of-N timing of a tens-of-ms region damps runner noise.  If a
#: future platform shifts the constant factors below the bar, lower
#: it consciously — don't delete the parity assertions with it.
ASSERTED_SPEEDUP = 3.0
ASSERTED_ACTORS = 80

RESULTS_DIR = Path(__file__).parent / "results"


def _sweep_graph(n_actors):
    return random_consistent_graph(
        n_actors, extra_edges=n_actors // 2, n_cycles=2, seed=7,
        with_control=False,
    ).as_csdf()


def _run_sweep(graph, backend):
    """One throughput sweep; returns (results per budget, visit total)."""
    results = {}
    visits = 0
    for cores in CORE_BUDGETS:
        stats = {}
        results[cores] = self_timed_execution(
            graph, iterations=ITERATIONS, cores=cores, stats=stats,
            backend=backend,
        )
        visits += stats["ready_visits"]
    return results, visits


def _time_sweep(graph, backend):
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        results, visits = _run_sweep(graph, backend)
        best = min(best, time.perf_counter() - start)
    return best * 1000.0, results, visits


def _sweep_rows(record_bench):
    rows = []
    for n_actors in SIZES:
        graph = _sweep_graph(n_actors)
        # Warm the shared analysis caches (repetition vector etc.) so
        # both backends are measured from the same starting line; the
        # arrays template is part of what the backend is *for*, so its
        # first build is inside the measured region.
        self_timed_execution(graph, iterations=1, backend="wakeup")
        cells = {
            backend: _time_sweep(graph, backend)
            for backend in ("wakeup", "arrays")
        }
        wall_w, results_w, visits_w = cells["wakeup"]
        wall_a, results_a, visits_a = cells["arrays"]
        for cores in CORE_BUDGETS:
            assert results_a[cores] == results_w[cores], (
                f"backend divergence at {n_actors} actors, cores={cores}"
            )
        speedup = wall_w / wall_a
        if n_actors == ASSERTED_ACTORS:
            assert speedup >= ASSERTED_SPEEDUP, (
                f"{n_actors}-actor sweep: arrays {wall_a:.2f}ms vs wakeup "
                f"{wall_w:.2f}ms = {speedup:.2f}x, below the "
                f"{ASSERTED_SPEEDUP}x bar"
            )
        for backend, wall, visits in (("wakeup", wall_w, visits_w),
                                      ("arrays", wall_a, visits_a)):
            record_bench(
                f"ext7_sweep_n{n_actors}_{backend}",
                actors=n_actors, backend=backend, wall_ms=wall,
                ready_visits=visits,
            )
        rows.append({
            "workload": "throughput sweep",
            "actors": n_actors,
            "visits_arrays": visits_a,
            "visits_wakeup": visits_w,
            "wall_arrays_ms": wall_a,
            "wall_wakeup_ms": wall_w,
            "speedup": speedup,
        })
    return rows


def _buffer_search_rows(record_bench, n_actors=40):
    """The compounding case: every probe of the buffer search clones
    the memoized template instead of rebuilding firing tables."""
    graph = _sweep_graph(n_actors)
    self_timed_execution(graph, iterations=1, backend="wakeup")
    rows = []
    caps = {}
    for backend in ("wakeup", "arrays"):
        best = float("inf")
        for _ in range(3):
            stats = {}
            start = time.perf_counter()
            caps[backend] = min_buffers_for_full_throughput(
                graph, iterations=ITERATIONS, stats=stats, backend=backend
            )
            best = min(best, time.perf_counter() - start)
        record_bench(
            f"ext7_buffer_search_n{n_actors}_{backend}",
            actors=n_actors, backend=backend, wall_ms=best * 1000.0,
            ready_visits=stats["probes"],
        )
        rows.append({
            "workload": "buffer search",
            "actors": n_actors,
            "backend": backend,
            "wall_ms": best * 1000.0,
            "probes": stats["probes"],
        })
    assert caps["arrays"] == caps["wakeup"], "buffer search divergence"
    return rows


def test_ext7_arraystate_cost(benchmark, report, record_bench):
    benchmark.pedantic(
        self_timed_execution,
        args=(_sweep_graph(40),),
        kwargs=dict(iterations=ITERATIONS, backend="arrays"),
        rounds=1, iterations=1,
    )
    sweep = _sweep_rows(record_bench)
    search = _buffer_search_rows(record_bench)

    table_rows = []
    csv_rows = []
    for row in sweep:
        visit_ratio = row["visits_wakeup"] / row["visits_arrays"]
        table_rows.append([
            row["workload"], row["actors"],
            f"{row['visits_arrays']} / {row['visits_wakeup']}",
            f"{visit_ratio:.1f}x",
            f"{row['wall_arrays_ms']:.2f} / {row['wall_wakeup_ms']:.2f}",
            f"{row['speedup']:.2f}x",
        ])
        csv_rows.append([
            row["workload"], row["actors"],
            row["visits_arrays"], row["visits_wakeup"],
            f"{visit_ratio:.2f}",
            f"{row['wall_arrays_ms']:.3f}", f"{row['wall_wakeup_ms']:.3f}",
            f"{row['speedup']:.3f}",
        ])
    search_by_backend = {row["backend"]: row for row in search}
    wall_w = search_by_backend["wakeup"]["wall_ms"]
    wall_a = search_by_backend["arrays"]["wall_ms"]
    table_rows.append([
        "buffer search", search[0]["actors"],
        f"{search_by_backend['arrays']['probes']} probes",
        "-",
        f"{wall_a:.2f} / {wall_w:.2f}",
        f"{wall_w / wall_a:.2f}x",
    ])
    csv_rows.append([
        "buffer search", search[0]["actors"],
        search_by_backend["arrays"]["probes"],
        search_by_backend["wakeup"]["probes"],
        "", f"{wall_a:.3f}", f"{wall_w:.3f}", f"{wall_w / wall_a:.3f}",
    ])

    table = ascii_table(
        ["workload", "actors", "ready visits (arrays/wakeup)",
         "visit ratio", "wall ms (arrays/wakeup)", "speedup"],
        table_rows,
        title="EXT7 — array-state backend vs wakeup core "
              "(identical results asserted on every row; "
              f">= {ASSERTED_SPEEDUP}x asserted at {ASSERTED_ACTORS} actors)",
    )
    report("ext7_arraystate", table)
    write_csv(
        RESULTS_DIR / "ext7_arraystate.csv",
        ["workload", "actors", "visits_arrays", "visits_wakeup",
         "visit_ratio", "wall_ms_arrays", "wall_ms_wakeup", "speedup"],
        csv_rows,
    )
