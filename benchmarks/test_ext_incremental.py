"""EXT8 — delta-aware incremental re-analysis: warm vs cold per edit
class.

PR 6 makes the analysis front door edit-aware: mutation records
classify each bump (binding vs structural, touched names), carryable
products (repetition vector, liveness, HSDF structure, buffer
schedule) survive binding-only bumps, MCR is memoized per HSDF SCC in
a cross-version content store (changed components warm-start Howard
from the remembered cycle policy), and the struct-of-arrays executor
template is patched in place after binding deltas.

This bench replays the edit-loop workload those mechanisms target: one
graph, repeated ``EditSession.analyze()`` calls after small edits.
Per size and edit class it measures the **warm** re-analysis against a
**cold** analysis of a fresh serialization round-trip clone (no
caches, nothing to reuse), asserting fingerprint parity on every
round — the speedup is only meaningful because the results are
bit-for-bit identical.  Edit classes:

* ``bind_out``  — execution-time edit on an actor *outside* the cyclic
  core: every carryable survives, only a tiny singleton SCC re-solves;
* ``bind_in``   — execution-time edit *inside* the cyclic core: the
  core SCC re-solves, warm-started;
* ``tokens``    — initial-token edit (structural: distances move, rate
  products still carried per SCC key where unchanged);
* ``rate``      — balanced rate scaling (structural: the repetition
  vector and expansion change, closest to a cold run).

Rows are recorded to ``ext8_incremental.{txt,csv}`` and, through the
conftest, the machine-readable ``BENCH_eventloop.json``.
"""

import time
from pathlib import Path

import networkx as nx

from repro.analysis import EditSession, analyze
from repro.io import csdf_from_dict, csdf_to_dict
from repro.tpdf import random_consistent_graph
from repro.util import ascii_table, write_csv

SIZES = (20, 40, 80)
ITERATIONS = 3
TIMING_ROUNDS = 5
#: Warm floor asserted for out-of-core binding edits at 80 actors.
#: This is the acceptance bar of the incremental machinery: a weight
#: edit outside the cyclic core leaves every carryable product valid,
#: so the warm path pays only the tiny changed SCC, the template patch
#: and the (necessarily re-run) timed stage, while cold repeats the
#: balance solve, liveness probe, greedy buffer schedule and full-HSDF
#: MCR.  The measured margin is wide (>10x locally); best-of-N timing
#: damps runner noise.  If a future platform shifts constant factors
#: below the bar, lower it consciously — never by weakening the parity
#: asserts.
ASSERTED_SPEEDUP = 5.0
ASSERTED_ACTORS = 80
ASSERTED_CLASS = "bind_out"

RESULTS_DIR = Path(__file__).parent / "results"


def _edit_graph(n_actors):
    """A mutable clone of the scalability generator's graph
    (``as_csdf()`` products are frozen shared memos)."""
    frozen = random_consistent_graph(
        n_actors, extra_edges=n_actors // 2, n_cycles=2, seed=7,
        with_control=False,
    ).as_csdf()
    return csdf_from_dict(csdf_to_dict(frozen))


def _core_split(graph):
    """Actor names (inside, outside) the cyclic core."""
    nxg = graph.to_networkx()
    cyclic: set = set()
    for scc in nx.strongly_connected_components(nxg):
        if len(scc) > 1 or nxg.has_edge(*(tuple(scc) * 2)):
            cyclic |= scc
    inside = sorted(cyclic)
    outside = sorted(set(graph.actors) - cyclic)
    assert inside and outside, "bench graph needs both regions"
    return inside, outside


def _concrete(rates):
    return tuple(int(entry.evaluate({})) for entry in rates)


def _edit_classes(graph):
    """``name -> apply(session, round)``; every call is a *fresh* edit
    (a version bump), otherwise the O(1) resubmission shortcut would
    void the warm measurement."""
    inside, outside = _core_split(graph)
    tokened = next(c.name for c in graph.channels.values()
                   if c.initial_tokens > 0)
    base_tokens = graph.channel(tokened).initial_tokens
    scaled = next(iter(graph.channels))
    base_prod = _concrete(graph.channel(scaled).production)
    base_cons = _concrete(graph.channel(scaled).consumption)
    base_fill = graph.channel(scaled).initial_tokens

    def bind_out(session, rnd):
        session.set_exec_time(outside[0], float(3 + rnd % 4))

    def bind_in(session, rnd):
        session.set_exec_time(inside[0], float(3 + rnd % 4))

    def tokens(session, rnd):
        # Only ever above the seeded fill, so liveness is preserved.
        session.set_initial_tokens(tokened, base_tokens + 1 + rnd % 2)

    def rate(session, rnd):
        # Scale production, consumption and fill together: balance (and
        # hence consistency) is preserved exactly.
        m = 2 if rnd % 2 == 0 else 1
        session.set_production(scaled, tuple(m * r for r in base_prod))
        session.set_consumption(scaled, tuple(m * r for r in base_cons))
        session.set_initial_tokens(scaled, m * base_fill)

    return (("bind_out", bind_out), ("bind_in", bind_in),
            ("tokens", tokens), ("rate", rate))


def test_ext8_incremental_reanalysis(report, record_bench):
    table_rows = []
    csv_rows = []
    for n_actors in SIZES:
        for edit_class, apply_edit in _edit_classes(_edit_graph(n_actors)):
            graph = _edit_graph(n_actors)
            session = EditSession(graph, iterations=ITERATIONS)
            session.analyze()  # the warm anchor every edit loop starts from
            warm_best = cold_best = float("inf")
            for rnd in range(TIMING_ROUNDS):
                apply_edit(session, rnd)
                start = time.perf_counter()
                warm = session.analyze()
                warm_best = min(warm_best, time.perf_counter() - start)

                clone = csdf_from_dict(csdf_to_dict(graph))
                start = time.perf_counter()
                cold = analyze(clone, None, iterations=ITERATIONS)
                cold_best = min(cold_best, time.perf_counter() - start)
                assert warm.fingerprint() == cold.fingerprint(), (
                    f"warm/cold divergence: {n_actors} actors, "
                    f"{edit_class}, round {rnd}"
                )
            warm_ms = warm_best * 1000.0
            cold_ms = cold_best * 1000.0
            speedup = cold_best / warm_best
            if n_actors == ASSERTED_ACTORS and edit_class == ASSERTED_CLASS:
                assert speedup >= ASSERTED_SPEEDUP, (
                    f"{edit_class} at {n_actors} actors: warm {warm_ms:.2f}ms "
                    f"vs cold {cold_ms:.2f}ms = {speedup:.2f}x, below the "
                    f"{ASSERTED_SPEEDUP}x bar"
                )
            for leg, wall in (("warm", warm_ms), ("cold", cold_ms)):
                record_bench(
                    f"ext8_{edit_class}_n{n_actors}_{leg}",
                    actors=n_actors, backend=leg, wall_ms=wall,
                    ready_visits=0,
                )
            table_rows.append([
                edit_class, n_actors,
                f"{warm_ms:.2f} / {cold_ms:.2f}", f"{speedup:.2f}x",
            ])
            csv_rows.append([
                edit_class, n_actors,
                f"{warm_ms:.3f}", f"{cold_ms:.3f}", f"{speedup:.3f}",
            ])

    table = ascii_table(
        ["edit class", "actors", "wall ms (warm/cold)", "speedup"],
        table_rows,
        title="EXT8 — incremental re-analysis, warm vs cold "
              "(fingerprint parity asserted on every round; "
              f">= {ASSERTED_SPEEDUP}x asserted for {ASSERTED_CLASS} "
              f"at {ASSERTED_ACTORS} actors)",
    )
    report("ext8_incremental", table)
    write_csv(
        RESULTS_DIR / "ext8_incremental.csv",
        ["edit_class", "actors", "wall_ms_warm", "wall_ms_cold", "speedup"],
        csv_rows,
    )
