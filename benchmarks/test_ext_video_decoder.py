"""EXT1 — the Sec. V claims made executable.

1. The SPDF/BPDF flagship case study (VC-1 video decoder) "can be
   replicated using our approach without introducing parameter
   communication and synchronization" — our parametric decoder graph
   has exactly the pipeline actors (p appears only in rates), passes
   the full static chain, and decodes real block-coded video.
2. The AVC quality-threshold motion search "to choose dynamically the
   highest quality video available within real-time constraints" — a
   Transaction + clock race over three ME strategies; quality (SAD of
   the selected vectors) improves monotonically with the deadline.
"""

from repro.apps.video import (
    run_decoder,
    run_motion_experiment,
    build_decoder_graph,
    synthetic_video,
)
from repro.tpdf import check_boundedness
from repro.util import ascii_table

FRAMES = synthetic_video(4, 32, 32, motion=(1, 2))


def decoder_study():
    graph = build_decoder_graph()
    verdict = check_boundedness(graph)
    intra = run_decoder(FRAMES, step=0.001, mode="intra")
    inter = run_decoder(FRAMES, step=0.001, mode="inter")
    coarse = run_decoder(FRAMES, step=16.0, mode="intra")
    return verdict, intra, inter, coarse


def test_ext1_vc1_decoder(benchmark, report):
    verdict, intra, inter, coarse = benchmark(decoder_study)
    assert verdict.bounded
    assert intra.psnr(FRAMES) > 60.0
    assert inter.psnr(FRAMES) > 60.0

    table = ascii_table(
        ["configuration", "PSNR (dB)", "MC firings"],
        [
            ["intra, step 0.001", f"{intra.psnr(FRAMES):.1f}", intra.trace.count("MC")],
            ["inter, step 0.001", f"{inter.psnr(FRAMES):.1f}", inter.trace.count("MC")],
            ["intra, step 16 (lossy)", f"{coarse.psnr(FRAMES):.1f}",
             coarse.trace.count("MC")],
        ],
        title="EXT1a — parametric VC-1-style decoder (p in rates only; "
              "static verdict: " + str(verdict) + ")",
    )
    report("ext1_vc1_decoder", table)


def test_ext1_avc_motion_threshold(benchmark, report):
    def sweep():
        return [run_motion_experiment(FRAMES, deadline=d)
                for d in (5.0, 30.0, 100.0)]

    experiments = benchmark(sweep)
    sads = [exp.mean_sad for exp in experiments]
    assert sads[0] >= sads[1] >= sads[2]  # quality improves with deadline
    assert set(experiments[0].chosen_strategy) == {"zero"}
    assert set(experiments[-1].chosen_strategy) == {"full"}

    rows = [
        [exp.deadline, ", ".join(sorted(set(exp.chosen_strategy))),
         f"{exp.mean_sad:.0f}"]
        for exp in experiments
    ]
    reference = experiments[0].strategy_sad
    table = ascii_table(
        ["deadline (model ms)", "strategy selected", "mean SAD of output"],
        rows,
        title="EXT1b — AVC-style quality threshold via Transaction + clock "
              f"(per-strategy SAD: zero={reference['zero']:.0f}, "
              f"threestep={reference['threestep']:.0f}, "
              f"full={reference['full']:.0f})",
    )
    report("ext1_avc_motion", table)
