"""EXT10 — the simulator's schedule-plane / value-plane split.

PR 9 rebuilt the TPDF ``Simulator`` around two planes: a **schedule
plane** that runs all scheduling mechanics (mode-gated port sets,
priority choice, discard debts, clocks, core budgets, capacities) on
flat slot-indexed counters over the memoized struct-of-arrays template
of ``repro.csdf.statearrays``, and a lazy **value plane** that
materializes token payloads only on channels with a value-touching
endpoint.  A graph with no value consumer at all degenerates to the
counters-only fast path — the CSDF arrays kernel with TPDF bookkeeping
compiled away.

This bench measures the three ready cores (``reference`` full-rescan
oracle, ``wakeup`` Python worklist, ``arrays`` plane split) on two
workloads:

* the **OFDM demodulator** (the paper's Fig. 7 graph): a control
  actor steers mode-gated kernels, so the value plane engages on the
  control paths while the data channels stay counters-only;
* an **80-actor timing-only sweep** (no control, no functions): the
  whole-graph fast path, where the >= 3x wall-clock bar against the
  wakeup core is asserted (measured margin ~5x; the reference loop
  trails by ~75x and is recorded, not asserted).

Trace-fingerprint parity is asserted across all three cores on every
row; rows are recorded to ``ext10_simulator.{txt,csv}`` and folded
into the machine-readable ``BENCH_eventloop.json``.
"""

import time
from pathlib import Path

from repro.apps.ofdm import bindings_for, build_ofdm_tpdf
from repro.sim import Simulator
from repro.tpdf import random_consistent_graph
from repro.tpdf.modes import ControlToken, Mode
from repro.util import ascii_table, write_csv

CORES = ("reference", "wakeup", "arrays")
#: Wall-clock floor asserted on the 80-actor timing-only sweep,
#: arrays plane vs wakeup core.  Asserted (not merely recorded)
#: because it is the acceptance bar of the plane split; the measured
#: margin is wide (~5x) and best-of-N timing damps runner noise.
ASSERTED_SPEEDUP = 3.0
SWEEP_ACTORS = 80
SWEEP_FIRINGS = 40
TIMING_ROUNDS = 5

RESULTS_DIR = Path(__file__).parent / "results"


def _time_core(make_sim, limits, rounds=TIMING_ROUNDS):
    """Best-of-N wall clock of one full simulation; returns
    (wall_ms, fingerprint, stats) of the last run."""
    best = float("inf")
    for _ in range(rounds):
        sim = make_sim()
        start = time.perf_counter()
        trace = sim.run(limits=limits)
        best = min(best, time.perf_counter() - start)
    return best * 1000.0, trace.fingerprint(), sim.stats()


def _ofdm_rows(record_bench):
    graph = build_ofdm_tpdf()
    # Steer the bracketed control region like the real receiver does:
    # m = 4 is the 16-QAM operating point, so the transaction selects
    # the "qam" input and the qpsk path's tokens are consumed-and-
    # discarded every firing (the discard machinery is on the hot
    # path, not idle).
    graph.node("CON").decision = lambda n, inputs: ControlToken(
        Mode.SELECT_ONE, ("qam",)
    )
    bindings = bindings_for(4, 64, 4, 4)
    limits = {"SRC": 8}
    cells = {}
    for core in CORES:
        cells[core] = _time_core(
            lambda core=core: Simulator(graph, bindings=bindings,
                                        ready_core=core),
            limits,
        )
        record_bench(
            f"ext10_ofdm_{core}",
            actors=len(graph.kernels) + len(graph.controls),
            backend=core, wall_ms=cells[core][0],
            ready_visits=cells[core][2]["visits"],
        )
    prints = {core: cells[core][1] for core in CORES}
    assert prints["arrays"] == prints["wakeup"] == prints["reference"], (
        "OFDM trace divergence across ready cores"
    )
    # The control channels carry real ControlTokens, the data channels
    # stay counters-only.
    stats = cells["arrays"][2]
    assert stats["plane"] == "arrays"
    assert stats["fast_path"] is False
    assert stats["value_channels"] > 0
    assert stats["schedule_only_channels"] > 0
    return {core: cells[core][0] for core in CORES}, stats


def _sweep_rows(record_bench):
    graph = random_consistent_graph(
        SWEEP_ACTORS, extra_edges=SWEEP_ACTORS // 2, n_cycles=2, seed=7,
        with_control=False,
    )
    limits = {name: SWEEP_FIRINGS for name in graph.kernels}
    cells = {}
    for core in CORES:
        rounds = 2 if core == "reference" else TIMING_ROUNDS
        cells[core] = _time_core(
            lambda core=core: Simulator(graph, ready_core=core),
            limits, rounds=rounds,
        )
        record_bench(
            f"ext10_sweep_n{SWEEP_ACTORS}_{core}",
            actors=SWEEP_ACTORS, backend=core, wall_ms=cells[core][0],
            ready_visits=cells[core][2]["visits"],
        )
    prints = {core: cells[core][1] for core in CORES}
    assert prints["arrays"] == prints["wakeup"] == prints["reference"], (
        f"{SWEEP_ACTORS}-actor sweep trace divergence across ready cores"
    )
    stats = cells["arrays"][2]
    assert stats["fast_path"] is True  # no value consumer anywhere
    assert stats["value_channels"] == 0
    wall_w, wall_a = cells["wakeup"][0], cells["arrays"][0]
    speedup = wall_w / wall_a
    assert speedup >= ASSERTED_SPEEDUP, (
        f"{SWEEP_ACTORS}-actor timing-only sweep: arrays {wall_a:.2f}ms "
        f"vs wakeup {wall_w:.2f}ms = {speedup:.2f}x, below the "
        f"{ASSERTED_SPEEDUP}x bar"
    )
    return {core: cells[core][0] for core in CORES}, stats


def test_ext10_simulator_planes(report, record_bench):
    ofdm, ofdm_stats = _ofdm_rows(record_bench)
    sweep, sweep_stats = _sweep_rows(record_bench)

    table_rows = []
    csv_rows = []
    for label, walls, stats in (
        ("OFDM fig7 (control + modes)", ofdm, ofdm_stats),
        (f"{SWEEP_ACTORS}-actor timing-only", sweep, sweep_stats),
    ):
        split = (f"{stats['value_channels']}v/"
                 f"{stats['schedule_only_channels']}s")
        table_rows.append([
            label,
            "yes" if stats["fast_path"] else "no",
            split,
            f"{walls['reference']:.2f}",
            f"{walls['wakeup']:.2f}",
            f"{walls['arrays']:.2f}",
            f"{walls['wakeup'] / walls['arrays']:.2f}x",
            f"{walls['reference'] / walls['arrays']:.2f}x",
        ])
        csv_rows.append([
            label, int(stats["fast_path"]),
            stats["value_channels"], stats["schedule_only_channels"],
            f"{walls['reference']:.3f}", f"{walls['wakeup']:.3f}",
            f"{walls['arrays']:.3f}",
            f"{walls['wakeup'] / walls['arrays']:.3f}",
            f"{walls['reference'] / walls['arrays']:.3f}",
        ])

    table = ascii_table(
        ["workload", "fast path", "channels (value/schedule-only)",
         "reference ms", "wakeup ms", "arrays ms",
         "vs wakeup", "vs reference"],
        table_rows,
        title="EXT10 — simulator schedule/value planes "
              "(trace fingerprints asserted identical on every row; "
              f">= {ASSERTED_SPEEDUP}x vs wakeup asserted at "
              f"{SWEEP_ACTORS} actors)",
    )
    report("ext10_simulator", table)
    write_csv(
        RESULTS_DIR / "ext10_simulator.csv",
        ["workload", "fast_path", "value_channels",
         "schedule_only_channels", "wall_ms_reference", "wall_ms_wakeup",
         "wall_ms_arrays", "speedup_vs_wakeup", "speedup_vs_reference"],
        csv_rows,
    )
