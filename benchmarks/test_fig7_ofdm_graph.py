"""FIG7 — the OFDM demodulator TPDF graph (Sec. IV-B).

Artefacts: the static analysis chain on the Fig. 7 graph (consistency
with the parametric rates beta(N+L), betaN, betaMN, ...; rate safety of
the control region; boundedness), and a functional end-to-end run in
both configurations (QPSK M=2, 16-QAM M=4) with exact bit recovery.
"""

from repro.apps.ofdm import build_ofdm_tpdf, run_ofdm_scenarios, run_ofdm_tpdf
from repro.tpdf import check_boundedness, repetition_vector
from repro.util import ascii_table


def analyse():
    graph = build_ofdm_tpdf()
    q = repetition_vector(graph)
    verdict = check_boundedness(graph)
    return graph, q, verdict


def test_fig7_static_analysis(benchmark, report):
    graph, q, verdict = benchmark(analyse)
    assert verdict.bounded
    assert all(str(count) == "1" for count in q.values())

    lines = [
        "Fig. 7 — OFDM demodulator TPDF graph",
        "",
        graph.describe(),
        "",
        f"repetition vector: all ones (one activation per iteration)",
        f"static verdict: {verdict}",
    ]
    report("fig7_ofdm_graph", "\n".join(lines))


def test_fig7_functional_run(benchmark, report):
    def run_both():
        qpsk = run_ofdm_tpdf(beta=4, n=64, l=8, m=2, activations=2)
        qam = run_ofdm_tpdf(beta=4, n=64, l=8, m=4, activations=2)
        return qpsk, qam

    qpsk, qam = benchmark(run_both)
    assert qpsk.bit_errors == 0 and qam.bit_errors == 0
    assert "QAM" not in qpsk.trace.counts()   # rejected path never fires
    assert "QPSK" not in qam.trace.counts()

    table = ascii_table(
        ["config", "scheme", "bits", "bit errors", "demapper firings"],
        [
            ["M=2", qpsk.scheme, qpsk.sent_bits.size, qpsk.bit_errors,
             f"QPSK={qpsk.trace.count('QPSK')}, QAM={qpsk.trace.count('QAM')}"],
            ["M=4", qam.scheme, qam.sent_bits.size, qam.bit_errors,
             f"QPSK={qam.trace.count('QPSK')}, QAM={qam.trace.count('QAM')}"],
        ],
        title="Fig. 7 functional check — only the selected demapper executes",
    )
    report("fig7_ofdm_functional", table)


def test_fig7_runtime_reconfiguration(benchmark, report):
    """The paper's 'runtime-reconfigurable' claim: the control node
    switches the demapper per activation within a single run."""
    schemes = ["qpsk", "qam16", "qpsk", "qam16", "qam16", "qpsk"]
    run = benchmark(run_ofdm_scenarios, schemes, 2, 32, 4)
    assert run.total_errors == 0
    counts = run.trace.counts()
    assert counts["QPSK"] == schemes.count("qpsk")
    assert counts["QAM"] == schemes.count("qam16")

    rows = [
        [index, scheme, bits, errors]
        for index, (scheme, bits, errors) in enumerate(
            zip(run.schemes, run.bits_per_activation, run.bit_errors)
        )
    ]
    table = ascii_table(
        ["activation", "scheme (runtime)", "bits", "errors"],
        rows,
        title="Fig. 7 runtime reconfiguration — per-activation scheme "
              "switching, one graph, one run",
    )
    report("fig7_runtime_reconfiguration", table)
