"""Benchmark harness plumbing.

Each bench regenerates one of the paper's tables/figures.  Because
pytest captures stdout, benches register their rendered tables through
the ``report`` fixture; a terminal-summary hook prints everything at
the end of the run (so ``pytest benchmarks/ --benchmark-only`` output
contains the paper's rows/series verbatim).  Tables are also written to
``benchmarks/results/`` as text and CSV.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

_sections: list[tuple[str, str]] = []


@pytest.fixture
def report():
    """``report(name, text)``: register a rendered artefact for the
    terminal summary and persist it under benchmarks/results/."""

    def _report(name: str, text: str) -> None:
        _sections.append((name, text))
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")

    return _report


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _sections:
        return
    terminalreporter.section("paper artefacts (regenerated)")
    for name, text in _sections:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"===== {name} =====")
        for line in text.splitlines():
            terminalreporter.write_line(line)
