"""Benchmark harness plumbing.

Each bench regenerates one of the paper's tables/figures.  Because
pytest captures stdout, benches register their rendered tables through
the ``report`` fixture; a terminal-summary hook prints everything at
the end of the run (so ``pytest benchmarks/ --benchmark-only`` output
contains the paper's rows/series verbatim).  Tables are also written to
``benchmarks/results/`` as text and CSV.

Event-loop benches additionally register **machine-readable** rows
through the ``record_bench`` fixture.  The terminal-summary hook folds
them into ``benchmarks/results/BENCH_eventloop.json`` (schema:
``bench id -> {actors, backend, wall_ms, ready_visits}``), merging
with rows already on disk so partial bench runs never erase the other
benches' numbers.  CI uploads the file every run, giving the perf
trajectory a PR-over-PR record instead of prose-only tables.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_JSON = RESULTS_DIR / "BENCH_eventloop.json"

_sections: list[tuple[str, str]] = []
_bench_rows: dict[str, dict] = {}


@pytest.fixture
def report():
    """``report(name, text)``: register a rendered artefact for the
    terminal summary and persist it under benchmarks/results/."""

    def _report(name: str, text: str) -> None:
        _sections.append((name, text))
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")

    return _report


@pytest.fixture
def record_bench():
    """``record_bench(bench_id, actors=, backend=, wall_ms=,
    ready_visits=)``: queue one machine-readable event-loop bench row
    for ``BENCH_eventloop.json``."""

    def _record(bench_id: str, *, actors: int, backend: str,
                wall_ms: float, ready_visits: int) -> None:
        _bench_rows[bench_id] = {
            "actors": int(actors),
            "backend": str(backend),
            "wall_ms": round(float(wall_ms), 3),
            "ready_visits": int(ready_visits),
        }

    return _record


def _write_bench_json() -> None:
    if not _bench_rows:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    merged: dict[str, dict] = {}
    if BENCH_JSON.exists():
        try:
            merged = json.loads(BENCH_JSON.read_text())
        except (ValueError, OSError):
            merged = {}
    merged.update(_bench_rows)
    BENCH_JSON.write_text(
        json.dumps(dict(sorted(merged.items())), indent=2) + "\n"
    )


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    _write_bench_json()
    if not _sections:
        return
    terminalreporter.section("paper artefacts (regenerated)")
    for name, text in _sections:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"===== {name} =====")
        for line in text.splitlines():
            terminalreporter.write_line(line)
