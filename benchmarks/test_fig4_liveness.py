"""FIG4 — Fig. 4 of the paper: liveness by clustering.

Paper claims: both 4(a) (two initial tokens) and 4(b) (one initial
token) are live; 4(b) admits only interleaved local schedules (the late
schedule (B C C B)); clustering the cycle yields graph 4(c) A -> Omega
with schedule A^2 Omega^p.
"""

from repro.csdf import find_sequential_schedule
from repro.gallery import fig4_graph
from repro.scheduling import late_schedule
from repro.tpdf import check_liveness, clustered_graph
from repro.util import ascii_table


def analyse():
    g4a = fig4_graph("a")
    g4b = fig4_graph("b")
    dead = fig4_graph("dead")
    report_a = check_liveness(g4a)
    report_b = check_liveness(g4b)
    report_dead = check_liveness(dead)
    clustered = clustered_graph(g4a)
    schedule_c = find_sequential_schedule(clustered, {"p": 2})
    late_b = late_schedule(g4b.as_csdf(), {"p": 1})
    return report_a, report_b, report_dead, schedule_c, late_b


def test_fig4_liveness_and_clustering(benchmark, report):
    rep_a, rep_b, rep_dead, schedule_c, late_b = benchmark(analyse)
    assert rep_a.live and rep_b.live and not rep_dead.live
    assert str(schedule_c) == "(A)^2 (Omega)^2"

    rows = [
        ["4(a) two initial tokens", "live", "live" if rep_a.live else "dead",
         str(rep_a.cycles[0].schedule)],
        ["4(b) one initial token", "live (interleaved)",
         "live" if rep_b.live else "dead", str(rep_b.cycles[0].schedule)],
        ["4(b) zero tokens (sanity)", "dead",
         "live" if rep_dead.live else "dead", "-"],
    ]
    table = ascii_table(
        ["case", "paper", "measured", "local schedule"],
        rows,
        title="Fig. 4 — liveness of the cyclic examples",
    )
    lines = [
        table,
        "",
        "clustered graph 4(c): A -[p,p]-> [2] Omega",
        f"clustered schedule (paper A^2 Omega^p, p=2): {schedule_c}",
        f"late schedule of 4(b) at p=1 (paper (BCCB)-class): {late_b}",
    ]
    report("fig4_liveness", "\n".join(lines))
