"""EXT2 — self-timed throughput vs core budget.

The paper's evaluation reports buffers; this extension bench profiles
the performance dimension its MPPA-256 motivation implies: steady-state
iteration period of the Fig. 2 graph and the OFDM demodulator under
increasing core budgets (software-pipelined self-timed execution).
Expected shape: the period shrinks with cores until the critical
cycle/bottleneck saturates it.
"""

from repro.apps.ofdm import bindings_for, build_ofdm_tpdf
from repro.csdf import throughput_vs_cores
from repro.tpdf import fig2_graph
from repro.util import ascii_table

CORES = (1, 2, 4, 8)


def sweep():
    fig2 = fig2_graph().as_csdf()
    ofdm = build_ofdm_tpdf().as_csdf()
    return (
        throughput_vs_cores(fig2, {"p": 4}, core_budgets=CORES, iterations=4),
        throughput_vs_cores(ofdm, bindings_for(4, 64, 4, 4),
                            core_budgets=CORES, iterations=4),
    )


def test_ext2_throughput_vs_cores(benchmark, report):
    fig2_results, ofdm_results = benchmark(sweep)
    rows = []
    for name, results in (("Fig. 2 (p=4)", fig2_results),
                          ("OFDM (beta=4, N=64)", ofdm_results)):
        periods = [results[c].iteration_period for c in CORES]
        # More cores never slow the steady state down.
        assert all(a >= b - 1e-9 for a, b in zip(periods, periods[1:]))
        for cores, period in zip(CORES, periods):
            rows.append([name, cores, f"{period:.2f}",
                         f"{results[cores].makespan:.2f}"])
    table = ascii_table(
        ["graph", "cores", "steady-state period", "makespan (4 iters)"],
        rows,
        title="EXT2 — self-timed throughput vs core budget",
    )
    report("ext2_throughput", table)
