"""EXT3 — buffer-size / throughput trade-off under blocking writes.

Fig. 8 reports *minimum* buffers for one iteration; a deployment also
needs to know what those minimal buffers cost in throughput when
iterations pipeline.  This bench scales the minimal capacities of the
Fig. 2 graph and the OFDM demodulator and measures the steady-state
iteration period with back-pressure: tighter buffers serialize the
pipeline, larger budgets saturate at the bottleneck actor.
"""

from repro.apps.ofdm import bindings_for, build_ofdm_tpdf
from repro.csdf import (
    buffer_throughput_tradeoff,
    min_buffers_for_full_throughput,
    self_timed_execution,
)
from repro.tpdf import fig2_graph
from repro.util import ascii_table

SCALES = (1.0, 1.5, 2.0, 4.0)


def sweep():
    fig2 = fig2_graph().as_csdf()
    ofdm = build_ofdm_tpdf().as_csdf()
    return (
        buffer_throughput_tradeoff(fig2, {"p": 4}, scales=SCALES, iterations=4),
        buffer_throughput_tradeoff(
            ofdm, bindings_for(2, 32, 4, 4), scales=SCALES, iterations=4
        ),
    )


def test_ext3_buffer_throughput_tradeoff(benchmark, report):
    fig2_points, ofdm_points = benchmark(sweep)
    rows = []
    for name, points in (("Fig. 2 (p=4)", fig2_points),
                         ("OFDM (beta=2, N=32)", ofdm_points)):
        periods = [result.iteration_period for _, result in points]
        assert all(a >= b - 1e-9 for a, b in zip(periods, periods[1:]))
        for scale, (budget, result) in zip(SCALES, points):
            rows.append([
                name, f"{scale:.1f}x", budget,
                f"{result.iteration_period:.2f}",
                f"{result.makespan:.2f}",
            ])
    table = ascii_table(
        ["graph", "capacity scale", "total buffer", "steady period",
         "makespan (4 iters)"],
        rows,
        title="EXT3 — buffer budget vs steady-state throughput "
              "(blocking writes; 1.0x = minimal single-proc buffers)",
    )
    report("ext3_tradeoff", table)


def test_ext3_min_buffers_for_full_throughput(benchmark, report):
    """DSE point: the smallest capacities that still sustain the
    unconstrained steady-state period."""
    graph = fig2_graph().as_csdf()
    bindings = {"p": 4}

    caps = benchmark.pedantic(
        min_buffers_for_full_throughput, args=(graph, bindings),
        kwargs={"iterations": 5}, rounds=1, iterations=1,
    )
    unconstrained = self_timed_execution(graph, bindings, iterations=5)
    constrained = self_timed_execution(
        graph, bindings, iterations=5, capacities=caps
    )
    assert abs(constrained.iteration_period
               - unconstrained.iteration_period) < 1e-6

    rows = [
        [name, unconstrained.peaks[name], caps[name]]
        for name in sorted(caps)
    ]
    rows.append(["TOTAL", sum(unconstrained.peaks.values()), sum(caps.values())])
    table = ascii_table(
        ["channel", "unconstrained peak", "min capacity @ full throughput"],
        rows,
        title=f"EXT3b — Fig. 2 (p=4) buffer DSE; steady period "
              f"{unconstrained.iteration_period:.2f} preserved",
    )
    report("ext3_min_buffers", table)


def test_ext3_warm_started_buffer_search(benchmark, report):
    """EXT3c — the symbolic-bound warm start of the per-channel binary
    search: identical capacities, fewer probe executions where the
    bound undercuts the unconstrained peak (imbalanced pipelines whose
    fast producers run iterations ahead).

    The table also records *failing* warm probes: on the OFDM graphs
    the one-iteration symbolic bound undercuts the pipelining slack
    some channels need, so the probe at the bound fails — since the
    warm-start narrowing fix, each failure raises the search floor to
    ``bound + 1`` (monotone capacity/period curve) instead of being
    discarded, and the saved binary-search steps show up in the
    ``probes saved`` column."""
    from repro.csdf import CSDFGraph

    imbalanced = CSDFGraph("imbalanced")
    imbalanced.add_actor("src", exec_time=1)
    imbalanced.add_actor("mid", exec_time=2)
    imbalanced.add_actor("snk", exec_time=16)
    imbalanced.add_channel("a", "src", "mid", production=8, consumption=8)
    imbalanced.add_channel("b", "mid", "snk", production=8, consumption=8)

    cases = [
        ("Fig. 2 (p=4)", fig2_graph().as_csdf(), {"p": 4}, 5),
        ("OFDM (beta=2, N=16)", build_ofdm_tpdf().as_csdf(),
         bindings_for(2, 16, 4, 4), 5),
        ("OFDM (beta=2, N=32)", build_ofdm_tpdf().as_csdf(),
         bindings_for(2, 32, 4, 4), 5),
        ("imbalanced pipeline", imbalanced, None, 8),
    ]

    def sweep_all():
        rows = []
        for name, graph, bindings, iterations in cases:
            warm_stats, cold_stats = {}, {}
            warm = min_buffers_for_full_throughput(
                graph, bindings, iterations=iterations, stats=warm_stats)
            cold = min_buffers_for_full_throughput(
                graph, bindings, iterations=iterations, warm_start=False,
                stats=cold_stats)
            assert warm == cold, f"{name}: warm-started search diverged"
            rows.append((name, sum(warm.values()),
                         warm_stats["probes"], cold_stats["probes"],
                         warm_stats["warm_failed"],
                         warm_stats["probes_saved"]))
        # The failed-probe narrowing must be exercised by the corpus
        # (the OFDM rows) and must never make the warm search probe
        # more than the cold one.
        assert any(failed > 0 for *_, failed, _saved in rows)
        assert all(wp <= cp for _, _, wp, cp, _, _ in rows)
        return rows

    rows = benchmark.pedantic(sweep_all, rounds=1, iterations=1)
    table = ascii_table(
        ["graph", "min total buffer", "warm probes", "cold probes",
         "failed warm probes (floor-narrowed)", "est. steps narrowed"],
        [list(row) for row in rows],
        title="EXT3c — symbolic-bound warm start of the buffer search "
              "(capacities identical to the cold search; measured "
              "saving = cold - warm probes)",
    )
    from repro.util import write_csv

    write_csv(
        "benchmarks/results/ext3_warm_buffers.csv",
        ["graph", "min_total_buffer", "warm_probes", "cold_probes",
         "warm_failed", "est_steps_narrowed"],
        rows,
    )
    report("ext3_warm_buffers", table)
