"""ABL2 — ablation of ADF pruning (Sec. III-D, second rule).

Without the Actor Dependence Function, firings feeding rejected data
paths still execute (the CSDF situation); with it, the scheduler
cancels them.  Measured on the OFDM demodulator with the QAM path
selected: the QPSK demapper firing disappears from the executed set and
the makespan on a small platform shrinks accordingly.
"""

from repro.apps.ofdm import bindings_for, build_ofdm_tpdf
from repro.platform import single_cluster
from repro.scheduling import (
    build_canonical_period,
    list_schedule,
    prune_canonical_period,
    pruned_period,
)
from repro.tpdf import select_one
from repro.util import ascii_table

BINDINGS = bindings_for(4, 64, 4, 4)


def run_ablation():
    graph = build_ofdm_tpdf()
    period = build_canonical_period(graph, BINDINGS)
    platform = single_cluster(2)
    baseline = list_schedule(period, platform)

    decisions = {"DUP": select_one("qam"), "TRAN": select_one("qam")}
    pruned = prune_canonical_period(period, graph, decisions)
    pruned_mapping = list_schedule(pruned_period(pruned), platform)
    return period, baseline, pruned, pruned_mapping


def test_ablation_adf_pruning(benchmark, report):
    period, baseline, pruned, pruned_mapping = benchmark(run_ablation)
    total = period.dag.number_of_nodes()
    assert pruned.executed_firings < total
    assert {a for a, _ in pruned.cancelled} == {"QPSK"}
    assert pruned_mapping.makespan <= baseline.makespan + 1e-9

    rows = [
        ["firings executed", total, pruned.executed_firings],
        ["firings cancelled", 0, pruned.cancelled_firings],
        ["makespan (2 PEs)", baseline.makespan, pruned_mapping.makespan],
    ]
    table = ascii_table(
        ["metric", "ADF off (all paths)", "ADF on (QAM selected)"],
        rows,
        title="ABL2 — ADF pruning on the OFDM demodulator "
              "(beta=4, N=64, L=4, M=4)",
    )
    report("ablation_adf", table)
