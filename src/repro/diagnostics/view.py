"""A unified, read-only structural view over both graph models.

The diagnostics passes must work identically on
:class:`~repro.csdf.graph.CSDFGraph` and
:class:`~repro.tpdf.graph.TPDFGraph` *and* must be pure — no graph
mutation, no version bumps, no population of the per-graph analysis
caches (the purity property suite spies on exactly that).  That rules
out the memoized front doors (``TPDFGraph.as_csdf()``,
``repro.csdf.analysis.base_solution``...), so this module rebuilds the
minimal structural facts the passes need directly from the public
accessors, all of which are pure reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..csdf.graph import CSDFGraph
from ..csdf.rates import RateSequence, lcm_int
from ..tpdf.builtins import ClockActor
from ..tpdf.graph import TPDFGraph
from ..tpdf.kernel import ControlActor, Kernel
from ..tpdf.modes import Mode


@dataclass(frozen=True)
class ChannelView:
    """One channel, normalized across the two models."""

    name: str
    src: str
    dst: str
    #: ``node.port`` labels for subjects (fall back to the actor name
    #: on CSDF graphs, which have no ports).
    src_label: str
    dst_label: str
    production: RateSequence
    consumption: RateSequence
    initial_tokens: int
    is_control: bool


class GraphView:
    """Pure structural snapshot of a graph for the diagnostics passes."""

    def __init__(self, graph: Any):
        if not isinstance(graph, (TPDFGraph, CSDFGraph)):
            raise TypeError(
                f"diagnostics run on CSDF or TPDF graphs, got "
                f"{type(graph).__name__}"
            )
        self.graph = graph
        self.is_tpdf = isinstance(graph, TPDFGraph)
        self.name: str = graph.name
        self.channels: list[ChannelView] = []
        self._exec_len: dict[str, int] = {}
        if self.is_tpdf:
            self.actors = list(graph.node_names())
            for actor in self.actors:
                self._exec_len[actor] = len(graph.node(actor).exec_times)
            for channel in graph.channels.values():
                src_port = graph.node(channel.src).port(channel.src_port)
                dst_port = graph.node(channel.dst).port(channel.dst_port)
                self.channels.append(ChannelView(
                    name=channel.name,
                    src=channel.src,
                    dst=channel.dst,
                    src_label=f"{channel.src}.{channel.src_port}",
                    dst_label=f"{channel.dst}.{channel.dst_port}",
                    production=src_port.rates,
                    consumption=dst_port.rates,
                    initial_tokens=channel.initial_tokens,
                    is_control=channel.is_control,
                ))
        else:
            self.actors = list(graph.actor_names())
            for actor in self.actors:
                self._exec_len[actor] = len(graph.actor(actor).exec_times)
            for channel in graph.channels.values():
                self.channels.append(ChannelView(
                    name=channel.name,
                    src=channel.src,
                    dst=channel.dst,
                    src_label=channel.src,
                    dst_label=channel.dst,
                    production=channel.production,
                    consumption=channel.consumption,
                    initial_tokens=channel.initial_tokens,
                    is_control=False,
                ))

    # -- derived structure ------------------------------------------------
    def tau(self, actor: str) -> int:
        """Cycle length of ``actor`` (lcm of attached sequence lengths
        and the execution-time sequence) without touching the graph's
        memoized products."""
        length = self._exec_len[actor]
        for channel in self.channels:
            if channel.src == actor:
                length = lcm_int(length, len(channel.production))
            if channel.dst == actor:
                length = lcm_int(length, len(channel.consumption))
        return length

    def in_channels(self, actor: str) -> list[ChannelView]:
        return [c for c in self.channels if c.dst == actor]

    def out_channels(self, actor: str) -> list[ChannelView]:
        return [c for c in self.channels if c.src == actor]

    def used_parameters(self) -> set[str]:
        names: set[str] = set()
        for channel in self.channels:
            names |= channel.production.variables()
            names |= channel.consumption.variables()
        if self.is_tpdf:
            # Dangling ports carry rates too (they join tau and the
            # undeclared-parameter surface even without a channel).
            for actor in self.actors:
                for port in self.graph.node(actor).ports.values():
                    names |= port.rates.variables()
        return names

    def declared_parameters(self) -> set[str] | None:
        """Declared parameter names, or ``None`` when the model has no
        declaration concept (plain CSDF)."""
        if self.is_tpdf:
            return set(self.graph.parameters)
        return None

    # -- firing semantics -------------------------------------------------
    def is_clock(self, actor: str) -> bool:
        return self.is_tpdf and isinstance(self.graph.node(actor), ClockActor)

    def blocks_on_all_inputs(self, actor: str) -> bool:
        """True when the actor *provably* cannot fire while any data
        input is starved: CSDF actors and plain WAIT_ALL kernels.

        Clocks fire on time triggers and SELECT/priority kernels may
        fire on a subset of inputs — for those nothing is provable, so
        the deadlock pass must not count them as blocked.
        """
        if not self.is_tpdf:
            return True
        node = self.graph.node(actor)
        if isinstance(node, ClockActor):
            return False
        if isinstance(node, Kernel):
            return tuple(node.modes) == (Mode.WAIT_ALL,)
        # Plain control actors read all their inputs before deciding.
        return isinstance(node, ControlActor)
