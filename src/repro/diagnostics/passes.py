"""The diagnostics passes and their front door, :func:`run_diagnostics`.

Every pass consumes the pure :class:`~repro.diagnostics.view.GraphView`
(or, for TPDF-only contracts, the graph's public read accessors) and
emits :class:`~repro.diagnostics.core.Diagnostic` records with codes
from the :data:`~repro.diagnostics.core.CATALOG`.

Purity contract (enforced by tests/diagnostics/test_purity.py): running
the engine never mutates the graph, never bumps its analysis version
and never populates its memoized analysis caches.  The rate passes
therefore call the symbolic solver directly instead of the ``cached``
wrappers in :mod:`repro.csdf.analysis`.

Soundness contract (enforced by tests/diagnostics/test_soundness.py):
an ERROR is only emitted when the runtime provably fails — see the
per-code notes in :mod:`repro.diagnostics.core`.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

import networkx as nx

from ..symbolic import InconsistentRatesError, solve_balance
from ..symbolic.linsolve import consistency_conditions
from .core import CATALOG, Diagnostic, Severity, sort_diagnostics
from .view import ChannelView, GraphView

#: Mode-restriction enumeration bound (mirrors modecheck's cap).
_MODE_CASE_LIMIT = 16


def _diag(code: str, subject: str, message: str,
          hint: str | None = None) -> Diagnostic:
    return Diagnostic(code, CATALOG[code].severity, subject, message, hint)


def run_diagnostics(graph: Any, bindings: Mapping | None = None,
                    capacities: Mapping | None = None) -> list[Diagnostic]:
    """Run every diagnostics pass over ``graph``.

    ``bindings`` enables the binding-value checks (BIND003);
    ``capacities`` enables the capacity-fit check (DEAD001).  Both are
    optional — the structural passes always run.  Accepts TPDF and
    plain CSDF graphs; returns diagnostics in deterministic order
    (severity, code, subject).
    """
    view = GraphView(graph)
    out: list[Diagnostic] = []
    strangled = _strangled_channels(view)
    out.extend(_pass_rates(view, strangled))
    out.extend(_pass_deadlock(view, strangled, capacities))
    out.extend(_pass_structural(view))
    out.extend(_pass_control(view))
    out.extend(_pass_bindings(view, bindings))
    return sort_diagnostics(out)


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.severity is Severity.ERROR for d in diagnostics)


# ---------------------------------------------------------------------------
# Rate consistency (RATE001 / RATE002) + strangled ports (DEAD003)
# ---------------------------------------------------------------------------

def _strangled_channels(view: GraphView) -> list[Diagnostic]:
    """DEAD003: channels where exactly one side's whole-cycle total is
    identically zero.  Zero production into positive consumption
    starves the consumer forever; positive production into zero
    consumption floods the channel — either way the balance system
    collapses to the trivial solution, so the runtime provably fails
    (``analyze`` reports ``consistent=False``)."""
    out = []
    for channel in view.channels:
        produced_zero = channel.production.cycle_total().is_zero()
        consumed_zero = channel.consumption.cycle_total().is_zero()
        if produced_zero == consumed_zero:
            continue  # both moving or both vacuous
        if produced_zero:
            message = (
                f"production on {channel.src_label} is identically zero but "
                f"{channel.dst_label} consumes "
                f"{channel.consumption.cycle_total()} per cycle: the "
                f"consumer starves forever"
            )
        else:
            message = (
                f"{channel.src_label} produces "
                f"{channel.production.cycle_total()} per cycle but "
                f"consumption on {channel.dst_label} is identically zero: "
                f"tokens accumulate without bound"
            )
        out.append(_diag(
            "DEAD003", channel.name, message,
            hint="give both sides a non-zero rate or remove the channel",
        ))
    return out


def _balance_edges(view: GraphView) -> tuple[list[str], list[tuple], list[Diagnostic]]:
    """(nodes, edges, selfloop_diags): the balance system of the view,
    mirroring the memoized ``_base_solution`` construction without
    touching any cache."""
    edges = []
    selfloops: list[Diagnostic] = []
    for channel in view.channels:
        if channel.src == channel.dst:
            tau = view.tau(channel.src)
            produced = channel.production.cumulative(tau)
            consumed = channel.consumption.cumulative(tau)
            if produced != consumed:
                selfloops.append(_diag(
                    "RATE001", channel.name,
                    f"self-loop on {channel.src!r} is unbalanced: produces "
                    f"{produced}, consumes {consumed} per cycle",
                    hint="make the per-cycle totals equal on self-loops",
                ))
            continue
        edges.append((
            channel.src,
            channel.dst,
            channel.production.cumulative(view.tau(channel.src)),
            channel.consumption.cumulative(view.tau(channel.dst)),
        ))
    return list(view.actors), edges, selfloops


def _pass_rates(view: GraphView,
                strangled: list[Diagnostic]) -> Iterator[Diagnostic]:
    nodes, edges, selfloop_diags = _balance_edges(view)
    yield from selfloop_diags
    if not nodes:
        return
    try:
        conditions = consistency_conditions(nodes, edges)
    except InconsistentRatesError as exc:
        # Structural collapse (production into zero consumption): the
        # strangled-port pass already carries it as DEAD003; only emit
        # RATE001 when that pass somehow stayed silent.
        if not strangled:
            yield _diag("RATE001", view.name, str(exc))
        return
    if conditions:
        # The spanning-tree solution violates a non-tree constraint:
        # re-run the raising solver for its channel-naming message.
        try:
            solve_balance(nodes, edges)
            message = "; ".join(f"{cond} = 0 must hold" for cond in conditions)
        except InconsistentRatesError as exc:
            message = str(exc)
        yield _diag(
            "RATE001", view.name, message,
            hint="adjust the rates so every constraint cycle balances",
        )
        return
    try:
        solve_balance(nodes, edges)
    except InconsistentRatesError as exc:
        # Conditions were satisfiable yet normalization found a zero
        # component: some actor's repetition count is forced to 0.
        # Usually co-reported with the channel-level DEAD003 root
        # cause; both are true, with different subjects.
        yield _diag(
            "RATE002", view.name, str(exc),
            hint="remove the zero-rate channels forcing the component to 0",
        )


def _view_is_consistent(view: GraphView) -> bool:
    """Pure consistency probe used by the mode-restriction pass."""
    nodes, edges, selfloops = _balance_edges(view)
    if selfloops:
        return False
    try:
        solve_balance(nodes, edges)
    except InconsistentRatesError:
        return False
    return True


# ---------------------------------------------------------------------------
# Statically-provable deadlocks (DEAD001 / DEAD002)
# ---------------------------------------------------------------------------

def _pass_deadlock(view: GraphView, strangled: list[Diagnostic],
                   capacities: Mapping | None) -> Iterator[Diagnostic]:
    yield from strangled
    yield from _capacity_fit(view, capacities)
    yield from _token_free_cycles(view)


def _capacity_fit(view: GraphView,
                  capacities: Mapping | None) -> Iterator[Diagnostic]:
    """DEAD001: a capacity below a channel's initial tokens — the
    initial marking does not fit, and every execution backend raises
    :class:`~repro.errors.DeadlockError` up front (shared contract of
    ``repro.csdf.throughput``)."""
    if not capacities:
        return
    by_name = {channel.name: channel for channel in view.channels}
    for name in sorted(capacities):
        channel = by_name.get(str(name))
        if channel is None:
            continue  # unknown names are the transport layer's problem
        cap = int(capacities[name])
        if cap < channel.initial_tokens:
            yield _diag(
                "DEAD001", channel.name,
                f"capacity {cap} is below the {channel.initial_tokens} "
                f"initial tokens: the initial marking does not fit the "
                f"buffer",
                hint=f"raise the capacity to at least "
                     f"{channel.initial_tokens}",
            )


def _first_firing_need(channel: ChannelView) -> int | None:
    """Tokens the consumer's *first* firing needs on this channel, when
    that is a known constant; ``None`` when parametric."""
    entry = channel.consumption.rate(0)
    if not entry.is_const():
        return None
    value = entry.const_value()
    if value.denominator != 1:
        return None
    return int(value)


def _token_free_cycles(view: GraphView) -> Iterator[Diagnostic]:
    """DEAD002: directed cycles in which *every* hop starves its
    consumer's first firing.

    A hop ``u -> v`` is provably blocking when some channel ``u -> v``
    has ``initial_tokens`` below the consumer's constant first-phase
    need and ``v`` cannot fire around the starving input (WAIT_ALL-only
    kernels, CSDF actors, plain control actors — or any consumer when
    the starving channel is the control channel itself, since a kernel
    whose control rate is 1 cannot fire without the token).  If all
    hops of a cycle block, no member can ever fire first: the circular
    wait is permanent and ``analyze`` reports ``live=False``.
    """
    blocked = nx.DiGraph()
    blocked.add_nodes_from(view.actors)
    for channel in view.channels:
        need = _first_firing_need(channel)
        if need is None or need <= 0 or channel.initial_tokens >= need:
            continue
        if channel.is_control or view.blocks_on_all_inputs(channel.dst):
            blocked.add_edge(channel.src, channel.dst, channel=channel.name)
    for scc in nx.strongly_connected_components(blocked):
        members = sorted(scc)
        if len(members) == 1 and not blocked.has_edge(members[0], members[0]):
            continue
        cycle = " -> ".join(members)
        yield _diag(
            "DEAD002", cycle,
            f"directed cycle through {cycle} has no hop with enough "
            f"initial tokens for its consumer's first firing: permanent "
            f"circular wait",
            hint="seed at least one cycle channel with initial tokens",
        )


# ---------------------------------------------------------------------------
# Structural warnings (STRUCT001..STRUCT004)
# ---------------------------------------------------------------------------

def _pass_structural(view: GraphView) -> Iterator[Diagnostic]:
    if view.is_tpdf:
        yield from _tpdf_port_warnings(view)
        yield from _clock_cycles(view)
    yield from _unreachable(view)


def _tpdf_port_warnings(view: GraphView) -> Iterator[Diagnostic]:
    graph = view.graph
    connected = set()
    for channel in graph.channels.values():
        connected.add((channel.src, channel.src_port))
        connected.add((channel.dst, channel.dst_port))
    for name in graph.node_names():
        for port in graph.node(name).ports.values():
            if (name, port.name) not in connected:
                yield _diag(
                    "STRUCT001", f"{name}.{port.name}",
                    f"{port.kind} port is declared but never connected",
                )
            if all(entry.is_zero() for entry in port.rates):
                yield _diag(
                    "STRUCT004", f"{name}.{port.name}",
                    "every phase of the rate sequence is 0; the port can "
                    "never move a token",
                )


def _unreachable(view: GraphView) -> Iterator[Diagnostic]:
    nxg = nx.DiGraph()
    nxg.add_nodes_from(view.actors)
    for channel in view.channels:
        nxg.add_edge(channel.src, channel.dst)
    sources = {n for n in view.actors
               if nxg.in_degree(n) == 0 or view.is_clock(n)}
    reachable = set(sources)
    for source in sources:
        reachable |= nx.descendants(nxg, source)
    for name in view.actors:
        if name not in reachable:
            yield _diag(
                "STRUCT002", name,
                "no path from any source or clock reaches this actor",
            )


def _clock_cycles(view: GraphView) -> Iterator[Diagnostic]:
    nxg = nx.DiGraph()
    nxg.add_nodes_from(view.actors)
    for channel in view.channels:
        nxg.add_edge(channel.src, channel.dst)
    for scc in nx.strongly_connected_components(nxg):
        clocks = sorted(n for n in scc if view.is_clock(n))
        if clocks and (len(scc) > 1 or nxg.has_edge(clocks[0], clocks[0])):
            yield _diag(
                "STRUCT003", clocks[0],
                "clock actor participates in a feedback cycle; its "
                "time-triggered firings race the data path",
            )


# ---------------------------------------------------------------------------
# Control contract (CTRL001..CTRL004, TPDF only)
# ---------------------------------------------------------------------------

def _pass_control(view: GraphView) -> Iterator[Diagnostic]:
    if not view.is_tpdf:
        return
    graph = view.graph
    fed_control = {(c.dst, c.dst_port)
                   for c in graph.channels.values() if c.is_control}
    for name, kernel in graph.kernels.items():
        port = kernel.control_port()
        if port is None:
            continue
        if (name, port.name) not in fed_control:
            yield _diag(
                "CTRL001", f"{name}.{port.name}",
                "kernel declares a control port but no control actor "
                "feeds it; the simulator falls back to plain WAIT_ALL "
                "firings",
                hint="connect a control actor or drop the port",
            )
        for index, entry in enumerate(port.rates):
            if not entry.is_const() or entry.const_value() not in (0, 1):
                yield _diag(
                    "CTRL002", f"{name}.{port.name}",
                    f"control rate {entry} at phase {index} is outside "
                    f"{{0, 1}} (Def. 2); the simulator raises "
                    f"SimulationError on the firing",
                    hint="control ports read at most one token per firing",
                )
    for name in graph.controls:
        if not any(c.is_control for c in graph.out_channels(name)):
            yield _diag(
                "CTRL003", name,
                "control actor has no outgoing control channel; its "
                "decisions reach nobody",
            )
    yield from _mode_restrictions(view)


def _selectable_ports(kernel: Any) -> list[str]:
    """Data ports a SELECT_ONE token could pick on this kernel (the
    modecheck enumeration rule: transactions select among inputs,
    select-duplicates among outputs)."""
    from ..tpdf.modes import Mode

    if Mode.SELECT_ONE not in kernel.modes:
        return []
    inputs = [p.name for p in kernel.data_inputs]
    outputs = [p.name for p in kernel.data_outputs]
    if len(inputs) > 1:
        return inputs
    if len(outputs) > 1:
        return outputs
    return []


def _mode_restrictions(view: GraphView) -> Iterator[Diagnostic]:
    """CTRL004: SELECT_ONE restrictions that stay rate-inconsistent.

    Sec. III-A calls the full-graph consistency check "too strict":
    an inconsistency can disappear once a SELECT_ONE decision drops
    the unselected channels.  This pass reports the modes where it
    does *not* — restrictions that are still unbalanced, i.e. modes
    that can never run a full iteration.  Mirrors
    :mod:`repro.tpdf.modecheck` but stays pure: restrictions are built
    on scratch copies (``restrict_to_selection``) and checked with the
    direct solver, so nothing lands in the input graph's caches.  A
    consistent full graph short-circuits: every restriction is a
    subset of a satisfiable balance system, so none can be
    inconsistent.
    """
    graph = view.graph
    selectable = {
        name: _selectable_ports(kernel)
        for name, kernel in graph.kernels.items()
        if _selectable_ports(kernel)
    }
    if not selectable:
        return
    if _view_is_consistent(view):
        return
    from ..tpdf.transform import restrict_to_selection

    cases = 0
    for kernel_name, ports in sorted(selectable.items()):
        for port in ports:
            if cases >= _MODE_CASE_LIMIT:
                return
            cases += 1
            restricted = restrict_to_selection(graph, kernel_name, [port])
            if not _view_is_consistent(GraphView(restricted)):
                yield _diag(
                    "CTRL004", f"{kernel_name}.{port}",
                    f"the rate inconsistency survives restricting "
                    f"{kernel_name!r} to its {port!r} selection: this "
                    f"mode can never run a full iteration",
                )


# ---------------------------------------------------------------------------
# Binding problems (BIND001..BIND003)
# ---------------------------------------------------------------------------

def _pass_bindings(view: GraphView,
                   bindings: Mapping | None) -> Iterator[Diagnostic]:
    declared = view.declared_parameters()
    used = view.used_parameters()
    if declared is not None:
        for name in sorted(used - declared):
            yield _diag(
                "BIND001", name,
                "parameter used in rates but not declared on the graph "
                "(domain unknown); the consistency chain rejects it",
                hint=f"declare_parameter(Param({name!r}, lo=..., hi=...))",
            )
        for name in sorted(declared - used):
            yield _diag(
                "BIND002", name,
                "declared parameter appears in no rate sequence",
            )
    if bindings:
        for name in sorted(bindings, key=str):
            value = bindings[name]
            try:
                hash(value)
            except TypeError:
                yield _diag(
                    "BIND003", str(name),
                    f"binding value {value!r} is unhashable and cannot "
                    f"key the analysis caches; analyze() raises TypeError",
                    hint="bind plain ints (or other hashable scalars)",
                )
