"""Core vocabulary of the static diagnostics engine.

A :class:`Diagnostic` is one finding of the engine: a stable
machine-readable ``code`` (``RATE001``), a :class:`Severity`, the
``subject`` it points at (an actor, a ``node.port`` pair, a channel, a
parameter), a human-readable message and an optional fix ``hint``.

The :data:`CATALOG` is the authoritative registry of codes: every pass
in :mod:`repro.diagnostics.passes` emits codes declared here, the CLI
``lint --codes`` listing renders it, and the soundness suite iterates
its ERROR entries to assert each one is backed by a runtime failure.

Severity contract:

``ERROR``
    The graph (or binding set) is statically *proven* to fail at
    runtime — ``analyze``/``simulate`` raises or reports the failure.
    The differential soundness suite enforces exactly this, per code.
``WARNING``
    Well-formed but suspicious; the runtime tolerates it (e.g. an
    unfed control port falls back to WAIT_ALL firing).
``INFO``
    Neutral observations; never gates anything.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: most severe first."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One structured finding of the diagnostics engine."""

    code: str
    severity: Severity
    subject: str
    message: str
    hint: str | None = None

    def __str__(self) -> str:
        body = f"[{self.code}:{self.severity}] {self.subject}: {self.message}"
        if self.hint:
            body += f" (hint: {self.hint})"
        return body

    def to_dict(self) -> dict:
        """JSON-ready view (the CLI ``--format json`` rows and the
        service wire form)."""
        entry = {
            "code": self.code,
            "severity": self.severity.value,
            "subject": self.subject,
            "message": self.message,
        }
        if self.hint is not None:
            entry["hint"] = self.hint
        return entry

    @staticmethod
    def from_dict(data: Mapping) -> "Diagnostic":
        return Diagnostic(
            code=str(data.get("code", "UNKNOWN")),
            severity=Severity(str(data.get("severity", "warning"))),
            subject=str(data.get("subject", "")),
            message=str(data.get("message", "")),
            hint=(None if data.get("hint") is None else str(data["hint"])),
        )


@dataclass(frozen=True)
class CodeInfo:
    """Catalog entry: what a code means and how severe it is."""

    code: str
    severity: Severity
    title: str
    description: str


def _entry(code: str, severity: Severity, title: str,
           description: str) -> tuple[str, CodeInfo]:
    return (code, CodeInfo(code, severity, title, description))


#: The authoritative code registry.  ERROR entries carry a soundness
#: obligation: an injected-defect corpus test must show the runtime
#: failing on every graph the code fires for (tests/diagnostics/).
CATALOG: dict[str, CodeInfo] = dict([
    _entry("RATE001", Severity.ERROR, "inconsistent rates",
           "The balance equations admit only the trivial solution: some "
           "cycle of rate constraints is contradictory (or a self-loop is "
           "unbalanced).  analyze() reports consistent=False."),
    _entry("RATE002", Severity.ERROR, "zero repetition vector",
           "The only balance solution assigns repetition count 0 to some "
           "actor — no non-trivial periodic schedule exists.  analyze() "
           "reports consistent=False."),
    _entry("DEAD001", Severity.ERROR, "capacity below initial tokens",
           "A declared channel capacity is smaller than the channel's "
           "initial tokens: the initial marking does not fit, and every "
           "execution backend rejects the run up front with DeadlockError."),
    _entry("DEAD002", Severity.ERROR, "token-free directed cycle",
           "Every hop of a directed cycle starves its consumer's first "
           "firing (initial tokens below the first-phase consumption, "
           "WAIT_ALL consumers): a circular wait no firing can ever break. "
           "analyze() reports live=False."),
    _entry("DEAD003", Severity.ERROR, "strangled port",
           "A channel whose production or consumption rate sequence is "
           "identically zero on one side while the other side moves "
           "tokens: the consumer starves forever or tokens pile up "
           "unboundedly; the balance equations collapse to the trivial "
           "solution."),
    _entry("CTRL001", Severity.WARNING, "unfed control port",
           "A kernel declares a control port that no control actor "
           "feeds; the simulator falls back to WAIT_ALL firings, which "
           "is rarely what a controlled kernel means."),
    _entry("CTRL002", Severity.ERROR, "control rate contract violation",
           "A control port phase rate is not in {0, 1} (Def. 2): the "
           "simulator refuses the firing with SimulationError (which of "
           "several control tokens would select the mode?)."),
    _entry("CTRL003", Severity.WARNING, "unreceived control tokens",
           "A control actor has no outgoing control channel; its "
           "decisions reach nobody."),
    _entry("CTRL004", Severity.WARNING, "inconsistent mode restriction",
           "A SELECT_ONE restriction of the graph (one selectable port "
           "kept, the siblings dropped) is still rate-inconsistent: the "
           "full-graph inconsistency does not disappear under this mode, "
           "so the mode can never run a full iteration (Sec. III-A)."),
    _entry("BIND001", Severity.ERROR, "undeclared parameter",
           "A rate uses a parameter the graph never declares, so its "
           "domain is unknown; the TPDF consistency/boundedness chain "
           "rejects the graph (AnalysisError)."),
    _entry("BIND002", Severity.WARNING, "unused parameter",
           "A declared parameter appears in no rate sequence."),
    _entry("BIND003", Severity.ERROR, "unhashable binding value",
           "A binding value is not hashable, so it cannot key the "
           "analysis caches: analyze() raises TypeError before any "
           "stage runs."),
    _entry("STRUCT001", Severity.WARNING, "dangling port",
           "A port is declared but never connected."),
    _entry("STRUCT002", Severity.WARNING, "unreachable actor",
           "No path from any source (or clock) reaches the actor."),
    _entry("STRUCT003", Severity.WARNING, "clock in feedback cycle",
           "A clock actor participates in a feedback cycle; its "
           "time-triggered firings race the data path."),
    _entry("STRUCT004", Severity.WARNING, "zero-rate port",
           "Every phase of a port's rate sequence is 0; the port can "
           "never move a token."),
])

#: Codes whose severity is ERROR (the soundness-harness surface).
ERROR_CODES: tuple[str, ...] = tuple(
    code for code, info in CATALOG.items() if info.severity is Severity.ERROR
)


def catalog_lines() -> list[str]:
    """One formatted line per catalog code (the ``lint --codes``
    listing)."""
    return [
        f"{info.code}  {info.severity.value:<7}  {info.title}"
        for info in CATALOG.values()
    ]


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> list[Diagnostic]:
    """Deterministic presentation order: severity, then code, then
    subject."""
    return sorted(
        diagnostics,
        key=lambda d: (d.severity.rank, d.code, d.subject, d.message),
    )
