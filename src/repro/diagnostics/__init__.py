"""Unified static diagnostics over TPDF and CSDF graphs.

Front door: :func:`run_diagnostics` — pure (no graph mutation, no
version bumps, no cache population), emits structured
:class:`Diagnostic` records with stable codes, wired into
``analyze(lint=...)``, the edit-session pre-flight, the service's
``POST /lint`` endpoint and the CLI ``lint`` subcommand.  See
``docs/diagnostics.md`` for the code catalog with runtime-failure
demonstrations.
"""

from .core import (CATALOG, ERROR_CODES, CodeInfo, Diagnostic, Severity,
                   catalog_lines, sort_diagnostics)
from .passes import has_errors, run_diagnostics
from .view import ChannelView, GraphView

__all__ = [
    "CATALOG",
    "ERROR_CODES",
    "ChannelView",
    "CodeInfo",
    "Diagnostic",
    "GraphView",
    "Severity",
    "catalog_lines",
    "has_errors",
    "run_diagnostics",
    "sort_diagnostics",
]
