"""Command-line interface: ``python -m repro <command> <graph.json>``.

Commands operate on graphs serialized by :mod:`repro.io`:

``analyze``
    run the full static chain (consistency, rate safety, liveness,
    boundedness) and print the verdicts and repetition vector; with
    ``--symbolic``/``--param p=1..8`` additionally the **parametric
    MCR**: the throughput bound as a piecewise-symbolic function over
    the parameter box (one computation instead of a per-``--bind``
    sweep); with ``--edits script.json`` replay a JSON edit script
    against one CSDF graph through an incremental
    :class:`~repro.analysis.EditSession` (``--verify-cold``
    cross-checks every warm step against a cold re-analysis);
``lint``
    print structural warnings (exit status 1 if any);
``dot``
    print a Graphviz rendering;
``schedule``
    build the canonical period (with ``--bind p=2`` parameter values)
    and list-schedule it onto ``--cores N`` processing elements;
``buffers``
    print per-channel buffer bounds (symbolic when possible, concrete
    under ``--bind``);
``simulate``
    run the discrete-event TPDF simulator (control tokens, clocks,
    data-dependent durations) on the schedule-plane / value-plane
    core and print a trace summary; ``--check-reference`` cross-checks
    the trace fingerprint against the legacy reference loop;
``serve``
    run the resident analysis service (:mod:`repro.service`): a
    persistent worker pool behind an asyncio HTTP front door with a
    fingerprint-keyed result cache (``--workers``, ``--cache-size``,
    ``--max-attempts``; ``--smoke`` starts, self-checks against a
    built-in graph, and exits).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _load(path: str):
    from .csdf.graph import CSDFGraph
    from .io import csdf_from_dict, tpdf_from_dict

    data = json.loads(Path(path).read_text())
    model = data.get("model")
    if model == "tpdf":
        return tpdf_from_dict(data)
    if model == "csdf":
        return csdf_from_dict(data)
    raise SystemExit(f"unknown model {model!r} in {path}")


def _parse_bindings(pairs: list[str]) -> dict[str, int]:
    bindings: dict[str, int] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--bind expects name=value, got {pair!r}")
        name, value = pair.split("=", 1)
        bindings[name.strip()] = int(value)
    return bindings


def _parse_capacities(pairs: list[str]) -> dict[str, int]:
    capacities: dict[str, int] = {}
    for pair in pairs:
        name, _, value = pair.partition("=")
        try:
            capacities[name.strip()] = int(value)
        except ValueError:
            raise SystemExit(f"--cap expects channel=tokens, got {pair!r}")
    return capacities


def _as_tpdf(graph):
    """Wrap a bare CSDF graph so the TPDF analyses run uniformly."""
    from .csdf.graph import CSDFGraph
    from .tpdf.graph import TPDFGraph

    if not isinstance(graph, CSDFGraph):
        return graph
    wrapped = TPDFGraph(graph.name)
    for actor in graph.actors.values():
        kernel = wrapped.add_kernel(actor.name, exec_time=actor.exec_times)
    for index, channel in enumerate(graph.channels.values()):
        src = wrapped.node(channel.src)
        dst = wrapped.node(channel.dst)
        src.add_output(f"o_{index}", channel.production)
        dst.add_input(f"i_{index}", channel.consumption)
        wrapped.connect(
            (channel.src, f"o_{index}"), (channel.dst, f"i_{index}"),
            name=channel.name, initial_tokens=channel.initial_tokens,
        )
    return wrapped


def _run_edit_replay(args, bindings, domain) -> int:
    """``analyze --edits``: replay a JSON edit script incrementally.

    Analyzes the baseline, then applies each edit through an
    :class:`~repro.analysis.EditSession` and re-analyzes warm, printing
    one verdict line per step.  With ``--verify-cold`` every warm
    report is compared bit-for-bit (``GraphReport.fingerprint``)
    against a cold analysis of a serialization round-trip clone; any
    divergence exits 1.
    """
    from .analysis import EditSession, analyze
    from .csdf.graph import CSDFGraph
    from .errors import ReproError
    from .io import csdf_from_dict, csdf_to_dict

    if len(args.graphs) != 1:
        raise SystemExit("--edits replays an edit script on exactly one graph")
    graph = _load(args.graphs[0])
    if not isinstance(graph, CSDFGraph):
        raise SystemExit(
            "--edits requires a csdf-model graph (EditSession edits CSDF "
            "actors/channels; re-run without --edits for TPDF graphs)"
        )
    script = json.loads(Path(args.edits).read_text())
    if not isinstance(script, list):
        raise SystemExit(
            f"edit script {args.edits} must be a JSON array of edit objects"
        )
    options = dict(iterations=args.iterations, parametric_domain=domain,
                   backend=args.backend)
    session = EditSession(graph, bindings, **options)
    if args.preflight:
        # Fatal scripts fail fast on a scratch copy, before the replay
        # touches the session graph.
        from .errors import DiagnosticsError

        try:
            findings = session.preflight(script)
        except DiagnosticsError as exc:
            for diagnostic in exc.diagnostics:
                print(diagnostic, file=sys.stderr)
            raise SystemExit(f"preflight: {exc}")
        label = (f"{len(findings)} warning(s)" if findings else "clean")
        print(f"[preflight] {label}")
    exit_code = 0

    def step(label: str) -> None:
        nonlocal exit_code
        report = session.analyze()
        mcr = "-" if report.mcr is None else f"{report.mcr:.4f}"
        thr = "-" if report.throughput is None else f"{report.throughput:.4f}"
        verdict = "bounded" if report.bounded else "NOT bounded"
        line = (f"[{label}] {verdict}  mcr={mcr}  throughput={thr}  "
                f"elapsed={report.elapsed * 1e3:.1f}ms")
        if not report.bounded:
            exit_code = 1
        if args.verify_cold:
            # Cold oracle: a fresh clone (no caches, no shared version
            # state) analyzed from scratch must agree bit-for-bit.
            clone = csdf_from_dict(csdf_to_dict(graph))
            cold = analyze(clone, session.bindings, **options)
            if cold.fingerprint() == report.fingerprint():
                line += "  verify-cold: ok"
            else:
                line += "  verify-cold: DIVERGED"
                exit_code = 1
        print(line)

    step("baseline")
    for index, edit in enumerate(script):
        try:
            session.apply(edit)
        except KeyError as exc:
            raise SystemExit(f"edit {index}: unknown actor/channel {exc}")
        except ReproError as exc:
            raise SystemExit(f"edit {index}: {exc}")
        op = edit.get("op", "?")
        target = edit.get("actor") or edit.get("channel") or edit.get("name") or ""
        step(f"edit {index}: {op} {target}".rstrip())
    return exit_code


def cmd_analyze(args) -> int:
    """Full batch analysis chain over one or more graphs.

    Static verdicts always run; the performance stages (MCR, buffer
    sizing, self-timed throughput) run whenever the graph is concrete
    under ``--bind``.  Exit status 1 if any graph is not provably
    bounded.
    """
    from .analysis import analyze_batch

    bindings = _parse_bindings(args.bind) or None
    if args.jobs is not None and args.jobs < 0:
        raise SystemExit(f"--jobs must be >= 0, got {args.jobs}")
    if args.chunk_size is not None and args.chunk_size < 1:
        raise SystemExit(f"--chunk-size must be >= 1, got {args.chunk_size}")
    domain = None
    if args.symbolic or args.param:
        from .csdf.parametric import ParamDomain
        from .errors import ReproError

        try:
            domain = ParamDomain.parse(args.param)
        except ReproError as exc:
            raise SystemExit(str(exc))
    if args.verify_cold and not args.edits:
        raise SystemExit("--verify-cold only applies to an --edits replay")
    if args.preflight and not args.edits:
        raise SystemExit("--preflight only applies to an --edits replay")
    if args.edits:
        if args.jobs is not None:
            raise SystemExit("--edits is a sequential warm replay; drop --jobs")
        return _run_edit_replay(args, bindings, domain)
    graphs = [_as_tpdf(_load(path)) for path in args.graphs]
    exit_code = 0
    reports = analyze_batch(
        ((g, bindings) for g in graphs),
        jobs=args.jobs,
        chunk_size=args.chunk_size,
        iterations=args.iterations,
        parametric_domain=domain,
        backend=args.backend,
    )
    for index, report in enumerate(reports):
        if index:
            print()
        print(report.summary())
        if not report.bounded:
            exit_code = 1
    return exit_code


def cmd_lint(args) -> int:
    """Static diagnostics over a TPDF *or* CSDF graph.

    Exit status contract: always 0 unless ``--strict`` is given, in
    which case the exit is 1 exactly when ERROR-severity diagnostics
    are present (warnings never fail the build).  ``--codes`` prints
    the code catalog and needs no graph.
    """
    from .diagnostics import (Severity, catalog_lines, has_errors,
                              run_diagnostics)

    if args.codes:
        for line in catalog_lines():
            print(line)
        return 0
    if not args.graph:
        raise SystemExit("lint needs a graph file (or --codes)")
    graph = _load(args.graph)
    bindings = _parse_bindings(args.bind) or None
    diagnostics = run_diagnostics(graph, bindings=bindings)
    if args.format == "json":
        print(json.dumps([d.to_dict() for d in diagnostics], indent=2))
    else:
        for diagnostic in diagnostics:
            print(diagnostic)
        if not diagnostics:
            print("clean")
        else:
            errors = sum(d.severity is Severity.ERROR for d in diagnostics)
            print(f"{len(diagnostics)} finding(s), {errors} error(s)")
    if args.strict and has_errors(diagnostics):
        return 1
    return 0


def cmd_dot(args) -> int:
    from .csdf.graph import CSDFGraph
    from .util.dot import csdf_to_dot, tpdf_to_dot

    graph = _load(args.graph)
    if isinstance(graph, CSDFGraph):
        print(csdf_to_dot(graph))
    else:
        print(tpdf_to_dot(graph))
    return 0


def cmd_schedule(args) -> int:
    from .platform import single_cluster
    from .scheduling import build_canonical_period, list_schedule

    graph = _load(args.graph)
    bindings = _parse_bindings(args.bind)
    period = build_canonical_period(graph, bindings or None,
                                    unfolding=args.unfolding)
    mapping = list_schedule(period, single_cluster(args.cores))
    print(f"occurrences: {period.dag.number_of_nodes()}")
    print(f"critical path: {period.critical_path_length()}")
    print(f"makespan on {args.cores} cores: {mapping.makespan}")
    print(mapping.gantt())
    return 0


def cmd_buffers(args) -> int:
    from .csdf.graph import CSDFGraph
    from .csdf.buffers import minimal_buffer_schedule
    from .csdf.symbuf import symbolic_channel_bounds, symbolic_total_bound

    graph = _load(args.graph)
    csdf = graph if isinstance(graph, CSDFGraph) else graph.as_csdf()
    bindings = _parse_bindings(args.bind)
    if args.search:
        from .csdf.throughput import min_buffers_for_full_throughput

        stats: dict = {}
        capacities = min_buffers_for_full_throughput(
            csdf, bindings or None, iterations=args.iterations,
            batched=args.batched, stats=stats,
        )
        for name in sorted(capacities):
            print(f"  {name}: {capacities[name]}")
        print(f"total: {sum(capacities.values())}")
        print(f"probes executed: {stats['probes']} "
              f"(floored: {stats['probes_floored']}, "
              f"memoized: {stats['probes_memoized']}, "
              f"batch rounds: {stats['batch_rounds']})")
        return 0
    if bindings:
        _, peaks = minimal_buffer_schedule(csdf, bindings)
        for name, peak in peaks.items():
            print(f"  {name}: {peak}")
        print(f"total: {sum(peaks.values())}")
    else:
        bounds = symbolic_channel_bounds(csdf)
        for name, bound in bounds.items():
            print(f"  {name}: {bound}")
        print(f"total: {symbolic_total_bound(csdf)}")
    return 0


def cmd_throughput(args) -> int:
    from .csdf.graph import CSDFGraph
    from .csdf.mcr import max_cycle_ratio
    from .csdf.throughput import (
        self_timed_execution,
        self_timed_execution_reference,
    )
    from .errors import DeadlockError

    graph = _load(args.graph)
    csdf = graph if isinstance(graph, CSDFGraph) else graph.as_csdf()
    bindings = _parse_bindings(args.bind)
    capacities = _parse_capacities(args.cap) or None
    if args.probe_caps:
        return _run_probe_caps(args, csdf, bindings or None)
    mcr = max_cycle_ratio(csdf, bindings or None)
    stats: dict = {}
    try:
        result = self_timed_execution(
            csdf, bindings or None, iterations=args.iterations, stats=stats,
            backend=args.backend, capacities=capacities,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    except DeadlockError as exc:
        print(f"deadlock under --cap bounds: {exc}")
        if exc.blocked:
            print(f"blocked actors: {', '.join(exc.blocked)}")
        return 1
    print(f"backend:                        {args.backend}")
    print(f"max cycle ratio (period bound): {mcr:.4f}")
    print(f"self-timed steady period:       {result.iteration_period:.4f}")
    print(f"throughput:                     {result.throughput:.4f} iterations/time")
    print(f"makespan ({args.iterations} iterations):      {result.makespan:.4f}")
    if args.reference_loop:
        # Cross-check the dependency-driven event core against the
        # retained full-scan reference loop (the differential oracle).
        ref_stats: dict = {}
        reference = self_timed_execution_reference(
            csdf, bindings or None, iterations=args.iterations,
            stats=ref_stats,
        )
        same = (
            reference.makespan == result.makespan
            and reference.iteration_ends == result.iteration_ends
            and reference.peaks == result.peaks
            and reference.firings == result.firings
        )
        print(f"reference loop parity:          "
              f"{'identical' if same else 'DIVERGED'}")
        print(f"ready-check actor visits:       {stats['ready_visits']} "
              f"(reference: {ref_stats['ready_visits']})")
        if not same:
            return 1
    return 0


def _run_probe_caps(args, csdf, bindings) -> int:
    """``throughput --probe-caps FILE``: evaluate many capacity vectors
    as one lock-step batch (the K-run kernel of
    :mod:`repro.csdf.batchexec`).  The file is a JSON array of
    ``{channel: tokens}`` objects; one verdict line is printed per
    vector (steady period, or the deadlock's blocked set)."""
    from .csdf.batchexec import self_timed_execution_batch
    from .errors import DeadlockError

    vectors = json.loads(Path(args.probe_caps).read_text())
    if not isinstance(vectors, list) or not all(
        isinstance(v, dict) for v in vectors
    ):
        raise SystemExit(
            f"--probe-caps file {args.probe_caps} must be a JSON array of "
            f"{{channel: tokens}} objects"
        )
    try:
        outcomes = self_timed_execution_batch(
            csdf, bindings, iterations=args.iterations,
            capacities_list=vectors,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))
    exit_code = 0
    for index, outcome in enumerate(outcomes):
        if isinstance(outcome, DeadlockError):
            exit_code = 1
            blocked = ", ".join(outcome.blocked) or "-"
            print(f"[{index}] deadlock (blocked: {blocked})")
        else:
            print(f"[{index}] period={outcome.iteration_period:.4f} "
                  f"makespan={outcome.makespan:.4f}")
    return exit_code


def cmd_simulate(args) -> int:
    """``simulate``: run the discrete-event TPDF simulator and print a
    trace summary.

    Executes :func:`repro.analysis.simulate` on the schedule-plane /
    value-plane core (``--ready-core`` selects another engine); with
    ``--check-reference`` the run is repeated on the legacy reference
    loop and the trace fingerprints compared bit-for-bit (exit 1 on
    divergence).
    """
    from .analysis import simulate
    from .errors import DeadlockError, SimulationError

    graph = _as_tpdf(_load(args.graph))
    bindings = _parse_bindings(args.bind) or None
    capacities = _parse_capacities(args.cap) or None
    limits = None
    if args.limit:
        limits = {}
        for pair in args.limit:
            name, _, value = pair.partition("=")
            try:
                limits[name.strip()] = int(value)
            except ValueError:
                raise SystemExit(f"--limit expects node=firings, got {pair!r}")
        unknown = sorted(set(limits) - set(graph.node_names()))
        if unknown:
            raise SystemExit(
                f"--limit names unknown nodes: {', '.join(unknown)} "
                f"(graph has: {', '.join(graph.node_names())})"
            )
    if args.until is None and limits is None and args.max_firings is None:
        raise SystemExit(
            "simulate needs a stop condition: --until, --limit or "
            "--max-firings"
        )
    options = dict(bindings=bindings, until=args.until, limits=limits,
                   max_firings=args.max_firings, cores=args.cores,
                   capacities=capacities)
    try:
        trace = simulate(graph, ready_core=args.ready_core, **options)
    except ValueError as exc:
        raise SystemExit(str(exc))
    except DeadlockError as exc:
        print(f"deadlock: {exc}")
        if exc.blocked:
            print(f"blocked actors: {', '.join(exc.blocked)}")
        return 1
    except SimulationError as exc:
        raise SystemExit(str(exc))
    print(f"ready core:   {args.ready_core}")
    print(f"firings:      {len(trace.firings)}")
    print(f"end time:     {trace.end_time():.4f}")
    print(f"discards:     {trace.discarded_tokens()} tokens "
          f"({len(trace.discards)} records)")
    print(f"buffer peaks: total {trace.total_buffer()}")
    for name in sorted(trace.peaks):
        print(f"  {name}: {trace.peaks[name]}")
    exit_code = 0
    if args.check_reference:
        reference = simulate(graph, ready_core="reference", **options)
        same = trace.fingerprint() == reference.fingerprint()
        print(f"reference parity: {'identical' if same else 'DIVERGED'}")
        if not same:
            exit_code = 1
    if args.gantt:
        print(trace.gantt())
    return exit_code


def cmd_serve(args) -> int:
    """``serve``: run the resident analysis service until interrupted.

    With ``--smoke`` the service starts on an ephemeral port, analyzes
    a built-in gallery graph through a real HTTP round trip, verifies
    the result against a direct in-process analysis (bit-for-bit
    fingerprints) and exits — a deployment self-check.
    """
    from .service import ServiceClient, serve_in_thread

    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    if args.smoke:
        from .analysis import analyze
        from .gallery import fig1_graph

        graph = fig1_graph()
        direct = analyze(graph)
        with serve_in_thread(host=args.host, port=args.port or 0,
                             workers=args.workers,
                             cache_limit=args.cache_size,
                             max_attempts=args.max_attempts) as handle:
            client = ServiceClient(handle.url)
            served = client.analyze(graph)
            health = client.health()
        if served.fingerprint() != direct.fingerprint():
            print("smoke: FAILED (served report diverged from direct analysis)")
            return 1
        alive = sum(1 for w in health["workers"] if w["alive"])
        print(f"smoke: ok ({alive}/{args.workers} workers, "
              f"mcr={served.mcr:.4f})")
        return 0

    import asyncio

    from .service import AnalysisService

    async def run() -> None:
        service = AnalysisService(workers=args.workers,
                                  cache_limit=args.cache_size,
                                  max_attempts=args.max_attempts)
        await service.start(args.host, args.port)
        print(f"repro analysis service listening on {service.url} "
              f"({args.workers} workers)")
        try:
            await asyncio.Event().wait()
        finally:
            await service.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TPDF reproduction toolchain (DATE 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_analyze = sub.add_parser(
        "analyze",
        help="full analysis chain (static + performance) over one or more graphs",
    )
    p_analyze.add_argument("graphs", nargs="+", metavar="graph")
    p_analyze.add_argument("--bind", action="append", default=[],
                           metavar="NAME=VALUE")
    p_analyze.add_argument("--iterations", type=int, default=4,
                           help="self-timed iterations for the throughput stage")
    p_analyze.add_argument("--jobs", type=int, default=None, metavar="N",
                           help="analysis worker processes: omit for sequential, "
                                "0 for one per CPU, N for exactly N "
                                "(results are identical either way)")
    p_analyze.add_argument("--chunk-size", type=int, default=None, metavar="K",
                           help="graphs per worker task (default: ~4 tasks per worker)")
    p_analyze.add_argument("--symbolic", action="store_true",
                           help="compute the parametric (symbolic) MCR: the "
                                "throughput bound as a piecewise function over "
                                "the --param domain instead of one --bind point")
    p_analyze.add_argument("--param", action="append", default=[],
                           metavar="NAME=LO..HI",
                           help="parameter range for --symbolic (repeatable, "
                                "e.g. --param p=1..8; NAME=V pins a value); "
                                "implies --symbolic")
    p_analyze.add_argument("--edits", metavar="FILE",
                           help="JSON edit script (array of "
                                '{"op": ..., ...} objects) replayed '
                                "incrementally against a single CSDF graph; "
                                "prints one warm re-analysis verdict per step")
    p_analyze.add_argument("--preflight", action="store_true",
                           help="with --edits: dry-run the script on a "
                                "scratch copy first and abort (with "
                                "diagnostics) before replaying a script "
                                "that ends in a statically-broken state")
    p_analyze.add_argument("--verify-cold", action="store_true",
                           help="with --edits: cross-check every warm report "
                                "against a cold analysis of a round-trip "
                                "clone (bit-for-bit fingerprints; exit 1 on "
                                "divergence)")
    p_analyze.add_argument("--backend", choices=("arrays", "wakeup", "reference"),
                           default="arrays",
                           help="execution core for the self-timed throughput "
                                "stage (bit-identical results; arrays is the "
                                "fast struct-of-arrays backend)")
    p_analyze.set_defaults(func=cmd_analyze)

    p_lint = sub.add_parser(
        "lint",
        help="static diagnostics (rates, deadlocks, control contracts, "
             "bindings, structure) over a TPDF or CSDF graph",
    )
    p_lint.add_argument("graph", nargs="?", default=None)
    p_lint.add_argument("--bind", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="parameter bindings checked by the binding "
                             "passes (BIND003 unhashable values...)")
    p_lint.add_argument("--format", choices=("text", "json"), default="text",
                        help="text prints one line per finding; json prints "
                             "the structured diagnostic records")
    p_lint.add_argument("--strict", action="store_true",
                        help="exit 1 when ERROR-severity diagnostics are "
                             "present (default exit is always 0)")
    p_lint.add_argument("--codes", action="store_true",
                        help="print the diagnostic code catalog and exit "
                             "(no graph needed)")
    p_lint.set_defaults(func=cmd_lint)

    p_dot = sub.add_parser("dot", help="Graphviz rendering")
    p_dot.add_argument("graph")
    p_dot.set_defaults(func=cmd_dot)

    p_sched = sub.add_parser("schedule", help="canonical period + mapping")
    p_sched.add_argument("graph")
    p_sched.add_argument("--cores", type=int, default=4)
    p_sched.add_argument("--unfolding", type=int, default=1)
    p_sched.add_argument("--bind", action="append", default=[],
                         metavar="NAME=VALUE")
    p_sched.set_defaults(func=cmd_schedule)

    p_buf = sub.add_parser("buffers", help="buffer bounds")
    p_buf.add_argument("graph")
    p_buf.add_argument("--bind", action="append", default=[],
                       metavar="NAME=VALUE")
    p_buf.add_argument("--search", action="store_true",
                       help="search the minimal per-channel capacities "
                            "preserving full throughput (executes probe "
                            "runs instead of the analytic bounds)")
    p_buf.add_argument("--batched", action="store_true",
                       help="with --search: pre-execute probe candidates "
                            "through the lock-step K-run kernel (identical "
                            "capacities, fewer sequential probe calls)")
    p_buf.add_argument("--iterations", type=int, default=6,
                       help="self-timed iterations per probe (with --search)")
    p_buf.set_defaults(func=cmd_buffers)

    p_thr = sub.add_parser("throughput", help="MCR + self-timed period")
    p_thr.add_argument("graph")
    p_thr.add_argument("--iterations", type=int, default=5)
    p_thr.add_argument("--backend", choices=("arrays", "wakeup", "reference"),
                       default="arrays",
                       help="execution core (bit-identical results; arrays "
                            "is the fast struct-of-arrays backend)")
    p_thr.add_argument("--reference-loop", action="store_true",
                       help="cross-check the selected backend against the "
                            "legacy full-scan loop and report "
                            "ready-check visit counts")
    p_thr.add_argument("--bind", action="append", default=[],
                       metavar="NAME=VALUE")
    p_thr.add_argument("--cap", action="append", default=[],
                       metavar="CHANNEL=TOKENS",
                       help="bound a channel's buffer (repeatable); unknown "
                            "channel names are rejected, deadlocks under the "
                            "bounds exit 1 with the blocked actors")
    p_thr.add_argument("--probe-caps", metavar="FILE",
                       help="JSON array of {channel: tokens} capacity "
                            "vectors, evaluated as one lock-step batch "
                            "(one verdict line per vector)")
    p_thr.set_defaults(func=cmd_throughput)

    p_sim = sub.add_parser(
        "simulate",
        help="discrete-event TPDF simulation (schedule/value planes)",
    )
    p_sim.add_argument("graph")
    p_sim.add_argument("--bind", action="append", default=[],
                       metavar="NAME=VALUE")
    p_sim.add_argument("--cap", action="append", default=[],
                       metavar="CHANNEL=TOKENS",
                       help="bound a channel's buffer (repeatable)")
    p_sim.add_argument("--cores", type=int, default=None,
                       help="concurrent-firing budget (default: unbounded)")
    p_sim.add_argument("--limit", action="append", default=[],
                       metavar="NODE=FIRINGS",
                       help="cap a node's firing count (repeatable)")
    p_sim.add_argument("--until", type=float, default=None,
                       help="time horizon")
    p_sim.add_argument("--max-firings", type=int, default=None,
                       help="global firing budget")
    p_sim.add_argument("--ready-core", choices=("arrays", "wakeup", "reference"),
                       default="arrays",
                       help="simulation engine (bit-identical traces; arrays "
                            "is the schedule-plane/value-plane split)")
    p_sim.add_argument("--check-reference", action="store_true",
                       help="re-run on the legacy reference loop and compare "
                            "trace fingerprints bit-for-bit (exit 1 on "
                            "divergence)")
    p_sim.add_argument("--gantt", action="store_true",
                       help="print an ASCII timeline of the trace")
    p_sim.set_defaults(func=cmd_simulate)

    p_serve = sub.add_parser(
        "serve",
        help="run the resident analysis service (HTTP, persistent workers)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument("--workers", type=int, default=2,
                         help="persistent analysis worker processes")
    p_serve.add_argument("--cache-size", type=int, default=256,
                         help="result-cache entries (LRU bound)")
    p_serve.add_argument("--max-attempts", type=int, default=3,
                         help="executions tried per request before a "
                              "worker-crash error (503)")
    p_serve.add_argument("--smoke", action="store_true",
                         help="start on an ephemeral port, self-check one "
                              "analysis over HTTP against a direct run, exit")
    p_serve.set_defaults(func=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
