"""Discrete-event execution of TPDF graphs (the model's runtime
semantics).

This engine animates what the static analyses promise: kernels fire
under the TPDF firing rules (Sec. II-B), control tokens select modes
and data paths, clock actors tick on model time, transaction kernels
commit to "the best available input at the deadline", and rejected
tokens are flushed so buffers stay bounded.

Semantics implemented (with the paper reference):

* a kernel with a control port first waits for one control token; the
  token's mode decides which data ports the firing uses (Def. 2);
* ``HIGHEST_PRIORITY`` firings start as soon as the control token and
  *some* candidate input are available, choosing the available input
  with the largest port priority ``alpha`` — combined with clock
  tokens this is "highest priority at a given deadline" (Sec. II-B);
  if no input is available the kernel sleeps and wakes on the first
  arrival (Sec. III-D, sleeping queue);
* tokens on rejected ports are *removed*: the would-be-consumed amount
  is flushed immediately if present, otherwise remembered as a discard
  debt and flushed on arrival (Example 1: "remove remaining tokens");
* control actors are scheduled with the highest priority and do not
  compete for worker cores (Sec. III-D: a control actor "is ensured to
  have a processing unit available before the others");
* clock actors tick autonomously every ``period`` (watchdog timers).

The ready check is **dependency-driven** (the event core of
:mod:`repro.csdf.eventloop`): after each event only the nodes whose
readiness may have changed — consumers of channels that received
tokens, the completed node itself, and core-budget waiters when a
worker core frees — are re-examined, in the exact scan order of the
legacy full rescan.  The legacy loop is retained under
``ready_core="reference"`` as the differential oracle
(``tests/sim/test_eventloop_differential.py`` pins trace equality bit
for bit).

Data values are real Python objects; attach a ``function`` to a kernel
to compute outputs from inputs (the OFDM and edge-detection case
studies run their actual numpy DSP through this hook).  Execution
times come from the kernel's ``exec_time`` or, when data-dependent,
from ``kernel.meta["time_fn"]``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Mapping

from ..csdf.eventloop import EventQueue, ReadyWorklist
from ..errors import SimulationError
from ..tpdf.builtins import ClockActor
from ..tpdf.graph import TPDFChannel, TPDFGraph
from ..tpdf.kernel import ControlActor, Kernel
from ..tpdf.modes import ControlToken, Mode, highest_priority, wait_all
from .trace import INITIAL_TOKEN, DiscardRecord, FiringRecord, Trace


class _ChannelState:
    __slots__ = ("channel", "queue", "discard_debt", "dst_pos", "src_pos",
                 "capacity", "reserved")

    def __init__(self, channel: TPDFChannel):
        self.channel = channel
        # Initial tokens carry the InitialToken sentinel, not None: a
        # consuming ``function`` can tell "no payload yet" from a
        # produced ``None`` (the sentinel is falsy, like the old None).
        self.queue: deque = deque(
            INITIAL_TOKEN for _ in range(channel.initial_tokens)
        )
        self.discard_debt = 0
        #: scan position of the consumer (set by the Simulator; the
        #: wakeup seed target when tokens arrive on this channel)
        self.dst_pos = -1
        #: scan position of the producer (the wakeup seed target when
        #: tokens leave a capacity-bounded channel)
        self.src_pos = -1
        #: buffer bound (``None`` = unbounded)
        self.capacity: int | None = None
        #: tokens promised by in-flight firings (reserved at start,
        #: converted to queued tokens at completion)
        self.reserved = 0


class Simulator:
    """Event-driven executor for one TPDF graph.

    Parameters
    ----------
    graph:
        The graph to execute (parametric graphs need ``bindings``).
    bindings:
        Parameter valuation for rate evaluation.
    cores:
        Worker-core budget for kernels (``None`` = unlimited).  Control
        actors never compete for these cores.
    capacities:
        Optional per-channel buffer bounds (channel name → max tokens),
        the same blocking-write discipline as
        ``self_timed_execution(capacities=...)``: a firing may start
        only when every bounded output channel has room for the tokens
        it will produce — occupancy counts queued tokens *plus* the
        reservations of in-flight firings, a self-loop's own
        consumption is credited, and the reservation converts into
        queued tokens at completion.  Unknown channel names raise
        ``ValueError``; a capacity below a channel's initial tokens
        raises :class:`~repro.errors.DeadlockError` up front (the
        initial marking does not fit the buffer).  Clock-actor ticks
        are time-triggered and never blocked — their deposits still
        count toward occupancy.  Capacity back-pressure can make the
        run quiesce earlier than an unbounded run; the trace's
        ``peaks`` never exceed the bound.
    record_values:
        Keep consumed/produced values in the trace (memory-heavy; used
        by functional tests).
    control_priority:
        Start ready control actors before ready kernels (the paper's
        rule; disabled by the scheduler ablation).
    ready_core:
        ``"arrays"`` (default) runs the schedule-plane / value-plane
        split of :mod:`repro.sim.schedplane`: scheduling state lives in
        flat slot-indexed counters over the memoized
        :func:`repro.csdf.statearrays.sim_array_state` template, and
        token payloads are materialized only on channels with a
        value-touching endpoint; ``"wakeup"`` is the Python engine with
        the dependency-driven worklist; ``"reference"`` keeps the
        legacy full rescan of every node after every event — the
        differential oracle.  All three produce bit-identical traces
        (``stats()`` reports which plane actually ran).
    """

    #: Accepted ``ready_core`` selections (mirrors
    #: ``repro.csdf.throughput.BACKENDS``).
    READY_CORES = ("arrays", "wakeup", "reference")

    def __init__(
        self,
        graph: TPDFGraph,
        bindings: Mapping | None = None,
        cores: int | None = None,
        record_values: bool = False,
        control_priority: bool = True,
        ready_core: str = "arrays",
        capacities: Mapping[str, int] | None = None,
    ):
        if ready_core not in self.READY_CORES:
            raise ValueError(
                f"ready_core must be one of "
                f"{', '.join(map(repr, self.READY_CORES))}, got {ready_core!r}"
            )
        self.graph = graph
        self.bindings = dict(bindings or {})
        self.cores = cores
        self.record_values = record_values
        self.control_priority = control_priority
        self.ready_core = ready_core
        #: ready-check cost counters: ``visits`` = nodes examined by
        #: the ready scan (the number the ext6 bench compares across
        #: cores), ``events`` = completed events.
        self.ready_stats = {"visits": 0, "events": 0}
        self.trace = Trace()
        self.now = 0.0

        self._channels: dict[str, _ChannelState] = {}
        self._in: dict[str, dict[str, _ChannelState]] = {}
        self._out: dict[str, dict[str, _ChannelState]] = {}
        self._rates: dict[tuple[str, str], tuple[int, ...]] = {}
        for name in graph.node_names():
            self._in[name] = {}
            self._out[name] = {}
        for channel in graph.channels.values():
            state = _ChannelState(channel)
            self._channels[channel.name] = state
            self.trace.peaks[channel.name] = channel.initial_tokens
            self._in[channel.dst][channel.dst_port] = state
            self._out[channel.src][channel.src_port] = state
            self._rates[(channel.src, channel.src_port)] = (
                graph.node(channel.src).port(channel.src_port).rates.as_ints(self.bindings)
            )
            self._rates[(channel.dst, channel.dst_port)] = (
                graph.node(channel.dst).port(channel.dst_port).rates.as_ints(self.bindings)
            )

        self._fired: dict[str, int] = {name: 0 for name in graph.node_names()}
        self._mode_rate_cache: dict[tuple, tuple[int, ...]] = {}
        self._busy: set[str] = set()
        self._limits: dict[str, int] = {}
        #: ``"arrays"`` never touches this queue (the plane owns its
        #: own calendar/heap event core).
        self._events = None if ready_core == "arrays" else EventQueue()
        #: the schedule/value plane, built lazily on the first run so
        #: ``function``/``meta`` hooks attached after construction are
        #: still honoured
        self._plane = None
        if control_priority:
            self._order = list(graph.controls) + list(graph.kernels)
        else:
            self._order = list(graph.kernels) + list(graph.controls)

        # Dependency-driven wakeup state: scan positions, node objects
        # by position (the hot path indexes instead of graph.node()),
        # the pending-ready worklist, and the core-budget wait set.
        self._pos = {name: i for i, name in enumerate(self._order)}
        self._nodes = [graph.node(name) for name in self._order]
        self._wakeup = ready_core != "reference"
        self._worklist = ReadyWorklist(len(self._order))
        self._workers = 0
        self._core_blocked: list[int] = []
        self._core_blocked_flag = bytearray(len(self._order))
        for state in self._channels.values():
            state.dst_pos = self._pos[state.channel.dst]
            state.src_pos = self._pos[state.channel.src]

        self._capacities = dict(capacities or {})
        self._any_capacity = bool(self._capacities)
        if self._capacities:
            # Shared capacity contract (repro.csdf.throughput): unknown
            # names raise, and the initial marking must fit the buffer.
            from ..csdf.throughput import _initial_fit_error, validate_capacities

            validate_capacities(graph, self._capacities)
            too_small = sorted(
                name for name, cap in self._capacities.items()
                if cap < graph.channels[name].initial_tokens
            )
            if too_small:
                raise _initial_fit_error(too_small, list(self._order))
            for name, cap in self._capacities.items():
                self._channels[name].capacity = int(cap)

    # -- small helpers ------------------------------------------------------
    def _rate(self, node: str, port: str, firing: int) -> int:
        phases = self._rates[(node, port)]
        return phases[firing % len(phases)]

    def _kernel_rate(self, kernel: Kernel, port: str, firing: int,
                     mode: Mode | None) -> int:
        """Port rate honouring the per-mode overrides (the ``Rk(m, ., n)``
        table of Def. 2): a kernel firing in mode ``m`` may move a
        different token count than its default port rate."""
        if mode is not None:
            override = kernel._mode_rates.get(mode)
            if override is not None and port in override:
                key = (kernel.name, port, mode)
                cached = self._mode_rate_cache.get(key)
                if cached is None:
                    cached = override[port].as_ints(self.bindings)
                    self._mode_rate_cache[key] = cached
                return cached[firing % len(cached)]
        return self._rate(kernel.name, port, firing)

    def _push_event(self, time: float, kind: str, payload) -> None:
        self._events.push(time, (kind, payload))

    def tokens_in(self, channel: str) -> int:
        if self._plane is not None:
            return self._plane.tokens_of(channel)
        return len(self._channels[channel].queue)

    def channel_values(self, channel: str) -> list:
        """Current payloads on a channel (schedule-only channels report
        their counters as ``InitialToken``/``None`` placeholders)."""
        if self._plane is not None:
            return self._plane.values_of(channel)
        return list(self._channels[channel].queue)

    def channel_reserved(self, channel: str) -> int:
        """Tokens promised by in-flight firings on a bounded channel."""
        if self._plane is not None:
            return self._plane.reserved_of(channel)
        return self._channels[channel].reserved

    def stats(self) -> dict:
        """Which engine actually runs, plus the ready-check counters.

        ``plane`` is ``"arrays"`` for the schedule/value-plane split
        and ``"python"`` for the dict-walking wakeup/reference loops;
        after an arrays run the value-plane split is reported too
        (``value_channels`` materialized payload deques,
        ``schedule_only_channels`` counters-only, ``fast_path`` the
        whole-graph no-value degeneration).
        """
        info = {
            "ready_core": self.ready_core,
            "plane": "arrays" if self.ready_core == "arrays" else "python",
        }
        info.update(self.ready_stats)
        if self._plane is not None:
            value_channels = sum(
                1 for queue in self._plane.queues if queue is not None
            )
            info["value_channels"] = value_channels
            info["schedule_only_channels"] = (
                self._plane.nchan - value_channels
            )
            info["fast_path"] = self._plane.fast_ok
        return info

    # -- deposit with discard-debt settlement --------------------------------
    def _deposit(self, state: _ChannelState, values: list) -> None:
        for value in values:
            if state.discard_debt > 0:
                state.discard_debt -= 1
                continue
            state.queue.append(value)
        occupancy = len(state.queue)
        if occupancy > self.trace.peaks[state.channel.name]:
            self.trace.peaks[state.channel.name] = occupancy
        if self._wakeup:
            # Wakeup invariant: tokens arrived, so the consumer's
            # readiness may have changed.
            self._worklist.seed(state.dst_pos)

    def _notify_drain(self, state: _ChannelState, count: int) -> None:
        """Tokens left a channel: a producer blocked on its capacity
        may have room now (the write-side wakeup invariant)."""
        if count and self._wakeup and state.capacity is not None:
            self._worklist.seed(state.src_pos)

    def _flush(self, state: _ChannelState, count: int, node: str, port: str,
               late_debt: bool = True) -> None:
        """Discard ``count`` tokens: immediately when present and — when
        ``late_debt`` — as a debt settled on arrival otherwise.

        The debt covers the paper's "remove remaining tokens" for
        rejected inputs whose producers still run (e.g. the slow Canny
        branch finishing after the deadline).  When an upstream
        select-duplicate made the same decision, the rejected producer
        never fires (Fig. 3 coordination / ADF) and nothing will
        arrive; kernels declare that with ``meta['discard_late'] =
        False`` so the debt cannot swallow a *future* activation's
        tokens."""
        if count <= 0:
            return
        available = min(count, len(state.queue))
        for _ in range(available):
            state.queue.popleft()
        self._notify_drain(state, available)
        flushed = available
        if late_debt:
            state.discard_debt += count - available
            flushed = count
        if flushed:
            self.trace.discards.append(
                DiscardRecord(
                    channel=state.channel.name,
                    port=port,
                    node=node,
                    count=flushed,
                    time=self.now,
                )
            )

    # -- firing rules --------------------------------------------------------
    def _control_state(self, kernel: Kernel) -> _ChannelState | None:
        port = kernel.control_port()
        if port is None:
            return None
        return self._in[kernel.name].get(port.name)

    def _peek_control(self, kernel: Kernel) -> ControlToken | None:
        state = self._control_state(kernel)
        if state is None or not state.queue:
            return None
        token = state.queue[0]
        if not isinstance(token, ControlToken):
            token = wait_all()
        return token

    def _kernel_plan(self, kernel: Kernel):
        """Return ``(mode_token, ports_to_consume)`` if the kernel can
        fire now, else ``None``."""
        name = kernel.name
        n = self._fired[name]
        control_state = self._control_state(kernel)
        token: ControlToken | None = None
        needs_control = False
        if control_state is not None:
            control_rate = self._rate(name, kernel.control_port().name, n)
            if control_rate > 1:
                # A multi-token control phase has no defined semantics
                # (which of the tokens selects the mode?); refuse
                # loudly instead of silently firing in WAIT_ALL with
                # the tokens left behind.
                raise SimulationError(
                    f"kernel {name!r} control port "
                    f"{kernel.control_port().name!r} has rate "
                    f"{control_rate} at firing {n}; only rates 0 "
                    f"(inactive phase) and 1 are supported"
                )
            needs_control = control_rate == 1
            if needs_control:
                if not control_state.queue:
                    return None
                token = self._peek_control(kernel)
        mode = token.mode if token is not None else Mode.WAIT_ALL

        data_ports = {
            port: state for port, state in self._in[name].items()
            if state is not control_state
        }

        if mode in (Mode.WAIT_ALL,):
            for port, state in data_ports.items():
                if len(state.queue) < self._kernel_rate(kernel, port, n, mode):
                    return None
            consume = list(data_ports)
        elif mode in (Mode.SELECT_ONE, Mode.SELECT_MANY):
            # A selection only constrains the side it names: a
            # select-duplicate token names *output* ports, so its
            # inputs behave as WAIT_ALL; a transaction token names
            # *input* ports.
            if token.selection and not set(token.selection) & set(data_ports):
                selected = list(data_ports)
            else:
                selected = [p for p in data_ports if token.selects(p)]
            for port in selected:
                if len(data_ports[port].queue) < self._kernel_rate(kernel, port, n, mode):
                    return None
            consume = selected
        else:  # HIGHEST_PRIORITY
            candidates = [
                port for port, state in data_ports.items()
                if self._kernel_rate(kernel, port, n, mode) > 0
                and len(state.queue) >= self._kernel_rate(kernel, port, n, mode)
            ]
            if not candidates:
                return None  # sleep until an input arrives
            best = max(
                candidates,
                key=lambda p: (kernel.port(p).priority, p),
            )
            consume = [best]
        if self._any_capacity and self._capacity_blocked(
            kernel, n, mode, self._reserve_plan(kernel, n, mode, token),
            consume,
        ):
            return None  # blocking write: no room on a bounded output
        return token if needs_control else None, consume

    def _reserve_plan(self, kernel: Kernel, n: int, mode: Mode | None,
                      token: ControlToken | None) -> dict[str, int]:
        """Per-port production this firing will deposit — the
        enabled-port rule of :meth:`_apply_function`, applied at plan
        time (the mode token, and with it the declared rates, is known
        before the firing starts)."""
        out_rates = {
            port: self._kernel_rate(kernel, port, n, mode)
            for port in self._out[kernel.name]
        }
        if (
            token is None
            or not token.selection
            or not set(token.selection) & set(out_rates)
        ):
            return out_rates
        return {
            port: rate for port, rate in out_rates.items()
            if token.selects(port)
        }

    def _capacity_blocked(self, kernel: Kernel, n: int, mode: Mode | None,
                          reserve: Mapping[str, int],
                          consume: list[str]) -> bool:
        """True when some bounded output channel lacks room for this
        firing's production.  Occupancy is queued tokens plus in-flight
        reservations; tokens the same firing pops from a self-loop at
        start are credited (they leave before the reservation lands)."""
        name = kernel.name
        for port, rate in reserve.items():
            state = self._out[name][port]
            cap = state.capacity
            if cap is None:
                continue
            credit = 0
            channel = state.channel
            if channel.dst == name and channel.dst_port in consume:
                credit = self._kernel_rate(kernel, channel.dst_port, n, mode)
            if len(state.queue) - credit + state.reserved + rate > cap:
                return True
        return False

    def _control_ready(self, actor: ControlActor) -> bool:
        if isinstance(actor, ClockActor):
            return False  # time-triggered, never data-ready
        name = actor.name
        n = self._fired[name]
        for port, state in self._in[name].items():
            if len(state.queue) < self._rate(name, port, n):
                return False
        if self._any_capacity:
            for port, state in self._out[name].items():
                cap = state.capacity
                if cap is None:
                    continue
                credit = 0
                channel = state.channel
                if channel.dst == name:
                    credit = self._rate(name, channel.dst_port, n)
                rate = self._rate(name, port, n)
                if len(state.queue) - credit + state.reserved + rate > cap:
                    return False
        return True

    # -- starting firings ------------------------------------------------------
    def _limit_reached(self, name: str) -> bool:
        limit = self._limits.get(name)
        return limit is not None and self._fired[name] >= limit

    def _start_ready(self) -> None:
        if self._wakeup:
            self._start_ready_wakeup()
        else:
            self._start_ready_reference()

    def _start_ready_reference(self) -> None:
        """Legacy ready check: full rescan of every node after every
        event.  Kept as the differential oracle for the wakeup core —
        its scan order is the tie-break contract both must honour."""
        visits = 0
        progress = True
        while progress:
            progress = False
            for name in self._order:
                visits += 1
                if name in self._busy or self._limit_reached(name):
                    continue
                node = self.graph.node(name)
                if isinstance(node, ControlActor):
                    if self._control_ready(node):
                        self._begin_control(node)
                        progress = True
                else:
                    if self.cores is not None:
                        workers = sum(
                            1 for busy in self._busy
                            if not self.graph.is_control_actor(busy)
                        )
                        if workers >= self.cores:
                            continue
                    assert isinstance(node, Kernel)
                    plan = self._kernel_plan(node)
                    if plan is not None:
                        self._begin_kernel(node, *plan)
                        progress = True
        self.ready_stats["visits"] += visits

    def _start_ready_wakeup(self) -> None:
        """Dependency-driven ready check: examine only the worklist
        candidates (nodes adjacent to changed channels, completed
        nodes, and core waiters), in legacy scan order."""
        worklist = self._worklist
        nodes = self._nodes
        order = self._order
        busy = self._busy
        visits = 0
        while worklist.begin_scan():
            progress = False
            pos = worklist.pop()
            while pos >= 0:
                visits += 1
                name = order[pos]
                if name in busy or self._limit_reached(name):
                    pos = worklist.pop()
                    continue
                node = nodes[pos]
                if isinstance(node, ControlActor):
                    if self._control_ready(node):
                        self._begin_control(node)
                        progress = True
                elif self.cores is not None and self._workers >= self.cores:
                    # Waiting for a worker core, not for tokens: park
                    # until a kernel completion frees one.
                    if not self._core_blocked_flag[pos]:
                        self._core_blocked_flag[pos] = 1
                        self._core_blocked.append(pos)
                else:
                    plan = self._kernel_plan(node)
                    if plan is not None:
                        self._begin_kernel(node, *plan)
                        progress = True
                pos = worklist.pop()
            worklist.end_scan()
            if not progress:
                break
        self.ready_stats["visits"] += visits

    def _begin_control(self, actor: ControlActor) -> None:
        name = actor.name
        n = self._fired[name]
        consumed: dict[str, list] = {}
        for port, state in self._in[name].items():
            rate = self._rate(name, port, n)
            consumed[port] = [state.queue.popleft() for _ in range(rate)]
            self._notify_drain(state, rate)
        reserve: dict[str, int] = {}
        if self._any_capacity:
            for port, state in self._out[name].items():
                rate = self._rate(name, port, n)
                reserve[port] = rate
                state.reserved += rate
        duration = actor.exec_time(n)
        self._busy.add(name)
        self._push_event(
            self.now + duration, "control_done",
            (actor, n, self.now, consumed, reserve),
        )

    def _begin_kernel(self, kernel: Kernel, token: ControlToken | None, consume: list[str]) -> None:
        name = kernel.name
        n = self._fired[name]
        mode = token.mode if token is not None else None
        consumed: dict[str, list] = {}
        if token is not None:
            control_state = self._control_state(kernel)
            assert control_state is not None
            control_state.queue.popleft()
            self._notify_drain(control_state, 1)
        for port in consume:
            state = self._in[name][port]
            rate = self._kernel_rate(kernel, port, n, mode)
            consumed[port] = [state.queue.popleft() for _ in range(rate)]
            self._notify_drain(state, rate)
        # Rejected ports: flush this firing's worth of tokens.
        control_port = kernel.control_port()
        late_debt = bool(kernel.meta.get("discard_late", True))
        for port, state in self._in[name].items():
            if control_port is not None and port == control_port.name:
                continue
            if port in consume:
                continue
            self._flush(state, self._kernel_rate(kernel, port, n, mode),
                        name, port, late_debt=late_debt)

        reserve: dict[str, int] = {}
        if self._any_capacity:
            reserve = self._reserve_plan(kernel, n, mode, token)
            for port, rate in reserve.items():
                self._out[name][port].reserved += rate

        time_fn = kernel.meta.get("time_fn")
        duration = (
            float(time_fn(n, consumed)) if callable(time_fn) else kernel.exec_time(n)
        )
        self._busy.add(name)
        self._workers += 1
        self._push_event(
            self.now + duration, "kernel_done",
            (kernel, n, self.now, token, consumed, reserve),
        )

    # -- completing firings ------------------------------------------------------
    def _complete_control(self, actor: ControlActor, n: int, start: float,
                          consumed, reserve: Mapping[str, int] = ()) -> None:
        name = actor.name
        flat_inputs = [value for values in consumed.values() for value in values]
        token = actor.decide(n, flat_inputs)
        for port in reserve:
            self._out[name][port].reserved -= reserve[port]
        produced: dict[str, list] = {}
        for port, state in self._out[name].items():
            rate = self._rate(name, port, n)
            values = [token] * rate
            produced[port] = values
            self._deposit(state, values)
        self._busy.discard(name)
        self._fired[name] = n + 1
        if self._wakeup:
            self._worklist.seed(self._pos[name])
        self.trace.firings.append(
            FiringRecord(
                node=name, index=n, start=start, end=self.now, mode=token,
                consumed=consumed if self.record_values else None,
                produced=produced if self.record_values else None,
            )
        )

    def _complete_kernel(self, kernel: Kernel, n: int, start: float,
                         token: ControlToken | None, consumed,
                         reserve: Mapping[str, int] = ()) -> None:
        name = kernel.name
        outputs = self._apply_function(kernel, n, token, consumed)
        for port in reserve:
            self._out[name][port].reserved -= reserve[port]
        for port, values in outputs.items():
            self._deposit(self._out[name][port], values)
        self._busy.discard(name)
        self._fired[name] = n + 1
        self._workers -= 1
        if self._wakeup:
            worklist = self._worklist
            worklist.seed(self._pos[name])
            if self._core_blocked:
                # A worker core was released: every kernel parked on
                # the budget becomes a candidate again.
                for pos in self._core_blocked:
                    self._core_blocked_flag[pos] = 0
                    worklist.seed(pos)
                self._core_blocked.clear()
        self.trace.firings.append(
            FiringRecord(
                node=name, index=n, start=start, end=self.now, mode=token,
                consumed=consumed if self.record_values else None,
                produced=outputs if self.record_values else None,
            )
        )

    def _apply_function(self, kernel: Kernel, n: int,
                        token: ControlToken | None, consumed) -> dict[str, list]:
        """Run the kernel's function and shape its outputs per port."""
        name = kernel.name
        mode = token.mode if token is not None else None
        out_rates = {
            port: self._kernel_rate(kernel, port, n, mode)
            for port in self._out[name]
        }
        if (
            token is None
            or not token.selection
            or not set(token.selection) & set(out_rates)
        ):
            # No selection, or a selection naming input ports only:
            # every output is enabled.
            enabled = dict(out_rates)
        else:
            enabled = {
                port: rate for port, rate in out_rates.items()
                if token.selects(port)
            }
        function = kernel.function or _builtin_function(kernel)
        if function is None:
            result: Any = None
        else:
            result = function(n, consumed)

        outputs: dict[str, list] = {}
        if isinstance(result, dict):
            for port, rate in out_rates.items():
                if port not in enabled:
                    outputs[port] = []
                    continue
                values = result.get(port)
                if values is None:
                    values = [None] * rate
                if len(values) != rate:
                    raise SimulationError(
                        f"kernel {name!r} produced {len(values)} values on "
                        f"{port!r} but the rate of firing {n} is {rate}"
                    )
                outputs[port] = list(values)
        elif isinstance(result, list):
            if len(enabled) != 1:
                raise SimulationError(
                    f"kernel {name!r} returned a list but has "
                    f"{len(enabled)} enabled output ports; return a dict"
                )
            (port, rate), = enabled.items()
            if len(result) != rate:
                raise SimulationError(
                    f"kernel {name!r} produced {len(result)} values on {port!r} "
                    f"but the rate of firing {n} is {rate}"
                )
            outputs = {p: [] for p in out_rates}
            outputs[port] = list(result)
        else:
            # Scalar (or None): replicate on every enabled port.
            outputs = {
                port: ([result] * rate if port in enabled else [])
                for port, rate in out_rates.items()
            }
        # Disabled ports produce nothing (their consumers' tokens were
        # chosen away by the select-duplicate decision).
        return outputs

    # -- clocks --------------------------------------------------------------
    def _schedule_clock(self, actor: ClockActor, until: float) -> None:
        tick = self.now + actor.period
        if tick <= until:
            self._push_event(tick, "tick", actor)

    def _complete_tick(self, actor: ClockActor, until: float) -> None:
        name = actor.name
        n = self._fired[name]
        if not self._limit_reached(name):
            if actor.decision is not None:
                token = actor.decision(n, [])
            else:
                token = highest_priority(deadline=self.now)
            produced: dict[str, list] = {}
            for port, state in self._out[name].items():
                rate = self._rate(name, port, n)
                values = [token] * rate
                produced[port] = values
                self._deposit(state, values)
            self._fired[name] = n + 1
            self.trace.firings.append(
                FiringRecord(
                    node=name, index=n, start=self.now, end=self.now, mode=token,
                    produced=produced if self.record_values else None,
                )
            )
        self._schedule_clock(actor, until)

    # -- main loop ------------------------------------------------------------
    def run(
        self,
        until: float | None = None,
        limits: Mapping[str, int] | None = None,
        max_firings: int = 1_000_000,
    ) -> Trace:
        """Execute until quiescence, the time horizon, or the limits.

        ``limits`` caps firings per node (source kernels and clocks
        would otherwise run forever); ``until`` bounds model time —
        required when the graph contains clock actors and no limits.
        """
        if self.ready_core == "arrays":
            from .schedplane import SimPlane

            if self._plane is None:
                self._plane = SimPlane(self)
            return self._plane.run(until, dict(limits or {}), max_firings)
        self._limits = dict(limits or {})
        has_clock = any(
            isinstance(self.graph.node(n), ClockActor) for n in self.graph.controls
        )
        if has_clock and until is None:
            raise SimulationError(
                "graphs with clock actors need a time horizon: run(until=...)"
            )
        horizon = until if until is not None else float("inf")
        for name in self.graph.controls:
            node = self.graph.node(name)
            if isinstance(node, ClockActor):
                self._schedule_clock(node, horizon)

        if self._wakeup:
            # Fresh horizon/limits: every node is a candidate again.
            self._worklist.seed_all(len(self._order))
        self._start_ready()
        fired_total = 0
        while self._events:
            time, _, (kind, payload) = self._events.pop()
            if time > horizon:
                self.now = horizon
                break
            self.now = time
            self.ready_stats["events"] += 1
            if kind == "kernel_done":
                self._complete_kernel(*payload)
            elif kind == "control_done":
                self._complete_control(*payload)
            elif kind == "tick":
                self._complete_tick(payload, horizon)
            fired_total += 1
            if fired_total > max_firings:
                raise SimulationError(
                    f"exceeded {max_firings} firings; add limits= or until= "
                    f"to bound the run"
                )
            self._start_ready()
        return self.trace


def _builtin_function(kernel: Kernel):
    """Default data behaviour for the builtin kernels of Sec. II-B."""
    builtin = kernel.meta.get("builtin")
    if builtin == "select_duplicate":
        def duplicate(_n: int, consumed: dict) -> Any:
            values = [v for vs in consumed.values() for v in vs]
            return values[0] if values else None
        return duplicate
    if builtin == "transaction":
        action = kernel.meta.get("action", "select")
        if action == "vote":
            def vote(_n: int, consumed: dict) -> Any:
                values = [v for vs in consumed.values() for v in vs]
                if not values:
                    return None
                tallies: dict = {}
                for value in values:
                    key = _vote_key(value)
                    tallies[key] = (tallies.get(key, (0, value))[0] + 1, value)
                _, winner = max(tallies.values(), key=lambda item: item[0])
                return winner
            return vote

        def forward(_n: int, consumed: dict) -> Any:
            values = [v for vs in consumed.values() for v in vs]
            return values[0] if len(values) == 1 else values or None
        return forward
    return None


def _vote_key(value):
    """Hashable view of a vote value (numpy arrays compare by bytes)."""
    tobytes = getattr(value, "tobytes", None)
    if callable(tobytes):
        return tobytes()
    return value
