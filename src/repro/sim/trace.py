"""Execution traces of the discrete-event simulator.

A trace records every firing (who, when, in which mode), channel
occupancy peaks, and — optionally — the data values moved, so tests
can assert functional behaviour (e.g. the OFDM chain recovers the
transmitted bits) and benches can report buffer sizes (Fig. 8) and
latencies (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..tpdf.modes import ControlToken


@dataclass
class FiringRecord:
    """One completed firing."""

    node: str
    index: int  # 0-based firing count of this node
    start: float
    end: float
    mode: ControlToken | None = None
    consumed: dict[str, list] | None = None
    produced: dict[str, list] | None = None

    def __str__(self) -> str:
        mode = f" [{self.mode}]" if self.mode is not None else ""
        return f"{self.node}#{self.index} @ [{self.start}, {self.end}){mode}"


@dataclass
class DiscardRecord:
    """Tokens rejected by a mode decision and flushed from a channel."""

    channel: str
    port: str
    node: str
    count: int
    time: float


@dataclass
class Trace:
    """Aggregated observations of one simulation run."""

    firings: list[FiringRecord] = field(default_factory=list)
    discards: list[DiscardRecord] = field(default_factory=list)
    #: peak occupancy per channel (includes initial tokens)
    peaks: dict[str, int] = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Deterministic digest of the whole trace — firing order,
        exact event times, modes, discards, and channel peaks.

        Two simulator runs are bit-for-bit equivalent iff their
        fingerprints match; the event-loop differential suite uses
        this to pin the dependency-driven ready check against the
        legacy full-rescan reference."""
        import hashlib

        digest = hashlib.sha256()
        for record in self.firings:
            digest.update(
                f"F|{record.node}|{record.index}|{record.start!r}|"
                f"{record.end!r}|{record.mode!r}\n".encode()
            )
        for discard in self.discards:
            digest.update(
                f"D|{discard.channel}|{discard.port}|{discard.node}|"
                f"{discard.count}|{discard.time!r}\n".encode()
            )
        for channel, peak in self.peaks.items():
            digest.update(f"P|{channel}|{peak}\n".encode())
        return digest.hexdigest()

    def firings_of(self, node: str) -> list[FiringRecord]:
        return [record for record in self.firings if record.node == node]

    def count(self, node: str) -> int:
        return sum(1 for record in self.firings if record.node == node)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for record in self.firings:
            out[record.node] = out.get(record.node, 0) + 1
        return out

    def end_time(self) -> float:
        return max((record.end for record in self.firings), default=0.0)

    def total_buffer(self) -> int:
        return sum(self.peaks.values())

    def discarded_tokens(self) -> int:
        return sum(record.count for record in self.discards)

    def produced_values(self, node: str, port: str) -> list[Any]:
        """All values a node emitted on one port, in order (requires the
        simulator to run with ``record_values=True``)."""
        values: list[Any] = []
        for record in self.firings_of(node):
            if record.produced and port in record.produced:
                values.extend(record.produced[port])
        return values

    def busy_time(self, node: str) -> float:
        """Total time the node spent executing."""
        return sum(r.end - r.start for r in self.firings_of(node))

    def utilization(self) -> dict[str, float]:
        """Per-node busy fraction of the trace's time span."""
        horizon = self.end_time()
        if horizon <= 0.0:
            return {}
        return {
            node: self.busy_time(node) / horizon
            for node in sorted({r.node for r in self.firings})
        }

    def gantt(self, width: int = 72) -> str:
        """ASCII timeline, one row per node."""
        if not self.firings:
            return "(no firings)"
        horizon = self.end_time() or 1.0
        scale = width / horizon
        nodes = sorted({record.node for record in self.firings})
        lines = []
        for node in nodes:
            row = [" "] * (width + 1)
            for record in self.firings_of(node):
                lo = int(record.start * scale)
                hi = max(lo + 1, int(record.end * scale))
                for pos in range(lo, min(hi, width)):
                    row[pos] = "#" if row[pos] == " " else "%"
            lines.append(f"{node:>12} |{''.join(row).rstrip()}")
        return "\n".join(lines)
