"""Execution traces of the discrete-event simulator.

A trace records every firing (who, when, in which mode), channel
occupancy peaks, and — optionally — the data values moved, so tests
can assert functional behaviour (e.g. the OFDM chain recovers the
transmitted bits) and benches can report buffer sizes (Fig. 8) and
latencies (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..tpdf.modes import ControlToken


class InitialToken:
    """Sentinel payload carried by a channel's *initial* tokens.

    Initial tokens exist before any producer fired, so they have no
    computed value; pre-filling ``None`` (the pre-split behaviour) made
    them indistinguishable from a genuine ``None`` produced by a
    kernel function.  Every initial token is this singleton instead:
    ``value is INITIAL_TOKEN`` tells a ``function`` kernel "no payload
    yet".  The sentinel is falsy, so existing guards of the form
    ``if consumed.get(port):`` keep treating it as absent.
    """

    __slots__ = ()
    _singleton: "InitialToken | None" = None

    def __new__(cls) -> "InitialToken":
        if cls._singleton is None:
            cls._singleton = super().__new__(cls)
        return cls._singleton

    def __repr__(self) -> str:
        return "InitialToken"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        return (InitialToken, ())


#: The one shared sentinel instance (``InitialToken()`` returns it too).
INITIAL_TOKEN = InitialToken()


@dataclass
class FiringRecord:
    """One completed firing."""

    node: str
    index: int  # 0-based firing count of this node
    start: float
    end: float
    mode: ControlToken | None = None
    consumed: dict[str, list] | None = None
    produced: dict[str, list] | None = None

    def __str__(self) -> str:
        mode = f" [{self.mode}]" if self.mode is not None else ""
        return f"{self.node}#{self.index} @ [{self.start}, {self.end}){mode}"


@dataclass
class DiscardRecord:
    """Tokens rejected by a mode decision and flushed from a channel."""

    channel: str
    port: str
    node: str
    count: int
    time: float


class Trace:
    """Aggregated observations of one simulation run.

    ``firings`` is a list of :class:`FiringRecord`; the reference and
    wakeup engines append records directly.  The arrays schedule plane
    instead hands over *columns* (parallel lists of node/index/start/
    end/mode) via :meth:`_extend_from_columns` — record objects are
    only constructed when ``firings`` is first read, and
    :meth:`fingerprint` digests the columns without ever building
    them.  Both paths produce byte-identical fingerprints.
    """

    __slots__ = ("_firings", "_columns", "discards", "peaks")

    def __init__(self, firings: list[FiringRecord] | None = None,
                 discards: list[DiscardRecord] | None = None,
                 peaks: dict[str, int] | None = None):
        self._firings: list[FiringRecord] = (
            firings if firings is not None else []
        )
        #: un-materialized firing columns from the arrays plane:
        #: ``(nodes, indices, starts, ends, modes, consumed, produced)``
        self._columns: tuple | None = None
        self.discards: list[DiscardRecord] = (
            discards if discards is not None else []
        )
        #: peak occupancy per channel (includes initial tokens)
        self.peaks: dict[str, int] = peaks if peaks is not None else {}

    @property
    def firings(self) -> list[FiringRecord]:
        if self._columns is not None:
            self._materialize()
        return self._firings

    @firings.setter
    def firings(self, records: list[FiringRecord]) -> None:
        self._columns = None
        self._firings = records

    def _materialize(self) -> None:
        nodes, indices, starts, ends, modes, consumed, produced = self._columns
        self._columns = None
        append = self._firings.append
        for i in range(len(nodes)):
            append(FiringRecord(
                node=nodes[i], index=indices[i], start=starts[i],
                end=ends[i], mode=modes[i],
                consumed=consumed[i] if consumed is not None else None,
                produced=produced[i] if produced is not None else None,
            ))

    def _extend_from_columns(self, nodes, indices, starts, ends, modes,
                             consumed=None, produced=None) -> None:
        """Append a batch of firings in columnar form (arrays plane).

        Record construction is deferred until ``firings`` is read; if
        records were already materialized (or engine-appended), the
        batch is converted eagerly so the list stays complete.
        """
        if not nodes:
            return
        if self._columns is None and not self._firings:
            self._columns = (list(nodes), list(indices), list(starts),
                             list(ends), list(modes),
                             list(consumed) if consumed is not None else None,
                             list(produced) if produced is not None else None)
            return
        if self._columns is not None:
            cols = self._columns
            cols[0].extend(nodes)
            cols[1].extend(indices)
            cols[2].extend(starts)
            cols[3].extend(ends)
            cols[4].extend(modes)
            if cols[5] is not None and consumed is not None:
                cols[5].extend(consumed)
            if cols[6] is not None and produced is not None:
                cols[6].extend(produced)
            return
        append = self._firings.append
        for i in range(len(nodes)):
            append(FiringRecord(
                node=nodes[i], index=indices[i], start=starts[i],
                end=ends[i], mode=modes[i],
                consumed=consumed[i] if consumed is not None else None,
                produced=produced[i] if produced is not None else None,
            ))

    def __reduce__(self):
        # Pickle the materialized form (the service ships traces
        # across the worker pipe).
        return (Trace, (self.firings, self.discards, self.peaks))

    def __repr__(self) -> str:
        pending = len(self._columns[0]) if self._columns is not None else 0
        return (f"Trace(firings={len(self._firings) + pending}, "
                f"discards={len(self.discards)}, "
                f"channels={len(self.peaks)})")

    def fingerprint(self) -> str:
        """Deterministic digest of the whole trace — firing order,
        exact event times, modes, discards, and channel peaks.

        Two simulator runs are bit-for-bit equivalent iff their
        fingerprints match; the event-loop differential suite uses
        this to pin the dependency-driven ready check against the
        legacy full-rescan reference."""
        import hashlib

        digest = hashlib.sha256()
        for record in self._firings:
            digest.update(
                f"F|{record.node}|{record.index}|{record.start!r}|"
                f"{record.end!r}|{record.mode!r}\n".encode()
            )
        if self._columns is not None:
            nodes, indices, starts, ends, modes = self._columns[:5]
            for i in range(len(nodes)):
                digest.update(
                    f"F|{nodes[i]}|{indices[i]}|{starts[i]!r}|"
                    f"{ends[i]!r}|{modes[i]!r}\n".encode()
                )
        for discard in self.discards:
            digest.update(
                f"D|{discard.channel}|{discard.port}|{discard.node}|"
                f"{discard.count}|{discard.time!r}\n".encode()
            )
        for channel, peak in self.peaks.items():
            digest.update(f"P|{channel}|{peak}\n".encode())
        return digest.hexdigest()

    def firings_of(self, node: str) -> list[FiringRecord]:
        return [record for record in self.firings if record.node == node]

    def count(self, node: str) -> int:
        return sum(1 for record in self.firings if record.node == node)

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for record in self.firings:
            out[record.node] = out.get(record.node, 0) + 1
        return out

    def end_time(self) -> float:
        return max((record.end for record in self.firings), default=0.0)

    def total_buffer(self) -> int:
        return sum(self.peaks.values())

    def discarded_tokens(self) -> int:
        return sum(record.count for record in self.discards)

    def produced_values(self, node: str, port: str) -> list[Any]:
        """All values a node emitted on one port, in order (requires the
        simulator to run with ``record_values=True``)."""
        values: list[Any] = []
        for record in self.firings_of(node):
            if record.produced and port in record.produced:
                values.extend(record.produced[port])
        return values

    def busy_time(self, node: str) -> float:
        """Total time the node spent executing."""
        return sum(r.end - r.start for r in self.firings_of(node))

    def utilization(self) -> dict[str, float]:
        """Per-node busy fraction of the trace's time span."""
        horizon = self.end_time()
        if horizon <= 0.0:
            return {}
        return {
            node: self.busy_time(node) / horizon
            for node in sorted({r.node for r in self.firings})
        }

    def gantt(self, width: int = 72) -> str:
        """ASCII timeline, one row per node."""
        if not self.firings:
            return "(no firings)"
        horizon = self.end_time() or 1.0
        scale = width / horizon
        nodes = sorted({record.node for record in self.firings})
        lines = []
        for node in nodes:
            row = [" "] * (width + 1)
            for record in self.firings_of(node):
                lo = int(record.start * scale)
                hi = max(lo + 1, int(record.end * scale))
                for pos in range(lo, min(hi, width)):
                    row[pos] = "#" if row[pos] == " " else "%"
            lines.append(f"{node:>12} |{''.join(row).rstrip()}")
        return "\n".join(lines)
