"""Discrete-event simulation: the runtime semantics of TPDF.

:class:`Simulator` executes a :class:`~repro.tpdf.graph.TPDFGraph`
with real data values, model time, control tokens, clocks, and
deadline-driven transactions; :class:`Trace` collects firings, buffer
peaks and discarded tokens.
"""

from .engine import Simulator
from .trace import (INITIAL_TOKEN, DiscardRecord, FiringRecord, InitialToken,
                    Trace)

__all__ = ["Simulator", "Trace", "FiringRecord", "DiscardRecord",
           "InitialToken", "INITIAL_TOKEN"]
