"""Schedule-plane / value-plane split of the TPDF simulator.

The :class:`~repro.sim.engine.Simulator`'s reference and wakeup loops
carry *everything* per firing through Python dicts and deques: channel
states, per-port rate lookups, consumed-value lists, record objects.
For timing-dominated workloads almost none of that is needed — the
schedule only depends on token *counts*, rates, and execution times,
exactly the flat data :class:`repro.csdf.statearrays.ArrayState`
already memoizes for the CSDF executor.

This module runs the simulator on that template, split in two planes:

**Schedule plane** — slot-indexed integer state (token counts, discard
debts, capacities, reservations) over the memoized
:func:`~repro.csdf.statearrays.sim_array_state` template, driven by
the same :class:`~repro.csdf.eventloop.ReadyWorklist` wakeup
discipline as the Python engine and the calendar-queue/heap event core
of the CSDF arrays backend.  The TPDF-only mechanics the CSDF executor
lacks live here: control-token mode selection gating per-firing port
sets, highest-priority candidate choice over pre-sorted
``(priority, port)`` tables, discard-debt flushing, clock-actor
autonomous ticks, and control actors outside the worker-core budget.

**Value plane** — per-channel payload deques, allocated **only** for
channels where some endpoint actually touches token values: the
consumer declares a ``function``/``time_fn``/builtin or is a control
actor with a decision function, the producer computes values, the
channel carries control tokens, or the run records values.  Channels
between pure-timing kernels never materialize payload storage — their
tokens exist only as schedule-plane counters — and a whole graph with
no value-touching endpoint degenerates to a counters-only loop on the
flat template (the CSDF arrays kernel with the simulator's
limits/horizon semantics on top).

Bit-for-bit contract
--------------------
Identical traces to ``ready_core="reference"``/``"wakeup"``: firing
records (times, modes), discard records, channel peaks, deadlock
blocked sets, and even ``ready_stats["visits"]`` — candidates are
seeded at exactly the moments the wakeup invariant re-examines them,
in the same scan order, with the same park-on-core-exhaustion
behaviour.  Firing records are handed to the trace in *columnar* form
(:meth:`repro.sim.trace.Trace._extend_from_columns`) and materialized
lazily; ``Trace.fingerprint()`` digests the columns directly.
``tests/sim/test_eventloop_differential.py`` pins all three cores
against each other over the differential corpus × core budgets ×
capacity constraints.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from math import inf

from ..csdf.calqueue import CalendarQueue
from ..csdf.eventloop import ReadyWorklist
from ..csdf.statearrays import _CALENDAR_ACTORS, sim_array_state
from ..errors import SimulationError
from ..tpdf.builtins import ClockActor
from ..tpdf.kernel import ControlActor
from ..tpdf.modes import ControlToken, Mode, highest_priority
from .trace import INITIAL_TOKEN, DiscardRecord

#: Event kinds (payload is ``(kind, pos)``; clock ticks re-read state).
_KERNEL_DONE, _CONTROL_DONE, _TICK = 0, 1, 2

_WAIT_ALL_TOKEN = ControlToken(Mode.WAIT_ALL)


def _make_queue(values) -> deque:
    """Value-plane payload deque factory.

    A module-level hook so tests can spy on exactly how many channels
    materialize payload storage (the lazy-value-plane contract).
    """
    return deque(values)


def _touches_values(node) -> bool:
    """Does this node *consume or produce* real token payloads?

    Pure-timing endpoints (no function, no builtin behaviour, no
    data-dependent ``time_fn``, control actors without a decision
    function) schedule on counters alone.
    """
    from .engine import _builtin_function

    if isinstance(node, ControlActor):
        return node.decision is not None
    return (
        node.function is not None
        or _builtin_function(node) is not None
        or callable(node.meta.get("time_fn"))
    )


class SimPlane:
    """Array-backed execution state for one :class:`Simulator`.

    Built lazily on the first ``run()`` (kernel ``function``/``meta``
    hooks may be attached after construction); persists across ``run``
    calls like the Python engine's channel states.
    """

    def __init__(self, sim):
        graph = sim.graph
        self.sim = sim
        self.record_values = sim.record_values
        bindings = sim.bindings or None

        state = sim_array_state(graph.as_csdf(), bindings, sim._order)
        self.template = state
        order = state.order
        n = state.n
        nchan = state.nchan
        pos_of = {name: i for i, name in enumerate(order)}
        assert order == sim._order

        # -- schedule plane: slot-indexed channel state -------------------
        self.chan_names = list(state.channel_names)
        self.slot_of = {name: s for s, name in enumerate(self.chan_names)}
        self.tokens = [int(t) for t in state.tokens0]
        self.init_left = list(self.tokens)
        self.debts = [0] * nchan
        self.reserved = [0] * nchan
        self.peaks = list(self.tokens)
        self.caps: list[int | None] = [None] * nchan
        for name, cap in sim._capacities.items():
            self.caps[self.slot_of[name]] = int(cap)
        self.any_capacity = sim._any_capacity
        self.chan_src_pos = [int(p) for p in state.chan_src]
        self.chan_dst_pos = [int(p) for p in state.chan_dst]

        channels = list(graph.channels.values())
        self.chan_dst_port = [c.dst_port for c in channels]
        self.cons_ph = [
            tuple(int(r) for r in
                  state.cons_flat[state.cons_base[s]:
                                  state.cons_base[s] + state.cons_len[s]])
            for s in range(nchan)
        ]
        self.prod_ph = [
            tuple(int(r) for r in
                  state.prod_flat[state.prod_base[s]:
                                  state.prod_base[s] + state.prod_len[s]])
            for s in range(nchan)
        ]

        # -- per-node tables (mirrors of the engine's _in/_out dicts,
        #    including their port-keyed overwrite semantics) --------------
        in_map: list[dict[str, int]] = [{} for _ in range(n)]
        out_map: list[dict[str, int]] = [{} for _ in range(n)]
        for s, channel in enumerate(channels):
            in_map[pos_of[channel.dst]][channel.dst_port] = s
            out_map[pos_of[channel.src]][channel.src_port] = s
        self.in_ports = [tuple(m.items()) for m in in_map]
        self.out_ports = [tuple(m.items()) for m in out_map]

        nodes = sim._nodes
        self.nodes = nodes
        self.names = order
        self.is_ctrl = bytearray(n)
        self.is_clock = bytearray(n)
        self.ctrl_slot = [-1] * n
        self.hp_order: list[tuple] = [()] * n
        self.data_in: list[tuple] = [()] * n
        self.mode_over: list[dict | None] = [None] * n
        self.discard_late = bytearray(n)
        self.functions = [None] * n
        self.time_fns = [None] * n
        self.decisions = [None] * n
        self.collects = bytearray(n)
        self.exec_const = list(state.exec_const)
        self.exec_phases = list(state.exec_phases)
        self.clock_period = [0.0] * n

        from .engine import _builtin_function

        for pos, node in enumerate(nodes):
            if isinstance(node, ControlActor):
                self.is_ctrl[pos] = 1
                self.decisions[pos] = node.decision
                self.collects[pos] = (
                    node.decision is not None or self.record_values
                )
                if isinstance(node, ClockActor):
                    self.is_clock[pos] = 1
                    self.clock_period[pos] = node.period
                continue
            kernel = node
            cp = kernel.control_port()
            cslot = -1
            if cp is not None:
                cslot = in_map[pos].get(cp.name, -1)
            self.ctrl_slot[pos] = cslot
            data = tuple(
                (port, s) for port, s in self.in_ports[pos] if s != cslot
            )
            self.data_in[pos] = data
            self.hp_order[pos] = tuple(sorted(
                data, key=lambda ps: (kernel.port(ps[0]).priority, ps[0]),
                reverse=True,
            ))
            if kernel._mode_rates:
                self.mode_over[pos] = {
                    mode: {port: rs.as_ints(sim.bindings)
                           for port, rs in table.items()}
                    for mode, table in kernel._mode_rates.items()
                }
            self.discard_late[pos] = bool(kernel.meta.get("discard_late", True))
            self.functions[pos] = kernel.function or _builtin_function(kernel)
            time_fn = kernel.meta.get("time_fn")
            if callable(time_fn):
                self.time_fns[pos] = time_fn
            self.collects[pos] = (
                self.functions[pos] is not None
                or self.time_fns[pos] is not None
                or self.record_values
            )

        # -- value plane: payload deques only where values matter ---------
        self.queues: list[deque | None] = [None] * nchan
        for s, channel in enumerate(channels):
            src = nodes[self.chan_src_pos[s]]
            dst = nodes[self.chan_dst_pos[s]]
            if (self.record_values or channel.is_control
                    or _touches_values(dst) or _touches_values(src)):
                self.queues[s] = _make_queue(
                    INITIAL_TOKEN for _ in range(self.tokens[s])
                )

        self.clocks = [
            (pos_of[name], graph.node(name)) for name in graph.controls
            if isinstance(graph.node(name), ClockActor)
        ]

        # -- whole-graph fast path: counters only, plain WAIT_ALL ---------
        self.fast_ok = (
            not any(self.is_ctrl)
            and all(q is None for q in self.queues)
            and all(fn is None for fn in self.functions)
            and all(fn is None for fn in self.time_fns)
            and not any(self.mode_over)
            and all(self.ctrl_slot[pos] == -1 for pos in range(n))
            and not self.record_values
        )

        # -- event core + wakeup state ------------------------------------
        self.n = n
        self.nchan = nchan
        self.worklist = ReadyWorklist(n)
        self.busy = bytearray(n)
        self.fired = [0] * n
        self.running = 0
        self.core_blocked: list[int] = []
        self.core_blocked_flag = bytearray(n)
        self.limit = [inf] * n
        self.now = 0.0
        self.use_cal = n >= _CALENDAR_ACTORS
        self.events = CalendarQueue() if self.use_cal else []
        self.seq = 0
        self.pending = 0

        # in-flight firing context, one per position
        self.ev_start = [0.0] * n
        self.ev_token: list[ControlToken | None] = [None] * n
        self.ev_consumed: list[dict | None] = [None] * n
        self.ev_reserve: list[tuple | None] = [None] * n

        # deferred firing-record columns (synced into the trace per run)
        self.col_node: list[str] = []
        self.col_index: list[int] = []
        self.col_start: list[float] = []
        self.col_end: list[float] = []
        self.col_mode: list[ControlToken | None] = []
        self.col_consumed: list[dict | None] = []
        self.col_produced: list[dict | None] = []

    # -- event queue -------------------------------------------------------
    def _push(self, time: float, kind: int, pos: int) -> None:
        if self.use_cal:
            self.events.push(time, (kind, pos))
        else:
            self.seq += 1
            heappush(self.events, (time, self.seq, kind, pos))
        self.pending += 1

    # -- rate lookups (the engine's _rate / _kernel_rate) -------------------
    def _rate_in(self, pos: int, port: str, slot: int, n: int,
                 mode: Mode | None) -> int:
        if mode is not None:
            over = self.mode_over[pos]
            if over is not None:
                table = over.get(mode)
                if table is not None:
                    phases = table.get(port)
                    if phases is not None:
                        return phases[n % len(phases)]
        phases = self.cons_ph[slot]
        return phases[n % len(phases)]

    def _rate_out(self, pos: int, port: str, slot: int, n: int,
                  mode: Mode | None) -> int:
        if mode is not None:
            over = self.mode_over[pos]
            if over is not None:
                table = over.get(mode)
                if table is not None:
                    phases = table.get(port)
                    if phases is not None:
                        return phases[n % len(phases)]
        phases = self.prod_ph[slot]
        return phases[n % len(phases)]

    # -- deposit / flush (discard-debt settlement on counters) -------------
    def _deposit_counts(self, slot: int, count: int) -> None:
        debt = self.debts[slot]
        if debt:
            settle = count if debt >= count else debt
            self.debts[slot] = debt - settle
            count -= settle
        if count:
            occupancy = self.tokens[slot] + count
            self.tokens[slot] = occupancy
            if occupancy > self.peaks[slot]:
                self.peaks[slot] = occupancy
        self.worklist.seed(self.chan_dst_pos[slot])

    def _deposit_values(self, slot: int, values: list) -> None:
        debt = self.debts[slot]
        if debt:
            settle = len(values) if debt >= len(values) else debt
            self.debts[slot] = debt - settle
            values = values[settle:]
        if values:
            queue = self.queues[slot]
            if queue is not None:
                queue.extend(values)
            occupancy = self.tokens[slot] + len(values)
            self.tokens[slot] = occupancy
            if occupancy > self.peaks[slot]:
                self.peaks[slot] = occupancy
        self.worklist.seed(self.chan_dst_pos[slot])

    def _consume(self, slot: int, count: int) -> None:
        """Remove ``count`` tokens from a slot (readiness guaranteed)."""
        self.tokens[slot] -= count
        left = self.init_left[slot]
        if left:
            self.init_left[slot] = left - count if left > count else 0
        if count and self.caps[slot] is not None:
            self.worklist.seed(self.chan_src_pos[slot])

    def _flush(self, slot: int, count: int, pos: int, port: str,
               late_debt: bool) -> None:
        if count <= 0:
            return
        tokens = self.tokens[slot]
        available = count if tokens >= count else tokens
        if available:
            self.tokens[slot] = tokens - available
            left = self.init_left[slot]
            if left:
                self.init_left[slot] = (
                    left - available if left > available else 0
                )
            queue = self.queues[slot]
            if queue is not None:
                for _ in range(available):
                    queue.popleft()
            if self.caps[slot] is not None:
                self.worklist.seed(self.chan_src_pos[slot])
        flushed = available
        if late_debt:
            self.debts[slot] += count - available
            flushed = count
        if flushed:
            self.sim.trace.discards.append(DiscardRecord(
                channel=self.chan_names[slot], port=port,
                node=self.names[pos], count=flushed, time=self.now,
            ))

    # -- firing rules -------------------------------------------------------
    def _reserve_plan(self, pos: int, n: int, mode: Mode | None,
                      token: ControlToken | None) -> tuple:
        out_ports = self.out_ports[pos]
        plan = tuple(
            (port, slot, self._rate_out(pos, port, slot, n, mode))
            for port, slot in out_ports
        )
        if token is None or not token.selection:
            return plan
        named = set(token.selection)
        if not named & {port for port, _ in out_ports}:
            return plan
        return tuple(item for item in plan if token.selects(item[0]))

    def _capacity_blocked(self, pos: int, n: int, mode: Mode | None,
                          reserve: tuple, consume) -> bool:
        caps = self.caps
        for port, slot, rate in reserve:
            cap = caps[slot]
            if cap is None:
                continue
            credit = 0
            if self.chan_dst_pos[slot] == pos:
                dst_port = self.chan_dst_port[slot]
                for cport, _ in consume:
                    if cport == dst_port:
                        credit = self._rate_in(pos, dst_port, slot, n, mode)
                        break
            if self.tokens[slot] - credit + self.reserved[slot] + rate > cap:
                return True
        return False

    def _kernel_plan(self, pos: int):
        """``(token_or_None, ports_to_consume)`` if fireable, else None."""
        n = self.fired[pos]
        tokens = self.tokens
        cslot = self.ctrl_slot[pos]
        token: ControlToken | None = None
        needs_control = False
        if cslot >= 0:
            phases = self.cons_ph[cslot]
            control_rate = phases[n % len(phases)]
            if control_rate > 1:
                kernel = self.nodes[pos]
                raise SimulationError(
                    f"kernel {self.names[pos]!r} control port "
                    f"{kernel.control_port().name!r} has rate "
                    f"{control_rate} at firing {n}; only rates 0 "
                    f"(inactive phase) and 1 are supported"
                )
            needs_control = control_rate == 1
            if needs_control:
                if not tokens[cslot]:
                    return None
                head = self.queues[cslot][0]
                token = (head if isinstance(head, ControlToken)
                         else _WAIT_ALL_TOKEN)
        mode = token.mode if token is not None else Mode.WAIT_ALL

        data_ports = self.data_in[pos]
        if mode is Mode.WAIT_ALL:
            for port, slot in data_ports:
                if tokens[slot] < self._rate_in(pos, port, slot, n, mode):
                    return None
            consume = data_ports
        elif mode is Mode.SELECT_ONE or mode is Mode.SELECT_MANY:
            if token.selection and not (
                set(token.selection) & {port for port, _ in data_ports}
            ):
                consume = data_ports
            else:
                consume = tuple(
                    (port, slot) for port, slot in data_ports
                    if token.selects(port)
                )
            for port, slot in consume:
                if tokens[slot] < self._rate_in(pos, port, slot, n, mode):
                    return None
        else:  # HIGHEST_PRIORITY
            consume = None
            for port, slot in self.hp_order[pos]:
                rate = self._rate_in(pos, port, slot, n, mode)
                if rate > 0 and tokens[slot] >= rate:
                    consume = ((port, slot),)
                    break
            if consume is None:
                return None  # sleep until an input arrives
        if self.any_capacity and self._capacity_blocked(
            pos, n, mode, self._reserve_plan(pos, n, mode, token), consume,
        ):
            return None
        return token if needs_control else None, consume

    def _control_ready(self, pos: int) -> bool:
        if self.is_clock[pos]:
            return False  # time-triggered, never data-ready
        n = self.fired[pos]
        tokens = self.tokens
        for port, slot in self.in_ports[pos]:
            phases = self.cons_ph[slot]
            if tokens[slot] < phases[n % len(phases)]:
                return False
        if self.any_capacity:
            for port, slot in self.out_ports[pos]:
                cap = self.caps[slot]
                if cap is None:
                    continue
                credit = 0
                if self.chan_dst_pos[slot] == pos:
                    cphases = self.cons_ph[slot]
                    credit = cphases[n % len(cphases)]
                phases = self.prod_ph[slot]
                rate = phases[n % len(phases)]
                if tokens[slot] - credit + self.reserved[slot] + rate > cap:
                    return False
        return True

    # -- starting firings ---------------------------------------------------
    def _start_ready(self) -> None:
        worklist = self.worklist
        busy = self.busy
        fired = self.fired
        limit = self.limit
        is_ctrl = self.is_ctrl
        cores = self.sim.cores
        visits = 0
        while worklist.begin_scan():
            progress = False
            pos = worklist.pop()
            while pos >= 0:
                visits += 1
                if busy[pos] or fired[pos] >= limit[pos]:
                    pos = worklist.pop()
                    continue
                if is_ctrl[pos]:
                    if self._control_ready(pos):
                        self._begin_control(pos)
                        progress = True
                elif cores is not None and self.running >= cores:
                    if not self.core_blocked_flag[pos]:
                        self.core_blocked_flag[pos] = 1
                        self.core_blocked.append(pos)
                else:
                    plan = self._kernel_plan(pos)
                    if plan is not None:
                        self._begin_kernel(pos, plan[0], plan[1])
                        progress = True
                pos = worklist.pop()
            worklist.end_scan()
            if not progress:
                break
        self.sim.ready_stats["visits"] += visits

    def _begin_control(self, pos: int) -> None:
        n = self.fired[pos]
        collect = self.collects[pos]
        consumed: dict | None = {} if collect else None
        for port, slot in self.in_ports[pos]:
            phases = self.cons_ph[slot]
            rate = phases[n % len(phases)]
            queue = self.queues[slot]
            if queue is not None:
                values = [queue.popleft() for _ in range(rate)]
                if collect:
                    consumed[port] = values
            elif collect:
                consumed[port] = [None] * rate
            self._consume(slot, rate)
        reserve: tuple | None = None
        if self.any_capacity:
            reserve = tuple(
                (port, slot,
                 self.prod_ph[slot][n % len(self.prod_ph[slot])])
                for port, slot in self.out_ports[pos]
            )
            for _, slot, rate in reserve:
                self.reserved[slot] += rate
        const = self.exec_const[pos]
        if const is None:
            phases = self.exec_phases[pos]
            const = phases[n % len(phases)]
        self.busy[pos] = 1
        self.ev_start[pos] = self.now
        self.ev_consumed[pos] = consumed
        self.ev_reserve[pos] = reserve
        self._push(self.now + const, _CONTROL_DONE, pos)

    def _begin_kernel(self, pos: int, token: ControlToken | None,
                      consume) -> None:
        n = self.fired[pos]
        mode = token.mode if token is not None else None
        collect = self.collects[pos]
        consumed: dict | None = {} if collect else None
        if token is not None:
            cslot = self.ctrl_slot[pos]
            self.queues[cslot].popleft()
            self._consume(cslot, 1)
        for port, slot in consume:
            rate = self._rate_in(pos, port, slot, n, mode)
            queue = self.queues[slot]
            if queue is not None:
                values = [queue.popleft() for _ in range(rate)]
                if collect:
                    consumed[port] = values
            elif collect:
                consumed[port] = [None] * rate
            self._consume(slot, rate)
        # Rejected ports: flush this firing's worth of tokens.
        cslot = self.ctrl_slot[pos]
        late_debt = bool(self.discard_late[pos])
        if len(consume) != len(self.data_in[pos]):
            taken = {port for port, _ in consume}
            for port, slot in self.data_in[pos]:
                if port in taken:
                    continue
                self._flush(slot, self._rate_in(pos, port, slot, n, mode),
                            pos, port, late_debt)

        reserve: tuple | None = None
        if self.any_capacity:
            reserve = self._reserve_plan(pos, n, mode, token)
            for _, slot, rate in reserve:
                self.reserved[slot] += rate

        time_fn = self.time_fns[pos]
        if time_fn is not None:
            duration = float(time_fn(n, consumed))
        else:
            duration = self.exec_const[pos]
            if duration is None:
                phases = self.exec_phases[pos]
                duration = phases[n % len(phases)]
        self.busy[pos] = 1
        self.running += 1
        self.ev_start[pos] = self.now
        self.ev_token[pos] = token
        self.ev_consumed[pos] = consumed
        self.ev_reserve[pos] = reserve
        self._push(self.now + duration, _KERNEL_DONE, pos)

    # -- completing firings -------------------------------------------------
    def _record(self, pos: int, n: int, start: float,
                token: ControlToken | None, consumed, produced) -> None:
        self.col_node.append(self.names[pos])
        self.col_index.append(n)
        self.col_start.append(start)
        self.col_end.append(self.now)
        self.col_mode.append(token)
        if self.record_values:
            self.col_consumed.append(consumed)
            self.col_produced.append(produced)

    def _complete_control(self, pos: int) -> None:
        n = self.fired[pos]
        start = self.ev_start[pos]
        consumed = self.ev_consumed[pos]
        reserve = self.ev_reserve[pos]
        self.ev_consumed[pos] = None
        self.ev_reserve[pos] = None
        actor = self.nodes[pos]
        if consumed:
            flat_inputs = [v for values in consumed.values() for v in values]
        else:
            flat_inputs = []
        token = actor.decide(n, flat_inputs)
        if reserve is not None:
            for _, slot, rate in reserve:
                self.reserved[slot] -= rate
        produced: dict | None = {} if self.record_values else None
        for port, slot in self.out_ports[pos]:
            phases = self.prod_ph[slot]
            rate = phases[n % len(phases)]
            values = [token] * rate
            if produced is not None:
                produced[port] = values
            self._deposit_values(slot, values)
        self.busy[pos] = 0
        self.fired[pos] = n + 1
        self.worklist.seed(pos)
        self._record(pos, n, start, token, consumed, produced)

    def _complete_kernel(self, pos: int) -> None:
        n = self.fired[pos]
        start = self.ev_start[pos]
        token = self.ev_token[pos]
        consumed = self.ev_consumed[pos]
        reserve = self.ev_reserve[pos]
        self.ev_token[pos] = None
        self.ev_consumed[pos] = None
        self.ev_reserve[pos] = None
        function = self.functions[pos]
        mode = token.mode if token is not None else None
        if function is None and not self.record_values:
            # Pure-timing fast path: deposits are counter bumps (value
            # channels still receive ``None`` payloads, matching the
            # reference); the enabled-port rule gates selected outputs.
            if reserve is not None:
                for _, slot, rate in reserve:
                    self.reserved[slot] -= rate
            enabled = self._enabled_plan(pos, n, mode, token)
            queues = self.queues
            for port, slot, rate, on in enabled:
                give = rate if on else 0
                if queues[slot] is None:
                    self._deposit_counts(slot, give)
                else:
                    self._deposit_values(slot, [None] * give)
            produced = None
        else:
            outputs = self._apply_function(pos, n, token, consumed)
            if reserve is not None:
                for _, slot, rate in reserve:
                    self.reserved[slot] -= rate
            for port, slot in self.out_ports[pos]:
                self._deposit_values(slot, outputs[port])
            produced = outputs
        self.busy[pos] = 0
        self.fired[pos] = n + 1
        self.running -= 1
        worklist = self.worklist
        worklist.seed(pos)
        if self.core_blocked:
            for blocked in self.core_blocked:
                self.core_blocked_flag[blocked] = 0
                worklist.seed(blocked)
            self.core_blocked.clear()
        self._record(pos, n, start, token, consumed, produced)

    def _enabled_plan(self, pos: int, n: int, mode: Mode | None,
                      token: ControlToken | None) -> list:
        """Per-output ``(port, slot, rate, enabled)`` — the enabled-port
        rule of the engine's ``_apply_function`` without values."""
        out_ports = self.out_ports[pos]
        plan = [
            (port, slot, self._rate_out(pos, port, slot, n, mode), True)
            for port, slot in out_ports
        ]
        if token is None or not token.selection:
            return plan
        if not set(token.selection) & {port for port, _ in out_ports}:
            return plan
        return [
            (port, slot, rate, token.selects(port))
            for port, slot, rate, _ in plan
        ]

    def _apply_function(self, pos: int, n: int, token: ControlToken | None,
                        consumed) -> dict:
        """Run the kernel's function and shape its outputs per port
        (exact mirror of ``Simulator._apply_function``)."""
        name = self.names[pos]
        mode = token.mode if token is not None else None
        out_rates = {
            port: self._rate_out(pos, port, slot, n, mode)
            for port, slot in self.out_ports[pos]
        }
        if (
            token is None
            or not token.selection
            or not set(token.selection) & set(out_rates)
        ):
            enabled = dict(out_rates)
        else:
            enabled = {
                port: rate for port, rate in out_rates.items()
                if token.selects(port)
            }
        function = self.functions[pos]
        if function is None:
            result = None
        else:
            result = function(n, consumed)

        outputs: dict[str, list] = {}
        if isinstance(result, dict):
            for port, rate in out_rates.items():
                if port not in enabled:
                    outputs[port] = []
                    continue
                values = result.get(port)
                if values is None:
                    values = [None] * rate
                if len(values) != rate:
                    raise SimulationError(
                        f"kernel {name!r} produced {len(values)} values on "
                        f"{port!r} but the rate of firing {n} is {rate}"
                    )
                outputs[port] = list(values)
        elif isinstance(result, list):
            if len(enabled) != 1:
                raise SimulationError(
                    f"kernel {name!r} returned a list but has "
                    f"{len(enabled)} enabled output ports; return a dict"
                )
            (port, rate), = enabled.items()
            if len(result) != rate:
                raise SimulationError(
                    f"kernel {name!r} produced {len(result)} values on {port!r} "
                    f"but the rate of firing {n} is {rate}"
                )
            outputs = {p: [] for p in out_rates}
            outputs[port] = list(result)
        else:
            outputs = {
                port: ([result] * rate if port in enabled else [])
                for port, rate in out_rates.items()
            }
        return outputs

    # -- clocks -------------------------------------------------------------
    def _schedule_clock(self, pos: int, until: float) -> None:
        tick = self.now + self.clock_period[pos]
        if tick <= until:
            self._push(tick, _TICK, pos)

    def _complete_tick(self, pos: int, until: float) -> None:
        n = self.fired[pos]
        if n < self.limit[pos]:
            decision = self.decisions[pos]
            if decision is not None:
                token = decision(n, [])
            else:
                token = highest_priority(deadline=self.now)
            produced: dict | None = {} if self.record_values else None
            for port, slot in self.out_ports[pos]:
                phases = self.prod_ph[slot]
                rate = phases[n % len(phases)]
                values = [token] * rate
                if produced is not None:
                    produced[port] = values
                self._deposit_values(slot, values)
            self.fired[pos] = n + 1
            start = self.now
            self._record(pos, n, start, token, None, produced)
        self._schedule_clock(pos, until)

    # -- trace sync ---------------------------------------------------------
    def _sync(self) -> None:
        sim = self.sim
        sim.now = self.now
        if self.col_node:
            sim.trace._extend_from_columns(
                self.col_node, self.col_index, self.col_start,
                self.col_end, self.col_mode,
                self.col_consumed if self.record_values else None,
                self.col_produced if self.record_values else None,
            )
            del self.col_node[:]
            del self.col_index[:]
            del self.col_start[:]
            del self.col_end[:]
            del self.col_mode[:]
            del self.col_consumed[:]
            del self.col_produced[:]
        peaks = sim.trace.peaks
        chan_names = self.chan_names
        for slot, peak in enumerate(self.peaks):
            name = chan_names[slot]
            if peak > peaks[name]:
                peaks[name] = peak

    # -- public API for the Simulator ---------------------------------------
    def tokens_of(self, channel: str) -> int:
        return self.tokens[self.slot_of[channel]]

    def values_of(self, channel: str) -> list:
        slot = self.slot_of[channel]
        queue = self.queues[slot]
        if queue is not None:
            return list(queue)
        left = self.init_left[slot]
        return [INITIAL_TOKEN] * left + [None] * (self.tokens[slot] - left)

    def reserved_of(self, channel: str) -> int:
        return self.reserved[self.slot_of[channel]]

    # -- main loop ----------------------------------------------------------
    def run(self, until, limits, max_firings: int):
        sim = self.sim
        limit = self.limit
        for pos in range(self.n):
            limit[pos] = inf
        if limits:
            pos_of = sim._pos
            for name, cap in limits.items():
                pos = pos_of.get(name)
                if pos is not None:
                    limit[pos] = cap
        if self.clocks and until is None:
            raise SimulationError(
                "graphs with clock actors need a time horizon: run(until=...)"
            )
        horizon = until if until is not None else inf
        for pos, _ in self.clocks:
            self._schedule_clock(pos, horizon)

        self.worklist.seed_all(self.n)
        try:
            if self.fast_ok:
                self._drain_fast(horizon, max_firings)
            else:
                self._drain(horizon, max_firings)
        finally:
            self._sync()
        return sim.trace

    def _drain(self, horizon: float, max_firings: int) -> None:
        events = self.events
        use_cal = self.use_cal
        ready_stats = self.sim.ready_stats
        self._start_ready()
        fired_total = 0
        while self.pending:
            if use_cal:
                time, _, (kind, pos) = events.pop()
            else:
                time, _, kind, pos = heappop(events)
            self.pending -= 1
            if time > horizon:
                self.now = horizon
                break
            self.now = time
            ready_stats["events"] += 1
            if kind == _KERNEL_DONE:
                self._complete_kernel(pos)
            elif kind == _CONTROL_DONE:
                self._complete_control(pos)
            else:
                self._complete_tick(pos, horizon)
            fired_total += 1
            if fired_total > max_firings:
                raise SimulationError(
                    f"exceeded {max_firings} firings; add limits= or until= "
                    f"to bound the run"
                )
            self._start_ready()

    # -- counters-only fast path --------------------------------------------
    def _drain_fast(self, horizon: float, max_firings: int) -> None:
        """The no-value degenerate case: every firing is WAIT_ALL over
        plain counters — the CSDF arrays kernel's discipline with the
        simulator's limits/horizon semantics.  Bit-identical schedule
        to :meth:`_drain` (same worklist seeds, same event order); only
        the per-firing Python surface shrinks.
        """
        sim = self.sim
        events = self.events
        use_cal = self.use_cal
        worklist = self.worklist
        tokens = self.tokens
        reserved = self.reserved
        caps = self.caps
        peaks = self.peaks
        busy = self.busy
        fired = self.fired
        limit = self.limit
        init_left = self.init_left
        chan_src = self.chan_src_pos
        chan_dst = self.chan_dst_pos
        chan_dst_port = self.chan_dst_port
        cons_ph = self.cons_ph
        prod_ph = self.prod_ph
        in_ports = self.in_ports
        out_ports = self.out_ports
        exec_const = self.exec_const
        exec_phases = self.exec_phases
        any_capacity = self.any_capacity
        cores = self.sim.cores
        core_blocked = self.core_blocked
        core_blocked_flag = self.core_blocked_flag
        ready_stats = sim.ready_stats
        col_node = self.col_node
        col_index = self.col_index
        col_start = self.col_start
        col_end = self.col_end
        col_mode = self.col_mode
        names = self.names
        ev_start = self.ev_start
        ev_reserve = self.ev_reserve
        seed = worklist.seed
        push = self._push

        def start_ready() -> None:
            visits = 0
            while worklist.begin_scan():
                progress = False
                pos = worklist.pop()
                while pos >= 0:
                    visits += 1
                    if busy[pos] or fired[pos] >= limit[pos]:
                        pos = worklist.pop()
                        continue
                    if cores is not None and self.running >= cores:
                        if not core_blocked_flag[pos]:
                            core_blocked_flag[pos] = 1
                            core_blocked.append(pos)
                        pos = worklist.pop()
                        continue
                    n = fired[pos]
                    ready = True
                    for port, slot in in_ports[pos]:
                        phases = cons_ph[slot]
                        if tokens[slot] < phases[n % len(phases)]:
                            ready = False
                            break
                    if ready and any_capacity:
                        reserve = []
                        for port, slot in out_ports[pos]:
                            phases = prod_ph[slot]
                            rate = phases[n % len(phases)]
                            reserve.append((slot, rate))
                            cap = caps[slot]
                            if cap is None:
                                continue
                            credit = 0
                            if chan_dst[slot] == pos:
                                cphases = cons_ph[slot]
                                credit = cphases[n % len(cphases)]
                            if (tokens[slot] - credit + reserved[slot]
                                    + rate > cap):
                                ready = False
                                break
                    if ready:
                        # begin: consume, reserve, schedule completion
                        for port, slot in in_ports[pos]:
                            phases = cons_ph[slot]
                            rate = phases[n % len(phases)]
                            tokens[slot] -= rate
                            left = init_left[slot]
                            if left:
                                init_left[slot] = (
                                    left - rate if left > rate else 0
                                )
                            if rate and caps[slot] is not None:
                                seed(chan_src[slot])
                        if any_capacity:
                            for slot, rate in reserve:
                                reserved[slot] += rate
                            ev_reserve[pos] = reserve
                        duration = exec_const[pos]
                        if duration is None:
                            phases = exec_phases[pos]
                            duration = phases[n % len(phases)]
                        busy[pos] = 1
                        self.running += 1
                        ev_start[pos] = self.now
                        push(self.now + duration, _KERNEL_DONE, pos)
                        progress = True
                    pos = worklist.pop()
                worklist.end_scan()
                if not progress:
                    break
            ready_stats["visits"] += visits

        start_ready()
        fired_total = 0
        while self.pending:
            if use_cal:
                time, _, (_, pos) = events.pop()
            else:
                time, _, _, pos = heappop(events)
            self.pending -= 1
            if time > horizon:
                self.now = horizon
                break
            now = self.now = time
            ready_stats["events"] += 1
            n = fired[pos]
            if any_capacity:
                reserve = ev_reserve[pos]
                if reserve is not None:
                    for slot, rate in reserve:
                        reserved[slot] -= rate
                    ev_reserve[pos] = None
            for port, slot in out_ports[pos]:
                phases = prod_ph[slot]
                rate = phases[n % len(phases)]
                debt = self.debts[slot]
                if debt and rate:
                    settle = rate if debt >= rate else debt
                    self.debts[slot] = debt - settle
                    rate -= settle
                if rate:
                    occupancy = tokens[slot] + rate
                    tokens[slot] = occupancy
                    if occupancy > peaks[slot]:
                        peaks[slot] = occupancy
                seed(chan_dst[slot])
            busy[pos] = 0
            fired[pos] = n + 1
            self.running -= 1
            seed(pos)
            if core_blocked:
                for blocked in core_blocked:
                    core_blocked_flag[blocked] = 0
                    seed(blocked)
                del core_blocked[:]
            col_node.append(names[pos])
            col_index.append(n)
            col_start.append(ev_start[pos])
            col_end.append(now)
            col_mode.append(None)
            fired_total += 1
            if fired_total > max_firings:
                raise SimulationError(
                    f"exceeded {max_firings} firings; add limits= or until= "
                    f"to bound the run"
                )
            start_ready()
