"""Actor Dependence Function (ADF) pruning (Sec. III-D, second rule).

When a kernel fires in a mode that rejects some of its input ports,
the tokens on those ports are never used; the firings that exist
*solely* to produce them are unnecessary.  The scheduler "uses the
Actor Dependence Function which defines the dependency between actors'
executions to stop unnecessary firings".

We implement this as a backward slice over the canonical period: keep
every occurrence that some *needed* occurrence (transitively) depends
on, where the mode decisions cut the rejected data edges.  Occurrences
outside the slice are cancelled.  The ablation bench (ABL2) measures
executed-firing counts and makespan with and without pruning — this is
the mechanism behind the OFDM result (the rejected demapper branch is
simply never executed under TPDF, whereas CSDF must run it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import networkx as nx

from ..tpdf.graph import TPDFGraph
from ..tpdf.modes import ControlToken
from .canonical import CanonicalPeriod, Occurrence


@dataclass
class PruneResult:
    period: CanonicalPeriod
    kept: set[Occurrence]
    cancelled: set[Occurrence]

    @property
    def executed_firings(self) -> int:
        return len(self.kept)

    @property
    def cancelled_firings(self) -> int:
        return len(self.cancelled)


def rejected_channels(graph: TPDFGraph, decisions: Mapping[str, ControlToken]) -> set[str]:
    """Channels carrying only rejected tokens under the given decisions.

    ``decisions`` maps controlled kernel names to the control token
    governing the iteration (rate safety guarantees one decision per
    local iteration, so a single token per kernel is the right
    granularity).
    """
    rejected: set[str] = set()
    for kernel_name, token in decisions.items():
        kernel = graph.node(kernel_name)
        # A selection only constrains the port direction it names (a
        # select-duplicate token names outputs, a transaction token
        # names inputs) — same rule as the runtime engine.
        input_names = {p.name for p in kernel.data_inputs}
        output_names = {p.name for p in kernel.data_outputs}
        selection = set(token.selection)
        if selection & input_names:
            for channel in graph.in_channels(kernel_name):
                if not channel.is_control and not token.selects(channel.dst_port):
                    rejected.add(channel.name)
        if selection & output_names:
            for channel in graph.out_channels(kernel_name):
                if not token.selects(channel.src_port):
                    rejected.add(channel.name)
    return rejected


def prune_canonical_period(
    period: CanonicalPeriod,
    graph: TPDFGraph,
    decisions: Mapping[str, ControlToken],
    sinks: Iterable[str] | None = None,
) -> PruneResult:
    """Backward-slice the canonical period under mode decisions.

    ``sinks`` are the actors whose results the application observes
    (default: actors with no outgoing data channels).  An occurrence is
    *kept* iff a sink occurrence transitively depends on it through
    edges that are not rejected; control occurrences are always kept
    (they drive the reconfiguration itself).
    """
    dag = period.dag
    cut = rejected_channels(graph, decisions)
    sliced = nx.DiGraph()
    sliced.add_nodes_from(dag.nodes(data=True))
    for src, dst, data in dag.edges(data=True):
        if data.get("channel") in cut:
            continue
        sliced.add_edge(src, dst, **data)

    if sinks is None:
        sinks = [
            name
            for name in graph.node_names()
            if not any(not c.is_control for c in graph.out_channels(name))
        ]
    needed: set[Occurrence] = set()
    for sink in sinks:
        for occurrence in period.occurrences_of(sink):
            needed.add(occurrence)
            needed |= nx.ancestors(sliced, occurrence)
    for occurrence in period.occurrences():
        if period.is_control(occurrence):
            needed.add(occurrence)
            needed |= nx.ancestors(sliced, occurrence)
    cancelled = set(dag.nodes) - needed
    return PruneResult(period=period, kept=needed, cancelled=cancelled)


def pruned_period(result: PruneResult) -> CanonicalPeriod:
    """A canonical period containing only the kept occurrences (for
    scheduling what actually executes)."""
    sub = result.period.dag.subgraph(result.kept).copy()
    return CanonicalPeriod(
        dag=sub,
        repetition=dict(result.period.repetition),
        control_actors=result.period.control_actors,
    )
