"""Late schedules (Sec. III-C, final refinement; reference [8]).

A *late* schedule fires every actor as late as the data dependencies
allow within one iteration.  The paper uses late schedules to order
actors inside tight cycles — Fig. 4(b) is live only under interleaved
orders like ``(B C C B)`` that grouped scheduling misses.

Construction uses the classic time-reversal duality: reverse every
channel (swap and reverse the production/consumption sequences, keep
the initial tokens — iterations are state-neutral so the end-of-
iteration marking equals the initial one), compute an ASAP (eager)
schedule of the reversed graph, and reverse the firing order.  The
result is admissible on the original graph and fires each actor as
late as possible relative to the eager order.
"""

from __future__ import annotations

from typing import Mapping

from ..csdf.graph import CSDFGraph
from ..csdf.schedule import SequentialSchedule, find_sequential_schedule, validate_schedule


def reversed_graph(graph: CSDFGraph) -> CSDFGraph:
    """The time-reversed CSDF graph."""
    rev = CSDFGraph(f"{graph.name}/reversed")
    for actor in graph.actors.values():
        rev.add_actor(actor.name, exec_time=tuple(reversed(actor.exec_times)))
    for channel in graph.channels.values():
        rev.add_channel(
            channel.name,
            channel.dst,
            channel.src,
            production=list(reversed(channel.consumption.entries)),
            consumption=list(reversed(channel.production.entries)),
            initial_tokens=channel.initial_tokens,
        )
    return rev


def late_schedule(
    graph: CSDFGraph,
    bindings: Mapping | None = None,
    repetitions: Mapping[str, int] | None = None,
) -> SequentialSchedule:
    """An as-late-as-possible sequential schedule for one iteration.

    Raises :class:`~repro.errors.DeadlockError` when no schedule exists
    (the reversed graph deadlocks iff the original does, for
    state-neutral iterations).  The returned schedule is validated on
    the *original* graph before being returned.
    """
    rev = reversed_graph(graph)
    eager = find_sequential_schedule(
        rev,
        bindings=bindings,
        policy="round_robin",
        repetitions=dict(repetitions) if repetitions is not None else None,
    )
    late = SequentialSchedule(tuple(reversed(eager.firings)))
    validate_schedule(
        graph,
        late,
        bindings,
        require_iteration=repetitions is None,
    )
    return late
