"""List scheduling of a canonical period onto a many-core platform.

Implements the paper's scheduling heuristic (Sec. III-D):

* occurrences become ready when all their canonical-period
  predecessors have completed (plus message latency when the producer
  ran on a different PE);
* among ready occurrences, **control actors have the highest
  priority** — "if there are several kernels and a control actor
  available concurrently, the control actor is ensured to have a
  processing unit available before the others";
* remaining ties are broken by HLFET rank (longest path to a sink),
  the classic list-scheduling priority;
* kernels that received a control token are scheduled immediately
  after it (they inherit a readiness boost through the control edge);
* optionally, control actors are *pinned* to a dedicated PE, like
  ``C1`` in Fig. 5 ("mapped onto a separate processing element").

The control-priority rule is a design choice the paper calls out; the
``control_priority`` flag exists so the ablation bench (ABL1) can
measure it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Mapping

from ..errors import SchedulingError
from ..platform import Platform, ProcessingElement
from .canonical import CanonicalPeriod, Occurrence


@dataclass
class ScheduledFiring:
    occurrence: Occurrence
    pe: ProcessingElement
    start: float
    finish: float

    def __str__(self) -> str:
        actor, index = self.occurrence
        return f"{actor}{index}@{self.pe}: [{self.start}, {self.finish})"


@dataclass
class MappingResult:
    """A complete static mapping of one canonical period."""

    firings: dict[Occurrence, ScheduledFiring]
    makespan: float
    platform: Platform
    #: occurrences in dispatch order (deterministic)
    order: list[Occurrence] = field(default_factory=list)

    def pe_of(self, occurrence: Occurrence) -> ProcessingElement:
        return self.firings[occurrence].pe

    def utilization(self) -> float:
        """Busy time over (makespan * cores)."""
        busy = sum(f.finish - f.start for f in self.firings.values())
        denom = self.makespan * self.platform.n_cores
        return busy / denom if denom else 0.0

    def gantt(self, width: int = 64) -> str:
        """ASCII Gantt chart (one line per PE actually used)."""
        if not self.firings:
            return "(empty schedule)"
        scale = width / self.makespan if self.makespan else 1.0
        by_pe: dict[int, list[ScheduledFiring]] = {}
        for firing in self.firings.values():
            by_pe.setdefault(firing.pe.index, []).append(firing)
        lines = []
        for pe_index in sorted(by_pe):
            row = [" "] * (width + 1)
            for firing in sorted(by_pe[pe_index], key=lambda f: f.start):
                lo = int(firing.start * scale)
                hi = max(lo + 1, int(firing.finish * scale))
                actor, k = firing.occurrence
                label = f"{actor}{k}"
                for pos in range(lo, min(hi, width)):
                    offset = pos - lo
                    row[pos] = label[offset] if offset < len(label) else "="
            lines.append(f"PE{pe_index:>3} |{''.join(row).rstrip()}")
        return "\n".join(lines)


def list_schedule(
    period: CanonicalPeriod,
    platform: Platform,
    control_priority: bool = True,
    dedicated_control_pe: bool = True,
) -> MappingResult:
    """HLFET list scheduling with the paper's control-actor rules.

    Parameters
    ----------
    period, platform:
        The occurrence DAG and the machine.
    control_priority:
        Apply the highest-priority rule for control actors (ABL1 knob).
    dedicated_control_pe:
        Reserve the last PE for control occurrences (Fig. 5: "C1 is
        mapped onto a separate processing element").  Ignored on
        single-core platforms.
    """
    dag = period.dag
    rank = period.downward_rank()
    indegree = {node: dag.in_degree(node) for node in dag.nodes}
    #: time each PE becomes free
    pe_free = {pe: 0.0 for pe in platform.pes}
    #: per-dependency data-ready times of a node (max over predecessors)
    ready_time: dict[Occurrence, float] = {
        node: 0.0 for node in dag.nodes if indegree[node] == 0
    }
    finished: dict[Occurrence, ScheduledFiring] = {}
    order: list[Occurrence] = []

    control_pe = platform.pes[-1] if (
        dedicated_control_pe and platform.n_cores > 1
    ) else None
    worker_pes = [
        pe for pe in platform.pes if control_pe is None or pe != control_pe
    ]
    if not worker_pes:
        raise SchedulingError("platform has no worker PEs left for kernels")

    def priority_key(node: Occurrence):
        is_control = period.is_control(node)
        control_rank = 0 if (control_priority and is_control) else 1
        return (control_rank, -rank[node], node)

    ready: list[tuple, ] = []
    seq = 0
    for node in ready_time:
        heapq.heappush(ready, (priority_key(node), seq, node))
        seq += 1

    while ready:
        _, _, node = heapq.heappop(ready)
        is_control = period.is_control(node)
        candidates = [control_pe] if (is_control and control_pe is not None) else worker_pes

        # Earliest-finish PE selection honouring message latencies from
        # the predecessors' PEs.
        best_pe = None
        best_start = None
        for pe in candidates:
            arrival = 0.0
            for pred in dag.predecessors(node):
                firing = finished[pred]
                latency = platform.message_latency(firing.pe, pe)
                arrival = max(arrival, firing.finish + latency)
            start = max(arrival, pe_free[pe])
            if best_start is None or start < best_start:
                best_pe, best_start = pe, start
        assert best_pe is not None and best_start is not None
        duration = period.exec_time(node)
        firing = ScheduledFiring(node, best_pe, best_start, best_start + duration)
        finished[node] = firing
        order.append(node)
        pe_free[best_pe] = firing.finish

        for succ in dag.successors(node):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(ready, (priority_key(succ), seq, succ))
                seq += 1

    if len(finished) != dag.number_of_nodes():
        missing = set(dag.nodes) - set(finished)
        raise SchedulingError(f"unschedulable occurrences (cycle?): {missing}")
    makespan = max((f.finish for f in finished.values()), default=0.0)
    return MappingResult(
        firings=finished, makespan=makespan, platform=platform, order=order
    )


def schedule_graph(
    graph,
    platform: Platform,
    bindings: Mapping | None = None,
    control_priority: bool = True,
    dedicated_control_pe: bool = True,
) -> MappingResult:
    """Convenience: canonical period + list schedule in one call."""
    from .canonical import build_canonical_period

    period = build_canonical_period(graph, bindings)
    return list_schedule(
        period,
        platform,
        control_priority=control_priority,
        dedicated_control_pe=dedicated_control_pe,
    )
