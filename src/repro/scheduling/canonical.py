"""Canonical period construction (Sec. III-D).

The Sigma-C toolchain schedules one *canonical period*: the partial
order of all actor occurrences within a single graph iteration.  Nodes
are ``(actor, k)`` for ``k in 1..q_actor``; edges are

* *serial* edges ``(a, k) -> (a, k+1)`` — firings of one actor are
  sequential (no auto-concurrency), and
* *data/control* edges ``(a, i) -> (b, j)`` whenever the j-th firing of
  consumer ``b`` needs tokens that only exist once the i-th firing of
  producer ``a`` completed: ``i`` is the smallest count with
  ``phi*(e) + X_a(i) >= Y_b(j)`` (no edge when initial tokens already
  cover the demand).

Fig. 5 of the paper is exactly this DAG for the Fig. 2 graph at
``p = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import networkx as nx

from ..csdf.analysis import concrete_repetition_vector
from ..csdf.graph import CSDFGraph
from ..errors import SchedulingError
from ..tpdf.graph import TPDFGraph

#: A canonical-period node: (actor name, occurrence index, 1-based).
Occurrence = tuple[str, int]


@dataclass
class CanonicalPeriod:
    """The occurrence DAG of one iteration."""

    dag: nx.DiGraph
    repetition: dict[str, int]
    #: Names of control actors (scheduled with highest priority).
    control_actors: frozenset[str]

    # -- views -----------------------------------------------------------
    def occurrences(self) -> list[Occurrence]:
        return list(self.dag.nodes)

    def occurrences_of(self, actor: str) -> list[Occurrence]:
        return [(a, k) for (a, k) in self.dag.nodes if a == actor]

    def exec_time(self, occurrence: Occurrence) -> float:
        return self.dag.nodes[occurrence]["exec_time"]

    def is_control(self, occurrence: Occurrence) -> bool:
        return occurrence[0] in self.control_actors

    def predecessors(self, occurrence: Occurrence) -> list[Occurrence]:
        return list(self.dag.predecessors(occurrence))

    def critical_path_length(self) -> float:
        """Longest execution-time path — a lower bound on the makespan
        with zero communication cost."""
        longest: dict[Occurrence, float] = {}
        for node in nx.topological_sort(self.dag):
            pred = max(
                (longest[p] for p in self.dag.predecessors(node)), default=0.0
            )
            longest[node] = pred + self.dag.nodes[node]["exec_time"]
        return max(longest.values(), default=0.0)

    def downward_rank(self) -> dict[Occurrence, float]:
        """Longest path from each occurrence to any sink (HLFET ranks)."""
        rank: dict[Occurrence, float] = {}
        for node in reversed(list(nx.topological_sort(self.dag))):
            succ = max((rank[s] for s in self.dag.successors(node)), default=0.0)
            rank[node] = succ + self.dag.nodes[node]["exec_time"]
        return rank

    def describe(self) -> str:
        """Fig. 5-style rendering: occurrences and their dependencies."""
        lines = [f"canonical period: {self.dag.number_of_nodes()} occurrences"]
        for node in nx.topological_sort(self.dag):
            deps = ", ".join(f"{a}{k}" for a, k in self.dag.predecessors(node))
            actor, index = node
            marker = "*" if self.is_control(node) else ""
            lines.append(f"  {actor}{index}{marker} <- [{deps}]")
        return "\n".join(lines)


def _dependency_source(
    produced_cumulative,  # callable i -> int
    demand: int,
    q_src: int,
) -> int | None:
    """Smallest i in 1..q_src with cumulative(i) >= demand (None if the
    demand is satisfied with i = 0, i.e. by initial tokens alone)."""
    if demand <= 0 or produced_cumulative(0) >= demand:
        return None
    lo, hi = 1, q_src
    while lo < hi:
        mid = (lo + hi) // 2
        if produced_cumulative(mid) >= demand:
            hi = mid
        else:
            lo = mid + 1
    return lo


def build_canonical_period(
    graph: TPDFGraph | CSDFGraph,
    bindings: Mapping | None = None,
    unfolding: int = 1,
) -> CanonicalPeriod:
    """Build the occurrence DAG of one (or several) iterations.

    Accepts either a TPDF graph (control actors marked as such) or a
    plain CSDF graph.  Parametric graphs must come with ``bindings``.

    ``unfolding > 1`` builds the DAG of that many *consecutive*
    iterations — the classic unfolding transformation: scheduling J
    iterations jointly exposes cross-iteration parallelism (software
    pipelining) that a one-iteration schedule cannot, improving
    throughput on parallel machines.  The dependency formula is
    unchanged: cumulative rates extend across iteration boundaries and
    initial tokens are counted once.
    """
    if unfolding < 1:
        raise SchedulingError("unfolding factor must be >= 1")
    if isinstance(graph, TPDFGraph):
        csdf = graph.as_csdf()
        control = frozenset(graph.controls)
    else:
        csdf = graph
        control = frozenset()
    q = {
        name: count * unfolding
        for name, count in concrete_repetition_vector(csdf, bindings).items()
    }
    dag = nx.DiGraph()
    for actor_name, count in q.items():
        actor = csdf.actor(actor_name)
        for k in range(1, count + 1):
            dag.add_node(
                (actor_name, k),
                exec_time=actor.exec_time(k - 1),
                control=actor_name in control,
            )
        for k in range(1, count):
            dag.add_edge((actor_name, k), (actor_name, k + 1), kind="serial")

    for channel in csdf.channels.values():
        if channel.is_selfloop():
            continue  # serial edges already order the actor's firings
        production = channel.production.bind(bindings or {})
        consumption = channel.consumption.bind(bindings or {})
        q_src, q_dst = q[channel.src], q[channel.dst]

        def produced(i: int) -> int:
            return channel.initial_tokens + int(production.cumulative(i).const_value())

        for j in range(1, q_dst + 1):
            demand = int(consumption.cumulative(j).const_value())
            source = _dependency_source(produced, demand, q_src)
            if source is None:
                continue
            if produced(q_src) < demand:
                raise SchedulingError(
                    f"channel {channel.name!r}: consumer {channel.dst!r} firing "
                    f"{j} needs {demand} tokens but one iteration produces only "
                    f"{produced(q_src)} — graph is not consistent"
                )
            dag.add_edge(
                (channel.src, source),
                (channel.dst, j),
                kind="control" if channel.name in _control_channel_names(graph) else "data",
                channel=channel.name,
            )
    if not nx.is_directed_acyclic_graph(dag):
        raise SchedulingError(
            "canonical period is cyclic: the graph deadlocks (initial tokens "
            "insufficient to break a dependency cycle)"
        )
    return CanonicalPeriod(dag=dag, repetition=q, control_actors=control)


def _control_channel_names(graph: TPDFGraph | CSDFGraph) -> frozenset[str]:
    if isinstance(graph, TPDFGraph):
        return frozenset(c.name for c in graph.control_channels())
    return frozenset()
