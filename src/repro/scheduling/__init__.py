"""Scheduling: canonical periods, many-core list scheduling, ADF
pruning and late schedules (Sec. III-C/III-D of the paper)."""

from .canonical import CanonicalPeriod, Occurrence, build_canonical_period
from .listsched import MappingResult, ScheduledFiring, list_schedule, schedule_graph
from .adf import PruneResult, prune_canonical_period, pruned_period, rejected_channels
from .late import late_schedule, reversed_graph

__all__ = [
    "CanonicalPeriod",
    "Occurrence",
    "build_canonical_period",
    "MappingResult",
    "ScheduledFiring",
    "list_schedule",
    "schedule_graph",
    "PruneResult",
    "rejected_channels",
    "prune_canonical_period",
    "pruned_period",
    "late_schedule",
    "reversed_graph",
]
