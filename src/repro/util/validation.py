"""The qualitative related-work comparison of Sec. V.

The paper positions TPDF against the other parametric/dynamic dataflow
MoCs (PSDF, VRDF, SPDF, SADF, BPDF) along the capabilities its
contribution claims: static rate-consistency/boundedness/liveness
guarantees, parametric rates, dynamic topology changes, and
time-triggered semantics (clock actors).  This module encodes that
matrix so the TAB-RW bench can print it and tests can pin the claimed
TPDF row against what the library actually implements.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelFeatures:
    """Capability row for one model of computation."""

    name: str
    static_guarantees: bool     # compile-time consistency/boundedness/liveness
    parametric_rates: bool      # integer-parameter rates
    dynamic_topology: bool      # runtime graph reconfiguration
    time_constraints: bool      # time-triggered semantics (clocks/deadlines)
    reference: str


#: Sec. V, condensed.  "Static guarantees" follows the paper's claim
#: that "none of these models provide any of the static guarantees that
#: TPDF does" for PSDF/VRDF/SPDF; SADF and BPDF are statically
#: analyzable but lack time constraints.
RELATED_WORK = (
    ModelFeatures("CSDF", True, False, False, False, "Bilsen et al. 1995"),
    ModelFeatures("PSDF", False, True, False, False, "Bhattacharya & Bhattacharyya 2001"),
    ModelFeatures("VRDF", False, True, False, False, "Wiggers et al. 2008"),
    ModelFeatures("SPDF", False, True, False, False, "Fradet et al. 2012"),
    ModelFeatures("SADF", True, False, True, False, "Theelen et al. 2006"),
    ModelFeatures("BPDF", True, True, True, False, "Bebelis et al. 2013"),
    ModelFeatures("TPDF", True, True, True, True, "this paper"),
)


def feature_matrix_rows() -> list[list[str]]:
    """Rows for an ASCII table of the Sec. V comparison."""
    def mark(flag: bool) -> str:
        return "yes" if flag else "-"

    return [
        [
            model.name,
            mark(model.static_guarantees),
            mark(model.parametric_rates),
            mark(model.dynamic_topology),
            mark(model.time_constraints),
            model.reference,
        ]
        for model in RELATED_WORK
    ]


FEATURE_HEADERS = [
    "model", "static guarantees", "param rates", "dynamic topology",
    "time constraints", "reference",
]


def tpdf_claims() -> ModelFeatures:
    """The TPDF row — tests assert the library delivers each claim."""
    return RELATED_WORK[-1]
