"""ASCII tables and CSV export for the benchmark harness.

The benches print the paper's tables and figure series as text (no
plotting dependencies offline); :func:`ascii_table` keeps the output
aligned and :func:`write_csv` dumps the raw series for external
plotting.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path
from typing import Iterable, Sequence


def available_cores() -> int:
    """CPUs this process may actually run on (affinity-aware).

    The parallel benches key their speedup assertions off this: a pool
    cannot scale past the cores the scheduler grants, whatever
    ``os.cpu_count()`` says the machine has.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
) -> str:
    """Render rows as a boxed, right-aligned ASCII table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row with {len(row)} cells does not match {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"
    lines = []
    if title:
        lines.append(title)
    lines.append(sep)
    lines.append(
        "|" + "|".join(f" {h:>{w}} " for h, w in zip(headers, widths)) + "|"
    )
    lines.append(sep)
    for row in str_rows:
        lines.append(
            "|" + "|".join(f" {c:>{w}} " for c, w in zip(row, widths)) + "|"
        )
    lines.append(sep)
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def write_csv(path: str | Path, headers: Sequence[str], rows: Iterable[Sequence]) -> Path:
    """Write a series to CSV; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))
    return path


def ascii_series_plot(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: str | None = None,
) -> str:
    """A minimal ASCII scatter of several series (Fig. 8 style)."""
    all_ys = [y for ys in series.values() for y in ys]
    if not all_ys or not xs:
        return "(no data)"
    y_min, y_max = min(all_ys), max(all_ys)
    x_min, x_max = min(xs), max(xs)
    y_span = (y_max - y_min) or 1.0
    x_span = (x_max - x_min) or 1.0
    grid = [[" "] * (width + 1) for _ in range(height + 1)]
    markers = "ox+*#@"
    for index, (name, ys) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in zip(xs, ys):
            col = int((x - x_min) / x_span * width)
            row = height - int((y - y_min) / y_span * height)
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: [{y_min:.3g}, {y_max:.3g}]")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * (width + 1))
    lines.append(f"x: [{x_min:.3g}, {x_max:.3g}]")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)
