"""Graphviz DOT export for CSDF and TPDF graphs.

No plotting libraries are available offline, so graphs export to DOT
text for external rendering.  Control actors are drawn as diamonds and
control channels dashed, matching the paper's figures; rates annotate
the edge ends and initial tokens the edge middle.
"""

from __future__ import annotations

from ..csdf.graph import CSDFGraph
from ..tpdf.graph import TPDFGraph


def _escape(text: str) -> str:
    return text.replace('"', '\\"')


def csdf_to_dot(graph: CSDFGraph) -> str:
    """Render a CSDF graph as DOT."""
    lines = [f'digraph "{_escape(graph.name)}" {{', "  rankdir=LR;",
             "  node [shape=box, style=rounded];"]
    for name in graph.actors:
        lines.append(f'  "{_escape(name)}";')
    for channel in graph.channels.values():
        label = f"{channel.production} -> {channel.consumption}"
        if channel.initial_tokens:
            label += f" ({channel.initial_tokens} tok)"
        lines.append(
            f'  "{_escape(channel.src)}" -> "{_escape(channel.dst)}" '
            f'[label="{_escape(label)}"];'
        )
    lines.append("}")
    return "\n".join(lines)


def tpdf_to_dot(graph: TPDFGraph) -> str:
    """Render a TPDF graph as DOT (diamonds = control actors, dashed =
    control channels, like the paper's figures)."""
    lines = [f'digraph "{_escape(graph.name)}" {{', "  rankdir=LR;"]
    if graph.parameters:
        domains = ", ".join(
            f"{p.name} in [{p.lo}, {p.hi if p.hi is not None else 'inf'}]"
            for p in graph.parameters.values()
        )
        lines.append(f'  label="{_escape(graph.name)}: {_escape(domains)}";')
    for name in graph.node_names():
        if graph.is_control_actor(name):
            shape = "diamond"
        elif graph.node(name).meta.get("builtin") == "transaction":
            shape = "hexagon"
        else:
            shape = "box"
        lines.append(f'  "{_escape(name)}" [shape={shape}];')
    for channel in graph.channels.values():
        production = graph.node(channel.src).port(channel.src_port).rates
        consumption = graph.node(channel.dst).port(channel.dst_port).rates
        label = f"{production} -> {consumption}"
        if channel.initial_tokens:
            label += f" ({channel.initial_tokens} tok)"
        style = ', style=dashed' if channel.is_control else ""
        lines.append(
            f'  "{_escape(channel.src)}" -> "{_escape(channel.dst)}" '
            f'[label="{_escape(label)}"{style}];'
        )
    lines.append("}")
    return "\n".join(lines)
