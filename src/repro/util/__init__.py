"""Utilities: ASCII tables, series plots, CSV export, DOT rendering,
related-work validation matrix."""

from .tables import ascii_series_plot, ascii_table, available_cores, write_csv
from .dot import csdf_to_dot, tpdf_to_dot
from .validation import (
    FEATURE_HEADERS,
    RELATED_WORK,
    ModelFeatures,
    feature_matrix_rows,
    tpdf_claims,
)

__all__ = [
    "ascii_table",
    "ascii_series_plot",
    "available_cores",
    "write_csv",
    "csdf_to_dot",
    "tpdf_to_dot",
    "ModelFeatures",
    "RELATED_WORK",
    "FEATURE_HEADERS",
    "feature_matrix_rows",
    "tpdf_claims",
]
