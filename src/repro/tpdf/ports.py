"""Ports of TPDF kernels and control actors.

Definition 2 distinguishes data input ports ``I``, data output ports
``O`` and control ports ``C``; every port carries a priority ``alpha``
(used by ``HIGHEST_PRIORITY`` modes) and a rate sequence.  Control
ports are restricted to rates in ``{0, 1}`` — a kernel reads at most
one control token per firing.
"""

from __future__ import annotations

from enum import Enum

from ..csdf.rates import RateLike, RateSequence


class PortKind(Enum):
    DATA_IN = "data_in"
    DATA_OUT = "data_out"
    CONTROL_IN = "control_in"
    CONTROL_OUT = "control_out"

    def is_input(self) -> bool:
        return self in (PortKind.DATA_IN, PortKind.CONTROL_IN)

    def is_control(self) -> bool:
        return self in (PortKind.CONTROL_IN, PortKind.CONTROL_OUT)

    def __str__(self) -> str:
        return self.value


class Port:
    """A named, kinded, prioritized port with a cyclic rate sequence.

    ``priority`` is the ``alpha`` of Definition 2: larger values win in
    ``HIGHEST_PRIORITY`` selections (the edge-detection case study
    orders Canny > Prewitt > Sobel > QuickMask this way).
    """

    __slots__ = ("name", "kind", "rates", "priority")

    def __init__(self, name: str, kind: PortKind, rates: RateLike = 1, priority: int = 0):
        self.name = name
        self.kind = kind
        self.rates = RateSequence.of(rates)
        self.priority = int(priority)
        if kind is PortKind.CONTROL_IN:
            # Def. 2: Rk(m, c, n) in {0, 1} — a kernel reads at most one
            # control token per firing.  Control *outputs* are not
            # restricted (the Fig. 2 controller emits 2 tokens per firing).
            for entry in self.rates:
                if not entry.is_const() or entry.const_value() not in (0, 1):
                    raise ValueError(
                        f"control port {name!r}: rates must be 0 or 1 per firing "
                        f"(Def. 2), got {entry}"
                    )

    def __repr__(self) -> str:
        return (
            f"Port({self.name!r}, {self.kind}, rates={self.rates}, "
            f"priority={self.priority})"
        )
