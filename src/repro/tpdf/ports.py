"""Ports of TPDF kernels and control actors.

Definition 2 distinguishes data input ports ``I``, data output ports
``O`` and control ports ``C``; every port carries a priority ``alpha``
(used by ``HIGHEST_PRIORITY`` modes) and a rate sequence.  Control
ports are restricted to rates in ``{0, 1}`` — a kernel reads at most
one control token per firing.
"""

from __future__ import annotations

from enum import Enum

from ..csdf.rates import RateLike, RateSequence


class PortKind(Enum):
    DATA_IN = "data_in"
    DATA_OUT = "data_out"
    CONTROL_IN = "control_in"
    CONTROL_OUT = "control_out"

    def is_input(self) -> bool:
        return self in (PortKind.DATA_IN, PortKind.CONTROL_IN)

    def is_control(self) -> bool:
        return self in (PortKind.CONTROL_IN, PortKind.CONTROL_OUT)

    def __str__(self) -> str:
        return self.value


class Port:
    """A named, kinded, prioritized port with a cyclic rate sequence.

    ``priority`` is the ``alpha`` of Definition 2: larger values win in
    ``HIGHEST_PRIORITY`` selections (the edge-detection case study
    orders Canny > Prewitt > Sobel > QuickMask this way).

    Rates participate in every cached analysis (they decide the node's
    cycle length ``tau`` and the balance equations), so assigning
    ``port.rates`` after the port joined a graph bumps that graph's
    analysis version — in-place rate edits can never serve stale
    memoized results.
    """

    __slots__ = ("name", "kind", "_rates", "priority", "_owner")

    def __init__(self, name: str, kind: PortKind, rates: RateLike = 1, priority: int = 0):
        self.name = name
        self.kind = kind
        #: Owning node; set by ``Node._add_port`` so rate edits can
        #: propagate a cache-invalidation bump to the owning graph.
        self._owner = None
        self.rates = rates
        self.priority = int(priority)

    @property
    def rates(self) -> RateSequence:
        return self._rates

    @rates.setter
    def rates(self, value: RateLike) -> None:
        rates = RateSequence.of(value)
        if self.kind is PortKind.CONTROL_IN:
            # Def. 2: Rk(m, c, n) in {0, 1} — a kernel reads at most one
            # control token per firing.  Control *outputs* are not
            # restricted (the Fig. 2 controller emits 2 tokens per firing).
            for entry in rates:
                if not entry.is_const() or entry.const_value() not in (0, 1):
                    raise ValueError(
                        f"control port {self.name!r}: rates must be 0 or 1 per "
                        f"firing (Def. 2), got {entry}"
                    )
        if self._owner is not None:
            self._owner._touch()  # raises first on frozen graphs
        self._rates = rates

    def __repr__(self) -> str:
        return (
            f"Port({self.name!r}, {self.kind}, rates={self.rates}, "
            f"priority={self.priority})"
        )
