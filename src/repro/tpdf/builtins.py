"""The built-in TPDF actors of Sec. II-B: Select-duplicate, Transaction
and Clock.

* **Select-duplicate** — one input, ``n`` outputs; each input token is
  copied to whichever combination of outputs the control token enables.
* **Transaction** — ``n`` inputs, one output; atomically selects a
  predefined number of tokens from one or several inputs.  Combined
  with control actors it implements the paper's special actions:
  *speculation*, *redundancy with vote*, *highest priority at a given
  deadline*, and *selection of an active data path*.
* **Clock** — a watchdog-timer control actor emitting a control token
  on every timeout; this is what gives TPDF its time-triggered
  semantics (the 500 ms deadline of the edge-detection case study).

The factories build fully-wired kernels/actors and register them in a
graph; their runtime behaviour is interpreted by :mod:`repro.sim`.
"""

from __future__ import annotations

from typing import Sequence

from ..csdf.rates import RateLike
from ..errors import GraphConstructionError
from .graph import TPDFGraph
from .kernel import ControlActor, Kernel
from .modes import Mode


def select_duplicate(
    graph: TPDFGraph,
    name: str,
    outputs: int,
    input_rate: RateLike = 1,
    output_rate: RateLike = 1,
    exec_time: float = 1.0,
    output_names: Sequence[str] | None = None,
) -> Kernel:
    """Create a Select-duplicate kernel with ``outputs`` output ports.

    Ports: ``in`` (data), ``out0..out{n-1}`` (data, or ``output_names``),
    ``ctrl`` (control).  Each consumed token is duplicated onto the
    outputs enabled by the current control token.
    """
    if outputs < 1:
        raise GraphConstructionError(f"select-duplicate {name!r}: needs >= 1 output")
    kernel = Kernel(
        name,
        exec_time=exec_time,
        modes=(Mode.WAIT_ALL, Mode.SELECT_ONE, Mode.SELECT_MANY),
    )
    kernel.meta["builtin"] = "select_duplicate"
    kernel.add_input("in", input_rate)
    names = list(output_names) if output_names is not None else [
        f"out{i}" for i in range(outputs)
    ]
    if len(names) != outputs:
        raise GraphConstructionError(
            f"select-duplicate {name!r}: {outputs} outputs but "
            f"{len(names)} output names"
        )
    for port_name in names:
        kernel.add_output(port_name, output_rate)
    kernel.add_control_port("ctrl", 1)
    graph.register(kernel)
    return kernel


def transaction(
    graph: TPDFGraph,
    name: str,
    inputs: int,
    input_rate: RateLike = 1,
    output_rate: RateLike = 1,
    exec_time: float = 1.0,
    input_names: Sequence[str] | None = None,
    priorities: Sequence[int] | None = None,
    action: str = "priority_deadline",
) -> Kernel:
    """Create a Transaction kernel with ``inputs`` input ports.

    Ports: ``in0..in{n-1}`` (or ``input_names``), ``out``, ``ctrl``.
    ``priorities`` order the inputs for ``HIGHEST_PRIORITY`` modes
    (larger wins, default: declaration order).  ``action`` names the
    special behaviour the runtime applies:

    ``"priority_deadline"``
        emit the highest-priority input available when the control
        token (usually from a clock) arrives — "best result by the
        deadline";
    ``"vote"``
        read all selected inputs and emit the majority value
        (redundancy with vote);
    ``"select"``
        forward exactly the inputs named by the control token
        (active-data-path selection / speculation resolution).
    """
    if inputs < 1:
        raise GraphConstructionError(f"transaction {name!r}: needs >= 1 input")
    if action not in ("priority_deadline", "vote", "select"):
        raise GraphConstructionError(f"transaction {name!r}: unknown action {action!r}")
    kernel = Kernel(
        name,
        exec_time=exec_time,
        modes=(Mode.WAIT_ALL, Mode.SELECT_ONE, Mode.SELECT_MANY, Mode.HIGHEST_PRIORITY),
    )
    kernel.meta["builtin"] = "transaction"
    kernel.meta["action"] = action
    names = list(input_names) if input_names is not None else [
        f"in{i}" for i in range(inputs)
    ]
    if len(names) != inputs:
        raise GraphConstructionError(
            f"transaction {name!r}: {inputs} inputs but {len(names)} input names"
        )
    prios = list(priorities) if priorities is not None else list(range(inputs))
    if len(prios) != inputs:
        raise GraphConstructionError(
            f"transaction {name!r}: {inputs} inputs but {len(prios)} priorities"
        )
    for port_name, priority in zip(names, prios):
        kernel.add_input(port_name, input_rate, priority=priority)
    kernel.add_output("out", output_rate)
    kernel.add_control_port("ctrl", 1)
    graph.register(kernel)
    return kernel


class ClockActor(ControlActor):
    """A watchdog-timer control actor (Sec. II-B item c).

    Fires autonomously every ``period`` model-time units and emits one
    control token per control output.  It has no data inputs — its
    firing rule is purely temporal, which is why plain CSDF cannot
    express it (Sec. IV-A: "this kind of time-dependent decision is not
    available in usual CSDF").
    """

    def __init__(self, name: str, period: float, exec_time: float = 0.0):
        if period <= 0:
            raise GraphConstructionError(f"clock {name!r}: period must be positive")
        super().__init__(name, exec_time=exec_time)
        self.period = float(period)
        self.meta["builtin"] = "clock"
        self.meta["period"] = float(period)


def clock(
    graph: TPDFGraph,
    name: str,
    period: float,
    output_rate: RateLike = 1,
) -> ClockActor:
    """Create and register a clock control actor with one control
    output named ``tick``."""
    actor = ClockActor(name, period)
    actor.add_control_output("tick", output_rate)
    graph.register(actor)
    return actor
