"""Rate safety (Definition 5) — the boundedness criterion of TPDF.

A graph is *rate safe* when every control actor fires exactly once per
local iteration of its control area: for each channel ``eu`` between a
control actor ``g`` and an actor ``ai`` in ``prec(g) u succ(g)``::

    X^u_g(1) = Y^u_i(q^L_ai)     if g produces on eu
    Y^u_g(1) = X^u_i(q^L_ai)     if g consumes from eu

i.e. one firing of ``g`` supplies (or absorbs) exactly the tokens its
neighbours move during one local iteration.  Together with rate
consistency and liveness this gives Theorem 2: the graph returns to its
initial state each iteration and runs in bounded memory.

The check is purely syntactic/symbolic; cumulative rates at parametric
local counts are evaluated by
:meth:`~repro.csdf.rates.RateSequence.cumulative_symbolic`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RateSafetyError, SymbolicRateError
from ..symbolic import Poly
from .areas import area_local_solution
from .graph import TPDFChannel, TPDFGraph


@dataclass
class SafetyCheck:
    """One Definition-5 equation instance."""

    control: str
    other: str
    channel: str
    #: ``X_g(1)`` or ``Y_g(1)`` — the control actor's single-firing total.
    control_side: Poly
    #: ``Y_i(q^L_i)`` or ``X_i(q^L_i)`` — the neighbour's local-iteration total.
    area_side: Poly
    ok: bool

    def __str__(self) -> str:
        verdict = "ok" if self.ok else "VIOLATED"
        return (
            f"{self.channel}: {self.control}(1) = {self.control_side} vs "
            f"{self.other}(q^L) = {self.area_side} [{verdict}]"
        )


@dataclass
class SafetyReport:
    """Aggregate rate-safety verdict for a graph."""

    safe: bool
    checks: list[SafetyCheck] = field(default_factory=list)
    #: Checks that could not be decided symbolically (SymbolicRateError).
    undecided: list[str] = field(default_factory=list)

    def violations(self) -> list[SafetyCheck]:
        return [check for check in self.checks if not check.ok]

    def __str__(self) -> str:
        head = "rate safe" if self.safe else "NOT rate safe"
        lines = [head] + [f"  {check}" for check in self.checks]
        lines += [f"  undecided: {item}" for item in self.undecided]
        return "\n".join(lines)


def _neighbour_checks(graph: TPDFGraph, control: str) -> list[tuple[TPDFChannel, bool]]:
    """Channels between ``control`` and its prec/succ; flag = g produces."""
    out = [(channel, True) for channel in graph.out_channels(control)]
    inc = [(channel, False) for channel in graph.in_channels(control)]
    return out + inc


def check_rate_safety(graph: TPDFGraph) -> SafetyReport:
    """Run the Definition-5 check on every control actor."""
    checks: list[SafetyCheck] = []
    undecided: list[str] = []
    for control in graph.controls:
        local = area_local_solution(graph, control)
        for channel, g_produces in _neighbour_checks(graph, control):
            other = channel.dst if g_produces else channel.src
            if other == control:
                continue  # self-loop on a control actor constrains nothing here
            if g_produces:
                control_rates = graph.node(control).port(channel.src_port).rates
                other_rates = graph.node(other).port(channel.dst_port).rates
            else:
                control_rates = graph.node(control).port(channel.dst_port).rates
                other_rates = graph.node(other).port(channel.src_port).rates
            control_side = control_rates.cumulative(1)
            if other not in local.counts:
                undecided.append(
                    f"{channel.name}: neighbour {other!r} outside Area({control})"
                )
                continue
            try:
                area_side = other_rates.cumulative_symbolic(local.counts[other])
            except SymbolicRateError as exc:
                undecided.append(f"{channel.name}: {exc}")
                continue
            checks.append(
                SafetyCheck(
                    control=control,
                    other=other,
                    channel=channel.name,
                    control_side=control_side,
                    area_side=area_side,
                    ok=control_side == area_side,
                )
            )
    safe = not undecided and all(check.ok for check in checks)
    return SafetyReport(safe=safe, checks=checks, undecided=undecided)


def assert_rate_safe(graph: TPDFGraph) -> SafetyReport:
    """Raise :class:`~repro.errors.RateSafetyError` unless rate safe."""
    report = check_rate_safety(graph)
    if not report.safe:
        problems = [str(check) for check in report.violations()] + report.undecided
        raise RateSafetyError(
            f"graph {graph.name!r} violates rate safety (Def. 5):\n  "
            + "\n  ".join(problems)
        )
    return report
