"""Random consistent TPDF graph generation.

Used by the scalability ablation (ABL3 in DESIGN.md) and by
property-based tests: graphs are generated *consistent by
construction* — rates on each channel are derived from a randomly
chosen base solution ``r`` (for edge ``(i, j)`` set production
``r_j / g`` and consumption ``r_i / g`` with ``g = gcd(r_i, r_j)``,
which balances by construction) — and cycles are made live by seeding
back edges with one full local iteration's worth of tokens.
"""

from __future__ import annotations

import random
from math import gcd

from ..symbolic import Param
from .graph import TPDFGraph


def random_consistent_graph(
    n_actors: int,
    extra_edges: int = 0,
    n_cycles: int = 0,
    seed: int = 0,
    max_rate_base: int = 4,
    parametric: bool = False,
    with_control: bool = True,
) -> TPDFGraph:
    """Generate a random consistent, live TPDF graph.

    Parameters
    ----------
    n_actors:
        Number of computation kernels (>= 2).
    extra_edges:
        Forward edges added on top of the random spanning chain.
    n_cycles:
        Back edges (each seeded with enough initial tokens to be live).
    seed:
        RNG seed (generation is deterministic).
    max_rate_base:
        Base solutions are drawn from ``1..max_rate_base``.
    parametric:
        Scale the base solution of a random suffix of the pipeline by a
        parameter ``p``, making rates and the repetition vector
        parametric.
    with_control:
        Attach a control actor driving the last kernel (exercises the
        control-area machinery on generated graphs).
    """
    if n_actors < 2:
        raise ValueError("need at least two actors")
    rng = random.Random(seed)
    p = Param("p", lo=1, hi=8)
    graph = TPDFGraph(f"rand{seed}", parameters=[p] if parametric else [])

    names = [f"k{i}" for i in range(n_actors)]
    base = {name: rng.randint(1, max_rate_base) for name in names}
    split = rng.randrange(1, n_actors) if parametric else n_actors
    factor = {
        name: (p if parametric and i >= split else 1)
        for i, name in enumerate(names)
    }

    for name in names:
        kernel = graph.add_kernel(name, exec_time=rng.choice([1.0, 2.0, 4.0]))
        kernel.meta["base"] = base[name]

    counter = [0]

    def port_pair(src: str, dst: str):
        counter[0] += 1
        suffix = f"_{counter[0]}"
        g = gcd(base[src], base[dst])
        production = base[dst] // g
        consumption = base[src] // g
        # Balance: r_src * prod == r_dst * cons with r_i = base_i * factor_i.
        # Same factor on both sides cancels; across the parametric split the
        # larger factor is pushed onto the opposite rate.
        prod_rate = production * p if factor[dst] != factor[src] and factor[src] == 1 else production
        cons_rate = consumption * p if factor[dst] != factor[src] and factor[dst] == 1 else consumption
        graph.node(src).add_output(f"o{suffix}", prod_rate)
        graph.node(dst).add_input(f"i{suffix}", cons_rate)
        return (src, f"o{suffix}"), (dst, f"i{suffix}")

    # Spanning chain guarantees weak connectivity.
    for src, dst in zip(names, names[1:]):
        s, d = port_pair(src, dst)
        graph.connect(s, d)

    for _ in range(extra_edges):
        i, j = sorted(rng.sample(range(n_actors), 2))
        s, d = port_pair(names[i], names[j])
        graph.connect(s, d)

    # Back edges with liveness-preserving initial tokens: one local
    # iteration consumes cons_rate * q_dst tokens; we seed exactly that.
    if n_cycles:
        from .consistency import repetition_vector

        q = repetition_vector(graph)
        for _ in range(n_cycles):
            i, j = sorted(rng.sample(range(n_actors), 2))
            src, dst = names[j], names[i]  # backward
            s, d = port_pair(src, dst)
            consumption = graph.node(dst).port(d[1]).rates.cycle_total()
            need = consumption * q[dst]
            tokens = need.evaluate({p.name: p.hi or 8} if parametric else {})
            graph.connect(s, d, initial_tokens=int(tokens))

    if with_control:
        # Attach a control actor that is rate safe *by construction*
        # (Def. 5): it consumes one whole local iteration of the last
        # kernel per firing (rate = q_last, possibly parametric) and
        # steers a sink that also fires once per local iteration.
        from .consistency import repetition_vector

        last = names[-1]
        q_last = repetition_vector(graph)[last]
        control = graph.add_control_actor("ctrl0")
        counter[0] += 1
        graph.node(last).add_output(f"o_{counter[0]}", 1)
        control.add_input("in", q_last)
        control.add_control_output("out", 1)
        target = graph.add_kernel("sink0")
        target.add_input("in", q_last)
        target.add_control_port("ctrl", 1)
        counter[0] += 1
        graph.node(last).add_output(f"o_{counter[0]}", 1)
        graph.connect((last, f"o_{counter[0] - 1}"), ("ctrl0", "in"))
        graph.connect(("ctrl0", "out"), ("sink0", "ctrl"))
        graph.connect((last, f"o_{counter[0]}"), ("sink0", "in"))
    return graph
