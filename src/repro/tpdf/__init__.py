"""Transaction Parameterized Dataflow — the paper's model of computation.

This package is the primary contribution of the reproduced paper:
CSDF extended with integer parameters and control actors/channels/ports
(Def. 2), the static analysis chain of Sec. III (rate consistency,
control areas, rate safety, liveness by clustering, boundedness), the
built-in Select-duplicate/Transaction/Clock actors, and graph
transformations (the Fig. 3 virtualization).
"""

from .modes import (
    ControlToken,
    Mode,
    highest_priority,
    select_many,
    select_one,
    wait_all,
)
from .ports import Port, PortKind
from .kernel import ControlActor, Kernel, Node
from .graph import TPDFChannel, TPDFGraph, fig2_graph
from .builtins import ClockActor, clock, select_duplicate, transaction
from .consistency import (
    ConsistencyReport,
    check_consistency,
    concrete_repetition_vector,
    consistency_conditions,
    repetition_vector,
    symbolic_schedule_string,
)
from .areas import (
    LocalSolution,
    area_local_solution,
    control_area,
    influenced,
    local_solution,
    predecessors,
    successors,
)
from .safety import SafetyCheck, SafetyReport, assert_rate_safe, check_rate_safety
from .liveness import (
    CycleVerdict,
    LivenessReport,
    check_cycle,
    check_liveness,
    cluster_cycle,
    clustered_graph,
    cyclic_components,
    cycle_subgraph,
)
from .boundedness import (
    BoundednessReport,
    assert_bounded,
    buffer_bounds,
    check_boundedness,
)
from .transform import copy_graph, restrict_to_selection, virtualize_select_duplicate
from .randgraph import random_consistent_graph
from .lint import LintWarning, assert_clean, lint
from .modecheck import ModeCase, ModeEnumeration, enumerate_modes

__all__ = [
    "Mode",
    "ControlToken",
    "select_one",
    "select_many",
    "highest_priority",
    "wait_all",
    "Port",
    "PortKind",
    "Node",
    "Kernel",
    "ControlActor",
    "TPDFGraph",
    "TPDFChannel",
    "fig2_graph",
    "ClockActor",
    "clock",
    "select_duplicate",
    "transaction",
    "ConsistencyReport",
    "check_consistency",
    "repetition_vector",
    "concrete_repetition_vector",
    "consistency_conditions",
    "symbolic_schedule_string",
    "LocalSolution",
    "control_area",
    "influenced",
    "predecessors",
    "successors",
    "local_solution",
    "area_local_solution",
    "SafetyCheck",
    "SafetyReport",
    "check_rate_safety",
    "assert_rate_safe",
    "CycleVerdict",
    "LivenessReport",
    "check_liveness",
    "check_cycle",
    "cyclic_components",
    "cycle_subgraph",
    "cluster_cycle",
    "clustered_graph",
    "BoundednessReport",
    "check_boundedness",
    "assert_bounded",
    "buffer_bounds",
    "copy_graph",
    "virtualize_select_duplicate",
    "restrict_to_selection",
    "random_consistent_graph",
    "lint",
    "assert_clean",
    "LintWarning",
    "enumerate_modes",
    "ModeCase",
    "ModeEnumeration",
]
