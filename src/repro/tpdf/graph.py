"""The TPDF graph ``G = (K, G, E, P, Rk, Rg, alpha, phi*)`` (Def. 2).

Structural container tying together kernels ``K``, control actors
``G``, channels ``E`` (data and control), integer parameters ``P``,
rate functions (attached to ports), priorities ``alpha`` (attached to
ports) and the initial channel status ``phi*`` (initial tokens).

Structural rules enforced at construction time:

* kernel and control-actor names are unique and the two sets are
  disjoint (``K ∩ G = ∅``);
* a channel connects a data output to a data input, **or** a control
  output to a control port — control channels can only start from a
  control actor (Def. 2);
* each port is bound to at most one channel;
* kernels own at most one control port (enforced by
  :class:`~repro.tpdf.kernel.Kernel`).

The static analyses reuse the CSDF machinery through :meth:`as_csdf`,
which forgets modes and dynamic topology — exactly the "fully
connected" over-approximation of Sec. III-A.
"""

from __future__ import annotations

from typing import Callable, Iterable, Union

import networkx as nx

from ..cache import bump_version, cached
from ..csdf.actor import ExecTime
from ..csdf.graph import CSDFGraph
from ..errors import GraphConstructionError
from ..symbolic import Param
from .kernel import ControlActor, Kernel, Node
from .modes import Mode
from .ports import PortKind

#: "node.port" or (node_name, port_name)
PortRef = Union[str, tuple]


def _parse_ref(ref: PortRef) -> tuple[str, str]:
    if isinstance(ref, tuple):
        node, port = ref
        return str(node), str(port)
    if ref.count(".") != 1:
        raise GraphConstructionError(
            f"port reference {ref!r} must look like 'node.port'"
        )
    node, port = ref.split(".")
    return node, port


class TPDFChannel:
    """A channel between two ports (data or control).

    ``initial_tokens`` feeds the liveness/boundedness analyses, so
    assigning it after the channel joined a graph bumps that graph's
    analysis version (the rate sequences live on the ports, which
    propagate their own bumps)."""

    __slots__ = ("name", "src", "src_port", "dst", "dst_port",
                 "_initial_tokens", "is_control", "_owner")

    def __init__(self, name, src, src_port, dst, dst_port, initial_tokens, is_control):
        self.name = name
        self.src = src
        self.src_port = src_port
        self.dst = dst
        self.dst_port = dst_port
        self._owner = None
        self.initial_tokens = initial_tokens
        self.is_control = is_control

    @property
    def initial_tokens(self) -> int:
        return self._initial_tokens

    @initial_tokens.setter
    def initial_tokens(self, value: int) -> None:
        if value < 0:
            raise GraphConstructionError(
                f"channel {self.name!r}: negative initial tokens"
            )
        if self._owner is not None:
            # raises first on frozen graphs
            bump_version(self._owner, kind="structural", scope=(self.name,))
        self._initial_tokens = int(value)

    def __repr__(self) -> str:
        kind = "control" if self.is_control else "data"
        return (
            f"TPDFChannel({self.name!r}, {self.src}.{self.src_port} -> "
            f"{self.dst}.{self.dst_port}, {kind}, init={self.initial_tokens})"
        )


class TPDFGraph:
    """A Transaction Parameterized Dataflow graph."""

    def __init__(self, name: str = "tpdf", parameters: Iterable[Param] = ()):
        self.name = name
        self._kernels: dict[str, Kernel] = {}
        self._controls: dict[str, ControlActor] = {}
        self._channels: dict[str, TPDFChannel] = {}
        self._params: dict[str, Param] = {}
        for param in parameters:
            self.declare_parameter(param)

    # -- construction ---------------------------------------------------
    def declare_parameter(self, param: Param) -> Param:
        existing = self._params.get(param.name)
        if existing is not None and (existing.lo, existing.hi) != (param.lo, param.hi):
            raise GraphConstructionError(
                f"parameter {param.name!r} redeclared with a different domain"
            )
        self._params[param.name] = param
        bump_version(self, kind="structural")
        return param

    def add_kernel(
        self,
        name: str,
        exec_time: ExecTime = 1.0,
        function: Callable | None = None,
        modes: tuple[Mode, ...] = (Mode.WAIT_ALL,),
    ) -> Kernel:
        self._check_fresh(name)
        kernel = Kernel(name, exec_time=exec_time, function=function, modes=modes)
        kernel._graph = self
        self._kernels[name] = kernel
        bump_version(self, kind="structural", scope=(name,))
        return kernel

    def add_control_actor(
        self,
        name: str,
        exec_time: ExecTime = 0.0,
        decision=None,
    ) -> ControlActor:
        self._check_fresh(name)
        actor = ControlActor(name, exec_time=exec_time, decision=decision)
        actor._graph = self
        self._controls[name] = actor
        bump_version(self, kind="structural", scope=(name,))
        return actor

    def register(self, node: Node) -> Node:
        """Register a pre-built node (used by the builtin factories)."""
        if not isinstance(node, (ControlActor, Kernel)):
            raise GraphConstructionError(f"cannot register {node!r}")
        self._check_fresh(node.name)
        node._graph = self
        if isinstance(node, ControlActor):
            self._controls[node.name] = node
        else:
            self._kernels[node.name] = node
        bump_version(self, kind="structural", scope=(node.name,))
        return node

    def _check_fresh(self, name: str) -> None:
        if name in self._kernels or name in self._controls:
            raise GraphConstructionError(f"duplicate node name {name!r}")

    def connect(
        self,
        src: PortRef,
        dst: PortRef,
        name: str | None = None,
        initial_tokens: int = 0,
    ) -> TPDFChannel:
        """Create a channel between two existing ports.

        Endpoint kinds decide whether this is a data or a control
        channel; Definition 2's structural rules are enforced here.
        """
        src_node, src_port = _parse_ref(src)
        dst_node, dst_port = _parse_ref(dst)
        if name is None:
            name = f"e{len(self._channels) + 1}"
        if name in self._channels:
            raise GraphConstructionError(f"duplicate channel name {name!r}")
        producer = self.node(src_node)
        consumer = self.node(dst_node)
        out_port = producer.port(src_port)
        in_port = consumer.port(dst_port)

        if in_port.kind is PortKind.CONTROL_IN:
            if out_port.kind is not PortKind.CONTROL_OUT:
                raise GraphConstructionError(
                    f"channel {name!r}: control port {dst_node}.{dst_port} must "
                    f"be fed from a control output"
                )
            if not isinstance(producer, ControlActor):
                raise GraphConstructionError(
                    f"channel {name!r}: control channels can start only from a "
                    f"control actor (Def. 2), not from kernel {src_node!r}"
                )
            is_control = True
        elif in_port.kind is PortKind.DATA_IN:
            if out_port.kind is PortKind.CONTROL_OUT:
                raise GraphConstructionError(
                    f"channel {name!r}: control output {src_node}.{src_port} "
                    f"cannot feed the data port {dst_node}.{dst_port}"
                )
            if out_port.kind is not PortKind.DATA_OUT:
                raise GraphConstructionError(
                    f"channel {name!r}: {src_node}.{src_port} is not an output port"
                )
            is_control = False
        else:
            raise GraphConstructionError(
                f"channel {name!r}: {dst_node}.{dst_port} is not an input port"
            )

        for channel in self._channels.values():
            if (channel.src, channel.src_port) == (src_node, src_port):
                raise GraphConstructionError(
                    f"port {src_node}.{src_port} already feeds channel {channel.name!r}"
                )
            if (channel.dst, channel.dst_port) == (dst_node, dst_port):
                raise GraphConstructionError(
                    f"port {dst_node}.{dst_port} already fed by channel {channel.name!r}"
                )
        if initial_tokens < 0:
            raise GraphConstructionError(f"channel {name!r}: negative initial tokens")

        channel = TPDFChannel(
            name, src_node, src_port, dst_node, dst_port, int(initial_tokens), is_control
        )
        channel._owner = self
        self._channels[name] = channel
        bump_version(self, kind="structural", scope=(name, src_node, dst_node))
        return channel

    # -- access -----------------------------------------------------------
    @property
    def kernels(self) -> dict[str, Kernel]:
        return dict(self._kernels)

    @property
    def controls(self) -> dict[str, ControlActor]:
        return dict(self._controls)

    @property
    def channels(self) -> dict[str, TPDFChannel]:
        return dict(self._channels)

    @property
    def parameters(self) -> dict[str, Param]:
        return dict(self._params)

    def node(self, name: str) -> Node:
        if name in self._kernels:
            return self._kernels[name]
        if name in self._controls:
            return self._controls[name]
        raise KeyError(f"unknown node {name!r}")

    def node_names(self) -> list[str]:
        return list(self._kernels) + list(self._controls)

    def is_control_actor(self, name: str) -> bool:
        return name in self._controls

    def channel(self, name: str) -> TPDFChannel:
        return self._channels[name]

    def in_channels(self, node: str) -> list[TPDFChannel]:
        return [c for c in self._channels.values() if c.dst == node]

    def out_channels(self, node: str) -> list[TPDFChannel]:
        return [c for c in self._channels.values() if c.src == node]

    def control_channels(self) -> list[TPDFChannel]:
        """``Ec``: the control subset of the channel set."""
        return [c for c in self._channels.values() if c.is_control]

    def channel_between(self, src: str, dst: str) -> list[TPDFChannel]:
        return [c for c in self._channels.values() if c.src == src and c.dst == dst]

    # -- structure ---------------------------------------------------------
    def undeclared_parameters(self) -> set[str]:
        """Parameter names used in rates but never declared on the graph."""
        used: set[str] = set()
        for node_name in self.node_names():
            for port in self.node(node_name).ports.values():
                used |= port.rates.variables()
        return used - set(self._params)

    def to_networkx(self) -> nx.MultiDiGraph:
        g = nx.MultiDiGraph(name=self.name)
        for name in self.node_names():
            g.add_node(name, control=self.is_control_actor(name))
        for channel in self._channels.values():
            g.add_edge(channel.src, channel.dst, key=channel.name, channel=channel)
        return g

    def as_csdf(self, include_control: bool = True) -> CSDFGraph:
        """Forget modes/dynamism: the CSDF abstraction of Sec. III-A.

        Every node becomes a CSDF actor; every channel a CSDF channel
        whose production/consumption sequences are the connected ports'
        rate sequences.  ``include_control=False`` drops control actors
        and control channels (used e.g. to compare against a pure-CSDF
        restructuring of the same application).

        The abstraction is memoized per graph version and shared across
        all analyses — the returned graph is *frozen*:
        ``add_actor``/``add_channel`` on it raise.
        """
        return cached(
            self, ("as_csdf", include_control),
            lambda: self._build_csdf(include_control),
        )

    def _build_csdf(self, include_control: bool) -> CSDFGraph:
        csdf = CSDFGraph(f"{self.name}/csdf")
        for name in self.node_names():
            if not include_control and self.is_control_actor(name):
                continue
            node = self.node(name)
            csdf.add_actor(name, exec_time=node.exec_times, function=node.function)
        for channel in self._channels.values():
            if not include_control and (
                channel.is_control
                or self.is_control_actor(channel.src)
                or self.is_control_actor(channel.dst)
            ):
                continue
            production = self.node(channel.src).port(channel.src_port).rates
            consumption = self.node(channel.dst).port(channel.dst_port).rates
            csdf.add_channel(
                channel.name,
                channel.src,
                channel.dst,
                production=production,
                consumption=consumption,
                initial_tokens=channel.initial_tokens,
            )
        return csdf.freeze()

    # -- summaries ---------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"TPDFGraph({self.name!r}, kernels={len(self._kernels)}, "
            f"controls={len(self._controls)}, channels={len(self._channels)})"
        )

    def describe(self) -> str:
        lines = [
            f"TPDF graph {self.name!r}: {len(self._kernels)} kernels, "
            f"{len(self._controls)} control actors, {len(self._channels)} channels"
        ]
        if self._params:
            domains = ", ".join(
                f"{p.name} in [{p.lo}, {p.hi if p.hi is not None else 'inf'}]"
                for p in self._params.values()
            )
            lines.append(f"  parameters: {domains}")
        for name in self.node_names():
            node = self.node(name)
            role = "control" if self.is_control_actor(name) else "kernel"
            lines.append(f"  {role} {name} (tau={node.tau()})")
        for channel in self._channels.values():
            production = self.node(channel.src).port(channel.src_port).rates
            consumption = self.node(channel.dst).port(channel.dst_port).rates
            kind = " [ctrl]" if channel.is_control else ""
            init = f", init={channel.initial_tokens}" if channel.initial_tokens else ""
            lines.append(
                f"  {channel.name}{kind}: {channel.src}.{channel.src_port} "
                f"{production} -> {consumption} {channel.dst}.{channel.dst_port}{init}"
            )
        return "\n".join(lines)


def fig2_graph(param: Param | None = None) -> TPDFGraph:
    """The running example of the paper (Fig. 2).

    Six nodes; ``A`` produces ``p`` tokens per firing, ``C`` is a
    control actor driving the transaction-style kernel ``F``.
    Expected repetition vector: ``[2, 2p, p, p, 2p, 2p]``.
    """
    p = param if param is not None else Param("p")
    graph = TPDFGraph("fig2", parameters=[p])
    a = graph.add_kernel("A")
    a.add_output("out", p)
    b = graph.add_kernel("B")
    b.add_input("in", 1)
    b.add_output("to_c", 1)
    b.add_output("to_d", 1)
    b.add_output("to_e", 1)
    c = graph.add_control_actor("C")
    c.add_input("in", 2)
    c.add_control_output("ctrl", 2)
    d = graph.add_kernel("D")
    d.add_input("in", 2)
    d.add_output("out", 2)
    e = graph.add_kernel("E")
    e.add_input("in", 1)
    e.add_output("out", 1)
    f = graph.add_kernel(
        "F", modes=(Mode.WAIT_ALL, Mode.SELECT_ONE, Mode.HIGHEST_PRIORITY)
    )
    f.add_input("from_d", [0, 2], priority=1)
    f.add_input("from_e", [1, 1], priority=2)
    f.add_control_port("ctrl", [1, 1])
    graph.connect("A.out", "B.in", name="e1")
    graph.connect("B.to_c", "C.in", name="e2")
    graph.connect("B.to_d", "D.in", name="e3")
    graph.connect("B.to_e", "E.in", name="e4")
    graph.connect("C.ctrl", "F.ctrl", name="e5")
    graph.connect("D.out", "F.from_d", name="e6")
    graph.connect("E.out", "F.from_e", name="e7")
    return graph
