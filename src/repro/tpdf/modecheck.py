"""Per-mode consistency enumeration.

Sec. III-A notes that checking rate consistency on the fully connected
graph "maybe considered too strict because it does not take into
account the fact that some input edges may not be active in the same
mode" — the paper accepts the stricter check for simplicity.  This
module provides the complementary tool: enumerate the graph's mode
*restrictions* (one per selectable data port of every controlled
kernel) and run the consistency analysis on each, so a designer can
tell whether a full-graph inconsistency would disappear under the modes
actually used.

For kernels declaring ``SELECT_ONE``, each single data input (and each
single data output for select-duplicates) is a restriction; kernels
with only ``WAIT_ALL`` contribute no restrictions.  The enumeration is
the Cartesian product across controlled kernels, capped to keep the
analysis bounded.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from .consistency import check_consistency
from .graph import TPDFGraph
from .kernel import Kernel
from .modes import Mode
from .transform import restrict_to_selection


@dataclass
class ModeCase:
    """One restriction: kernel -> selected data port."""

    selections: dict[str, str]
    consistent: bool
    reason: str = ""

    def __str__(self) -> str:
        body = ", ".join(f"{k}->{p}" for k, p in self.selections.items())
        verdict = "consistent" if self.consistent else f"INCONSISTENT: {self.reason}"
        return f"[{body}] {verdict}"


@dataclass
class ModeEnumeration:
    full_graph_consistent: bool
    cases: list[ModeCase] = field(default_factory=list)
    truncated: bool = False

    @property
    def all_modes_consistent(self) -> bool:
        return all(case.consistent for case in self.cases)

    def __str__(self) -> str:
        head = (
            f"full graph {'consistent' if self.full_graph_consistent else 'INCONSISTENT'}; "
            f"{len(self.cases)} mode restrictions checked"
            + (" (truncated)" if self.truncated else "")
        )
        return "\n".join([head] + [f"  {case}" for case in self.cases])


def _selectable_ports(kernel: Kernel) -> list[str]:
    """Data ports a SELECT_ONE token could pick on this kernel.

    Transactions select among inputs, select-duplicates among outputs;
    generic kernels with SELECT modes could do either — we enumerate
    whichever side has more than one port.
    """
    if Mode.SELECT_ONE not in kernel.modes:
        return []
    inputs = [p.name for p in kernel.data_inputs]
    outputs = [p.name for p in kernel.data_outputs]
    if len(inputs) > 1:
        return inputs
    if len(outputs) > 1:
        return outputs
    return []


def enumerate_modes(graph: TPDFGraph, limit: int = 64) -> ModeEnumeration:
    """Check consistency of every SELECT_ONE restriction combination.

    The paper's soundness argument (full graph consistent => every
    restriction consistent) is checked by tests through this function;
    its practical use is the *converse* diagnosis: a full-graph
    inconsistency that vanishes in every enumerated mode means the
    strict check was the only blocker.
    """
    full = check_consistency(graph)
    choices: list[tuple[str, list[str]]] = []
    for name, kernel in graph.kernels.items():
        ports = _selectable_ports(kernel)
        if ports:
            choices.append((name, ports))
    cases: list[ModeCase] = []
    truncated = False
    if choices:
        names = [name for name, _ in choices]
        pools = [ports for _, ports in choices]
        for combo in itertools.product(*pools):
            if len(cases) >= limit:
                truncated = True
                break
            selections = dict(zip(names, combo))
            restricted = graph
            for kernel_name, port in selections.items():
                kernel = graph.node(kernel_name)
                keep = [p.name for p in kernel.ports.values()
                        if p.kind.is_control()
                        or p.name == port
                        or (port in {q.name for q in kernel.data_inputs}
                            and p.name in {q.name for q in kernel.data_outputs})
                        or (port in {q.name for q in kernel.data_outputs}
                            and p.name in {q.name for q in kernel.data_inputs})]
                restricted = restrict_to_selection(restricted, kernel_name, keep)
            report = check_consistency(restricted)
            cases.append(
                ModeCase(
                    selections=selections,
                    consistent=report.consistent,
                    reason=report.reason,
                )
            )
    return ModeEnumeration(
        full_graph_consistent=full.consistent,
        cases=cases,
        truncated=truncated,
    )
