"""Kernel modes and control tokens (Definition 2 of the paper).

A kernel with a control port waits for one *control token* per firing;
the token tells it in which mode to operate.  The paper defines four
mode families:

* select **one** of the data inputs (outputs),
* select **more than one** data input (output),
* select the available data input with the **highest priority**
  (optionally "at a given deadline" when driven by a clock actor),
* **wait** until all data inputs are available.

A :class:`ControlToken` pairs a :class:`Mode` with the concrete port
selection it applies to.  Unselected ports are *rejected*: their tokens
are consumed-and-discarded (or their firings cancelled by the ADF,
Sec. III-D), which is what lets TPDF drop entire data paths at runtime
without breaking the static guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Mode(Enum):
    """The mode families available to TPDF kernels (Def. 2)."""

    #: Select exactly one data input (or output) port.
    SELECT_ONE = "select_one"
    #: Select a strict subset of size > 1 of the data ports.
    SELECT_MANY = "select_many"
    #: Select the available input with the highest priority ``alpha``;
    #: combined with a clock this yields "best result by the deadline".
    HIGHEST_PRIORITY = "highest_priority"
    #: Plain dataflow behaviour: wait until *all* data inputs are
    #: available (the default for kernels without a control port).
    WAIT_ALL = "wait_all"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class ControlToken:
    """One token carried by a control channel.

    Attributes
    ----------
    mode:
        The mode the receiving kernel must fire in.
    selection:
        Port names the mode applies to (empty for
        :attr:`Mode.WAIT_ALL` and for :attr:`Mode.HIGHEST_PRIORITY`,
        where the selection is resolved dynamically from priorities and
        availability).
    deadline:
        Optional model-time deadline attached by clock actors; a
        transaction kernel firing in ``HIGHEST_PRIORITY`` mode commits
        to the best available input when this time is reached.
    """

    mode: Mode
    selection: tuple[str, ...] = field(default=())
    deadline: float | None = None

    def __post_init__(self):
        if self.mode is Mode.SELECT_ONE and len(self.selection) != 1:
            raise ValueError(
                f"SELECT_ONE requires exactly one selected port, got {self.selection!r}"
            )
        if self.mode is Mode.SELECT_MANY and len(self.selection) < 2:
            raise ValueError(
                f"SELECT_MANY requires at least two selected ports, got {self.selection!r}"
            )
        if self.mode in (Mode.WAIT_ALL,) and self.selection:
            raise ValueError("WAIT_ALL carries no port selection")

    def selects(self, port: str) -> bool:
        """Does this token enable the given port?

        ``WAIT_ALL`` enables everything; ``HIGHEST_PRIORITY`` defers the
        decision to runtime availability, so statically every port is
        potentially enabled.
        """
        if self.mode in (Mode.WAIT_ALL, Mode.HIGHEST_PRIORITY):
            return True
        return port in self.selection

    def __str__(self) -> str:
        body = str(self.mode)
        if self.selection:
            body += "(" + ",".join(self.selection) + ")"
        if self.deadline is not None:
            body += f"@{self.deadline}"
        return body


def select_one(port: str, deadline: float | None = None) -> ControlToken:
    """Shorthand for a ``SELECT_ONE`` token."""
    return ControlToken(Mode.SELECT_ONE, (port,), deadline)


def select_many(*ports: str, deadline: float | None = None) -> ControlToken:
    """Shorthand for a ``SELECT_MANY`` token."""
    return ControlToken(Mode.SELECT_MANY, tuple(ports), deadline)


def highest_priority(deadline: float | None = None) -> ControlToken:
    """Shorthand for a ``HIGHEST_PRIORITY`` token (deadline optional)."""
    return ControlToken(Mode.HIGHEST_PRIORITY, (), deadline)


def wait_all() -> ControlToken:
    """Shorthand for a ``WAIT_ALL`` token."""
    return ControlToken(Mode.WAIT_ALL)
