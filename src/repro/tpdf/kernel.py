"""TPDF kernels and control actors (Definition 2).

*Kernels* play the role CSDF actors do: iterated computations with
cyclic (possibly parametric) rates.  A kernel may own **at most one
control port** (the paper's simplifying assumption); a kernel without
one always operates in plain dataflow mode (``WAIT_ALL``).

*Control actors* form the disjoint set ``G``.  They fire like dataflow
actors (wait for ``Rg`` tokens on every input), perform a decision, and
emit control tokens on control output ports.  Their significance is
semantic: control channels may *only* originate at control actors, and
the scheduler gives them the highest priority (Sec. III-D).

Rates are per-port rate sequences, with optional per-mode overrides
(``Rk : Mk x (Ik u Ck u Ok) x N -> N``).  The static analyses use the
*full* rates (every edge present — Sec. III-A argues this is the safe
over-approximation); the mode overrides drive the dynamic simulator and
the ADF pruning.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..csdf.actor import ExecTime
from ..csdf.rates import RateLike, RateSequence, lcm_int
from ..errors import GraphConstructionError
from .modes import ControlToken, Mode
from .ports import Port, PortKind


class Node:
    """Common behaviour of kernels and control actors."""

    def __init__(self, name: str, exec_time: ExecTime = 1.0, function: Callable | None = None):
        if not name:
            raise ValueError("node name must be non-empty")
        if isinstance(exec_time, (int, float)):
            times: tuple[float, ...] = (float(exec_time),)
        else:
            times = tuple(float(t) for t in exec_time)
        if not times or any(t < 0 for t in times):
            raise ValueError(f"node {name!r}: invalid execution times {times}")
        self.name = name
        self._exec_times = times
        self.function = function
        self._ports: dict[str, Port] = {}
        #: Free-form annotations (builtin kind, clock period, vote arity...).
        self.meta: dict = {}
        #: Owning graph; set when the node is registered so port-level
        #: mutations (new ports, rate edits) invalidate the graph's
        #: analysis caches.  Graph-level mutators bump on their own.
        self._graph = None

    # -- ports -----------------------------------------------------------
    def _add_port(self, port: Port) -> Port:
        if port.name in self._ports:
            raise GraphConstructionError(
                f"node {self.name!r}: duplicate port name {port.name!r}"
            )
        self._ports[port.name] = port
        port._owner = self
        self._touch()
        return port

    def _touch(self) -> None:
        """Bump the owning graph's analysis version (port added or a
        port's rates edited): a node mutation changes ``tau`` and the
        balance equations, so every memoized analysis is stale."""
        if self._graph is not None:
            from ..cache import bump_version

            bump_version(self._graph, kind="structural", scope=(self.name,))

    @property
    def ports(self) -> dict[str, Port]:
        return dict(self._ports)

    def port(self, name: str) -> Port:
        if name not in self._ports:
            raise KeyError(f"node {self.name!r} has no port {name!r}")
        return self._ports[name]

    def ports_of_kind(self, kind: PortKind) -> list[Port]:
        return [p for p in self._ports.values() if p.kind is kind]

    @property
    def data_inputs(self) -> list[Port]:
        return self.ports_of_kind(PortKind.DATA_IN)

    @property
    def data_outputs(self) -> list[Port]:
        return self.ports_of_kind(PortKind.DATA_OUT)

    # -- timing -----------------------------------------------------------
    def exec_time(self, firing: int = 0) -> float:
        return self._exec_times[firing % len(self._exec_times)]

    @property
    def exec_times(self) -> tuple[float, ...]:
        return self._exec_times

    # -- cyclic structure ---------------------------------------------------
    def tau(self) -> int:
        """Cycle length: lcm over all port rate sequences and exec times."""
        length = len(self._exec_times)
        for port in self._ports.values():
            length = lcm_int(length, len(port.rates))
        return length

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"

    def __str__(self) -> str:
        return self.name


class Kernel(Node):
    """A TPDF computation kernel (element of the set ``K``)."""

    def __init__(
        self,
        name: str,
        exec_time: ExecTime = 1.0,
        function: Callable | None = None,
        modes: tuple[Mode, ...] = (Mode.WAIT_ALL,),
    ):
        super().__init__(name, exec_time, function)
        self.modes: tuple[Mode, ...] = tuple(modes)
        #: mode -> {port name -> RateSequence} overriding the port rates.
        self._mode_rates: dict[Mode, dict[str, RateSequence]] = {}

    # -- port construction --------------------------------------------------
    def add_input(self, name: str, rates: RateLike = 1, priority: int = 0) -> Port:
        return self._add_port(Port(name, PortKind.DATA_IN, rates, priority))

    def add_output(self, name: str, rates: RateLike = 1, priority: int = 0) -> Port:
        return self._add_port(Port(name, PortKind.DATA_OUT, rates, priority))

    def add_control_port(self, name: str = "ctrl", rates: RateLike = 1) -> Port:
        if self.control_port() is not None:
            raise GraphConstructionError(
                f"kernel {self.name!r} already has a control port: the paper "
                f"assumes at most one control port per kernel (Sec. II-B)"
            )
        return self._add_port(Port(name, PortKind.CONTROL_IN, rates))

    def control_port(self) -> Port | None:
        ports = self.ports_of_kind(PortKind.CONTROL_IN)
        return ports[0] if ports else None

    def has_control(self) -> bool:
        return self.control_port() is not None

    # -- mode-dependent rates ------------------------------------------------
    def set_mode_rates(self, mode: Mode, rates: Mapping[str, RateLike]) -> None:
        """Override port rates for one mode (the ``Rk(m, ., .)`` table)."""
        if mode not in self.modes:
            raise GraphConstructionError(
                f"kernel {self.name!r} does not declare mode {mode}"
            )
        table: dict[str, RateSequence] = {}
        for port_name, value in rates.items():
            self.port(port_name)  # raises on unknown ports
            table[port_name] = RateSequence.of(value)
        self._mode_rates[mode] = table
        self._touch()

    def rate(self, port_name: str, firing: int = 0, mode: Mode | None = None):
        """``Rk(m, port, n)``: rate of the port for the given firing/mode."""
        port = self.port(port_name)
        if mode is not None and mode in self._mode_rates:
            override = self._mode_rates[mode].get(port_name)
            if override is not None:
                return override.rate(firing)
        return port.rates.rate(firing)

    def effective_ports(self, token: ControlToken) -> list[Port]:
        """Data ports enabled by the given control token."""
        return [
            port
            for port in self._ports.values()
            if not port.kind.is_control() and token.selects(port.name)
        ]


DecisionFn = Callable[[int, list], ControlToken]


class ControlActor(Node):
    """A TPDF control actor (element of the set ``G``).

    ``decision`` maps ``(firing index, consumed data tokens)`` to the
    :class:`ControlToken` emitted on every control output of that
    firing.  When omitted the actor always emits ``WAIT_ALL`` — a
    degenerate but valid controller.
    """

    def __init__(
        self,
        name: str,
        exec_time: ExecTime = 0.0,
        decision: DecisionFn | None = None,
    ):
        super().__init__(name, exec_time, function=None)
        self.decision = decision

    def add_input(self, name: str, rates: RateLike = 1, priority: int = 0) -> Port:
        return self._add_port(Port(name, PortKind.DATA_IN, rates, priority))

    def add_control_input(self, name: str, rates: RateLike = 1) -> Port:
        """Control-in port: control actors can themselves be controlled."""
        return self._add_port(Port(name, PortKind.CONTROL_IN, rates))

    def add_control_output(self, name: str, rates: RateLike = 1) -> Port:
        return self._add_port(Port(name, PortKind.CONTROL_OUT, rates))

    def control_outputs(self) -> list[Port]:
        return self.ports_of_kind(PortKind.CONTROL_OUT)

    def decide(self, firing: int, inputs: list) -> ControlToken:
        """Evaluate the decision function for one firing."""
        if self.decision is None:
            return ControlToken(Mode.WAIT_ALL)
        return self.decision(firing, inputs)
