"""Graph transformations — the virtual-actor rewrite of Fig. 3.

The boundedness proof (Thm. 2) handles modes that choose between data
*outputs* (Select-duplicate) by rewriting them to the input-choosing
case: a virtual control actor ``C`` receives a signal token from the
select-duplicate kernel ``B`` and steers a virtual transaction kernel
``F`` that consumes the downstream results, enabling exactly the data
paths ``B`` chose.  The rewritten graph chooses between data *inputs*
only, for which boundedness is already established.

:func:`virtualize_select_duplicate` implements that rewrite
generically; tests verify the result is consistent and rate safe and
that its repetition vector restricts to the original one.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import GraphConstructionError
from .builtins import transaction
from .graph import TPDFGraph
from .kernel import ControlActor, Kernel


def copy_graph(graph: TPDFGraph, name: str | None = None) -> TPDFGraph:
    """Deep-copy the structure of a TPDF graph (nodes, ports, channels)."""
    clone = TPDFGraph(name or graph.name, parameters=graph.parameters.values())
    for node_name in graph.node_names():
        node = graph.node(node_name)
        if isinstance(node, ControlActor):
            new = clone.add_control_actor(
                node_name, exec_time=node.exec_times, decision=node.decision
            )
        else:
            assert isinstance(node, Kernel)
            new = clone.add_kernel(
                node_name,
                exec_time=node.exec_times,
                function=node.function,
                modes=node.modes,
            )
        new.meta.update(node.meta)
        for port in node.ports.values():
            if isinstance(new, ControlActor):
                if port.kind.name == "DATA_IN":
                    new.add_input(port.name, port.rates, priority=port.priority)
                elif port.kind.name == "CONTROL_IN":
                    new.add_control_input(port.name, port.rates)
                else:
                    new.add_control_output(port.name, port.rates)
            else:
                if port.kind.name == "DATA_IN":
                    new.add_input(port.name, port.rates, priority=port.priority)
                elif port.kind.name == "DATA_OUT":
                    new.add_output(port.name, port.rates, priority=port.priority)
                else:
                    new.add_control_port(port.name, port.rates)
    for channel in graph.channels.values():
        clone.connect(
            (channel.src, channel.src_port),
            (channel.dst, channel.dst_port),
            name=channel.name,
            initial_tokens=channel.initial_tokens,
        )
    return clone


def virtualize_select_duplicate(
    graph: TPDFGraph,
    kernel_name: str,
    branch_sinks: Mapping[str, str] | None = None,
    collector_name: str | None = None,
    controller_name: str | None = None,
) -> TPDFGraph:
    """Rewrite output-selection into input-selection (Fig. 3).

    Parameters
    ----------
    graph:
        The graph containing a select-duplicate kernel.
    kernel_name:
        The kernel ``B`` whose output choice should be virtualized.
    branch_sinks:
        Maps each output port of ``B`` to the *last* actor of that
        branch whose result the virtual collector should consume.
        Defaults to the direct consumers of ``B``'s outputs.
    collector_name, controller_name:
        Names for the virtual transaction kernel ``F`` and virtual
        control actor ``C`` (default ``<B>_vF`` / ``<B>_vC``).

    Returns a **new** graph; the input graph is left untouched.
    """
    kernel = graph.node(kernel_name)
    if not isinstance(kernel, Kernel):
        raise GraphConstructionError(f"{kernel_name!r} is not a kernel")
    outputs = kernel.data_outputs
    if len(outputs) < 2:
        raise GraphConstructionError(
            f"{kernel_name!r} has {len(outputs)} outputs; the Fig. 3 rewrite "
            f"needs a select-duplicate with at least two"
        )

    clone = copy_graph(graph, name=f"{graph.name}/virtualized")
    controller = controller_name or f"{kernel_name}_vC"
    collector = collector_name or f"{kernel_name}_vF"

    # Resolve one sink actor per branch.
    sinks: dict[str, str] = {}
    for port in outputs:
        feeds = [c for c in graph.out_channels(kernel_name) if c.src_port == port.name]
        if not feeds:
            raise GraphConstructionError(
                f"output {kernel_name}.{port.name} is not connected"
            )
        default_sink = feeds[0].dst
        sinks[port.name] = (
            branch_sinks.get(port.name, default_sink) if branch_sinks else default_sink
        )

    # Virtual controller: fed by a fresh signal output on B, one token
    # per firing; emits one control token per firing to the collector.
    vc = clone.add_control_actor(controller, exec_time=0.0)
    vc.add_input("signal", 1)
    vc.add_control_output("ctrl", 1)
    b = clone.node(kernel_name)
    assert isinstance(b, Kernel)
    b.add_output("vsignal", 1)
    clone.connect((kernel_name, "vsignal"), (controller, "signal"),
                  name=f"{kernel_name}_vsig")

    # Virtual collector: a transaction kernel consuming one local-
    # iteration's worth of tokens from each branch sink.
    vf = transaction(
        clone,
        collector,
        inputs=len(outputs),
        input_names=[f"from_{sinks[port.name]}" for port in outputs],
        action="select",
        exec_time=0.0,
    )
    for port in outputs:
        sink = sinks[port.name]
        sink_node = clone.node(sink)
        if not isinstance(sink_node, Kernel):
            raise GraphConstructionError(f"branch sink {sink!r} is not a kernel")
        out_name = f"vout_{collector}"
        if out_name not in sink_node.ports:
            sink_node.add_output(out_name, 1)
        clone.connect((sink, out_name), (collector, f"from_{sink}"),
                      name=f"v_{sink}_{collector}")
    clone.connect((controller, "ctrl"), (collector, "ctrl"),
                  name=f"v_{controller}_{collector}")
    vf.meta["virtual"] = True
    vc.meta["virtual"] = True
    return clone


def restrict_to_selection(
    graph: TPDFGraph,
    kernel_name: str,
    selected_ports: Sequence[str],
) -> TPDFGraph:
    """Project the graph onto one mode: drop the channels hanging off
    the *unselected* data ports of ``kernel_name`` (and any actors left
    unreachable).  Models the topology after a SELECT_ONE/SELECT_MANY
    decision; used to validate that consistency of the full graph
    implies consistency of every restriction (Sec. III-A).
    """
    kernel = graph.node(kernel_name)
    selected = set(selected_ports)
    unknown = selected - set(kernel.ports)
    if unknown:
        raise GraphConstructionError(f"unknown ports on {kernel_name!r}: {sorted(unknown)}")
    dropped_channels = {
        channel.name
        for channel in graph.channels.values()
        if (channel.src == kernel_name and channel.src_port not in selected
            and not graph.node(channel.src).port(channel.src_port).kind.is_control())
        or (channel.dst == kernel_name and channel.dst_port not in selected
            and not graph.node(channel.dst).port(channel.dst_port).kind.is_control())
    }
    clone = TPDFGraph(f"{graph.name}/restricted", parameters=graph.parameters.values())
    kept_channels = [
        channel for channel in graph.channels.values()
        if channel.name not in dropped_channels
    ]
    kept_nodes = {channel.src for channel in kept_channels} | {
        channel.dst for channel in kept_channels
    }
    template = copy_graph(graph)
    for node_name in graph.node_names():
        if node_name not in kept_nodes:
            continue
        node = template.node(node_name)
        # Adopt the copied node: its invalidation back-reference must
        # target the graph it now lives in, not the discarded template,
        # or port-level mutations would bump the wrong version.
        node._graph = clone
        if isinstance(node, ControlActor):
            clone._controls[node_name] = node  # reuse copied node objects
        else:
            clone._kernels[node_name] = node
    for channel in kept_channels:
        clone.connect(
            (channel.src, channel.src_port),
            (channel.dst, channel.dst_port),
            name=channel.name,
            initial_tokens=channel.initial_tokens,
        )
    return clone
