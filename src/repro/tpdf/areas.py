"""Control areas and local solutions (Definitions 3 and 4).

The *control area* of a control actor ``g`` is the region of the graph
it reconfigures::

    Area(g) = prec(g) u succ(g) u infl(g)

``prec``/``succ`` are the immediate producers/consumers of ``g`` and
``infl(g)`` the actors lying between them.  The paper states
``infl(g) = (succ(prec(g)) ∩ prec(succ(g))) \\ {g}``; we implement the
transitive reading — nodes reachable from ``prec(g)`` that also reach
``succ(g)`` — which coincides with the one-step formula on the paper's
examples (Example 3: ``Area(C) = {B, D, E, F}`` in Fig. 2) and captures
"all other influenced actors between these actors" for deeper pipelines
(e.g. the bracketed region of the OFDM case study).

The *local solution* of an actor inside a subset ``Z`` is its
repetition count per **local** iteration::

    q^L_ai = q_ai / qG(Z),   qG(Z) = gcd over Z of (q_ai / tau_i)

Local solutions are the bridge between parametric global behaviour and
concrete local behaviour: for Fig. 2, ``q = [2, 2p, p, p, 2p, 2p]``
globally, but within ``Area(C)`` the local solution ``B^2 C D E^2 F^2``
is parameter-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import networkx as nx

from ..errors import AnalysisError
from ..symbolic import Poly, poly_gcd_many
from .consistency import repetition_vector
from .graph import TPDFGraph


def predecessors(graph: TPDFGraph, node: str) -> set[str]:
    """``prec(g)``: nodes with a channel into ``g``."""
    return {channel.src for channel in graph.in_channels(node)}


def successors(graph: TPDFGraph, node: str) -> set[str]:
    """``succ(g)``: nodes fed by a channel from ``g``."""
    return {channel.dst for channel in graph.out_channels(node)}


def influenced(graph: TPDFGraph, control: str) -> set[str]:
    """``infl(g)``: actors strictly between ``prec(g)`` and ``succ(g)``.

    Computed as the nodes reachable from ``prec(g)`` that also reach
    ``succ(g)``, minus ``g`` itself and the prec/succ endpoints (which
    Definition 3 already includes in the area separately).
    """
    nxg = graph.to_networkx()
    prec = predecessors(graph, control)
    succ = successors(graph, control)
    reachable: set[str] = set()
    for src in prec:
        reachable |= nx.descendants(nxg, src) | {src}
    coreachable: set[str] = set()
    for dst in succ:
        coreachable |= nx.ancestors(nxg, dst) | {dst}
    return (reachable & coreachable) - {control} - prec - succ


def control_area(graph: TPDFGraph, control: str) -> set[str]:
    """``Area(g)`` (Definition 3)."""
    if not graph.is_control_actor(control):
        raise AnalysisError(f"{control!r} is not a control actor")
    return predecessors(graph, control) | successors(graph, control) | influenced(graph, control)


@dataclass
class LocalSolution:
    """Local repetition counts of a subset ``Z`` (Definition 4)."""

    subset: tuple[str, ...]
    #: ``qG(Z)``: the global-per-local iteration ratio.
    factor: Poly
    #: ``q^L_ai`` per actor; parameter-free whenever the factor absorbs
    #: the parametric part of the global solution.
    counts: dict[str, Poly]

    def is_concrete(self) -> bool:
        return all(count.is_integer_const() for count in self.counts.values())

    def as_ints(self) -> dict[str, int]:
        if not self.is_concrete():
            raise AnalysisError(
                f"local solution of {self.subset} is parametric: {self}"
            )
        return {name: int(count.const_value()) for name, count in self.counts.items()}

    def __str__(self) -> str:
        body = " ".join(
            name if count == Poly.const(1) else f"{name}^{count}"
            for name, count in self.counts.items()
        )
        return f"[{body}] x {self.factor}"


def local_solution(graph: TPDFGraph, subset: Iterable[str]) -> LocalSolution:
    """Compute ``q^L`` for a subset of actors (Definition 4).

    Uses ``q_ai / tau_i = r_ai``, so ``qG(Z) = gcd(r_ai)`` and
    ``q^L_ai = tau_i * r_ai / qG(Z)``.
    """
    subset = tuple(subset)
    if not subset:
        raise AnalysisError("local solution of an empty subset")
    q = repetition_vector(graph)
    missing = [name for name in subset if name not in q]
    if missing:
        raise AnalysisError(f"unknown actors in subset: {missing}")
    csdf = graph.as_csdf()
    r = {name: q[name].try_div(Poly.const(csdf.tau(name))) for name in subset}
    factor = poly_gcd_many(r.values())
    if factor.is_zero():
        raise AnalysisError(f"degenerate local solution for {subset}")
    counts: dict[str, Poly] = {}
    for name in subset:
        quotient = q[name].try_div(factor)
        if quotient is None:
            raise AnalysisError(
                f"qG(Z) = {factor} does not divide q_{name} = {q[name]}"
            )
        counts[name] = quotient
    return LocalSolution(subset=subset, factor=factor, counts=counts)


def area_local_solution(graph: TPDFGraph, control: str) -> LocalSolution:
    """Local solution of ``Area(g)`` — what rate safety evaluates."""
    return local_solution(graph, sorted(control_area(graph, control)))
