"""Legacy lint facade over the unified diagnostics engine.

Historically this module owned seven TPDF-local structural checks with
string codes (``dangling-port``...).  Those passes now live in
:mod:`repro.diagnostics` with stable catalog codes and severities;
this facade keeps the original API — :func:`lint` returning
:class:`LintWarning` rows with the legacy codes, and
:func:`assert_clean` — for callers and tests written against it.  New
code should call :func:`repro.diagnostics.run_diagnostics` directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import TPDFGraph


@dataclass(frozen=True)
class LintWarning:
    code: str
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.subject}: {self.message}"


#: Catalog code -> historical string code.  Only these surface through
#: the legacy API; everything else (RATE/DEAD/CTRL002...) is new
#: ground owned by the diagnostics engine.
_LEGACY_CODES = {
    "STRUCT001": "dangling-port",
    "STRUCT004": "zero-rate-port",
    "CTRL001": "unfed-control-port",
    "CTRL003": "ineffective-control",
    "STRUCT002": "unreachable",
    "BIND001": "undeclared-parameter",
    "STRUCT003": "clock-in-cycle",
}


def lint(graph: TPDFGraph) -> list[LintWarning]:
    """Run the structural checks; returns warnings (possibly empty)
    with the historical string codes."""
    from ..diagnostics import run_diagnostics

    return [
        LintWarning(_LEGACY_CODES[d.code], d.subject, d.message)
        for d in run_diagnostics(graph)
        if d.code in _LEGACY_CODES
    ]


def assert_clean(graph: TPDFGraph) -> None:
    """Raise ``ValueError`` listing all warnings when the graph is not
    lint-clean (convenience for strict pipelines)."""
    warnings = lint(graph)
    if warnings:
        body = "\n  ".join(str(w) for w in warnings)
        raise ValueError(f"graph {graph.name!r} has lint warnings:\n  {body}")
