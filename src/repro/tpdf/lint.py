"""Structural diagnostics for TPDF graphs.

`check_*` analyses answer "is this graph correct?"; :func:`lint`
answers "is this graph *suspicious*?" — the well-formed-but-probably-
wrong patterns a toolchain should warn about before burning analysis
time:

* dangling ports (declared but never connected),
* kernels with a control port that no control actor feeds,
* control actors whose tokens nobody receives,
* unreachable actors (no path from any source),
* undeclared parameters,
* rate sequences that are all-zero on some port (the port can never
  move a token),
* clock actors inside feedback cycles (their time-triggered firings
  would race the data path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import networkx as nx

from .builtins import ClockActor
from .graph import TPDFGraph


@dataclass(frozen=True)
class LintWarning:
    code: str
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.subject}: {self.message}"


def lint(graph: TPDFGraph) -> list[LintWarning]:
    """Run all structural checks; returns warnings (possibly empty)."""
    return list(_iter_warnings(graph))


def _iter_warnings(graph: TPDFGraph) -> Iterator[LintWarning]:
    connected_ports = set()
    for channel in graph.channels.values():
        connected_ports.add((channel.src, channel.src_port))
        connected_ports.add((channel.dst, channel.dst_port))

    for name in graph.node_names():
        node = graph.node(name)
        for port in node.ports.values():
            if (name, port.name) not in connected_ports:
                yield LintWarning(
                    "dangling-port", f"{name}.{port.name}",
                    f"{port.kind} port is declared but never connected",
                )
            if all(entry.is_zero() for entry in port.rates):
                yield LintWarning(
                    "zero-rate-port", f"{name}.{port.name}",
                    "every phase of the rate sequence is 0; the port can "
                    "never move a token",
                )

    for name, kernel in graph.kernels.items():
        port = kernel.control_port()
        if port is not None and (name, port.name) not in connected_ports:
            yield LintWarning(
                "unfed-control-port", f"{name}.{port.name}",
                "kernel declares a control port but no control actor "
                "feeds it; it can never fire",
            )

    for name in graph.controls:
        outs = graph.out_channels(name)
        if not outs:
            yield LintWarning(
                "ineffective-control", name,
                "control actor has no outgoing control channel; its "
                "decisions reach nobody",
            )

    nxg = graph.to_networkx()
    sources = {n for n in nxg.nodes
               if nxg.in_degree(n) == 0
               or isinstance(graph.node(n), ClockActor)}
    reachable = set(sources)
    for source in sources:
        reachable |= nx.descendants(nxg, source)
    for name in graph.node_names():
        if name not in reachable:
            yield LintWarning(
                "unreachable", name,
                "no path from any source or clock reaches this actor",
            )

    for undeclared in sorted(graph.undeclared_parameters()):
        yield LintWarning(
            "undeclared-parameter", undeclared,
            "parameter used in rates but not declared on the graph "
            "(domain unknown)",
        )

    for scc in nx.strongly_connected_components(nxg):
        clocks = [n for n in scc if isinstance(graph.node(n), ClockActor)]
        if clocks and (len(scc) > 1 or nxg.has_edge(clocks[0], clocks[0])):
            yield LintWarning(
                "clock-in-cycle", clocks[0],
                "clock actor participates in a feedback cycle; its "
                "time-triggered firings race the data path",
            )


def assert_clean(graph: TPDFGraph) -> None:
    """Raise ``ValueError`` listing all warnings when the graph is not
    lint-clean (convenience for strict pipelines)."""
    warnings = lint(graph)
    if warnings:
        body = "\n  ".join(str(w) for w in warnings)
        raise ValueError(f"graph {graph.name!r} has lint warnings:\n  {body}")
