"""Boundedness (Theorem 2): consistent + rate safe + live => bounded.

The theorem's content: under the three premises every (local and
global) iteration returns the graph to its initial channel state, so
any periodic schedule runs in bounded memory.  This module combines the
three analyses into one verdict and, for concrete parameter
valuations, derives actual per-channel buffer bounds by executing one
iteration (reusing the CSDF machinery on the full-graph abstraction —
a safe over-approximation of every mode-restricted topology).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..csdf.buffers import minimal_buffer_schedule, schedule_buffer_sizes
from ..csdf.schedule import find_sequential_schedule
from ..errors import BoundednessError
from ..symbolic import Poly
from .consistency import ConsistencyReport, check_consistency
from .graph import TPDFGraph
from .liveness import LivenessReport, check_liveness
from .safety import SafetyReport, check_rate_safety


@dataclass
class BoundednessReport:
    """Aggregate verdict of the three static analyses (Thm. 2)."""

    bounded: bool
    consistency: ConsistencyReport
    safety: SafetyReport
    liveness: LivenessReport
    reasons: list[str] = field(default_factory=list)

    @property
    def repetition(self) -> dict[str, Poly]:
        return self.consistency.repetition

    def __str__(self) -> str:
        head = (
            "bounded (consistent, rate safe, live)"
            if self.bounded
            else "NOT provably bounded: " + "; ".join(self.reasons)
        )
        return head


def check_boundedness(graph: TPDFGraph) -> BoundednessReport:
    """Run the full static analysis chain of Sec. III."""
    consistency = check_consistency(graph)
    reasons: list[str] = []
    if not consistency.consistent:
        reasons.append(f"rate inconsistent: {consistency.reason}")
    safety = check_rate_safety(graph)
    if not safety.safe:
        details = [str(check) for check in safety.violations()] + safety.undecided
        reasons.append("rate safety violated: " + "; ".join(details))
    liveness = check_liveness(graph) if consistency.consistent else LivenessReport(
        live=False, reason="skipped (inconsistent)"
    )
    if consistency.consistent and not liveness.live:
        reasons.append(f"not live: {liveness.reason}")
    return BoundednessReport(
        bounded=not reasons,
        consistency=consistency,
        safety=safety,
        liveness=liveness,
        reasons=reasons,
    )


def assert_bounded(graph: TPDFGraph) -> BoundednessReport:
    """Raise :class:`~repro.errors.BoundednessError` unless Theorem 2's
    premises hold."""
    report = check_boundedness(graph)
    if not report.bounded:
        raise BoundednessError(
            f"graph {graph.name!r} is not provably bounded: "
            + "; ".join(report.reasons)
        )
    return report


def buffer_bounds(
    graph: TPDFGraph,
    bindings: Mapping | None = None,
    minimize: bool = True,
) -> dict[str, int]:
    """Concrete per-channel buffer bounds for one iteration.

    ``minimize=True`` uses the greedy buffer-minimizing scheduler;
    otherwise the peaks of a grouped PASS are reported.  Either way the
    returned capacities are *sufficient* for periodic execution because
    the iteration is state-neutral (Thm. 2).
    """
    csdf = graph.as_csdf()
    if minimize:
        _, peaks = minimal_buffer_schedule(csdf, bindings)
        return peaks
    schedule = find_sequential_schedule(csdf, bindings)
    return schedule_buffer_sizes(csdf, schedule, bindings)
