"""Rate consistency of TPDF graphs (Sec. III-A).

The balance system is generated from the *fully connected* graph —
parametric rates kept symbolic, every mode's edges considered present.
The paper argues this over-approximation is safe: removing edges (a
mode rejecting inputs) only removes equations, so a solution of the
full system solves every reduced system.

On success the analysis yields the symbolic base solution ``r`` and
repetition vector ``q = P . r`` (Example 2: ``r = [2, 2p, p, p, 2p, p]``
and ``q = [2, 2p, p, p, 2p, 2p]`` for Fig. 2), plus a *symbolic
schedule string* such as ``A^2 B^2p C^p D^p E^2p F^2p`` used by the
benches to print the paper's schedules verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import networkx as nx

from ..cache import cached
from ..csdf import analysis as csdf_analysis
from ..errors import AnalysisError
from ..symbolic import InconsistentRatesError, Poly
from .graph import TPDFGraph


@dataclass
class ConsistencyReport:
    """Outcome of the rate-consistency analysis."""

    consistent: bool
    base: dict[str, Poly] = field(default_factory=dict)
    repetition: dict[str, Poly] = field(default_factory=dict)
    reason: str = ""

    def __str__(self) -> str:
        if not self.consistent:
            return f"inconsistent: {self.reason}"
        body = ", ".join(f"{name}: {poly}" for name, poly in self.repetition.items())
        return f"consistent; q = [{body}]"


def check_consistency(graph: TPDFGraph) -> ConsistencyReport:
    """Solve the symbolic balance equations of the full graph.

    Memoized per graph version: rate safety, liveness and the local
    solutions all re-enter through here, so one boundedness run asks
    for the same report four times.
    """
    return cached(graph, ("check_consistency",), lambda: _check_consistency(graph))


def _check_consistency(graph: TPDFGraph) -> ConsistencyReport:
    undeclared = graph.undeclared_parameters()
    if undeclared:
        raise AnalysisError(
            f"graph {graph.name!r} uses undeclared parameters: {sorted(undeclared)} "
            f"(declare them so their domains are known)"
        )
    csdf = graph.as_csdf()
    try:
        base = csdf_analysis.base_solution(csdf)
    except InconsistentRatesError as exc:
        return ConsistencyReport(consistent=False, reason=str(exc))
    repetition = {
        name: Poly.const(csdf.tau(name)) * base[name] for name in base
    }
    return ConsistencyReport(consistent=True, base=base, repetition=repetition)


def consistency_conditions(graph: TPDFGraph) -> list[Poly]:
    """Parameter constraints under which an inconsistent parametric
    graph *would* become consistent.

    Empty for always-consistent graphs.  Each returned polynomial must
    vanish: ``[p - 3]`` reads "consistent iff p = 3".  Useful as a
    design diagnostic when the balance equations only close for
    specific parameter relations.
    """
    from ..symbolic import consistency_conditions as solve_conditions

    csdf = graph.as_csdf()
    edges = []
    for channel in csdf.channels.values():
        if channel.is_selfloop():
            continue
        tau_src = csdf.tau(channel.src)
        tau_dst = csdf.tau(channel.dst)
        edges.append(
            (
                channel.src,
                channel.dst,
                channel.production.cumulative(tau_src),
                channel.consumption.cumulative(tau_dst),
            )
        )
    return solve_conditions(csdf.actor_names(), edges)


def repetition_vector(graph: TPDFGraph) -> dict[str, Poly]:
    """Symbolic repetition vector; raises when inconsistent."""
    report = check_consistency(graph)
    if not report.consistent:
        raise InconsistentRatesError(report.reason)
    return report.repetition


def concrete_repetition_vector(graph: TPDFGraph, bindings: Mapping) -> dict[str, int]:
    """Repetition vector evaluated at a parameter valuation."""
    return csdf_analysis.concrete_repetition_vector(graph.as_csdf(), bindings)


def symbolic_schedule_string(graph: TPDFGraph, order: list[str] | None = None) -> str:
    """Render ``q`` as a single-appearance schedule string.

    Actors are listed in topological order of the graph's condensation
    (sources first), matching the paper's presentation
    ``A^2 B^2p C^p D^p E^2p F^2p`` for Fig. 2.  This is a *notation* for
    the repetition counts; admissibility is established by the liveness
    analysis, not by this function.
    """
    q = repetition_vector(graph)
    if order is None:
        nxg = graph.to_networkx()
        condensed = nx.condensation(nxg)
        order = []
        for scc in nx.topological_sort(condensed):
            order.extend(sorted(condensed.nodes[scc]["members"]))
    parts = []
    for name in order:
        count = q[name]
        if count == Poly.const(1):
            parts.append(name)
        else:
            text = str(count)
            if " " in text:
                text = f"({text})"
            parts.append(f"{name}^{text}")
    return " ".join(parts)
