"""Liveness analysis of TPDF graphs (Sec. III-C).

A (C)SDF/TPDF graph can only deadlock through a directed cycle, and
TPDF's topology changes never *add* firing constraints (rejected tokens
merely go unused), so the analysis reduces to the cyclic parts:

1. find the non-trivial strongly connected components (cycles);
2. for each cycle ``Z``, compute the **local solution** ``q^L``
   (Def. 4) — for consistent graphs this is typically parameter-free
   even when the global repetition vector is parametric (Fig. 4(a):
   ``q^L_B = q^L_C = 2`` although ``q = [2, 2p, 2p]``);
3. schedule the cycle *in isolation* (external inputs assumed
   plentiful) for one local iteration by exhaustive symbolic
   execution.  Maximal execution strategies are complete for the
   monotonic CSDF firing rule, so interleaved schedules such as the
   paper's late schedule ``(B C C B)`` for Fig. 4(b) are found whenever
   any schedule exists;
4. **cluster** each live cycle into a single actor ``Omega`` whose
   external rates are the cycle's per-local-iteration totals (Fig. 4(c))
   — the clustered graph is acyclic and consistent, hence live, which
   lifts local liveness to the whole graph.

When a cycle's local solution (or its internal rates) stays parametric,
the cycle is validated on sampled parameter valuations and reported as
live-by-witness; the report records the witnesses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import networkx as nx

from ..csdf.graph import CSDFGraph
from ..csdf.schedule import SequentialSchedule, find_sequential_schedule
from ..errors import AnalysisError, DeadlockError
from ..symbolic import Poly
from .areas import LocalSolution, local_solution
from .consistency import repetition_vector
from .graph import TPDFGraph


@dataclass
class CycleVerdict:
    """Liveness result for one strongly connected cycle."""

    actors: tuple[str, ...]
    local: LocalSolution
    live: bool
    #: A valid local schedule (for the first witness when parametric).
    schedule: SequentialSchedule | None = None
    #: True when decided symbolically (concrete local solution & rates).
    decided_symbolically: bool = True
    #: Parameter valuations used when sampling was needed.
    witnesses: list[dict[str, int]] = field(default_factory=list)
    reason: str = ""

    def __str__(self) -> str:
        verdict = "live" if self.live else "DEADLOCK"
        extra = "" if self.decided_symbolically else f" (witnesses: {self.witnesses})"
        sched = f"; local schedule: {self.schedule}" if self.schedule else ""
        return f"cycle {self.actors}: {verdict}{extra}{sched}"


@dataclass
class LivenessReport:
    live: bool
    cycles: list[CycleVerdict] = field(default_factory=list)
    reason: str = ""

    def __str__(self) -> str:
        head = "live" if self.live else f"NOT live: {self.reason}"
        return "\n".join([head] + [f"  {verdict}" for verdict in self.cycles])


def cyclic_components(graph: TPDFGraph) -> list[tuple[str, ...]]:
    """Non-trivial SCCs (size > 1, or a single node with a self-loop)."""
    nxg = graph.to_networkx()
    out: list[tuple[str, ...]] = []
    for component in nx.strongly_connected_components(nxg):
        members = tuple(sorted(component))
        if len(members) > 1 or nxg.has_edge(members[0], members[0]):
            out.append(members)
    return out


def cycle_subgraph(graph: TPDFGraph, subset: Iterable[str]) -> CSDFGraph:
    """CSDF abstraction of the cycle with external channels removed
    (external inputs are assumed always available during the local
    iteration — they cannot cause the *cycle* to deadlock)."""
    subset = set(subset)
    full = graph.as_csdf()
    sub = CSDFGraph(f"{graph.name}/cycle({','.join(sorted(subset))})")
    for name in sorted(subset):
        actor = full.actor(name)
        sub.add_actor(name, exec_time=actor.exec_times)
    for channel in full.channels.values():
        if channel.src in subset and channel.dst in subset:
            sub.add_channel(
                channel.name,
                channel.src,
                channel.dst,
                production=channel.production,
                consumption=channel.consumption,
                initial_tokens=channel.initial_tokens,
            )
    return sub


def _sample_bindings(graph: TPDFGraph, names: set[str], limit: int = 8) -> list[dict[str, int]]:
    """Cartesian samples of the relevant parameter domains (capped)."""
    relevant = [graph.parameters[name] for name in sorted(names) if name in graph.parameters]
    if not relevant:
        return [{}]
    pools = [param.sample_values(3) for param in relevant]
    combos = []
    for values in itertools.product(*pools):
        combos.append({param.name: value for param, value in zip(relevant, values)})
        if len(combos) >= limit:
            break
    return combos


def _schedule_cycle(
    sub: CSDFGraph, counts: Mapping[str, int], bindings: Mapping | None
) -> SequentialSchedule:
    return find_sequential_schedule(
        sub,
        bindings=bindings,
        policy="round_robin",
        repetitions=dict(counts),
    )


def check_cycle(graph: TPDFGraph, subset: tuple[str, ...]) -> CycleVerdict:
    """Decide liveness of one cycle via its local iteration."""
    local = local_solution(graph, subset)
    sub = cycle_subgraph(graph, subset)
    parametric = bool(sub.parameters()) or not local.is_concrete()
    if not parametric:
        counts = local.as_ints()
        try:
            schedule = _schedule_cycle(sub, counts, None)
        except DeadlockError as exc:
            return CycleVerdict(
                actors=subset, local=local, live=False, reason=str(exc)
            )
        return CycleVerdict(actors=subset, local=local, live=True, schedule=schedule)

    names = sub.parameters() | {
        v for count in local.counts.values() for v in count.variables()
    }
    witnesses = _sample_bindings(graph, names)
    first_schedule: SequentialSchedule | None = None
    for bindings in witnesses:
        counts = {
            name: count.evaluate_int(bindings) for name, count in local.counts.items()
        }
        try:
            schedule = _schedule_cycle(sub, counts, bindings)
        except DeadlockError as exc:
            return CycleVerdict(
                actors=subset,
                local=local,
                live=False,
                decided_symbolically=False,
                witnesses=witnesses,
                reason=f"deadlocks under {bindings}: {exc}",
            )
        if first_schedule is None:
            first_schedule = schedule
    return CycleVerdict(
        actors=subset,
        local=local,
        live=True,
        schedule=first_schedule,
        decided_symbolically=False,
        witnesses=witnesses,
    )


def check_liveness(graph: TPDFGraph) -> LivenessReport:
    """Full liveness analysis: every cycle live + consistency.

    Consistency is re-verified here because liveness is only meaningful
    relative to a repetition vector.
    """
    try:
        repetition_vector(graph)
    except Exception as exc:  # InconsistentRatesError or AnalysisError
        return LivenessReport(live=False, reason=f"not consistent: {exc}")
    verdicts = [check_cycle(graph, subset) for subset in cyclic_components(graph)]
    dead = [v for v in verdicts if not v.live]
    if dead:
        return LivenessReport(
            live=False,
            cycles=verdicts,
            reason="; ".join(v.reason for v in dead),
        )
    return LivenessReport(live=True, cycles=verdicts)


def cluster_cycle(
    csdf: CSDFGraph,
    subset: Iterable[str],
    counts: Mapping[str, Poly],
    name: str = "Omega",
) -> CSDFGraph:
    """Replace a cycle by a single actor ``Omega`` (the clustering of
    Sec. III-C / Fig. 4(c)).

    External channel rates on ``Omega`` become the per-local-iteration
    totals ``Y_i(q^L_i)`` / ``X_i(q^L_i)``; internal channels vanish.
    One firing of ``Omega`` stands for one local iteration of the cycle.
    """
    subset = set(subset)
    if name in csdf.actors:
        raise AnalysisError(f"cluster name {name!r} collides with an existing actor")
    clustered = CSDFGraph(f"{csdf.name}/clustered")
    for actor_name, actor in csdf.actors.items():
        if actor_name not in subset:
            clustered.add_actor(actor_name, exec_time=actor.exec_times)
    clustered.add_actor(name)
    for channel in csdf.channels.values():
        inside_src = channel.src in subset
        inside_dst = channel.dst in subset
        if inside_src and inside_dst:
            continue
        production = channel.production
        consumption = channel.consumption
        src, dst = channel.src, channel.dst
        if inside_src:
            count = Poly.coerce(counts[channel.src])
            production = [channel.production.cumulative_symbolic(count)]
            src = name
        if inside_dst:
            count = Poly.coerce(counts[channel.dst])
            consumption = [channel.consumption.cumulative_symbolic(count)]
            dst = name
        clustered.add_channel(
            channel.name, src, dst,
            production=production,
            consumption=consumption,
            initial_tokens=channel.initial_tokens,
        )
    return clustered


def clustered_graph(graph: TPDFGraph) -> CSDFGraph:
    """Cluster *every* cycle of the graph, yielding the acyclic
    CSDF abstraction used to lift local liveness to the whole graph."""
    csdf = graph.as_csdf()
    for index, subset in enumerate(cyclic_components(graph)):
        local = local_solution(graph, subset)
        csdf = cluster_cycle(csdf, subset, local.counts, name=f"Omega{index or ''}")
    return csdf
