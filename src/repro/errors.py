"""Shared exception hierarchy for the repro library."""

from __future__ import annotations

from typing import Iterable


class ReproError(Exception):
    """Base class for all library-specific errors."""


class GraphConstructionError(ReproError):
    """The graph under construction violates a structural rule
    (duplicate names, dangling endpoints, control channel into a data
    port, ...)."""


class AnalysisError(ReproError):
    """A static analysis could not be completed."""


class SymbolicRateError(AnalysisError):
    """A cumulative rate could not be expressed symbolically.

    Raised e.g. when ``X(n)`` is requested for a symbolic ``n`` on a
    non-uniform cyclic sequence whose phase within the cycle cannot be
    determined for all parameter values."""


class DeadlockError(AnalysisError):
    """No valid schedule exists: some actors can never fire the number
    of times the repetition vector requires."""

    def __init__(self, message: str, blocked: list[str] | None = None,
                 partial_schedule: list[str] | None = None):
        super().__init__(message)
        #: Actors that still had firings left when progress stopped.
        self.blocked = blocked or []
        #: Firing sequence achieved before the deadlock.
        self.partial_schedule = partial_schedule or []


class DiagnosticsError(AnalysisError):
    """Static diagnostics found ERROR-severity defects and the caller
    asked for strict handling (``analyze(lint="error")``, edit-script
    pre-flight, service strict lint).

    Carries the full diagnostic list so front doors (CLI, service
    error envelope) can show *which* contracts the graph breaks
    instead of a single flattened message."""

    def __init__(self, message: str, diagnostics: Iterable = ()):
        super().__init__(message)
        #: The :class:`repro.diagnostics.Diagnostic` records (all
        #: severities, not only the fatal ones) backing this rejection.
        self.diagnostics = list(diagnostics)


class ParametricMCRError(AnalysisError):
    """The parametric MCR engine cannot cover the requested graph/domain.

    Raised when a graph falls outside the supported class (a directed
    cycle whose structure depends on the parameters), when the domain
    does not bind every graph parameter, or when a binding handed to a
    piecewise result lies outside the domain it was computed for."""


class RateSafetyError(AnalysisError):
    """A TPDF graph violates the rate-safety criterion (Def. 5)."""


class BoundednessError(AnalysisError):
    """A TPDF graph cannot be scheduled in bounded memory (Thm. 2)."""


class SchedulingError(ReproError):
    """The scheduler could not produce a valid mapping."""


class SimulationError(ReproError):
    """The discrete-event execution reached an invalid state."""
