"""Graph (de)serialization: dictionaries / JSON.

Lets adopters persist and exchange TPDF/CSDF graphs.  The format is a
plain-JSON document; symbolic rates serialize as strings rendered by
:class:`~repro.symbolic.poly.Poly` and are parsed back with a small
arithmetic-expression parser (sums of products of parameters and
integer constants — exactly the fragment rates use).

Functions and decision callables are *not* serialized (they are code);
deserialized graphs carry the structure and rates, ready for analysis
or for re-attaching behaviour.

The same dictionaries double as the **pickle-safe codec** of the
parallel batch-analysis service (:func:`graph_to_payload` /
:func:`graph_from_payload`): live graph objects carry analysis caches,
port->node->graph back-references and arbitrary callables, none of
which belong on a process-pool wire.  The payload strips all of that
and the worker-side decode rebuilds a fresh graph whose *static
analyses* (consistency, rate safety, liveness, MCR, buffers,
self-timed throughput) are bit-identical to the original's.

Parametric-MCR artefacts have their own JSON view
(:func:`domain_to_dict`, :func:`piecewise_to_dict` and inverses):
piecewise results are persisted by the EXT5 benchmark and round-trip
value-identically (fingerprints match).

Analysis *results* have a JSON wire form as well
(:func:`report_to_dict` / :func:`report_from_dict` and the
``timed_result_*`` / ``parametric_report_*`` pairs): the resident
analysis service (:mod:`repro.service`) answers HTTP requests with
these documents, and the round trip preserves
:meth:`~repro.analysis.GraphReport.fingerprint` exactly — floats
travel through JSON's shortest-repr encoding bit-for-bit, Fractions
are carried as tagged ``{"$fraction": [num, den]}`` objects, and
piecewise payloads reuse :func:`piecewise_to_dict`.
:func:`payload_fingerprint` gives graph payloads a stable content
address (the service's cache and worker decode keys).
"""

from __future__ import annotations

import hashlib
import json
import re
from fractions import Fraction
from typing import Mapping, Union

from .csdf.graph import CSDFGraph
from .csdf.rates import RateSequence
from .errors import GraphConstructionError
from .symbolic import Param, Poly
from .tpdf.builtins import ClockActor
from .tpdf.graph import TPDFGraph
from .tpdf.kernel import ControlActor, Kernel
from .tpdf.modes import Mode
from .tpdf.ports import PortKind

_TOKEN = re.compile(r"\s*(?:(?P<num>\d+/\d+|\d+)|(?P<name>[A-Za-z_]\w*)"
                    r"|(?P<op>\*\*|[+\-*()]))")


def parse_poly(text: str) -> Poly:
    """Parse the polynomial fragment rendered by ``str(Poly)``.

    Grammar: ``expr := term (('+'|'-') term)*``;
    ``term := factor ('*' factor)*``;
    ``factor := number | name ['**' number] | '(' expr ')' | '-' factor``.
    """
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if not match or match.end() == pos:
            raise ValueError(f"cannot tokenize rate expression {text!r} at {pos}")
        tokens.append(match.group().strip())
        pos = match.end()
    tokens.append("$")
    index = [0]

    def peek() -> str:
        return tokens[index[0]]

    def advance() -> str:
        token = tokens[index[0]]
        index[0] += 1
        return token

    def parse_expr() -> Poly:
        value = parse_term()
        while peek() in ("+", "-"):
            if advance() == "+":
                value = value + parse_term()
            else:
                value = value - parse_term()
        return value

    def parse_term() -> Poly:
        value = parse_factor()
        while peek() == "*":
            advance()
            value = value * parse_factor()
        return value

    def parse_factor() -> Poly:
        token = advance()
        if token == "-":
            return -parse_factor()
        if token == "(":
            value = parse_expr()
            if advance() != ")":
                raise ValueError(f"unbalanced parentheses in {text!r}")
            return value
        if re.fullmatch(r"\d+/\d+|\d+", token):
            return Poly.const(Fraction(token))
        if re.fullmatch(r"[A-Za-z_]\w*", token):
            base = Poly.var(token)
            if peek() == "**":
                advance()
                exponent = advance()
                if not exponent.isdigit():
                    raise ValueError(f"bad exponent in {text!r}")
                return base ** int(exponent)
            return base
        raise ValueError(f"unexpected token {token!r} in {text!r}")

    value = parse_expr()
    if peek() != "$":
        raise ValueError(f"trailing input in rate expression {text!r}")
    return value


def _rates_to_json(rates: RateSequence) -> list[str]:
    return [str(entry) for entry in rates.entries]


def _rates_from_json(data) -> RateSequence:
    return RateSequence([parse_poly(str(entry)) for entry in data])


# -- TPDF ----------------------------------------------------------------

def tpdf_to_dict(graph: TPDFGraph) -> dict:
    """Serialize a TPDF graph to a JSON-compatible dictionary."""
    nodes = []
    for name in graph.node_names():
        node = graph.node(name)
        entry: dict = {
            "name": name,
            "kind": "control" if graph.is_control_actor(name) else "kernel",
            "exec_times": list(node.exec_times),
            "meta": {k: v for k, v in node.meta.items()
                     if isinstance(v, (str, int, float, bool))},
            "ports": [
                {
                    "name": port.name,
                    "kind": port.kind.value,
                    "rates": _rates_to_json(port.rates),
                    "priority": port.priority,
                }
                for port in node.ports.values()
            ],
        }
        if isinstance(node, ClockActor):
            entry["clock_period"] = node.period
        if isinstance(node, Kernel):
            entry["modes"] = [mode.value for mode in node.modes]
            overrides = {
                mode.value: {
                    port: _rates_to_json(rates) for port, rates in table.items()
                }
                for mode, table in node._mode_rates.items()
            }
            if overrides:
                entry["mode_rates"] = overrides
        nodes.append(entry)
    return {
        "model": "tpdf",
        "name": graph.name,
        "parameters": [
            {"name": p.name, "lo": p.lo, "hi": p.hi}
            for p in graph.parameters.values()
        ],
        "nodes": nodes,
        "channels": [
            {
                "name": c.name,
                "src": c.src, "src_port": c.src_port,
                "dst": c.dst, "dst_port": c.dst_port,
                "initial_tokens": c.initial_tokens,
            }
            for c in graph.channels.values()
        ],
    }


def tpdf_from_dict(data: Mapping) -> TPDFGraph:
    """Rebuild a TPDF graph from :func:`tpdf_to_dict` output."""
    if data.get("model") != "tpdf":
        raise GraphConstructionError(f"not a TPDF document: {data.get('model')!r}")
    params = [
        Param(p["name"], lo=p.get("lo", 1), hi=p.get("hi"))
        for p in data.get("parameters", [])
    ]
    graph = TPDFGraph(data.get("name", "tpdf"), parameters=params)
    for entry in data["nodes"]:
        exec_times = tuple(entry.get("exec_times", (1.0,)))
        if entry["kind"] == "control":
            if "clock_period" in entry:
                node: ControlActor = ClockActor(entry["name"], entry["clock_period"])
                graph.register(node)
            else:
                node = graph.add_control_actor(entry["name"], exec_time=exec_times)
        else:
            modes = tuple(Mode(m) for m in entry.get("modes", (Mode.WAIT_ALL.value,)))
            node = graph.add_kernel(entry["name"], exec_time=exec_times, modes=modes)
        node.meta.update(entry.get("meta", {}))
        for port in entry["ports"]:
            kind = PortKind(port["kind"])
            rates = _rates_from_json(port["rates"])
            if isinstance(node, Kernel):
                if kind is PortKind.DATA_IN:
                    node.add_input(port["name"], rates, priority=port.get("priority", 0))
                elif kind is PortKind.DATA_OUT:
                    node.add_output(port["name"], rates, priority=port.get("priority", 0))
                elif kind is PortKind.CONTROL_IN:
                    node.add_control_port(port["name"], rates)
                else:
                    raise GraphConstructionError(
                        f"kernel {entry['name']!r} cannot own a control output"
                    )
            else:
                if kind is PortKind.DATA_IN:
                    node.add_input(port["name"], rates, priority=port.get("priority", 0))
                elif kind is PortKind.CONTROL_IN:
                    node.add_control_input(port["name"], rates)
                elif kind is PortKind.CONTROL_OUT:
                    node.add_control_output(port["name"], rates)
                else:
                    raise GraphConstructionError(
                        f"control actor {entry['name']!r} cannot own a data output"
                    )
        if isinstance(node, Kernel):
            for mode_value, table in entry.get("mode_rates", {}).items():
                node.set_mode_rates(
                    Mode(mode_value),
                    {port: _rates_from_json(rates) for port, rates in table.items()},
                )
    for channel in data["channels"]:
        graph.connect(
            (channel["src"], channel["src_port"]),
            (channel["dst"], channel["dst_port"]),
            name=channel["name"],
            initial_tokens=channel.get("initial_tokens", 0),
        )
    return graph


def tpdf_to_json(graph: TPDFGraph, indent: int = 2) -> str:
    return json.dumps(tpdf_to_dict(graph), indent=indent)


def tpdf_from_json(text: str) -> TPDFGraph:
    return tpdf_from_dict(json.loads(text))


# -- CSDF ----------------------------------------------------------------

def csdf_to_dict(graph: CSDFGraph) -> dict:
    """Serialize a CSDF graph to a JSON-compatible dictionary."""
    return {
        "model": "csdf",
        "name": graph.name,
        "actors": [
            {"name": actor.name, "exec_times": list(actor.exec_times)}
            for actor in graph.actors.values()
        ],
        "channels": [
            {
                "name": c.name,
                "src": c.src,
                "dst": c.dst,
                "production": _rates_to_json(c.production),
                "consumption": _rates_to_json(c.consumption),
                "initial_tokens": c.initial_tokens,
            }
            for c in graph.channels.values()
        ],
    }


def csdf_from_dict(data: Mapping) -> CSDFGraph:
    if data.get("model") != "csdf":
        raise GraphConstructionError(f"not a CSDF document: {data.get('model')!r}")
    graph = CSDFGraph(data.get("name", "csdf"))
    for actor in data["actors"]:
        graph.add_actor(actor["name"], exec_time=tuple(actor.get("exec_times", (1.0,))))
    for channel in data["channels"]:
        graph.add_channel(
            channel["name"],
            channel["src"],
            channel["dst"],
            production=_rates_from_json(channel["production"]),
            consumption=_rates_from_json(channel["consumption"]),
            initial_tokens=channel.get("initial_tokens", 0),
        )
    return graph


def csdf_to_json(graph: CSDFGraph, indent: int = 2) -> str:
    return json.dumps(csdf_to_dict(graph), indent=indent)


def csdf_from_json(text: str) -> CSDFGraph:
    return csdf_from_dict(json.loads(text))


# -- process-pool codec --------------------------------------------------

AnyGraph = Union[CSDFGraph, TPDFGraph]


def graph_to_payload(graph: AnyGraph) -> dict:
    """Encode a graph for shipping to an analysis worker process.

    Live graphs are not pickle-safe by contract: they accumulate
    per-version analysis caches (holding arbitrarily large memoized
    expansions), ports hold back-references to their node and graph
    (added so rate edits invalidate caches), and actors may carry
    closures/lambdas as behaviour.  The payload is the plain-dict
    serialization instead — structure, rates, priorities, modes,
    execution times — which pickles as primitive containers only and
    preserves construction order, so every static analysis of the
    decoded graph is bit-identical to the original's.

    Behavioural attachments (``function``, ``decision``) are dropped;
    the analyses never evaluate them.
    """
    if isinstance(graph, TPDFGraph):
        return tpdf_to_dict(graph)
    if isinstance(graph, CSDFGraph):
        return csdf_to_dict(graph)
    raise GraphConstructionError(f"cannot encode {type(graph).__name__} for workers")


def payload_fingerprint(payload: Mapping) -> str:
    """Stable content address of a graph payload (sha256 hex digest of
    its canonical JSON rendering).

    Two payloads fingerprint identically iff they describe the same
    structure, rates, tokens and execution times — dict ordering and
    formatting do not matter.  The resident analysis service keys its
    result cache and per-worker decode caches on this value, so an
    edited graph (different payload) can never be served a stale
    entry: its key changed with its content.
    """
    text = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str,
        allow_nan=True,
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def graph_from_payload(payload: Mapping) -> AnyGraph:
    """Rebuild a worker-side graph from :func:`graph_to_payload`.

    The result is a fresh, mutable graph with empty analysis caches —
    the worker warms them itself (see
    :func:`repro.analysis.warm_graph`)."""
    model = payload.get("model")
    try:
        if model == "tpdf":
            return tpdf_from_dict(payload)
        if model == "csdf":
            return csdf_from_dict(payload)
    except (KeyError, TypeError, AttributeError) as exc:
        # A structurally incomplete payload (missing sections, wrong
        # shapes) is a construction error, not a stray KeyError deep
        # inside the decoder — callers (the analysis service maps this
        # to HTTP 400) rely on the typed surface.
        raise GraphConstructionError(
            f"malformed {model} payload: {exc!r}"
        ) from exc
    raise GraphConstructionError(f"unknown payload model {model!r}")


# -- parametric MCR artefacts --------------------------------------------

def domain_to_dict(domain) -> dict:
    """JSON-ready view of a :class:`~repro.csdf.parametric.ParamDomain`:
    ``{"p": [1, 8]}`` (ranges are inclusive)."""
    return {name: [lo, hi] for name, (lo, hi) in domain.ranges.items()}


def domain_from_dict(data: Mapping):
    """Rebuild a :class:`~repro.csdf.parametric.ParamDomain` from
    :func:`domain_to_dict` output."""
    from .csdf.parametric import ParamDomain

    return ParamDomain({name: (lo, hi) for name, (lo, hi) in data.items()})


def piecewise_to_dict(piecewise) -> dict:
    """JSON-ready view of a :class:`~repro.csdf.parametric.PiecewiseMCR`.

    Symbolic ratios serialize as rendered numerator/denominator
    polynomial strings (the :func:`parse_poly` fragment), regions as
    explicit inclusive boxes with a candidate index — the shape the
    benchmark artefacts record and :func:`piecewise_from_dict` restores.
    """
    return {
        "graph": piecewise.graph_name,
        "domain": domain_to_dict(piecewise.domain),
        "q": {name: str(poly) for name, poly in piecewise._q.items()},
        "candidates": [
            {
                "label": c.label,
                "kind": c.kind,
                "num": str(c.ratio.num),
                "den": str(c.ratio.den),
            }
            for c in piecewise.candidates
        ],
        "regions": [
            {
                "bounds": {name: [lo, hi] for name, lo, hi in r.bounds},
                "candidate": r.candidate,
            }
            for r in piecewise.regions
        ],
    }


# -- analysis-report wire forms ------------------------------------------
#
# The resident analysis service speaks JSON over HTTP, so every field
# of a GraphReport must survive a JSON round trip *bit-for-bit* (the
# differential suite compares fingerprints of decoded responses against
# direct analyze() calls with no tolerance).  Python's json module
# already guarantees exact float round-trips (shortest-repr encoding);
# what needs care is everything JSON has no native type for: Fractions
# (tagged objects), numpy scalars that leak out of the arrays backend
# (normalized to native int/float — np.int64 is *not* JSON-encodable),
# and tuples (re-tupled on decode where the dataclasses expect them).

def _scalar_to_wire(value):
    """Normalize one scalar for the JSON wire, preserving value
    identity: native bool/int/float/str/None pass through, Fractions
    become ``{"$fraction": [num, den]}``, numpy integer/floating
    scalars collapse to the equal native number."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, Fraction):
        return {"$fraction": [value.numerator, value.denominator]}
    if isinstance(value, int):
        return int(value)  # collapse bool-free int subclasses (IntEnum)
    if isinstance(value, float):
        return float(value)  # collapse np.float64 (a float subclass)
    try:  # numpy integer scalars define __index__ but are not ints
        return int(value.__index__())
    except AttributeError:
        raise GraphConstructionError(
            f"cannot encode {value!r} (type {type(value).__name__}) "
            f"for the JSON wire"
        ) from None


def _scalar_from_wire(value):
    """Inverse of :func:`_scalar_to_wire`."""
    if isinstance(value, Mapping) and set(value) == {"$fraction"}:
        num, den = value["$fraction"]
        return Fraction(num, den)
    return value


def timed_result_to_dict(timed) -> dict:
    """JSON-ready view of a :class:`~repro.csdf.throughput.TimedResult`."""
    return {
        "makespan": float(timed.makespan),
        "iterations": int(timed.iterations),
        "firings": int(timed.firings),
        "iteration_ends": [float(t) for t in timed.iteration_ends],
        "peaks": {str(name): int(peak) for name, peak in timed.peaks.items()},
    }


def timed_result_from_dict(data: Mapping):
    """Rebuild a :class:`~repro.csdf.throughput.TimedResult` from
    :func:`timed_result_to_dict` output."""
    from .csdf.throughput import TimedResult

    return TimedResult(
        makespan=data["makespan"],
        iterations=data["iterations"],
        firings=data["firings"],
        iteration_ends=list(data["iteration_ends"]),
        peaks=dict(data["peaks"]),
    )


def _mode_to_wire(mode):
    """Encode a :class:`~repro.tpdf.modes.ControlToken` (or ``None``)."""
    if mode is None:
        return None
    return {"mode": mode.mode.value, "selection": list(mode.selection),
            "deadline": mode.deadline}


def _mode_from_wire(data):
    if data is None:
        return None
    from .tpdf.modes import ControlToken, Mode

    return ControlToken(Mode(data["mode"]), tuple(data["selection"]),
                        data["deadline"])


def trace_to_dict(trace) -> dict:
    """JSON-ready view of a :class:`~repro.sim.Trace` (timing view:
    firing times, modes, discards and peaks — not token payloads, which
    are arbitrary Python objects).  Floats survive the JSON round trip
    exactly, so a decoded trace fingerprints bit-for-bit like the
    original (provided the original carried no recorded values)."""
    return {
        "firings": [
            {"node": r.node, "index": r.index, "start": float(r.start),
             "end": float(r.end), "mode": _mode_to_wire(r.mode)}
            for r in trace.firings
        ],
        "discards": [
            {"channel": d.channel, "port": d.port, "node": d.node,
             "count": d.count, "time": float(d.time)}
            for d in trace.discards
        ],
        "peaks": {str(name): int(peak)
                  for name, peak in trace.peaks.items()},
    }


def trace_from_dict(data: Mapping):
    """Rebuild a :class:`~repro.sim.Trace` from :func:`trace_to_dict`
    output."""
    from .sim import DiscardRecord, FiringRecord, Trace

    return Trace(
        firings=[
            FiringRecord(node=r["node"], index=r["index"], start=r["start"],
                         end=r["end"], mode=_mode_from_wire(r["mode"]))
            for r in data["firings"]
        ],
        discards=[
            DiscardRecord(channel=d["channel"], port=d["port"],
                          node=d["node"], count=d["count"], time=d["time"])
            for d in data["discards"]
        ],
        peaks=dict(data["peaks"]),
    )


def parametric_report_to_dict(report) -> dict:
    """JSON-ready view of a :class:`~repro.analysis.ParametricReport`
    (piecewise payloads ride through :func:`piecewise_to_dict`)."""
    return {
        "name": report.name,
        "domain": {
            str(name): [int(lo), int(hi)]
            for name, (lo, hi) in report.domain.items()
        },
        "piecewise": (
            None if report.piecewise is None
            else piecewise_to_dict(report.piecewise)
        ),
        "errors": {str(k): str(v) for k, v in report.errors.items()},
        "elapsed": float(report.elapsed),
    }


def parametric_report_from_dict(data: Mapping):
    """Rebuild a :class:`~repro.analysis.ParametricReport` from
    :func:`parametric_report_to_dict` output (fingerprint-identical)."""
    from .analysis import ParametricReport

    return ParametricReport(
        name=data["name"],
        domain={
            name: (lo, hi) for name, (lo, hi) in data["domain"].items()
        },
        piecewise=(
            None if data.get("piecewise") is None
            else piecewise_from_dict(data["piecewise"])
        ),
        errors=dict(data.get("errors", {})),
        elapsed=float(data.get("elapsed", 0.0)),
    )


def report_to_dict(report) -> dict:
    """JSON-ready view of a :class:`~repro.analysis.GraphReport`.

    Carries every analysis-result field of the report and drops the
    same things the fingerprint excludes: the live graph object (the
    wire identifies graphs by :func:`payload_fingerprint` instead) and
    the ``graph_version``/``analysis_options`` provenance pair, which
    track caller-side object history that has no meaning across a
    service boundary.  ``elapsed`` is kept (it reports the serving
    cost) but is likewise outside the fingerprint.
    """
    return {
        "kind": "graph_report",
        "name": report.name,
        "bindings": {
            str(name): _scalar_to_wire(value)
            for name, value in report.bindings.items()
        },
        "consistent": bool(report.consistent),
        "repetition_symbolic": {
            str(k): str(v) for k, v in report.repetition_symbolic.items()
        },
        "repetition": (
            None if report.repetition is None
            else {str(k): int(v) for k, v in report.repetition.items()}
        ),
        "live": report.live,
        "safe": report.safe,
        "bounded": report.bounded,
        "mcr": None if report.mcr is None else float(report.mcr),
        "buffers": (
            None if report.buffers is None
            else {str(k): int(v) for k, v in report.buffers.items()}
        ),
        "timed": (
            None if report.timed is None
            else timed_result_to_dict(report.timed)
        ),
        "parametric": (
            None if report.parametric is None
            else parametric_report_to_dict(report.parametric)
        ),
        "skipped": {str(k): str(v) for k, v in report.skipped.items()},
        "errors": {str(k): str(v) for k, v in report.errors.items()},
        "diagnostics": [d.to_dict() for d in report.diagnostics],
        "elapsed": float(report.elapsed),
    }


def report_from_dict(data: Mapping):
    """Rebuild a :class:`~repro.analysis.GraphReport` from
    :func:`report_to_dict` output.

    The decoded report carries no graph object (``report.graph is
    None``) and no provenance, exactly like a report that crossed the
    parallel batch service's process boundary; its ``fingerprint()``
    equals the original's bit-for-bit.
    """
    if data.get("kind") != "graph_report":
        raise GraphConstructionError(
            f"not a graph-report document: kind={data.get('kind')!r}"
        )
    from .analysis import GraphReport
    from .diagnostics import Diagnostic

    return GraphReport(
        graph=None,
        name=data["name"],
        bindings={
            name: _scalar_from_wire(value)
            for name, value in data.get("bindings", {}).items()
        },
        consistent=data.get("consistent", False),
        repetition_symbolic=dict(data.get("repetition_symbolic", {})),
        repetition=(
            None if data.get("repetition") is None
            else dict(data["repetition"])
        ),
        live=data.get("live"),
        safe=data.get("safe"),
        bounded=data.get("bounded"),
        mcr=data.get("mcr"),
        buffers=None if data.get("buffers") is None else dict(data["buffers"]),
        timed=(
            None if data.get("timed") is None
            else timed_result_from_dict(data["timed"])
        ),
        parametric=(
            None if data.get("parametric") is None
            else parametric_report_from_dict(data["parametric"])
        ),
        skipped=dict(data.get("skipped", {})),
        errors=dict(data.get("errors", {})),
        diagnostics=tuple(
            Diagnostic.from_dict(row) for row in data.get("diagnostics", ())
        ),
        elapsed=float(data.get("elapsed", 0.0)),
    )


def piecewise_from_dict(data: Mapping):
    """Rebuild a :class:`~repro.csdf.parametric.PiecewiseMCR` from
    :func:`piecewise_to_dict` output (value-identical: fingerprints of
    the round-tripped object match the original's)."""
    from .csdf.parametric import MCRCandidate, PiecewiseMCR, Region
    from .symbolic import Rat

    candidates = [
        MCRCandidate(
            entry["label"], entry["kind"],
            Rat(parse_poly(entry["num"]), parse_poly(entry["den"])),
        )
        for entry in data["candidates"]
    ]
    regions = [
        Region(
            tuple((name, lo, hi) for name, (lo, hi) in entry["bounds"].items()),
            entry["candidate"],
        )
        for entry in data["regions"]
    ]
    return PiecewiseMCR(
        data["graph"],
        domain_from_dict(data["domain"]),
        candidates,
        regions,
        {name: parse_poly(text) for name, text in data["q"].items()},
    )
