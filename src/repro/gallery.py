"""Gallery: every graph that appears in the paper, ready-built.

One-stop construction of the figures for experiments, docs and tests:

* :func:`fig1_graph` — the CSDF example (q = [3, 2, 2]);
* :func:`fig2_graph` — the TPDF running example (re-exported);
* :func:`fig3_graph` — the select-duplicate application the
  virtualization rewrite targets;
* :func:`fig4_graph` — the liveness examples (cases "a", "b", or a
  deliberately dead variant);
* :func:`fig6_graph` — edge detection with a 500 ms clock;
* :func:`fig7_graph` — the OFDM demodulator (re-exported).
"""

from __future__ import annotations

import numpy as np

from .csdf.graph import CSDFGraph
from .symbolic import Param
from .tpdf.graph import TPDFGraph, fig2_graph
from .tpdf.builtins import select_duplicate


def fig1_graph() -> CSDFGraph:
    """Fig. 1: the CSDF example with q = [3, 2, 2].

    The figure's rate annotations are garbled in the available text;
    this assignment is the unique one consistent with the paper's
    repetition vector, its schedule ``(a3)^2 (a1)^3 (a2)^2`` and the
    statement that execution "can only start by firing a3 twice".
    """
    g = CSDFGraph("fig1")
    for name in ("a1", "a2", "a3"):
        g.add_actor(name)
    g.add_channel("e1", "a1", "a2", [1, 0, 1], [1, 1])
    g.add_channel("e2", "a2", "a3", [1], [0, 2], initial_tokens=2)
    g.add_channel("e3", "a3", "a1", [2], [1, 1, 2])
    return g


def parametric_radio_graph() -> CSDFGraph:
    """A two-parameter software-radio front-end (parametric MCR demo).

    ``b`` is the demodulator block size, ``c`` the number of concurrent
    channels.  The antenna emits ``b*c`` samples per activation, the
    FIR stage filters one channel's block per firing, the demodulator
    processes one symbol at a time, and an AGC loop (self-loop state
    token) regulates the front-end once per activation:

    * ``q = [ANT: 1, AGC: 1, FIR: c, DEM: b*c, SNK: 1]``
    * MCR(b, c) = max(6, 3*c, b*c) — the AGC loop bounds small
      configurations, the FIR ring medium ones, and the demodulator's
      serialized symbol work dominates for ``b >= 3``.

    Used by ``examples/parametric_throughput.py``, the parametric-MCR
    differential suite and the EXT5 benchmark.
    """
    b, c = Param("b"), Param("c")
    g = CSDFGraph("radio2p")
    g.add_actor("ANT", exec_time=4)
    g.add_actor("AGC", exec_time=6)
    g.add_actor("FIR", exec_time=3)
    g.add_actor("DEM", exec_time=1)
    g.add_actor("SNK", exec_time=2)
    g.add_channel("rf", "ANT", "FIR", production=b * c, consumption=b)
    g.add_channel("agc_in", "ANT", "AGC", production=1, consumption=1)
    g.add_channel("agc_state", "AGC", "AGC", production=1, consumption=1,
                  initial_tokens=1)
    g.add_channel("sym", "FIR", "DEM", production=b, consumption=1)
    g.add_channel("bits", "DEM", "SNK", production=1, consumption=b * c)
    return g


def fig3_graph() -> TPDFGraph:
    """Fig. 3 (left): B select-duplicates between branches D and E.

    Apply :func:`repro.tpdf.virtualize_select_duplicate` to obtain the
    right-hand equivalent with virtual actors.
    """
    g = TPDFGraph("fig3")
    a = g.add_kernel("A")
    a.add_output("out", 1)
    a.add_output("sig", 1)
    select_duplicate(g, "B", outputs=2, output_names=["to_d", "to_e"])
    ctrl = g.add_control_actor("CTRL")
    ctrl.add_input("in", 1)
    ctrl.add_control_output("out", 1)
    d = g.add_kernel("D")
    d.add_input("in", 1)
    e = g.add_kernel("E")
    e.add_input("in", 1)
    g.connect("A.out", "B.in")
    g.connect("A.sig", "CTRL.in")
    g.connect("CTRL.out", "B.ctrl")
    g.connect("B.to_d", "D.in")
    g.connect("B.to_e", "E.in")
    return g


def fig4_graph(case: str = "a") -> TPDFGraph:
    """Fig. 4 liveness examples.

    ``case="a"``: back-edge production [0, 2], two initial tokens;
    ``case="b"``: production [2, 0], one initial token (live only with
    interleaved schedules); ``case="dead"``: no initial tokens.
    """
    configs = {
        "a": ([0, 2], 2),
        "b": ([2, 0], 1),
        "dead": ([2, 0], 0),
    }
    if case not in configs:
        raise ValueError(f"case must be one of {sorted(configs)}, got {case!r}")
    back_production, initial = configs[case]
    p = Param("p")
    g = TPDFGraph(f"fig4{case}", parameters=[p])
    a = g.add_kernel("A")
    a.add_output("out", [p, p])
    b = g.add_kernel("B")
    b.add_input("in", [1, 1])
    b.add_output("to_c", 1)
    b.add_input("back", [1, 1])
    c = g.add_kernel("C")
    c.add_input("in", 1)
    c.add_output("back", back_production)
    g.connect("A.out", "B.in", name="e1")
    g.connect("B.to_c", "C.in", name="e2")
    g.connect("C.back", "B.back", name="e3", initial_tokens=initial)
    return g


def fig6_graph(image_size: int = 1024, period: float = 500.0):
    """Fig. 6: the edge-detection application (graph, results sink)."""
    from .apps.edge.pipeline import build_edge_graph

    return build_edge_graph([np.zeros((image_size, image_size))], period=period)


def fig7_graph() -> TPDFGraph:
    """Fig. 7: the OFDM demodulator (symbolic rates)."""
    from .apps.ofdm.pipeline import build_ofdm_tpdf

    return build_ofdm_tpdf()


__all__ = [
    "fig1_graph",
    "fig2_graph",
    "fig3_graph",
    "fig4_graph",
    "fig6_graph",
    "fig7_graph",
]
