"""Per-graph memoization for the static analyses.

The analysis chain recomputes its expensive building blocks many times
over: one ``check_boundedness`` call solves the balance equations four
times (consistency, rate safety, liveness, local solutions), and every
MCR/buffer query re-derives the repetition vector and the HSDF
expansion.  This module gives each graph instance a small cache keyed
by the graph's *mutation version*: construction methods bump the
version, which atomically invalidates every memoized result.

Contract for cached values: they are shared — callers must treat
memoized graphs (``as_csdf()``, ``expand_to_hsdf()``) and mappings as
frozen.  All in-tree analyses only read them.

Negative results (inconsistent-rate errors) are cached too, so
``is_consistent`` probes on a bad graph stay cheap.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Mapping

from .errors import GraphConstructionError

_CACHE_ATTR = "_analysis_cache"
_VERSION_ATTR = "_analysis_version"
_FROZEN_ATTR = "_analysis_frozen"


def bump_version(graph: Any) -> None:
    """Invalidate every cached analysis of ``graph`` (called by the
    graph classes' construction methods)."""
    ensure_mutable(graph)
    setattr(graph, _VERSION_ATTR, getattr(graph, _VERSION_ATTR, 0) + 1)


def freeze(graph: Any) -> Any:
    """Mark ``graph`` immutable: any later mutation (anything that
    would bump the version) raises instead of silently invalidating
    shared state.

    Used on memoized analysis products (``as_csdf()``,
    ``expand_to_hsdf()``): those objects are shared by every caller for
    the parent graph's current version, so structural edits would
    corrupt results for all of them.  Freezing turns that misuse into
    an immediate :class:`~repro.errors.GraphConstructionError`.
    Analysis caches keep working on frozen graphs — memoization is not
    a mutation.
    """
    setattr(graph, _FROZEN_ATTR, True)
    return graph


def is_frozen(graph: Any) -> bool:
    return bool(getattr(graph, _FROZEN_ATTR, False))


def ensure_mutable(graph: Any) -> None:
    """Raise when ``graph`` has been frozen (shared analysis product)."""
    if is_frozen(graph):
        raise GraphConstructionError(
            f"graph {getattr(graph, 'name', graph)!r} is frozen: it is a "
            f"memoized analysis product shared across callers; derive a "
            f"mutable copy (e.g. bind()) instead of mutating it"
        )


def analysis_cache(graph: Any) -> dict:
    """The live cache dict of ``graph`` for its current version."""
    version = getattr(graph, _VERSION_ATTR, 0)
    entry = getattr(graph, _CACHE_ATTR, None)
    if entry is None or entry[0] != version:
        entry = (version, {})
        setattr(graph, _CACHE_ATTR, entry)
    return entry[1]


class _Raised:
    """Sentinel wrapping an exception so failures memoize as well."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException):
        self.error = error


def cached(graph: Any, key: Hashable, factory: Callable[[], Any]) -> Any:
    """Memoize ``factory()`` under ``key`` in the graph's cache.

    Exceptions raised by ``factory`` are cached and re-raised on
    subsequent hits (analysis verdicts are deterministic for a given
    graph version).
    """
    cache = analysis_cache(graph)
    if key in cache:
        value = cache[key]
        if isinstance(value, _Raised):
            raise value.error
        return value
    try:
        value = factory()
    except Exception as error:
        cache[key] = _Raised(error)
        raise
    cache[key] = value
    return value


def bindings_key(bindings: Mapping | None) -> tuple:
    """Hashable view of a parameter valuation (order-insensitive).

    >>> bindings_key({"q": 2, "p": 1})
    (('p', 1), ('q', 2))
    >>> bindings_key(None)
    ()
    """
    if not bindings:
        return ()
    return tuple(sorted((str(name), value) for name, value in bindings.items()))


def domain_key(domain) -> tuple:
    """Hashable view of a parameter *domain* (order-insensitive).

    Accepts a :class:`repro.csdf.parametric.ParamDomain` (anything with
    a ``key()`` method) or a plain mapping of ``name -> (lo, hi)``;
    used to key piecewise-MCR results per graph version, the same way
    :func:`bindings_key` keys concrete results.

    >>> domain_key({"q": (2, 4), "p": (1, 8)})
    (('p', 1, 8), ('q', 2, 4))
    >>> domain_key(None)
    ()
    """
    if domain is None:
        return ()
    key = getattr(domain, "key", None)
    if callable(key):
        return key()
    return tuple(sorted(
        (str(name), int(lo), int(hi)) for name, (lo, hi) in dict(domain).items()
    ))
