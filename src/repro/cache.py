"""Per-graph memoization for the static analyses.

The analysis chain recomputes its expensive building blocks many times
over: one ``check_boundedness`` call solves the balance equations four
times (consistency, rate safety, liveness, local solutions), and every
MCR/buffer query re-derives the repetition vector and the HSDF
expansion.  This module gives each graph instance a small cache keyed
by the graph's *mutation version*: construction methods bump the
version, which atomically invalidates every memoized result.

Contract for cached values: they are shared — callers must treat
memoized graphs (``as_csdf()``, ``expand_to_hsdf()``) and mappings as
frozen.  All in-tree analyses only read them.

Negative results (inconsistent-rate errors) are cached too, so
``is_consistent`` probes on a bad graph stay cheap.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Mapping

_CACHE_ATTR = "_analysis_cache"
_VERSION_ATTR = "_analysis_version"


def bump_version(graph: Any) -> None:
    """Invalidate every cached analysis of ``graph`` (called by the
    graph classes' construction methods)."""
    setattr(graph, _VERSION_ATTR, getattr(graph, _VERSION_ATTR, 0) + 1)


def analysis_cache(graph: Any) -> dict:
    """The live cache dict of ``graph`` for its current version."""
    version = getattr(graph, _VERSION_ATTR, 0)
    entry = getattr(graph, _CACHE_ATTR, None)
    if entry is None or entry[0] != version:
        entry = (version, {})
        setattr(graph, _CACHE_ATTR, entry)
    return entry[1]


class _Raised:
    """Sentinel wrapping an exception so failures memoize as well."""

    __slots__ = ("error",)

    def __init__(self, error: BaseException):
        self.error = error


def cached(graph: Any, key: Hashable, factory: Callable[[], Any]) -> Any:
    """Memoize ``factory()`` under ``key`` in the graph's cache.

    Exceptions raised by ``factory`` are cached and re-raised on
    subsequent hits (analysis verdicts are deterministic for a given
    graph version).
    """
    cache = analysis_cache(graph)
    if key in cache:
        value = cache[key]
        if isinstance(value, _Raised):
            raise value.error
        return value
    try:
        value = factory()
    except Exception as error:
        cache[key] = _Raised(error)
        raise
    cache[key] = value
    return value


def bindings_key(bindings: Mapping | None) -> tuple:
    """Hashable view of a parameter valuation (order-insensitive)."""
    if not bindings:
        return ()
    return tuple(sorted((str(name), value) for name, value in bindings.items()))
